"""Domain example: how MECH's advantage scales with the chiplet array size.

Reproduces, at configurable scale, the paper's Fig. 12 message: keep the
chiplet footprint fixed and grow the number of chiplets, then watch the depth
and effective-CNOT improvements of MECH over the SWAP baseline grow with the
device.  This is the experiment that motivates highways as the communication
substrate for thousand-qubit chiplet machines.

Run with:  python examples/scaling_study.py [--width 5] [--benchmark QFT]
(larger widths take correspondingly longer: the baseline router dominates).
"""

import argparse
import time

from repro import BaselineCompiler, ChipletArray, MechCompiler
from repro.metrics import improvement
from repro.programs import build_benchmark

DEFAULT_SHAPES = ((1, 2), (2, 2), (2, 3), (3, 3))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=4, help="chiplet footprint width")
    parser.add_argument("--benchmark", default="QFT", choices=["QFT", "QAOA", "VQE", "BV"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--shapes",
        nargs="*",
        default=[f"{r}x{c}" for r, c in DEFAULT_SHAPES],
        help="chiplet array shapes, e.g. 2x2 2x3 3x3",
    )
    args = parser.parse_args()

    print(f"{args.benchmark} on growing arrays of {args.width}x{args.width} square chiplets")
    print(f"{'array':>6} {'chiplets':>8} {'data qubits':>11} {'depth impr':>11} {'eff impr':>9} {'runtime':>9}")
    print("-" * 62)
    for shape in args.shapes:
        rows, cols = (int(x) for x in shape.lower().split("x"))
        start = time.perf_counter()
        array = ChipletArray("square", args.width, rows, cols)
        mech = MechCompiler(array)
        kwargs = {} if args.benchmark == "QFT" else {"seed": args.seed}
        circuit = build_benchmark(args.benchmark, mech.num_data_qubits, **kwargs)
        ours = mech.compile(circuit).metrics()
        base = BaselineCompiler(array.topology).compile(circuit).metrics()
        elapsed = time.perf_counter() - start
        print(
            f"{shape:>6} {rows * cols:>8d} {mech.num_data_qubits:>11d} "
            f"{improvement(base.depth, ours.depth):>10.1%} "
            f"{improvement(base.eff_cnots, ours.eff_cnots):>8.1%} {elapsed:>8.1f}s"
        )


if __name__ == "__main__":
    main()
