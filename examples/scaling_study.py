"""Domain example: how MECH's advantage scales with the chiplet array size.

Reproduces, at configurable scale, the paper's Fig. 12 message: keep the
chiplet footprint fixed and grow the number of chiplets, then watch the depth
and effective-CNOT improvements of MECH over the SWAP baseline grow with the
device.  This is the experiment that motivates highways as the communication
substrate for thousand-qubit chiplet machines.

The sweep runs through the orchestration engine, so the array shapes compile
in parallel (``--jobs``) and every finished cell is memoized on disk
(``--cache-dir``) — re-running with a larger ``--shapes`` list only compiles
the new shapes.

Run with:  python examples/scaling_study.py [--width 5] [--benchmark QFT] [--jobs 4]
(larger widths take correspondingly longer: the baseline router dominates).
"""

import argparse

from repro.experiments import jobs_for_fig12, run_jobs_report

DEFAULT_SHAPES = ((1, 2), (2, 2), (2, 3), (3, 3))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=4, help="chiplet footprint width")
    parser.add_argument("--benchmark", default="QFT", choices=["QFT", "QAOA", "VQE", "BV"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    parser.add_argument("--cache-dir", default=None, help="optional on-disk result cache")
    parser.add_argument(
        "--shapes",
        nargs="*",
        default=[f"{r}x{c}" for r, c in DEFAULT_SHAPES],
        help="chiplet array shapes, e.g. 2x2 2x3 3x3",
    )
    args = parser.parse_args()

    shapes = [tuple(int(x) for x in shape.lower().split("x")) for shape in args.shapes]
    jobs = jobs_for_fig12(
        benchmarks=[args.benchmark],
        chiplet_width=args.width,
        array_shapes=shapes,
        seed=args.seed,
    )
    records, report = run_jobs_report(jobs, workers=args.jobs, cache=args.cache_dir)

    print(f"{args.benchmark} on growing arrays of {args.width}x{args.width} square chiplets")
    print(
        f"{'array':>6} {'chiplets':>8} {'data qubits':>11} {'depth impr':>11} "
        f"{'eff impr':>9} {'compile s':>10}"
    )
    print("-" * 62)
    for (rows, cols), record in zip(shapes, records, strict=False):
        print(
            f"{f'{rows}x{cols}':>6} {rows * cols:>8d} {record.num_data_qubits:>11d} "
            f"{record.depth_improvement:>10.1%} "
            f"{record.eff_cnots_improvement:>8.1%} "
            f"{record.baseline_seconds + record.mech_seconds:>9.1f}s"
        )
    print(report.summary())


if __name__ == "__main__":
    main()
