"""Domain example: QAOA MaxCut on chiplets of different coupling structures.

Reproduces, at laptop scale, the workflow behind the paper's Fig. 16: the same
QAOA MaxCut instance (random graph with half of all edges, as in Section 7.1)
is compiled with MECH and the baseline on square, hexagon, heavy-square and
heavy-hexagon chiplet arrays, and the normalised metrics are reported per
structure.

Run with:  python examples/qaoa_chiplet_study.py [--width 5] [--rows 2] [--cols 2]
"""

import argparse

from repro import BaselineCompiler, ChipletArray, MechCompiler
from repro.metrics import normalized_ratio
from repro.programs import qaoa_maxcut_circuit

STRUCTURES = ("square", "hexagon", "heavy_square", "heavy_hexagon")


def run_structure(structure: str, width: int, rows: int, cols: int, seed: int) -> dict:
    array = ChipletArray(structure, width, rows, cols)
    mech = MechCompiler(array)
    circuit = qaoa_maxcut_circuit(mech.num_data_qubits, seed=seed)
    ours = mech.compile(circuit).metrics()
    base = BaselineCompiler(array.topology).compile(circuit).metrics()
    return {
        "structure": structure,
        "data_qubits": mech.num_data_qubits,
        "highway_fraction": mech.highway_qubit_fraction,
        "depth_ratio": normalized_ratio(base.depth, ours.depth),
        "eff_ratio": normalized_ratio(base.eff_cnots, ours.eff_cnots),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=5, help="chiplet footprint width")
    parser.add_argument("--rows", type=int, default=2, help="chiplet array rows")
    parser.add_argument("--cols", type=int, default=2, help="chiplet array columns")
    parser.add_argument("--seed", type=int, default=0, help="random MaxCut graph seed")
    args = parser.parse_args()

    print("QAOA MaxCut across chiplet coupling structures (MECH / baseline, lower is better)")
    print(f"{'structure':<15} {'data qubits':>11} {'highway %':>10} {'depth ratio':>12} {'eff ratio':>10}")
    print("-" * 64)
    for structure in STRUCTURES:
        row = run_structure(structure, args.width, args.rows, args.cols, args.seed)
        print(
            f"{row['structure']:<15} {row['data_qubits']:>11d} "
            f"{row['highway_fraction']:>10.1%} {row['depth_ratio']:>12.3f} {row['eff_ratio']:>10.3f}"
        )


if __name__ == "__main__":
    main()
