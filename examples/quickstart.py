"""Quickstart: compile a QFT with MECH and with the baseline and compare.

Builds a small chiplet array (2x2 array of 5x5 square chiplets), lets the MECH
compiler allocate its highway, sizes a QFT to the remaining data qubits and
compares the paper's two metrics — weighted depth and effective CNOT count —
against the SABRE-style baseline.

Run with:  python examples/quickstart.py
"""

from repro import BaselineCompiler, ChipletArray, MechCompiler
from repro.metrics import improvement
from repro.programs import qft_circuit


def main() -> None:
    # 1. the device: a 2x2 array of 5x5 square chiplets (100 physical qubits)
    array = ChipletArray("square", chiplet_width=5, rows=2, cols=2)
    print(f"device: {array}")

    # 2. the MECH compiler reserves highway (ancillary) qubits on the device
    mech = MechCompiler(array)
    print(
        f"highway qubits: {len(mech.layout.highway_qubits)} "
        f"({mech.highway_qubit_fraction:.1%} of the device), "
        f"data qubits: {mech.num_data_qubits}"
    )

    # 3. size the benchmark by the available data qubits (paper convention)
    circuit = qft_circuit(mech.num_data_qubits)
    print(f"logical circuit: {circuit.name}, {circuit.num_two_qubit_ops()} 2-qubit gates")

    # 4. compile with MECH and with the baseline
    ours = mech.compile(circuit)
    base = BaselineCompiler(array.topology).compile(circuit)

    # 5. compare the paper's metrics
    ours_m, base_m = ours.metrics(), base.metrics()
    print("\n                       baseline        MECH")
    print(f"depth             {base_m.depth:>13.0f} {ours_m.depth:>13.0f}")
    print(f"eff_CNOTs         {base_m.eff_cnots:>13.0f} {ours_m.eff_cnots:>13.0f}")
    print(f"on-chip CNOTs     {base_m.counts.on_chip_cnots:>13d} {ours_m.counts.on_chip_cnots:>13d}")
    print(f"cross-chip CNOTs  {base_m.counts.cross_chip_cnots:>13d} {ours_m.counts.cross_chip_cnots:>13d}")
    print(f"measurements      {base_m.counts.measurements:>13d} {ours_m.counts.measurements:>13d}")
    print(
        f"\nimprovement: depth {improvement(base_m.depth, ours_m.depth):+.1%}, "
        f"eff_CNOTs {improvement(base_m.eff_cnots, ours_m.eff_cnots):+.1%}"
    )
    print(f"MECH used {ours.stats['shuttles']:.0f} highway shuttles "
          f"for {ours.stats['highway_gates']:.0f} highway gates")


if __name__ == "__main__":
    main()
