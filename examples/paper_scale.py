"""Run any of the paper's experiments at full (Table 1) scale.

This is a thin wrapper around the unified CLI — it is exactly equivalent to::

    python -m repro run table2 fig12 ... --scale paper [--jobs N] [...]

The default test and benchmark tiers use scaled-down devices so everything
finishes in minutes; ``--scale paper`` exposes the paper-scale settings.
Expect the baseline compilation of the largest instances to take hours,
exactly as the paper's artifact appendix warns ("hundreds of CPU hours" for
the full sweep) — which is why you want ``--jobs`` (parallel workers) and the
on-disk result cache (resume an interrupted sweep for free; every finished
cell is memoized under ``--cache-dir``).

Examples:
    python examples/paper_scale.py table2 --benchmarks BV
    python examples/paper_scale.py fig12 --jobs 8
    python examples/paper_scale.py fig13 fig14 fig15 fig16 --jobs 4
"""

import argparse

from repro.cli import main
from repro.experiments import BENCHMARK_NAMES, EXPERIMENTS


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="+", choices=sorted(EXPERIMENTS))
    parser.add_argument("--benchmarks", nargs="*", default=list(BENCHMARK_NAMES))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=0, help="workers (0 = one per CPU)")
    parser.add_argument("--cache-dir", default=".repro-cache")
    parser.add_argument("--out-dir", default="artifacts")
    return parser.parse_args()


if __name__ == "__main__":
    args = parse_args()
    raise SystemExit(
        main(
            [
                "run",
                *args.experiments,
                "--scale",
                "paper",
                "--benchmarks",
                *args.benchmarks,
                "--seed",
                str(args.seed),
                "--jobs",
                str(args.jobs),
                "--cache-dir",
                args.cache_dir,
                "--out-dir",
                args.out_dir,
            ]
        )
    )
