"""Run any of the paper's experiments at full (Table 1) scale.

The default test and benchmark tiers use scaled-down devices so everything
finishes in minutes; this script exposes the paper-scale settings.  Expect the
baseline compilation of the largest instances to take hours, exactly as the
paper's artifact appendix warns ("hundreds of CPU hours" for the full sweep).

Examples:
    python examples/paper_scale.py table2 --benchmarks BV --chiplet-sizes 6
    python examples/paper_scale.py fig12
    python examples/paper_scale.py fig13 fig14 fig15 fig16
"""

import argparse

from repro.experiments import (
    format_fig12,
    format_fig13,
    format_fig14,
    format_fig15,
    format_fig16,
    format_table2,
    run_fig12,
    run_fig13,
    run_fig14,
    run_fig15,
    run_fig16,
    run_table2,
)

RUNNERS = {
    "table2": lambda args: format_table2(
        run_table2(
            scale="paper",
            benchmarks=args.benchmarks,
            chiplet_sizes=args.chiplet_sizes,
            seed=args.seed,
        )
    ),
    "fig12": lambda args: format_fig12(
        run_fig12(scale="paper", benchmarks=args.benchmarks, seed=args.seed)
    ),
    "fig13": lambda args: format_fig13(
        run_fig13(scale="paper", benchmarks=args.benchmarks, seed=args.seed)
    ),
    "fig14": lambda args: format_fig14(
        run_fig14(scale="paper", benchmarks=args.benchmarks, seed=args.seed)
    ),
    "fig15": lambda args: format_fig15(
        run_fig15(scale="paper", benchmarks=args.benchmarks, seed=args.seed)
    ),
    "fig16": lambda args: format_fig16(
        run_fig16(scale="paper", benchmarks=args.benchmarks, seed=args.seed)
    ),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="+", choices=sorted(RUNNERS))
    parser.add_argument("--benchmarks", nargs="*", default=["QFT", "QAOA", "VQE", "BV"])
    parser.add_argument(
        "--chiplet-sizes", nargs="*", type=int, default=None,
        help="table2 only: restrict the chiplet sizes (default 6 7 8 9)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    for name in args.experiments:
        print(f"\n##### {name} (paper scale) #####")
        print(RUNNERS[name](args))


if __name__ == "__main__":
    main()
