"""Demonstrate (and verify) the highway building blocks on the simulator.

Walks through the paper's three mechanisms at simulator scale:

1. constant-depth, measurement-based GHZ preparation on a highway path
   (Figs. 5-8), compared with the linear-depth CNOT chain;
2. the multi-entry communication protocol (Fig. 3): one control qubit drives
   CNOTs onto two distant targets *simultaneously* by consuming the GHZ state;
3. the statevector check that the protocol really implements the same unitary
   as the two direct CNOTs.

Run with:  python examples/highway_protocol_demo.py
"""


from repro.circuits import Circuit, Simulator, statevectors_equal
from repro.highway import chain_ghz, highway_multi_target, measurement_based_ghz


def ghz_preparation_demo() -> None:
    path = list(range(9))
    chain = Circuit(9).extend(chain_ghz(path))
    plan = measurement_based_ghz(path)
    fast = Circuit(9).extend(plan.operations)
    print("== GHZ preparation over a 9-qubit highway path ==")
    print(f"CNOT-chain depth        : {chain.depth():.0f}")
    print(f"measurement-based depth : {fast.depth():.0f} "
          f"(members: {plan.members}, measured helpers: {plan.measured})")

    sim = Simulator(9, seed=1)
    sim.run(fast)
    # verify: map GHZ -> |0...0> on the members and check determinism
    verify = Circuit(9)
    for member in plan.members[1:]:
        verify.cx(plan.members[0], member)
    verify.h(plan.members[0])
    sim.run(verify)
    ok = all(abs(sim.expectation_z(q) - 1.0) < 1e-8 for q in plan.members)
    print(f"GHZ state verified on members: {ok}\n")


def protocol_demo() -> None:
    print("== Highway protocol: one control, two distant targets ==")
    # qubits: 0 = control data, 1-3 = highway GHZ members, 4/5 = target data
    circuit = Circuit(6)
    circuit.rx(1.1, 0)           # put the control in a superposition
    circuit.x(4)                 # make the targets distinguishable
    circuit.extend(chain_ghz([1, 2, 3]))
    plan = highway_multi_target(
        control_data=0,
        control_entrance=1,
        member_target_pairs=[(2, 4), (3, 5)],
        all_members=[1, 2, 3],
        cbit_base=10,
    )
    circuit.extend(plan.operations)

    reference = Circuit(6)
    reference.rx(1.1, 0)
    reference.x(4)
    reference.cx(0, 4)
    reference.cx(0, 5)

    matches = 0
    trials = 10
    for seed in range(trials):
        out = Simulator(6, seed=seed).run(circuit)
        ref = Simulator(6, seed=0).run(reference)
        state = out.statevector.reshape((2,) * 6)[:, 0, 0, 0, :, :].reshape(-1)
        ref_state = ref.statevector.reshape((2,) * 6)[:, 0, 0, 0, :, :].reshape(-1)
        matches += statevectors_equal(state, ref_state)
    print(f"protocol output matched the direct CNOTs in {matches}/{trials} random-outcome runs")
    print("fan-out CNOTs in the protocol act on disjoint pairs, so they run concurrently\n")


if __name__ == "__main__":
    ghz_preparation_demo()
    protocol_demo()
