"""End-to-end fault-tolerance tests for the compile farm.

Mirrors ``test_resume_e2e.py`` at farm scale — the acceptance criteria of
the subsystem:

* a farm run's artifacts are byte-identical to a single-process
  ``repro run``'s, modulo the ``*_seconds`` timing fields;
* ``SIGKILL``-ing a worker mid-job heals by lease expiry: the job returns to
  the queue with its attempt count preserved and a surviving worker finishes
  the run, never exceeding the ``JobPolicy`` attempt budget;
* ``SIGKILL``-ing the coordinator mid-run leaves a checkpoint (compacted
  from the delta journal on every transition) that ``repro resume`` finishes
  to the same artifacts an uninterrupted run produces;
* the batch engine flushes its checkpoint on ``SIGTERM`` (not only on
  KeyboardInterrupt), then dies with the default signal disposition.

The ``REPRO_STALL_BENCHMARK`` injection hook (``NAME:SECONDS``) makes "mid-
job" deterministic: stalled benchmarks sleep before compiling, giving the
test a window to kill things.
"""

import csv
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments.engine import (
    STALL_ENV,
    JobPolicy,
    ResultCache,
    load_checkpoint,
    read_journal,
)
from repro.farm import FarmCoordinator
from repro.experiments.registry import build_experiment_jobs

TIMING_FIELDS = ("baseline_seconds", "mech_seconds")

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")


def _normalized_json(path):
    doc = json.loads(path.read_text())
    for row in doc["records"]:
        for field in TIMING_FIELDS:
            row[field] = 0.0
    return doc


def _normalized_csv(path):
    with open(path, newline="") as handle:
        rows = list(csv.DictReader(handle))
    for row in rows:
        for field in TIMING_FIELDS:
            row[field] = "0"
    return rows


def _subprocess_env(stall=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    if stall is not None:
        env[STALL_ENV] = stall
    else:
        env.pop(STALL_ENV, None)
    return env


def _wait_for(predicate, timeout, message):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(f"timed out after {timeout}s waiting for {message}")


def _spawn_worker(port, worker_id, *, stall=None):
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "farm-worker",
            "--connect",
            f"127.0.0.1:{port}",
            "--worker-id",
            worker_id,
            "--quiet",
        ],
        env=_subprocess_env(stall),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


class TestFarmArtifactParity:
    def test_farm_run_matches_single_process_run(self, tmp_path, capsys):
        args = ["--scale", "small", "--benchmarks", "BV", "QFT"]
        solo_out, farm_out = tmp_path / "solo", tmp_path / "farm"
        assert (
            main(
                ["run", "table2", *args, "--jobs", "2", "--quiet",
                 "--cache-dir", str(tmp_path / "solo-cache"), "--out-dir", str(solo_out)]
            )
            == 0
        )
        # `--scale smoke` is the documented alias for the small tier
        assert (
            main(
                ["farm", "run", "table2", "--scale", "smoke", "--benchmarks", "BV", "QFT",
                 "--local-workers", "2", "--quiet",
                 "--cache-dir", str(tmp_path / "farm-cache"), "--out-dir", str(farm_out)]
            )
            == 0
        )
        capsys.readouterr()
        assert _normalized_json(farm_out / "table2.json") == _normalized_json(
            solo_out / "table2.json"
        )
        assert _normalized_csv(farm_out / "table2.csv") == _normalized_csv(
            solo_out / "table2.csv"
        )
        assert (farm_out / "table2.txt").read_bytes() == (solo_out / "table2.txt").read_bytes()
        # the farm checkpoint is finished and resumable-by-construction
        checkpoint = load_checkpoint(farm_out / "table2.checkpoint.json")
        assert checkpoint.finished is True
        assert checkpoint.meta["experiment"] == "table2"
        assert checkpoint.meta["scale"] == "small"  # smoke resolved to small


class TestWorkerCrashHealing:
    def test_sigkilled_worker_heals_by_lease_expiry(self, tmp_path):
        # both jobs stall 60s under worker A (QFT-only job list), so A is
        # guaranteed to die mid-job; worker B runs without the stall hook
        jobs = build_experiment_jobs("table2", scale="small", benchmarks=["QFT"])
        assert len(jobs) == 2
        coordinator = FarmCoordinator(
            jobs,
            cache=ResultCache(tmp_path / "cache"),
            policy=JobPolicy(retries=1),
            lease_seconds=1.5,
            checkpoint=tmp_path / "farm.checkpoint.json",
        )
        coordinator.start()
        victim = survivor = None
        try:
            victim = _spawn_worker(coordinator.port, "victim", stall="QFT:60")
            _wait_for(
                lambda: coordinator.queue.counts()["leased"] >= 1,
                timeout=30,
                message="the victim worker to claim a lease",
            )
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=10)
            survivor = _spawn_worker(coordinator.port, "survivor")
            assert coordinator.wait(timeout=120) is True
        finally:
            for proc in (victim, survivor):
                if proc is not None and proc.poll() is None:
                    proc.kill()
            coordinator.shutdown()
        # the lost lease expired, re-queued, and the survivor finished it
        assert coordinator.errors() == []
        assert len(coordinator.records()) == 2
        events = read_journal(coordinator.journal_path)
        expired = [e for e in events if e["event"] == "expire"]
        assert expired and all(e["outcome"] == "requeued" for e in expired)
        # attempt-budget invariant: no key was ever leased more than
        # retries + 1 = 2 times
        leases_per_key = {}
        for event in events:
            if event["event"] == "lease":
                leases_per_key[event["key"]] = leases_per_key.get(event["key"], 0) + 1
        assert leases_per_key and all(count <= 2 for count in leases_per_key.values())
        # the survivor's completions came from attempt 1 (count preserved)
        completed_keys = {e["key"] for e in events if e["event"] == "complete"}
        assert completed_keys == set(leases_per_key)


class TestCoordinatorCrashResume:
    def test_sigkilled_coordinator_resumes_to_identical_artifacts(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        out_dir = tmp_path / "farm"
        checkpoint = out_dir / "table2.checkpoint.json"
        # BV jobs complete quickly and get journaled/compacted; QFT jobs
        # stall 20s, guaranteeing the kill lands mid-run
        driver = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "farm", "run", "table2",
                "--scale", "small", "--benchmarks", "BV", "QFT",
                "--local-workers", "2", "--lease-seconds", "2", "--quiet",
                "--cache-dir", cache_dir, "--out-dir", str(out_dir),
            ],
            env=_subprocess_env(stall="QFT:20"),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:

            def _some_progress():
                if not checkpoint.exists():
                    return False
                try:
                    doc = json.loads(checkpoint.read_text())
                except (json.JSONDecodeError, OSError):
                    return False  # mid-write; the *journal* is the source of truth
                return len(doc.get("completed", [])) >= 1

            _wait_for(_some_progress, timeout=120, message="a completed job in the checkpoint")
            driver.send_signal(signal.SIGKILL)
            driver.wait(timeout=10)
        finally:
            if driver.poll() is None:
                driver.kill()
        # the compacted checkpoint is mid-run state: unfinished, resumable
        interrupted = load_checkpoint(checkpoint)
        assert interrupted.finished is False
        assert len(interrupted.completed_keys) >= 1
        assert interrupted.remaining_jobs()
        # orphaned workers die with the coordinator's socket; give the
        # stalled ones a beat so they cannot outlive the assertion window
        assert main(["resume", str(checkpoint), "--jobs", "2"]) == 0
        capsys.readouterr()
        solo_out = tmp_path / "solo"
        assert (
            main(
                ["run", "table2", "--scale", "small", "--benchmarks", "BV", "QFT",
                 "--jobs", "2", "--quiet",
                 "--cache-dir", str(tmp_path / "solo-cache"), "--out-dir", str(solo_out)]
            )
            == 0
        )
        capsys.readouterr()
        assert _normalized_json(out_dir / "table2.json") == _normalized_json(
            solo_out / "table2.json"
        )
        assert _normalized_csv(out_dir / "table2.csv") == _normalized_csv(
            solo_out / "table2.csv"
        )
        assert (out_dir / "table2.txt").read_bytes() == (solo_out / "table2.txt").read_bytes()
        assert load_checkpoint(checkpoint).finished is True


class TestSigtermCheckpointFlush:
    def test_engine_flushes_checkpoint_on_sigterm(self, tmp_path):
        out_dir = tmp_path / "artifacts"
        checkpoint = out_dir / "table2.checkpoint.json"
        run = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "run", "table2",
                "--scale", "small", "--benchmarks", "BV", "QFT",
                "--jobs", "1", "--quiet",
                "--cache-dir", str(tmp_path / "cache"), "--out-dir", str(out_dir),
            ],
            env=_subprocess_env(stall="QFT:30"),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:

            def _bv_done():
                if not checkpoint.exists():
                    return False
                try:
                    doc = json.loads(checkpoint.read_text())
                except (json.JSONDecodeError, OSError):
                    return False
                return len(doc.get("completed", [])) >= 1

            _wait_for(_bv_done, timeout=120, message="the first completed job")
            run.send_signal(signal.SIGTERM)
            returncode = run.wait(timeout=30)
        finally:
            if run.poll() is None:
                run.kill()
        # the handler flushed, then re-raised the default disposition
        assert returncode == -signal.SIGTERM
        flushed = load_checkpoint(checkpoint)
        assert flushed.interrupted is True
        assert flushed.finished is False
        assert len(flushed.completed_keys) >= 1
        assert flushed.remaining_jobs()
        # and the flushed checkpoint resumes cleanly
        assert main(["resume", str(checkpoint), "--quiet"]) == 0
        assert load_checkpoint(checkpoint).finished is True
