"""Unit tests for the commutation rules (repro.circuits.commutation)."""

import numpy as np
import pytest

from repro.circuits import commutes, commutes_on_qubit, qubit_action
from repro.circuits import gates as g


def _matrices_commute(a, b, n=3):
    """Brute-force check by building full n-qubit matrices."""
    def embed(gate):
        mats = [np.eye(2, dtype=complex) for _ in range(n)]
        m = gate.matrix()
        if gate.num_qubits == 1:
            mats[gate.qubits[0]] = m
            out = mats[0]
            for x in mats[1:]:
                out = np.kron(out, x)
            return out
        # build 2-qubit embedding by acting on basis states
        dim = 2**n
        out = np.zeros((dim, dim), dtype=complex)
        for basis in range(dim):
            bits = [(basis >> (n - 1 - k)) & 1 for k in range(n)]
            amp_in = np.zeros(dim, dtype=complex)
            amp_in[basis] = 1
            q0, q1 = gate.qubits
            sub_in = bits[q0] * 2 + bits[q1]
            col = m[:, sub_in]
            for sub_out in range(4):
                new_bits = list(bits)
                new_bits[q0] = sub_out >> 1
                new_bits[q1] = sub_out & 1
                idx = 0
                for bit in new_bits:
                    idx = (idx << 1) | bit
                out[idx, basis] += col[sub_out]
        return out

    ma, mb = embed(a), embed(b)
    return np.allclose(ma @ mb, mb @ ma, atol=1e-9)


class TestQubitAction:
    def test_cx_control_is_z_type_target_is_x_type(self):
        gate = g.cx(0, 1)
        assert qubit_action(gate, 0) == "z"
        assert qubit_action(gate, 1) == "x"

    def test_diagonal_gates_are_z_type(self):
        assert qubit_action(g.cz(0, 1), 1) == "z"
        assert qubit_action(g.rz(0.3, 2), 2) == "z"
        assert qubit_action(g.cp(0.3, 0, 1), 0) == "z"

    def test_hadamard_is_other(self):
        assert qubit_action(g.h(0), 0) == "other"

    def test_measurement_and_barrier_are_other(self):
        assert qubit_action(g.measure(0), 0) == "other"
        assert qubit_action(g.barrier([0, 1]), 1) == "other"

    def test_unrelated_qubit_raises(self):
        with pytest.raises(ValueError):
            qubit_action(g.h(0), 3)


class TestCommutes:
    def test_disjoint_gates_commute(self):
        assert commutes(g.cx(0, 1), g.cx(2, 3))
        assert commutes(g.h(0), g.rz(0.1, 5))

    def test_cx_sharing_control_commute(self):
        assert commutes(g.cx(0, 1), g.cx(0, 2))

    def test_cx_sharing_target_commute(self):
        assert commutes(g.cx(0, 2), g.cx(1, 2))

    def test_cx_control_on_other_target_do_not_commute(self):
        assert not commutes(g.cx(0, 1), g.cx(1, 2))

    def test_diagonal_gates_always_commute_with_each_other(self):
        assert commutes(g.cp(0.3, 0, 1), g.cp(0.7, 1, 2))
        assert commutes(g.cz(0, 1), g.rz(0.2, 1))
        assert commutes(g.cx(0, 1), g.rz(0.2, 0))

    def test_rz_on_cx_target_does_not_commute(self):
        assert not commutes(g.cx(0, 1), g.rz(0.2, 1))

    def test_x_type_on_cx_target_commutes(self):
        assert commutes(g.cx(0, 1), g.x(1))
        assert commutes(g.cx(0, 1), g.rx(0.4, 1))

    def test_hadamard_blocks(self):
        assert not commutes(g.h(0), g.cx(0, 1))
        assert not commutes(g.h(1), g.cx(0, 1))

    def test_barrier_never_commutes_on_shared_qubits(self):
        assert not commutes(g.barrier([0, 1]), g.cx(0, 2))
        assert commutes(g.barrier([0, 1]), g.cx(2, 3))

    def test_measurement_does_not_commute_on_shared_qubit(self):
        assert not commutes(g.measure(0), g.cx(0, 1))

    def test_commutes_on_qubit(self):
        assert commutes_on_qubit(g.cx(0, 1), g.cz(0, 2), 0)
        assert not commutes_on_qubit(g.cx(0, 1), g.cz(1, 2), 1)

    @pytest.mark.parametrize(
        "a,b",
        [
            (g.cx(0, 1), g.cx(0, 2)),
            (g.cx(0, 2), g.cx(1, 2)),
            (g.cp(0.3, 0, 1), g.cp(0.9, 0, 2)),
            (g.cz(0, 1), g.cz(1, 2)),
            (g.cx(0, 1), g.rz(0.5, 0)),
            (g.cx(0, 1), g.x(1)),
            (g.crz(0.4, 0, 1), g.cp(0.2, 1, 2)),
        ],
    )
    def test_reported_commutation_verified_by_matrices(self, a, b):
        assert commutes(a, b)
        assert _matrices_commute(a, b)

    @pytest.mark.parametrize(
        "a,b",
        [
            (g.cx(0, 1), g.cx(1, 2)),
            (g.h(0), g.cx(0, 1)),
            (g.cx(0, 1), g.rz(0.5, 1)),
        ],
    )
    def test_reported_non_commutation_is_genuine(self, a, b):
        assert not commutes(a, b)
        assert not _matrices_commute(a, b)

    def test_rule_is_conservative_never_false_positive(self):
        # ry vs ry on the same qubit actually commute, but the rule may say no;
        # what matters is that a reported "commutes" is always true.
        a, b = g.ry(0.3, 0), g.ry(0.5, 0)
        if commutes(a, b):
            assert _matrices_commute(a, b)
