"""Unit tests for the chaos-injection subsystem and the hardening it drove.

Covers the scenario-spec grammar (``repro.chaos.plan``), the deterministic
fault controller (``repro.chaos.inject``), the shared backoff policy, the
server-side request-id dedup log, bounded framing + structured protocol
errors, storage degradation (pass-through cache, checkpoint write
counters), and torn-journal/corrupt-checkpoint quarantine.
"""

import errno
import json
import socket

import pytest

from repro.chaos import (
    CHAOS_PLAN_VERSION,
    ChaosController,
    ChaosDrop,
    ChaosPlan,
    ChaosSpecError,
    chaos_controller,
    parse_chaos_spec,
    reset_chaos,
    set_chaos,
)
from repro.experiments.engine import (
    CheckpointError,
    Job,
    ResultCache,
    RunReport,
    append_journal,
    job_to_dict,
    load_checkpoint,
    quarantine_checkpoint,
    quarantine_path_for,
    read_journal,
    repair_journal,
)
from repro.serve.dedup import ResponseLog
from repro.serve.retry import BackoffPolicy, retry_call
from repro.serve.schema import (
    MAX_FRAME_BYTES,
    FrameTooLargeError,
    ServeRequest,
    ServeResponse,
    encode_message,
    protocol_error_response,
    read_frame,
    request_token,
)


@pytest.fixture(autouse=True)
def _no_chaos_leak():
    """Every test leaves the process-level chaos singleton cleared."""
    reset_chaos()
    yield
    reset_chaos()


# --------------------------------------------------------------------------
# scenario-spec grammar


class TestChaosSpec:
    def test_issue_example_spec_parses(self):
        plan = parse_chaos_spec(
            "conn-drop:after=3;garble:rate=0.1;enospc:op=put;torn-tail:journal"
        )
        kinds = [clause.kind for clause in plan.clauses]
        assert kinds == ["conn-drop", "garble", "enospc", "torn-tail"]
        assert plan.clauses[0].params["after"] == 3
        assert plan.clauses[1].params["rate"] == pytest.approx(0.1)
        assert plan.clauses[2].params["op"] == "put"
        # bare token maps onto the kind's default parameter
        assert plan.clauses[3].params["target"] == "journal"

    def test_defaults_are_filled_in(self):
        plan = parse_chaos_spec("conn-drop")
        assert plan.clauses[0].params == {
            "after": 3,
            "times": 1,
            "site": "",
            "on": "any",
        }

    def test_seed_clause_both_spellings(self):
        assert parse_chaos_spec("seed=7;conn-drop").seed == 7
        assert parse_chaos_spec("seed:9").seed == 9
        assert parse_chaos_spec("garble").seed == 0

    def test_unknown_kind_is_pointed_error(self):
        with pytest.raises(ChaosSpecError, match="unknown fault kind 'explode'"):
            parse_chaos_spec("explode:now")

    def test_unknown_param_is_pointed_error(self):
        with pytest.raises(ChaosSpecError, match="unknown parameter 'rate'"):
            parse_chaos_spec("conn-drop:rate=0.5")

    def test_bad_value_type(self):
        with pytest.raises(ChaosSpecError, match="expected int"):
            parse_chaos_spec("conn-drop:after=soon")

    def test_enum_values_validated(self):
        with pytest.raises(ChaosSpecError, match="one of"):
            parse_chaos_spec("garble:mode=scramble")
        with pytest.raises(ChaosSpecError, match="one of"):
            parse_chaos_spec("torn-tail:target=cache")

    def test_plan_round_trips_through_dict(self):
        plan = parse_chaos_spec("seed=3;garble:site=worker,rate=0.5,times=2")
        clone = ChaosPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert clone.seed == plan.seed
        assert [c.to_dict() for c in clone.clauses] == [
            c.to_dict() for c in plan.clauses
        ]

    def test_plan_version_checked(self):
        doc = parse_chaos_spec("garble").to_dict()
        doc["chaos_plan_version"] = CHAOS_PLAN_VERSION + 1
        with pytest.raises(ChaosSpecError, match="unsupported chaos plan version"):
            ChaosPlan.from_dict(doc)


# --------------------------------------------------------------------------
# controller behaviour


FRAME = b'{"op":"ping","request_id":"x","protocol":1}\n'


class TestChaosController:
    def test_conn_drop_fires_after_n_frames_then_budget_exhausts(self):
        chaos = ChaosController(parse_chaos_spec("conn-drop:after=2,site=client"))
        assert chaos.on_frame("client.send", FRAME) == FRAME
        assert chaos.on_frame("client.send", FRAME) == FRAME
        with pytest.raises(ChaosDrop):
            chaos.on_frame("client.send", FRAME)
        # times=1: the drop never fires again
        for _ in range(10):
            assert chaos.on_frame("client.send", FRAME) == FRAME
        assert chaos.counters() == {"conn-drop@client.send": 1}

    def test_conn_drop_respects_direction_and_site(self):
        chaos = ChaosController(
            parse_chaos_spec("conn-drop:after=0,site=worker,on=recv")
        )
        # wrong site and wrong direction never trip the clause
        for _ in range(5):
            chaos.on_frame("client.recv", FRAME)
            chaos.on_frame("worker.send", FRAME)
        with pytest.raises(ChaosDrop):
            chaos.on_frame("worker.recv", FRAME)

    def test_chaos_drop_is_a_connection_error(self):
        # existing `except OSError` transport paths must catch injected drops
        assert issubclass(ChaosDrop, ConnectionError)
        assert issubclass(ChaosDrop, OSError)

    def test_garble_is_deterministic_under_seed(self):
        plan = parse_chaos_spec("seed=11;garble:rate=1.0")
        first = ChaosController(plan).on_frame("client.send", FRAME)
        second = ChaosController(plan).on_frame("client.send", FRAME)
        assert first == second
        assert first != FRAME
        assert first.endswith(b"\n") and b"\n" not in first[:-1]

    def test_garble_truncate_keeps_frame_boundary(self):
        chaos = ChaosController(parse_chaos_spec("seed=2;garble:rate=1.0,mode=truncate"))
        garbled = chaos.on_frame("client.send", FRAME)
        assert garbled.endswith(b"\n")
        assert len(garbled) <= len(FRAME)

    def test_slow_counts_but_returns_data_unchanged(self):
        chaos = ChaosController(parse_chaos_spec("slow:seconds=0.01,rate=1.0"))
        assert chaos.on_frame("server.send", FRAME) == FRAME
        assert chaos.counters() == {"slow@server.send": 1}

    def test_enospc_after_and_budget(self):
        chaos = ChaosController(parse_chaos_spec("enospc:op=put,after=1"))
        chaos.on_fs_op("put", "/c/entry")  # first op is under the `after` bar
        with pytest.raises(OSError) as excinfo:
            chaos.on_fs_op("put", "/c/entry")
        assert excinfo.value.errno == errno.ENOSPC
        chaos.on_fs_op("put", "/c/entry")  # times=1: budget spent
        chaos.on_fs_op("journal", "/c/j")  # op filter: journal never matched

    def test_readonly_raises_erofs_and_sticky_never_stops(self):
        chaos = ChaosController(parse_chaos_spec("readonly:op=checkpoint,sticky=1"))
        for _ in range(4):
            with pytest.raises(OSError) as excinfo:
                chaos.on_fs_op("checkpoint", "/c/ck.json")
            assert excinfo.value.errno == errno.EROFS

    def test_torn_tail_halves_one_journal_line(self):
        chaos = ChaosController(parse_chaos_spec("torn-tail:journal"))
        line = b'{"event":"lease","key":"abc"}\n'
        torn = chaos.journal_line("/j", line)
        assert torn == line[: len(line) // 2]
        assert chaos.journal_line("/j", line) == line  # times=1
        # target=journal leaves checkpoint payloads alone
        assert chaos.checkpoint_payload("/c", line) == line

    def test_report_and_flush(self, tmp_path):
        chaos = ChaosController(parse_chaos_spec("seed=5;garble:rate=1.0"))
        chaos.on_frame("client.send", FRAME)
        report = chaos.report()
        assert report["seed"] == 5
        assert report["total_injected"] == 1
        destination = tmp_path / "chaos-report.jsonl"
        chaos.flush_report(str(destination))
        chaos.flush_report(str(destination))  # appends, never truncates
        lines = destination.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["injected"] == {"garble@client.send": 1}

    def test_singleton_parses_env_once(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "garble:rate=1.0")
        reset_chaos()
        first = chaos_controller()
        assert first is not None and first is chaos_controller()
        monkeypatch.delenv("REPRO_CHAOS")
        assert chaos_controller() is first  # cached; env re-read only on reset
        reset_chaos()
        assert chaos_controller() is None

    def test_set_chaos_installs_and_clears(self):
        controller = set_chaos(parse_chaos_spec("slow:rate=0.0"))
        assert chaos_controller() is controller
        assert set_chaos(None) is None
        assert chaos_controller() is None


# --------------------------------------------------------------------------
# backoff policy


class TestBackoff:
    def test_delays_are_capped_and_jittered(self):
        policy = BackoffPolicy(initial=1.0, cap=4.0, multiplier=2.0, jitter=0.5)
        delays = policy.delays()
        observed = [next(delays) for _ in range(6)]
        for index, delay in enumerate(observed):
            ceiling = min(1.0 * 2.0**index, 4.0)
            assert ceiling * 0.5 <= delay <= ceiling

    def test_retry_call_succeeds_after_transient_failures(self):
        calls = {"n": 0}
        sleeps = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ConnectionRefusedError("not yet")
            return "up"

        result = retry_call(
            flaky,
            policy=BackoffPolicy(initial=0.01, max_attempts=5, max_total_seconds=60.0),
            sleep=sleeps.append,
        )
        assert result == "up"
        assert calls["n"] == 3 and len(sleeps) == 2

    def test_retry_call_raises_after_attempt_budget(self):
        def always():
            raise ConnectionRefusedError("never")

        with pytest.raises(ConnectionRefusedError):
            retry_call(
                always,
                policy=BackoffPolicy(initial=0.001, max_attempts=3),
                sleep=lambda _s: None,
            )

    def test_retry_call_respects_wall_clock_deadline(self):
        clock = {"now": 0.0}
        attempts = {"n": 0}

        def always():
            attempts["n"] += 1
            raise ConnectionRefusedError("never")

        with pytest.raises(ConnectionRefusedError):
            retry_call(
                always,
                policy=BackoffPolicy(
                    initial=10.0,
                    cap=10.0,
                    jitter=0.0,
                    max_attempts=100,
                    max_total_seconds=5.0,
                ),
                sleep=lambda _s: None,
                clock=lambda: clock["now"],
            )
        # the first retry's 10s delay already blows the 5s budget
        assert attempts["n"] == 1

    def test_non_retryable_exceptions_propagate_immediately(self):
        def broken():
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            retry_call(broken, policy=BackoffPolicy(max_attempts=5))


# --------------------------------------------------------------------------
# request-id dedup


def _response(request_id, n=0):
    return ServeResponse(request_id=request_id, ok=True, payload={"n": n})


class TestResponseLog:
    def test_record_then_replay(self):
        log = ResponseLog()
        log.record(_response("a", 1))
        assert log.replay("a").payload == {"n": 1}
        assert log.replay("unseen") is None
        assert log.replayed == 1

    def test_null_request_id_never_recorded(self):
        log = ResponseLog()
        log.record(ServeResponse(request_id=None, ok=False, error="bad frame"))
        assert len(log) == 0

    def test_lru_eviction(self):
        log = ResponseLog(capacity=2)
        log.record(_response("a"))
        log.record(_response("b"))
        assert log.replay("a") is not None  # touch: a is now most recent
        log.record(_response("c"))  # evicts b
        assert log.replay("b") is None
        assert log.replay("a") is not None and log.replay("c") is not None

    def test_request_token_is_stable_within_process(self):
        assert request_token() == request_token()
        assert len(request_token()) >= 7


# --------------------------------------------------------------------------
# bounded framing + structured protocol errors


class _Reader:
    def __init__(self, data):
        self.data = data

    def readline(self, limit):
        out, self.data = self.data[:limit], self.data[limit:]
        newline = out.find(b"\n")
        if newline != -1:
            self.data = out[newline + 1 :] + self.data
            out = out[: newline + 1]
        return out


class TestFraming:
    def test_read_frame_normal_and_eof(self):
        reader = _Reader(FRAME)
        assert read_frame(reader) == FRAME
        assert read_frame(reader) is None

    def test_read_frame_oversized_raises(self):
        reader = _Reader(b"x" * 64 + b"\n")
        with pytest.raises(FrameTooLargeError):
            read_frame(reader, limit=16)

    def test_protocol_error_codes(self):
        from repro.serve.schema import ServeProtocolError, decode_line

        oversized = protocol_error_response(b"", FrameTooLargeError("too big"))
        assert oversized.payload["code"] == "oversized-frame"
        assert oversized.request_id is None

        malformed = protocol_error_response(
            b"{not json}\n", ServeProtocolError("malformed JSON line")
        )
        assert malformed.payload["code"] == "malformed-frame"
        assert malformed.request_id is None

        bad_version = json.dumps(
            {"protocol": 99, "op": "ping", "request_id": "r-9"}
        ).encode() + b"\n"
        with pytest.raises(ServeProtocolError) as excinfo:
            decode_line(bad_version, ServeRequest)
        mismatch = protocol_error_response(bad_version, excinfo.value)
        assert mismatch.payload["code"] == "protocol-mismatch"
        assert mismatch.request_id == "r-9"  # salvaged from the bad frame

        semantic = protocol_error_response(
            json.dumps({"protocol": 1, "op": "nope", "request_id": "r-1"}).encode()
            + b"\n",
            ServeProtocolError("unknown op 'nope'"),
        )
        assert semantic.payload["code"] == "protocol-error"
        assert semantic.request_id == "r-1"

    def test_error_response_round_trips_null_request_id(self):
        response = protocol_error_response(b"junk\n", FrameTooLargeError("big"))
        from repro.serve.schema import decode_line

        clone = decode_line(encode_message(response), ServeResponse)
        assert clone.request_id is None and clone.ok is False


# --------------------------------------------------------------------------
# storage degradation


JOB = Job(benchmark="QFT", chiplet_width=3, rows=1, cols=2)
PAYLOAD = {"record": {"benchmark": "QFT"}, "kind": "experiment"}


class TestDegradedCache:
    def test_put_degrades_to_pass_through_under_enospc(self, tmp_path):
        set_chaos(parse_chaos_spec("enospc:op=put,sticky=1"))
        cache = ResultCache(tmp_path / "cache")
        path = cache.put("k1", JOB, PAYLOAD)
        assert not path.exists()  # nothing persisted...
        assert cache.write_errors == 1 and cache.degraded  # ...but counted
        cache.put("k2", JOB, PAYLOAD)
        assert cache.write_errors == 2

    def test_put_recovers_when_fault_budget_ends(self, tmp_path):
        set_chaos(parse_chaos_spec("enospc:op=put,times=1"))
        cache = ResultCache(tmp_path / "cache")
        cache.put("k1", JOB, PAYLOAD)
        assert cache.degraded
        second = cache.put("k2", JOB, PAYLOAD)
        assert second.exists()  # the fault budget ran out; writes persist again
        assert cache.write_errors == 1

    def test_report_summary_surfaces_degradation(self):
        report = RunReport(
            total=4,
            executed=4,
            cache_write_errors=2,
            cache_degraded=True,
            checkpoint_write_errors=1,
            transport_replays=3,
        )
        text = report.summary()
        assert "cache degraded to pass-through (2 write errors)" in text
        assert "1 checkpoint write error" in text
        assert "3 retried requests replayed" in text

    def test_clean_report_has_no_degradation_noise(self):
        assert "degraded" not in RunReport(total=1, executed=1).summary()


# --------------------------------------------------------------------------
# torn-journal / corrupt-checkpoint quarantine


class TestJournalQuarantine:
    def test_healthy_journal_untouched(self, tmp_path):
        journal = tmp_path / "run.checkpoint.journal.jsonl"
        append_journal(journal, {"event": "lease", "key": "a"})
        append_journal(journal, {"event": "complete", "key": "a"})
        before = journal.read_bytes()
        assert repair_journal(journal) is None
        assert journal.read_bytes() == before
        assert not quarantine_path_for(journal).exists()

    def test_missing_journal_is_a_noop(self, tmp_path):
        assert repair_journal(tmp_path / "absent.jsonl") is None

    def test_torn_tail_quarantined_and_prefix_kept(self, tmp_path):
        journal = tmp_path / "run.checkpoint.journal.jsonl"
        append_journal(journal, {"event": "lease", "key": "a"})
        append_journal(journal, {"event": "complete", "key": "a"})
        whole = journal.read_bytes()
        torn = b'{"event":"lease","ke'
        journal.write_bytes(whole + torn)

        repaired = repair_journal(journal)
        assert repaired is not None
        assert repaired["quarantined_bytes"] == len(torn)
        assert repaired["kept_events"] == 2
        assert journal.read_bytes() == whole
        assert [e["event"] for e in read_journal(journal)] == ["lease", "complete"]
        quarantine = quarantine_path_for(journal)
        assert quarantine.read_bytes() == torn + b"\n"
        # idempotent: a second repair finds a healthy journal
        assert repair_journal(journal) is None

    def test_fully_torn_journal_truncates_to_empty(self, tmp_path):
        journal = tmp_path / "run.checkpoint.journal.jsonl"
        journal.write_bytes(b'{"event":')
        repaired = repair_journal(journal)
        assert repaired is not None and repaired["kept_events"] == 0
        assert journal.read_bytes() == b""

    def test_corrupt_checkpoint_quarantined_on_resume_load(self, tmp_path):
        checkpoint = tmp_path / "run.checkpoint.json"
        checkpoint.write_text('{"checkpoint_version": 2, "jobs": [')  # torn write
        with pytest.raises(CheckpointError, match="unreadable checkpoint") as excinfo:
            load_checkpoint(checkpoint, quarantine=True)
        assert "preserved at" in str(excinfo.value)
        assert not checkpoint.exists()
        quarantined = quarantine_path_for(checkpoint)
        assert quarantined.read_text().startswith('{"checkpoint_version"')

    def test_corrupt_checkpoint_left_alone_without_quarantine_flag(self, tmp_path):
        checkpoint = tmp_path / "run.checkpoint.json"
        checkpoint.write_text("{broken")
        with pytest.raises(CheckpointError, match="unreadable checkpoint"):
            load_checkpoint(checkpoint)
        assert checkpoint.exists()

    def test_quarantine_checkpoint_moves_file(self, tmp_path):
        checkpoint = tmp_path / "x.json"
        checkpoint.write_text("{")
        moved = quarantine_checkpoint(checkpoint)
        assert moved == quarantine_path_for(checkpoint)
        assert moved.exists() and not checkpoint.exists()


# --------------------------------------------------------------------------
# hardened transport against a live server


@pytest.fixture(scope="class")
def server():
    from repro.serve import CompileServer
    from repro.serve.client import wait_until_ready

    with CompileServer(workers=1) as running:
        assert wait_until_ready(running.host, running.port)
        yield running


def _raw_exchange(server, payloads):
    """Send raw lines on one socket; return one decoded reply per line."""
    replies = []
    with socket.create_connection((server.host, server.port), timeout=10.0) as sock:
        reader = sock.makefile("rb")
        for payload in payloads:
            sock.sendall(payload)
            line = reader.readline()
            assert line, "server closed the connection without a structured reply"
            replies.append(json.loads(line))
    return replies


class TestHardenedServer:
    def test_malformed_line_gets_structured_error_and_connection_survives(
        self, server
    ):
        ping = encode_message(
            ServeRequest(op="ping", request_id=f"ping-{request_token()}-raw")
        )
        bad, good = _raw_exchange(server, [b"{not json}\n", ping])
        assert bad["ok"] is False
        assert bad["request_id"] is None
        assert bad["payload"]["code"] == "malformed-frame"
        assert "protocol error" in bad["error"]
        assert good["ok"] is True  # same connection answered normally after

    def test_protocol_mismatch_echoes_salvaged_request_id(self, server):
        frame = (
            json.dumps({"protocol": 99, "op": "ping", "request_id": "old-client-1"})
            + "\n"
        ).encode()
        (reply,) = _raw_exchange(server, [frame])
        assert reply["ok"] is False
        assert reply["request_id"] == "old-client-1"
        assert reply["payload"]["code"] == "protocol-mismatch"
        assert "protocol version mismatch" in reply["error"]

    def test_oversized_frame_bounded_and_answered(self, server):
        with socket.create_connection((server.host, server.port), timeout=30.0) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b"x" * (MAX_FRAME_BYTES + 2))
            reply = json.loads(reader.readline())
            assert reply["ok"] is False
            assert reply["payload"]["code"] == "oversized-frame"
            # framing is unrecoverable: the server severs after answering
            assert reader.readline() == b""

    def test_duplicate_request_id_replays_without_reexecution(self, server):
        ping = encode_message(
            ServeRequest(op="ping", request_id=f"dup-{request_token()}-1")
        )
        first, second = _raw_exchange(server, [ping, ping])
        assert first == second
        stats = server.stats()
        assert stats["dedup"]["replayed"] >= 1
        assert stats["dedup"]["recorded"] >= 1

    def test_client_retries_through_injected_drop(self, server):
        from repro.serve.client import ServeClient

        set_chaos(parse_chaos_spec("conn-drop:after=0,site=client,on=send"))
        with ServeClient(server.host, server.port, request_retries=2) as client:
            response = client.ping()
        assert response.ok
        assert chaos_controller().counters() == {"conn-drop@client.send": 1}


class TestWorkerConnectBudget:
    def test_worker_gives_up_within_budget_against_dead_port(self):
        from repro.farm.worker import main_loop_with_retry

        notes = []
        code = main_loop_with_retry(
            "127.0.0.1",
            1,  # nothing listens on port 1
            connect_attempts=3,
            connect_timeout=0.2,
            max_connect_seconds=0.5,
            progress=notes.append,
        )
        assert code == 1
        assert any("never came up" in note for note in notes)
