"""Fault-tolerance tests for the orchestration engine.

Covers the :class:`JobPolicy` surface (timeout, retries, reseed-on-retry,
``on_error`` dispositions), worker-side exception capture as structured
:class:`JobError` records, the run checkpoint file, and the acceptance
property that a rerun against the same cache executes only the jobs that
failed.  Fake executors keep these tests fast: no real compilation happens
except where the multiprocessing pool path is exercised explicitly.
"""

import json
import time

import pytest

from repro.experiments import engine
from repro.experiments.engine import (
    FAULT_INJECT_ENV,
    Job,
    JobPolicy,
    JobTimeoutError,
    ResultCache,
    config_key,
    run_jobs,
    run_jobs_report,
    write_artifacts,
)
from repro.experiments.runner import ComparisonRecord, format_records

pytestmark = pytest.mark.usefixtures("fake_executors")


def _dummy_record(job: Job) -> ComparisonRecord:
    return ComparisonRecord(
        benchmark=job.benchmark,
        architecture="fake-1x1",
        num_data_qubits=2,
        num_physical_qubits=4,
        baseline_depth=10.0,
        mech_depth=5.0,
        baseline_eff_cnots=20.0,
        mech_eff_cnots=10.0,
        highway_qubit_fraction=0.25,
        extra={"seed": float(job.seed)},
    )


def _boom(job: Job) -> ComparisonRecord:
    raise RuntimeError(f"poisoned job {job.benchmark}")


def _slow(job: Job) -> ComparisonRecord:
    time.sleep(5.0)
    return _dummy_record(job)


def _kbint(job: Job) -> ComparisonRecord:
    raise KeyboardInterrupt


def _succeeds_only_reseeded(job: Job) -> ComparisonRecord:
    # fails on the original seed, succeeds once a retry bumps it
    if job.seed == 0:
        raise ValueError("needs a reseed")
    return _dummy_record(job)


@pytest.fixture()
def fake_executors(monkeypatch):
    monkeypatch.setitem(engine.EXECUTORS, "ok", _dummy_record)
    monkeypatch.setitem(engine.EXECUTORS, "boom", _boom)
    monkeypatch.setitem(engine.EXECUTORS, "slow", _slow)
    monkeypatch.setitem(engine.EXECUTORS, "kbint", _kbint)
    monkeypatch.setitem(engine.EXECUTORS, "reseed", _succeeds_only_reseeded)


OK1 = Job(benchmark="A", kind="ok")
OK2 = Job(benchmark="B", kind="ok")
BAD = Job(benchmark="POISON", kind="boom")


class TestPolicyValidation:
    def test_bad_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            JobPolicy(on_error="explode")

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            JobPolicy(retries=-1)

    def test_non_positive_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            JobPolicy(timeout=0)


class TestErrorCapture:
    def test_one_poisoned_job_still_yields_all_other_records(self):
        # the original bug: one worker exception aborted the whole sweep
        records, report = run_jobs_report(
            [OK1, BAD, OK2], policy=JobPolicy(on_error="record")
        )
        assert len(records) == 2
        assert [r.benchmark for r in records] == ["A", "B"]
        assert report.failed == 1
        error = report.errors[0]
        assert error.benchmark == "POISON"
        assert error.error_type == "RuntimeError"
        assert "poisoned job" in error.message
        assert "RuntimeError" in error.traceback_tail
        assert error.attempts == 1
        assert error.seconds >= 0.0
        assert error.key == config_key(BAD)

    def test_skip_drops_failed_jobs_quietly(self):
        records, report = run_jobs_report([OK1, BAD], policy=JobPolicy(on_error="skip"))
        assert len(records) == 1
        assert report.failed == 1

    def test_default_policy_reraises_the_original_exception_type(self):
        with pytest.raises(RuntimeError, match="poisoned job"):
            run_jobs([OK1, BAD])

    def test_summary_mentions_failures(self):
        _, report = run_jobs_report([OK1, BAD], policy=JobPolicy(on_error="record"))
        assert "1 failed" in report.summary()

    def test_failed_jobs_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        _, report = run_jobs_report([OK1, BAD], cache=cache, policy=JobPolicy(on_error="record"))
        assert report.failed == 1
        assert cache.get(config_key(OK1)) is not None
        assert cache.get(config_key(BAD)) is None

    def test_rerun_executes_only_the_failed_jobs(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        _, report = run_jobs_report(
            [OK1, BAD, OK2], cache=cache, policy=JobPolicy(on_error="record")
        )
        assert (report.executed, report.failed) == (3, 1)
        # the poison clears up (e.g. a transient OOM); only BAD re-executes
        monkeypatch.setitem(engine.EXECUTORS, "boom", _dummy_record)
        records, report = run_jobs_report(
            [OK1, BAD, OK2], cache=cache, policy=JobPolicy(on_error="record")
        )
        assert (report.cache_hits, report.executed, report.failed) == (2, 1, 0)
        assert len(records) == 3

    def test_pool_path_captures_errors_across_processes(self, monkeypatch, tmp_path):
        # real executors in real worker processes, one injected failure
        monkeypatch.setenv(FAULT_INJECT_ENV, "QFT")
        jobs = [
            Job(benchmark="BV", chiplet_width=4, rows=1, cols=2, seed=1),
            Job(benchmark="QFT", chiplet_width=4, rows=1, cols=2, seed=1),
        ]
        records, report = run_jobs_report(
            jobs, workers=2, cache=tmp_path, policy=JobPolicy(on_error="record")
        )
        assert [r.benchmark for r in records] == ["BV"]
        assert report.failed == 1
        assert report.errors[0].benchmark == "QFT"
        assert "injected fault" in report.errors[0].message


class TestRetries:
    def test_retry_succeeds_after_reseed(self):
        job = Job(benchmark="R", kind="reseed", seed=0)
        records, report = run_jobs_report(
            [job], policy=JobPolicy(retries=1, reseed_on_retry=True, on_error="record")
        )
        assert report.failed == 0
        assert records[0].extra["seed"] == 1.0  # the bumped seed did the work

    def test_without_reseed_every_attempt_fails_identically(self):
        job = Job(benchmark="R", kind="reseed", seed=0)
        _, report = run_jobs_report([job], policy=JobPolicy(retries=2, on_error="record"))
        assert report.failed == 1
        assert report.errors[0].attempts == 3

    def test_reseeded_result_is_cached_under_the_original_key(self, tmp_path):
        job = Job(benchmark="R", kind="reseed", seed=0)
        cache = ResultCache(tmp_path)
        run_jobs([job], cache=cache, policy=JobPolicy(retries=1, reseed_on_retry=True))
        assert cache.get(config_key(job)) is not None


class TestTimeout:
    def test_straggler_is_timed_out_and_recorded(self):
        job = Job(benchmark="S", kind="slow")
        start = time.perf_counter()
        _, report = run_jobs_report(
            [OK1, job], policy=JobPolicy(timeout=0.2, on_error="record")
        )
        assert time.perf_counter() - start < 4.0  # did not sit out the full sleep
        assert report.failed == 1
        assert report.errors[0].error_type == "JobTimeoutError"

    def test_timeout_applies_per_attempt(self):
        job = Job(benchmark="S", kind="slow")
        _, report = run_jobs_report(
            [job], policy=JobPolicy(timeout=0.1, retries=1, on_error="record")
        )
        assert report.errors[0].attempts == 2

    def test_deadline_context_raises(self):
        with pytest.raises(JobTimeoutError), engine._deadline(0.05):
            time.sleep(1.0)

    def test_deadline_disarms_after_the_body(self):
        with engine._deadline(0.05):
            pass
        time.sleep(0.08)  # an armed leftover alarm would fire here


class TestCheckpoint:
    def test_completed_run_checkpoint(self, tmp_path):
        path = tmp_path / "run.checkpoint.json"
        run_jobs([OK1, OK2], cache=tmp_path / "cache", checkpoint=path)
        doc = json.loads(path.read_text())
        assert doc["finished"] is True
        assert doc["interrupted"] is False
        assert len(doc["completed"]) == 2
        assert doc["pending"] == []
        assert doc["failed"] == []

    def test_failed_jobs_listed_in_checkpoint(self, tmp_path):
        path = tmp_path / "run.checkpoint.json"
        run_jobs_report([OK1, BAD], checkpoint=path, policy=JobPolicy(on_error="record"))
        doc = json.loads(path.read_text())
        assert doc["finished"] is True
        assert len(doc["failed"]) == 1
        assert doc["failed"][0]["benchmark"] == "POISON"
        assert doc["failed"][0]["error_type"] == "RuntimeError"

    def test_keyboard_interrupt_leaves_resumable_checkpoint(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        path = tmp_path / "run.checkpoint.json"
        interrupting = Job(benchmark="INT", kind="kbint")
        with pytest.raises(KeyboardInterrupt):
            run_jobs([OK1, interrupting, OK2], cache=cache, checkpoint=path)
        doc = json.loads(path.read_text())
        assert doc["finished"] is False
        assert doc["interrupted"] is True
        assert len(doc["completed"]) == 1
        remaining = {entry["benchmark"] for entry in doc["pending"]}
        assert remaining == {"INT", "B"}
        # what already compiled survived in the cache, so a rerun resumes
        assert cache.get(config_key(OK1)) is not None
        _, report = run_jobs_report([OK1, OK2], cache=cache, checkpoint=path)
        assert report.cache_hits == 1


class TestErrorArtifacts:
    def test_error_rows_land_in_json_and_csv(self, tmp_path):
        records, report = run_jobs_report(
            [OK1, BAD], policy=JobPolicy(on_error="record")
        )
        paths = write_artifacts("demo", records, tmp_path, errors=report.errors)
        doc = json.loads(paths["json"].read_text())
        assert len(doc["records"]) == 1
        assert doc["records"][0]["status"] == "ok"
        assert len(doc["errors"]) == 1
        assert doc["errors"][0]["error_type"] == "RuntimeError"
        csv_text = paths["csv"].read_text()
        assert "error" in csv_text and "poisoned job POISON" in csv_text

    def test_format_records_appends_failed_rows(self):
        records, report = run_jobs_report([OK1, BAD], policy=JobPolicy(on_error="record"))
        text = format_records(records, errors=report.errors)
        assert "POISON" in text and "FAILED after 1 attempt" in text
