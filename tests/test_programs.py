"""Unit tests for the benchmark circuit generators (repro.programs)."""

import math

import numpy as np
import pytest

from repro.circuits import Simulator, statevectors_equal
from repro.programs import (
    bernstein_vazirani_circuit,
    build_benchmark,
    ghz_circuit,
    qaoa_maxcut_circuit,
    qft_circuit,
    random_commuting_layer_circuit,
    random_maxcut_graph,
    random_secret,
    random_two_qubit_circuit,
    vqe_full_entanglement_circuit,
)
from repro.programs import BENCHMARKS


class TestQft:
    def test_gate_counts(self):
        n = 8
        c = qft_circuit(n)
        counts = c.count_ops()
        assert counts["h"] == n
        assert counts["cp"] == n * (n - 1) // 2
        assert counts["measure"] == n

    def test_qft_matches_dft_matrix(self):
        n = 4
        c = qft_circuit(n, measure=False, reverse=True)
        dim = 2**n
        # apply to each basis state and compare against the DFT definition
        from repro.circuits import circuit_unitary

        u = circuit_unitary(c)
        omega = np.exp(2j * np.pi / dim)
        dft = np.array([[omega ** (j * k) for k in range(dim)] for j in range(dim)]) / math.sqrt(dim)
        # qubit 0 is the most significant bit in both conventions here
        assert np.allclose(u, dft, atol=1e-9)

    def test_approximation_drops_small_rotations(self):
        full = qft_circuit(10, measure=False)
        approx = qft_circuit(10, measure=False, approximation_degree=6)
        assert approx.count_ops()["cp"] < full.count_ops()["cp"]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            qft_circuit(0)


class TestQaoa:
    def test_random_graph_has_half_the_edges(self):
        n = 12
        edges = random_maxcut_graph(n, seed=3)
        assert len(edges) == round(0.5 * n * (n - 1) / 2)
        assert all(0 <= a < b < n for a, b in edges)

    def test_seeds_give_different_graphs(self):
        assert random_maxcut_graph(10, seed=0) != random_maxcut_graph(10, seed=1)

    def test_ladder_and_diagonal_forms_are_equivalent(self):
        edges = [(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)]
        ladder = qaoa_maxcut_circuit(4, edges=edges, measure=False, use_cx_ladder=True)
        diagonal = qaoa_maxcut_circuit(4, edges=edges, measure=False, use_cx_ladder=False)
        s1 = Simulator(4, seed=0).run(ladder).statevector
        s2 = Simulator(4, seed=0).run(diagonal).statevector
        assert statevectors_equal(s1, s2)

    def test_gate_counts_per_layer(self):
        edges = [(0, 1), (1, 2)]
        c = qaoa_maxcut_circuit(3, edges=edges, layers=2, measure=False)
        counts = c.count_ops()
        assert counts["cx"] == 2 * 2 * 2  # 2 CX per edge per layer
        assert counts["rx"] == 3 * 2

    def test_validation(self):
        with pytest.raises(ValueError):
            qaoa_maxcut_circuit(4, edges=[(0, 5)])
        with pytest.raises(ValueError):
            qaoa_maxcut_circuit(4, layers=0)
        with pytest.raises(ValueError):
            qaoa_maxcut_circuit(4, gammas=[0.1, 0.2])
        with pytest.raises(ValueError):
            random_maxcut_graph(1)
        with pytest.raises(ValueError):
            random_maxcut_graph(5, edge_fraction=0.0)


class TestVqe:
    def test_gate_counts(self):
        n, layers = 6, 2
        c = vqe_full_entanglement_circuit(n, layers=layers)
        counts = c.count_ops()
        assert counts["cx"] == layers * n * (n - 1) // 2
        assert counts["ry"] == n * (layers + 1)
        assert counts["measure"] == n

    def test_explicit_parameters(self):
        n, layers = 3, 1
        params = [0.1] * (2 * n * (layers + 1))
        c = vqe_full_entanglement_circuit(n, layers=layers, parameters=params, measure=False)
        assert all(op.params == (0.1,) for op in c if op.name in ("ry", "rz"))
        with pytest.raises(ValueError):
            vqe_full_entanglement_circuit(n, parameters=[0.1, 0.2])

    def test_seed_reproducibility(self):
        a = vqe_full_entanglement_circuit(5, seed=7)
        b = vqe_full_entanglement_circuit(5, seed=7)
        assert a == b


class TestBernsteinVazirani:
    def test_secret_is_balanced(self):
        secret = random_secret(20, seed=4)
        assert len(secret) == 20
        assert secret.count("1") == 10

    def test_algorithm_recovers_secret(self):
        secret = "10110"
        c = bernstein_vazirani_circuit(5, secret=secret, measure=False)
        sim = Simulator(6, seed=0)
        sim.run(c)
        measured = "".join(str(sim.measure(q)) for q in range(5))
        assert measured == secret

    def test_oracle_size_matches_secret_weight(self):
        c = bernstein_vazirani_circuit(6, secret="110011")
        assert c.count_ops()["cx"] == 4

    def test_invalid_secret(self):
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit(4, secret="10")
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit(4, secret="10a1")


class TestOtherGenerators:
    def test_ghz_circuit(self):
        probs = Simulator(5, seed=0).run(ghz_circuit(5)).probabilities()
        assert np.isclose(probs[0], 0.5) and np.isclose(probs[-1], 0.5)

    def test_random_two_qubit_circuit_reproducible_and_valid(self):
        a = random_two_qubit_circuit(6, 40, seed=5)
        b = random_two_qubit_circuit(6, 40, seed=5)
        assert a == b
        assert len(a) == 40
        assert all(op.num_qubits <= 2 for op in a)

    def test_random_commuting_layer_circuit(self):
        c = random_commuting_layer_circuit(10, 5, fanout=4, seed=1)
        assert c.count_ops() == {"cx": 20}

    def test_build_benchmark_dispatch(self):
        assert build_benchmark("qft", 5).num_qubits == 5
        assert build_benchmark("BV", 5).num_qubits == 5  # ancilla included
        assert build_benchmark("QAOA", 5, seed=1).num_qubits == 5
        assert build_benchmark("VQE", 5).num_qubits == 5
        with pytest.raises(ValueError):
            build_benchmark("grover", 5)
        assert set(BENCHMARKS) == {"QFT", "QAOA", "VQE", "BV"}
