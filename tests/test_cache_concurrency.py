"""Concurrent-access tests for :class:`ResultCache`.

Three bug classes this file pins down:

* the access-log **compaction race** — the historic read→aggregate→replace
  cycle lost lines appended between the read and the replace, and two
  concurrent compactors could double-count; compaction is now serialised by
  an O_EXCL lock file and renames the live log aside before aggregating, so
  every line lands in exactly one file;
* **mtime-reset survival** — LRU eviction and TTL sweeps ranked entries by
  ``st_mtime`` alone, so tooling that resets mtimes on restore (CI cache
  actions) made the entire cache look idle; recency is now also persisted
  in the access log and the effective last-use is the newer of the two;
* plain **multi-process hammering** — N processes sharing one cache
  directory must not corrupt entries or lose log records.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.experiments import engine
from repro.experiments.engine import Job, ResultCache, config_key

JOB = Job(benchmark="QFT", chiplet_width=4, rows=1, cols=2)


def payload_for(index: int) -> dict:
    return {"benchmark": "QFT", "value": index, "blob": "x" * 200}


def keys_for(count: int) -> list[str]:
    return [config_key(Job(benchmark="QFT", chiplet_width=4, rows=1, cols=2, seed=i)) for i in range(count)]


# --------------------------------------------------------------------------
# multi-process hammer


def _hammer(cache_dir: str, keys: list[str], rounds: int) -> None:
    cache = ResultCache(cache_dir)
    for round_index in range(rounds):
        for index, key in enumerate(keys):
            cache.put(key, JOB, payload_for(index))
            got = cache.get(key)
            assert got is not None, f"lost entry {key} in round {round_index}"


def _reader(cache_dir: str, keys: list[str], rounds: int) -> None:
    cache = ResultCache(cache_dir)
    for _ in range(rounds):
        for key in keys:
            record = cache.get(key)
            if record is not None:
                assert record["benchmark"] == "QFT"


class TestMultiProcessHammer:
    def test_concurrent_put_get_no_corruption(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        keys = keys_for(6)
        ResultCache(cache_dir)  # pre-create so readers can log accesses
        for index, key in enumerate(keys):
            ResultCache(cache_dir).put(key, JOB, payload_for(index))

        processes = [
            multiprocessing.Process(target=_hammer, args=(cache_dir, keys, 10))
            for _ in range(3)
        ] + [
            multiprocessing.Process(target=_reader, args=(cache_dir, keys, 20))
            for _ in range(2)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=120)
            assert process.exitcode == 0

        cache = ResultCache(cache_dir)
        stats = cache.stats()
        assert stats["corrupt_entries"] == 0
        assert len(cache) == len(keys)
        # every entry parses and round-trips
        for key in keys:
            record = cache.get(key)
            assert record is not None and record["benchmark"] == "QFT"
        # the log recorded every read that went through get(): 3 hammers x
        # 10 rounds x 6 keys + 2 readers x 20 rounds x 6 keys + the checks
        # just above; no interleaving may lose lines
        access = cache.access_stats()
        expected_gets = 3 * 10 * 6 + 2 * 20 * 6 + 6
        assert access["hits"] == expected_gets
        assert access["misses"] == 0


# --------------------------------------------------------------------------
# compaction under concurrency


def _compact_and_append(cache_dir: str, keys: list[str], rounds: int) -> None:
    cache = ResultCache(cache_dir)
    for round_index in range(rounds):
        cache.get(keys[round_index % len(keys)])
        cache._compact_access_log()


class TestCompactionConcurrency:
    def test_compaction_loses_nothing_single_process(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        keys = keys_for(4)
        for index, key in enumerate(keys):
            cache.put(key, JOB, payload_for(index))
        for _ in range(25):
            for key in keys:
                assert cache.get(key) is not None
        cache._compact_access_log()
        access = cache.access_stats()
        assert access["hits"] == 25 * len(keys)
        assert access["misses"] == 0
        # compacting twice (idempotent) changes nothing
        cache._compact_access_log()
        assert cache.access_stats()["hits"] == 25 * len(keys)
        # per-key counts survive compaction
        top = {entry["key"]: entry["hits"] for entry in access["top_entries"]}
        assert top == {key: 25 for key in keys}

    def test_concurrent_compactors_and_appenders(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        keys = keys_for(4)
        seed_cache = ResultCache(cache_dir)
        for index, key in enumerate(keys):
            seed_cache.put(key, JOB, payload_for(index))

        rounds = 40
        processes = [
            multiprocessing.Process(
                target=_compact_and_append, args=(cache_dir, keys, rounds)
            )
            for _ in range(4)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=120)
            assert process.exitcode == 0

        cache = ResultCache(cache_dir)
        cache._compact_access_log()
        access = cache.access_stats()
        # every get() was a hit and every line survived some interleaving of
        # 4 concurrent compactors
        assert access["hits"] == 4 * rounds
        assert access["misses"] == 0
        # no litter left behind: neither lock nor aside files
        leftovers = [
            path.name
            for path in (tmp_path / "cache").iterdir()
            if path.name.startswith(".access.log.")
        ]
        assert leftovers == []

    def test_stale_lock_is_removed(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = keys_for(1)[0]
        cache.put(key, JOB, payload_for(0))
        cache.get(key)
        lock = cache.access_log_path.with_name(".access.log.lock")
        lock.touch()
        os.utime(lock, (1, 1))  # ancient -> crashed compactor debris
        cache._compact_access_log()  # claims nothing, removes the debris
        assert not lock.exists()
        # a fresh compaction then succeeds
        cache._compact_access_log()
        assert cache.access_stats()["hits"] == 1

    def test_live_lock_skips_compaction_without_data_loss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = keys_for(1)[0]
        cache.put(key, JOB, payload_for(0))
        cache.get(key)
        lock = cache.access_log_path.with_name(".access.log.lock")
        lock.touch()  # fresh: another process is compacting right now
        cache._compact_access_log()
        assert cache.access_stats()["hits"] == 1  # log untouched
        lock.unlink()


# --------------------------------------------------------------------------
# mtime-independent recency (CI cache-restore survival)


class TestMtimeResetRecency:
    def _reset_all_mtimes(self, cache: ResultCache) -> None:
        for path in cache.entries():
            os.utime(path, (1, 1))  # 1970: the pathological restore

    def test_sweep_spares_logged_recent_entries_after_mtime_reset(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        keys = keys_for(4)
        for index, key in enumerate(keys):
            cache.put(key, JOB, payload_for(index))
        # entries 0 and 1 are "in use" per the access log
        cache.get(keys[0])
        cache.get(keys[1])
        self._reset_all_mtimes(cache)

        # by mtime alone everything is decades stale; the log must save the
        # two used entries (puts logged recency for all four, so rank by the
        # get timestamps: sweep with a cutoff newer than the puts)
        result = cache.sweep_older_than(0.0, now=time.time() + 10.0, dry_run=True)
        assert result["removed"] == 4  # sanity: cutoff in the future sweeps all

        swept = cache.sweep_older_than(3600.0)
        assert swept["removed"] == 0  # every entry has logged recency < 1h old

    def test_sweep_uses_log_recency_not_mtime(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        keys = keys_for(2)
        for index, key in enumerate(keys):
            cache.put(key, JOB, payload_for(index))
        self._reset_all_mtimes(cache)
        # rewrite the access log so entry 0 was last used 2 days ago and
        # entry 1 just now — recency must come from the log, not st_mtime
        now = time.time()
        cache.access_log_path.write_text(
            f"P {keys[0]} {now - 2 * 86400:.6f}\nP {keys[1]} {now:.6f}\n"
        )
        result = cache.sweep_older_than(86400.0)
        assert result["removed"] == 1
        assert cache.get(keys[1]) is not None
        assert cache.peek(keys[0]) is None

    def test_eviction_order_follows_logged_recency_after_mtime_reset(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        keys = keys_for(3)
        for index, key in enumerate(keys):
            cache.put(key, JOB, payload_for(index))
        self._reset_all_mtimes(cache)
        now = time.time()
        # log says: keys[1] oldest, then keys[2], keys[0] most recent
        cache.access_log_path.write_text(
            f"P {keys[1]} {now - 300:.6f}\n"
            f"P {keys[2]} {now - 200:.6f}\n"
            f"P {keys[0]} {now - 100:.6f}\n"
        )
        entry_size = cache.path_for(keys[0]).stat().st_size
        # cap so exactly one entry must go: the log's LRU pick is keys[1]
        capped = ResultCache(tmp_path / "cache", max_bytes=int(entry_size * 2.5))
        capped._evict_to_cap()
        assert capped.peek(keys[1]) is None
        assert capped.peek(keys[0]) is not None
        assert capped.peek(keys[2]) is not None

    def test_mtime_alone_still_works_without_log(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", record_access=False)
        keys = keys_for(2)
        for index, key in enumerate(keys):
            cache.put(key, JOB, payload_for(index))
        old = time.time() - 10 * 86400
        os.utime(cache.path_for(keys[0]), (old, old))
        result = cache.sweep_older_than(86400.0)
        assert result["removed"] == 1
        assert cache.peek(keys[1]) is not None


# --------------------------------------------------------------------------
# serve-path concurrency (cache shared between server workers)


class TestServeCacheSharing:
    def test_parallel_served_submissions_share_cache_safely(self, tmp_path):
        from repro.serve import CompileServer, submit_jobs

        def stripped(payload):
            return {
                k: v
                for k, v in payload.items()
                if k != "seconds" and not k.endswith("_seconds")
            }

        cache = ResultCache(tmp_path / "cache")
        jobs = [
            Job(benchmark="QFT", chiplet_width=3, rows=1, cols=2, seed=seed)
            for seed in range(3)
        ]
        with CompileServer(workers=3, cache=cache) as server:
            first = submit_jobs(jobs, server.host, server.port, concurrency=3)
            second = submit_jobs(jobs, server.host, server.port, concurrency=3)
        assert all(response.ok for response in first + second)
        assert all(response.payload["cached"] for response in second)
        for a, b in zip(first, second):
            assert json.dumps(
                stripped(a.payload["result"]), sort_keys=True
            ) == json.dumps(stripped(b.payload["result"]), sort_keys=True)
        assert cache.stats()["corrupt_entries"] == 0
