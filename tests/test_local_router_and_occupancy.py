"""Unit tests for local routing and highway occupancy management."""

import networkx as nx
import pytest

from repro.compiler import LocalRouter, RoutingError
from repro.hardware import ChipletArray
from repro.highway import HighwayLayout, HighwayManager


@pytest.fixture(scope="module")
def array():
    return ChipletArray("square", 5, 2, 2)


@pytest.fixture(scope="module")
def layout(array):
    return HighwayLayout(array)


@pytest.fixture(scope="module")
def router(array, layout):
    return LocalRouter(array.topology, layout.highway_qubits)


@pytest.fixture()
def manager(layout):
    return HighwayManager(layout)


class TestLocalRouter:
    def test_paths_avoid_highway_qubits(self, router, layout):
        data = layout.data_qubits
        path = router.path(data[0], data[-1])
        assert path[0] == data[0] and path[-1] == data[-1]
        assert all(not layout.is_highway(q) for q in path)
        assert all(router.topology.is_coupled(a, b) for a, b in zip(path, path[1:], strict=False))

    def test_path_to_self(self, router, layout):
        q = layout.data_qubits[0]
        assert router.path(q, q) == [q]
        assert router.swaps_to_position(q, q) == []

    def test_data_distance_matches_path_length(self, router, layout):
        a, b = layout.data_qubits[0], layout.data_qubits[10]
        assert router.data_distance(a, b) == len(router.path(a, b)) - 1

    def test_highway_positions_rejected(self, router, layout):
        hw = next(iter(layout.highway_qubits))
        data = layout.data_qubits[0]
        with pytest.raises(RoutingError):
            router.path(hw, data)
        with pytest.raises(RoutingError):
            router.data_distance(data, hw)

    def test_swaps_to_adjacency(self, router, layout, array):
        topo = array.topology
        a, b = layout.data_qubits[0], layout.data_qubits[-1]
        swaps = router.swaps_to_adjacency(a, b)
        # replay the swaps: the qubit starting at a ends adjacent to b
        position = a
        for x, y in swaps:
            assert topo.is_coupled(x, y)
            assert position == x
            position = y
        assert topo.is_coupled(position, b)

    def test_swaps_to_adjacency_noop_when_coupled(self, router, layout, array):
        topo = array.topology
        for a in layout.data_qubits:
            for b in topo.neighbors(a):
                if not layout.is_highway(b):
                    assert router.swaps_to_adjacency(a, b) == []
                    return

    def test_nearest_parking(self, router, layout, array):
        topo = array.topology
        entrance = next(iter(layout.highway_qubits))
        source = layout.data_qubits[0]
        parking = router.nearest_parking(source, entrance)
        if parking is not None:
            assert topo.is_coupled(parking, entrance)
            assert not layout.is_highway(parking)

    def test_nearest_parking_respects_exclusions(self, router, layout, array):
        topo = array.topology
        entrance = next(
            h for h in layout.highway_qubits
            if sum(not layout.is_highway(n) for n in topo.neighbors(h)) >= 2
        )
        source = layout.data_qubits[0]
        first = router.nearest_parking(source, entrance)
        second = router.nearest_parking(source, entrance, exclude=[first])
        assert second != first

    def test_is_data(self, router, layout):
        assert router.is_data(layout.data_qubits[0])
        assert not router.is_data(next(iter(layout.highway_qubits)))

    def test_router_without_highway_uses_all_qubits(self, array):
        plain = LocalRouter(array.topology)
        assert plain.data_distance(0, array.num_qubits - 1) < float("inf")


class TestHighwayManager:
    def test_entrance_candidates_are_highway_qubits(self, manager, layout):
        data = layout.data_qubits[0]
        candidates = manager.entrance_candidates(data)
        assert candidates
        assert all(layout.is_highway(e) for e in candidates)

    def test_entrance_parking_excludes_highway(self, manager, layout):
        for entrance in list(layout.highway_qubits)[:10]:
            for parking in manager.entrance_parking(entrance):
                assert not layout.is_highway(parking)
                assert manager.topology.is_coupled(parking, entrance)

    def test_build_route_is_a_connected_tree_containing_targets(self, manager, layout):
        highway = sorted(layout.highway_qubits)
        control = highway[0]
        targets = highway[-4:]
        route = manager.build_route(control, targets)
        assert route.root == control
        assert set(targets) <= set(route.nodes)
        graph = nx.Graph()
        graph.add_nodes_from(route.nodes)
        for node, neighbours in route.adjacency.items():
            for nb in neighbours:
                graph.add_edge(node, nb)
        assert nx.is_connected(graph)
        assert graph.number_of_edges() == len(route.nodes) - 1  # tree
        # every route edge is a highway-graph edge
        for a, b in graph.edges:
            assert layout.highway_graph.has_edge(a, b)

    def test_build_route_reuses_nodes_for_nearby_targets(self, manager, layout):
        highway = sorted(layout.highway_qubits)
        control = highway[0]
        single = manager.build_route(control, [highway[-1]])
        double = manager.build_route(control, [highway[-1], highway[-2]])
        assert double.size <= single.size + 4

    def test_build_route_rejects_non_highway_endpoints(self, manager, layout):
        data = layout.data_qubits[0]
        highway = sorted(layout.highway_qubits)
        with pytest.raises(ValueError):
            manager.build_route(data, [highway[0]])
        with pytest.raises(ValueError):
            manager.build_route(highway[0], [data])

    def test_claims_and_release_times(self, manager, layout):
        nodes = sorted(layout.highway_qubits)[:5]
        assert manager.earliest_start(nodes, ready_time=3.0) == 3.0
        manager.claim(nodes, release_at=17.0)
        assert manager.next_free(nodes[0]) == 17.0
        assert manager.earliest_start(nodes, ready_time=3.0) == 17.0
        assert manager.num_claims == 1
        assert manager.average_occupancy() == 5.0
        # claims never move release times backwards
        manager.claim(nodes[:2], release_at=5.0)
        assert manager.next_free(nodes[0]) == 17.0

    def test_claim_rejects_non_highway_qubit(self, manager, layout):
        with pytest.raises(ValueError):
            manager.claim([layout.data_qubits[0]], release_at=1.0)

    def test_via_lookup_matches_layout_segments(self, manager, layout):
        lookup = manager.via_lookup()
        for segment in layout.segments:
            assert lookup(segment.a, segment.b) == segment.via
        # non-edges return None
        data = layout.data_qubits
        assert lookup(data[0], data[1]) is None


class TestNextHopTables:
    """PR-5: path() walks a per-destination next-hop table; the table must
    reproduce the historic per-hop ``min((distance, neighbour))`` descent."""

    def test_paths_match_historic_greedy_descent(self, router, layout):
        data = layout.data_qubits
        dist = router._distances
        for source in data[:6]:
            for destination in (data[-1], data[len(data) // 2]):
                if source == destination:
                    continue
                fast = router.path(source, destination)
                slow = [source]
                current = source
                while current != destination:
                    current = min(
                        router._neighbors[current],
                        key=lambda nb: (dist[nb, destination], nb),
                    )
                    slow.append(current)
                assert fast == slow

    def test_next_hop_table_is_cached(self, router, layout):
        destination = layout.data_qubits[-1]
        table = router._next_hop_table(destination)
        assert table is router._next_hop_table(destination)

    def test_nearest_parking_matches_historic_scan(self, router, layout, array):
        topo = array.topology
        import numpy as np

        for entrance in sorted(layout.highway_qubits)[:8]:
            for source in layout.data_qubits[:8]:
                best, best_cost = None, np.inf
                for nb in topo.neighbors(entrance):
                    if nb in router.highway_qubits:
                        continue
                    cost = router._distances[source, nb] if source != nb else 0.0
                    if cost < best_cost:
                        best_cost = cost
                        best = nb
                if best is None or not np.isfinite(best_cost):
                    best = None
                assert router.nearest_parking(source, entrance) == best

    def test_nearest_parking_exclusion_still_works(self, router, layout):
        entrance = next(
            h
            for h in sorted(layout.highway_qubits)
            if sum(not layout.is_highway(n) for n in router.topology.neighbors(h)) >= 2
        )
        source = layout.data_qubits[0]
        first = router.nearest_parking(source, entrance)
        second = router.nearest_parking(source, entrance, exclude=(first,))
        assert second is not None and second != first
