"""N-way comparison tests: compile_many/MultiComparisonRecord, the engine's
backend dispatch, plan-time compiler validation, artifacts with per-backend
columns, and the CLI surface (--compilers, repro compilers, --only-failed).
"""

import csv
import json
import warnings

import pytest

from repro.backends import available_backends
from repro.cli import main
from repro.experiments.engine import (
    Job,
    ResultCache,
    config_key,
    job_from_dict,
    plan_jobs,
    record_from_payload,
    record_row,
    record_to_payload,
    run_jobs_report,
    write_artifacts,
)
from repro.experiments.registry import build_experiment_jobs
from repro.experiments.runner import (
    MultiComparisonRecord,
    compare,
    compare_many,
    compile_many,
    compile_pair,
    format_records,
    normalize_compilers,
    primary_compiler,
    resolve_compilers,
)
from repro.hardware.array import ChipletArray

THREE = ("baseline", "mech", "sabre-x")


@pytest.fixture(scope="module")
def small_array():
    return ChipletArray("square", 4, 1, 2)


@pytest.fixture(scope="module")
def three_way_record(small_array):
    return compare_many("BV", small_array, compilers=THREE, seed=1)


class TestCompilerNormalisation:
    def test_none_resolves_to_default_pair(self):
        assert resolve_compilers(None) == ("baseline", "mech")

    def test_case_folding(self):
        assert normalize_compilers(["Baseline", " MECH "]) == ("baseline", "mech")

    def test_fewer_than_two_is_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            normalize_compilers(["mech"])

    def test_duplicates_are_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            normalize_compilers(["mech", "baseline", "mech"])

    def test_primary_prefers_mech(self):
        assert primary_compiler(("baseline", "mech", "sabre-x")) == "mech"
        assert primary_compiler(("baseline", "sabre-x", "mech-nofuse")) == "mech-nofuse"
        assert primary_compiler(("baseline", "mech")) == "mech"


class TestCompileMany:
    def test_unknown_backend_raises_registry_error(self, small_array):
        with pytest.raises(ValueError, match="unknown compiler"):
            compile_many("BV", small_array, compilers=("baseline", "nope"))

    def test_every_backend_compiles_once(self, small_array):
        compiled = compile_many("BV", small_array, compilers=THREE, seed=1)
        assert set(compiled.results) == set(THREE)
        assert set(compiled.seconds) == set(THREE)
        assert compiled.reference == "baseline"
        assert compiled.primary == "mech"
        for name in THREE:
            assert compiled.results[name].compiler == name

    def test_record_carries_per_backend_columns(self, three_way_record):
        record = three_way_record
        assert isinstance(record, MultiComparisonRecord)
        assert record.compilers == THREE
        assert set(record.depths) == set(THREE)
        assert record.depth_improvement == record.depth_improvement_for("mech")
        # reference improvement over itself would be zero by construction
        assert record.depth_improvement_for("baseline") == 0.0
        # stat extras name every backend
        assert "baseline_swaps" in record.extra
        assert "sabre-x_swaps" in record.extra
        assert "mech_shuttles" in record.extra

    def test_payload_roundtrip(self, three_way_record):
        clone = record_from_payload(record_to_payload(three_way_record))
        assert clone == three_way_record

    def test_record_row_flattens_per_backend(self, three_way_record):
        row = record_row(three_way_record)
        for name in THREE:
            assert f"{name}_depth" in row
            assert f"{name}_eff_cnots" in row
            assert f"{name}_seconds" in row
        assert "mech_depth_improvement" in row
        assert "sabre-x_normalized_depth" in row
        assert "baseline_depth_improvement" not in row  # reference has no ratio

    def test_format_records_switches_to_long_table(self, three_way_record):
        text = format_records([three_way_record], title="three-way")
        assert "baseline*" in text  # the reference is marked
        assert "sabre-x" in text
        assert text.splitlines()[0] == "three-way"


class TestDeprecatedWrappers:
    def test_compile_pair_warns_and_matches_compile_many(self, small_array):
        with pytest.deprecated_call(match="compile_many"):
            pair = compile_pair("BV", small_array, seed=1)
        compiled = compile_many("BV", small_array, seed=1)
        assert pair.mech_result.depth == compiled.results["mech"].depth
        assert pair.baseline_result.depth == compiled.results["baseline"].depth

    def test_compare_warns_and_matches_the_engine_record(self, small_array):
        with pytest.deprecated_call(match="compare_many"):
            legacy = compare("BV", small_array, seed=1)
        records, _ = run_jobs_report([Job("BV", seed=1)])
        assert records[0].as_dict() == legacy.as_dict()


class TestPlanValidation:
    """Unknown names must fail at plan time, before any cache consultation."""

    class _TrippedCache(ResultCache):
        def __init__(self, cache_dir):
            super().__init__(cache_dir)
            self.consultations = 0

        def get(self, key):
            self.consultations += 1
            return super().get(key)

        def peek(self, key):
            self.consultations += 1
            return super().peek(key)

    def test_unknown_compiler_message_mirrors_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown job kind 'nope'; choose from"):
            plan_jobs([Job("BV", kind="nope")])
        with pytest.raises(ValueError, match="unknown compiler 'nope'; choose from"):
            plan_jobs([Job("BV", compilers=("baseline", "nope"))])

    def test_unknown_names_are_sorted_in_the_message(self):
        jobs = [Job("BV", compilers=("zzz", "aaa", "mech"))]
        with pytest.raises(ValueError, match="unknown compiler 'aaa', 'zzz'"):
            plan_jobs(jobs)

    def test_unknown_compiler_fires_before_cache_consultation(self, tmp_path):
        cache = self._TrippedCache(tmp_path / "cache")
        with pytest.raises(ValueError, match="unknown compiler"):
            plan_jobs([Job("BV", compilers=("baseline", "nope"))], cache=cache)
        assert cache.consultations == 0
        assert not (tmp_path / "cache").exists()

    def test_unknown_kind_fires_before_cache_consultation(self, tmp_path):
        # the regression test that previously existed only as a bare raise:
        # the kind check must also precede every cache read
        cache = self._TrippedCache(tmp_path / "cache")
        with pytest.raises(ValueError, match="unknown job kind"):
            plan_jobs([Job("BV", kind="nope")], cache=cache)
        assert cache.consultations == 0


class TestEngineThreeWay:
    def test_compilers_enter_the_config_hash(self):
        default = Job("BV", seed=1)
        three = default.with_(compilers=THREE)
        assert config_key(default) != config_key(three)
        # order matters: the reference changes the meaning of every ratio
        assert config_key(three) != config_key(
            default.with_(compilers=("mech", "baseline", "sabre-x"))
        )

    def test_three_way_jobs_cache_and_rehydrate(self, tmp_path):
        jobs = [Job("BV", compilers=THREE, seed=1)]
        records1, report1 = run_jobs_report(jobs, cache=tmp_path)
        assert (report1.cache_hits, report1.executed) == (0, 1)
        records2, report2 = run_jobs_report(jobs, cache=tmp_path)
        assert (report2.cache_hits, report2.executed) == (1, 0)
        assert records1 == records2
        assert isinstance(records2[0], MultiComparisonRecord)

    def test_sensitivity_three_way_prefixes_secondary_series(self):
        job = Job(
            "BV",
            kind="sensitivity",
            compilers=THREE,
            params=(("meas_latencies", (1.0, 4.0)),),
        )
        records, _ = run_jobs_report([job])
        extra = records[0].extra
        # the primary (mech) keeps the historic unprefixed keys
        assert "depth_vs_latency@1" in extra
        # other non-reference backends get a name prefix
        assert "sabre-x:depth_vs_latency@1" in extra

    def test_artifacts_have_per_backend_columns(self, tmp_path):
        records, report = run_jobs_report([Job("BV", compilers=THREE, seed=1)])
        paths = write_artifacts("three", records, tmp_path)
        doc = json.loads(paths["json"].read_text())
        assert doc["records"][0]["compilers"] == "baseline,mech,sabre-x"
        with open(paths["csv"], newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert "sabre-x_depth" in rows[0]
        assert "mech_depth_improvement" in rows[0]
        # the legacy-only derived columns are absent rather than empty
        assert "depth_improvement" not in rows[0]

    def test_registry_builders_thread_compilers(self):
        for name in ("table2", "fig12", "fig13", "fig14", "fig15", "fig16"):
            jobs = build_experiment_jobs(name, scale="small", compilers=THREE)
            assert jobs, name
            assert all(job.compilers == THREE for job in jobs), name


class TestCliCompilers:
    def test_three_way_run_end_to_end(self, tmp_path, capsys):
        args = [
            "run", "table2", "--scale", "small", "--benchmarks", "BV",
            "--compilers", "baseline,mech,sabre-x",
            "--cache-dir", str(tmp_path / "cache"), "--out-dir", str(tmp_path / "out"),
            "--quiet",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "baseline*" in out and "sabre-x" in out
        doc = json.loads((tmp_path / "out" / "table2.json").read_text())
        assert doc["compilers"] == ["baseline", "mech", "sabre-x"]
        assert all(r["compilers"] == "baseline,mech,sabre-x" for r in doc["records"])
        checkpoint = json.loads((tmp_path / "out" / "table2.checkpoint.json").read_text())
        assert checkpoint["meta"]["compilers"] == ["baseline", "mech", "sabre-x"]
        assert all(j["compilers"] == ["baseline", "mech", "sabre-x"] for j in checkpoint["jobs"])
        # warm rerun hits the cache under the compiler-aware keys
        assert main(args) == 0
        assert "2 cached, 0 executed" in capsys.readouterr().out

    def test_unknown_compiler_is_a_usage_error(self, tmp_path, capsys):
        assert main(["run", "fig12", "--compilers", "baseline,nope",
                     "--out-dir", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "unknown compiler(s) nope" in err
        assert "choose from" in err

    def test_single_compiler_is_a_usage_error(self, tmp_path, capsys):
        assert main(["run", "fig12", "--compilers", "mech",
                     "--out-dir", str(tmp_path)]) == 2
        assert "at least two" in capsys.readouterr().err

    def test_duplicate_compilers_are_a_usage_error(self, tmp_path, capsys):
        assert main(["run", "fig12", "--compilers", "mech,baseline,mech",
                     "--out-dir", str(tmp_path)]) == 2
        assert "duplicate" in capsys.readouterr().err

    def test_dry_run_validates_compilers_against_the_plan(self, tmp_path, capsys):
        assert main([
            "run", "fig12", "--scale", "small", "--benchmarks", "BV",
            "--compilers", "baseline,mech,sabre-x", "--dry-run", "--json",
            "--cache-dir", str(tmp_path / "cache"), "--out-dir", str(tmp_path / "out"),
        ]) == 0
        plan = json.loads(capsys.readouterr().out)
        assert plan["compilers"] == ["baseline", "mech", "sabre-x"]
        assert plan["experiments"][0]["pending"] == 3


class TestCompilersCommand:
    def test_lists_every_backend(self, capsys):
        assert main(["compilers"]) == 0
        out = capsys.readouterr().out
        for name in available_backends():
            assert name in out
        assert "reference" in out

    def test_json_output_is_golden(self, capsys):
        assert main(["compilers", "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == {
            "compilers": [
                {
                    "name": "baseline",
                    "description": "SABRE-routed SWAP baseline"
                    " (layout selection + SWAP-chain routing)",
                },
                {
                    "name": "mech",
                    "description": "MECH highway compiler:"
                    " aggregation + highway-mediated communication",
                },
                {
                    "name": "mech-noagg",
                    "description": "MECH ablation: commuting-gate aggregation"
                    " disabled (no highway gates)",
                },
                {
                    "name": "mech-nofuse",
                    "description": "MECH ablation: highway routing with the"
                    " CX-RZ-CX fusion rewrite disabled",
                },
                {
                    "name": "mech-singleentry",
                    "description": "MECH ablation: one highway-entrance"
                    " candidate per component (multi-entry off)",
                },
                {
                    "name": "sabre-noise",
                    "description": "noise-adaptive SABRE baseline"
                    " (layout packed into the lowest-noise region)",
                },
                {
                    "name": "sabre-x",
                    "description": "extended-effort SABRE baseline"
                    " (4x routing trials, deeper lookahead)",
                },
            ],
            "default": ["baseline", "mech"],
        }


class TestResumeOnlyFailed:
    def _doctored_checkpoint(self, tmp_path, capsys):
        """A real fig12 run, then its checkpoint doctored so that one job is
        failed, one is cached and one never started."""
        cache_dir = tmp_path / "cache"
        out_dir = tmp_path / "out"
        assert main([
            "run", "fig12", "--scale", "small", "--benchmarks", "BV",
            "--cache-dir", str(cache_dir), "--out-dir", str(out_dir), "--quiet",
        ]) == 0
        capsys.readouterr()
        path = out_dir / "fig12.checkpoint.json"
        doc = json.loads(path.read_text())
        keys = [config_key(job_from_dict(j)) for j in doc["jobs"]]
        failed_key, kept_key, dropped_key = keys
        cache = ResultCache(cache_dir)
        for key in (failed_key, dropped_key):
            cache.path_for(key).unlink()
        doc["completed"] = []
        doc["cached"] = [kept_key]
        doc["failed"] = [{
            "key": failed_key, "benchmark": "BV", "kind": "compare",
            "error_type": "RuntimeError", "message": "injected", "traceback_tail": "",
            "attempts": 1, "seconds": 0.1,
        }]
        doc["finished"] = False
        path.write_text(json.dumps(doc))
        return path

    def test_only_failed_skips_never_started_jobs(self, tmp_path, capsys):
        path = self._doctored_checkpoint(tmp_path, capsys)
        assert main(["resume", str(path), "--only-failed", "--quiet"]) == 0
        out = capsys.readouterr().out
        # 3 checkpoint jobs -> 1 cached + 1 failed re-run; the never-started
        # job is dropped by the plan-level filter
        assert "2 jobs: 1 cached, 1 executed" in out
        doc = json.loads((tmp_path / "out" / "fig12.json").read_text())
        assert len(doc["records"]) == 2

    def test_completed_but_uncached_jobs_are_kept(self, tmp_path, capsys):
        # the filter must classify by the *checkpoint*, not the cache: a
        # completed job whose cache entry was swept away is re-executed, not
        # silently dropped as never-started
        path = self._doctored_checkpoint(tmp_path, capsys)
        doc = json.loads(path.read_text())
        (kept_key,) = doc["cached"]
        doc["cached"] = []
        doc["completed"] = [kept_key]
        path.write_text(json.dumps(doc))
        ResultCache(tmp_path / "cache").path_for(kept_key).unlink()
        assert main(["resume", str(path), "--only-failed", "--quiet"]) == 0
        assert "2 jobs: 0 cached, 2 executed" in capsys.readouterr().out

    def test_plain_resume_still_runs_everything(self, tmp_path, capsys):
        path = self._doctored_checkpoint(tmp_path, capsys)
        assert main(["resume", str(path), "--quiet"]) == 0
        assert "3 jobs: 1 cached, 2 executed" in capsys.readouterr().out

    def test_only_failed_with_nothing_to_do_is_an_error(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        path = out_dir / "fig12.checkpoint.json"
        assert main([
            "run", "fig12", "--scale", "small", "--benchmarks", "BV", "--no-cache",
            "--out-dir", str(out_dir), "--quiet",
        ]) == 0
        capsys.readouterr()
        # nothing failed: --only-failed refuses rather than re-running work
        assert main(["resume", str(path), "--only-failed", "--no-cache",
                     "--quiet"]) == 2
        assert "no failed jobs" in capsys.readouterr().err


class TestNoNewWarningsFromTheEngine:
    def test_engine_dispatch_does_not_emit_deprecation_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_jobs_report([Job("BV", seed=3)])
            run_jobs_report([Job("BV", seed=3, compilers=THREE)])
