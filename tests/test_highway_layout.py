"""Unit tests for highway layout generation (repro.highway.layout)."""

import networkx as nx
import pytest

from repro.hardware import ChipletArray
from repro.highway import HighwayLayout


@pytest.fixture(scope="module")
def small_array():
    return ChipletArray("square", 5, 2, 2)


@pytest.fixture(scope="module")
def small_layout(small_array):
    return HighwayLayout(small_array)


class TestBasicProperties:
    def test_partition_of_qubits(self, small_array, small_layout):
        highway = set(small_layout.highway_qubits)
        data = set(small_layout.data_qubits)
        assert highway | data == set(small_array.topology.qubits())
        assert not (highway & data)
        assert small_layout.num_data_qubits == len(data)

    def test_overhead_fraction(self, small_layout, small_array):
        assert small_layout.qubit_overhead() == pytest.approx(
            len(small_layout.highway_qubits) / small_array.num_qubits
        )
        assert 0.0 < small_layout.qubit_overhead() < 0.5

    def test_is_highway(self, small_layout):
        some_highway = next(iter(small_layout.highway_qubits))
        some_data = small_layout.data_qubits[0]
        assert small_layout.is_highway(some_highway)
        assert not small_layout.is_highway(some_data)

    def test_highway_graph_is_connected_and_spans_highway_qubits(self, small_layout):
        g = small_layout.highway_graph
        assert set(g.nodes) == set(small_layout.highway_qubits)
        assert nx.is_connected(g)

    def test_segments_match_graph_edges(self, small_layout):
        for seg in small_layout.segments:
            assert small_layout.highway_graph.has_edge(seg.a, seg.b)
        for a, b in small_layout.highway_graph.edges:
            assert small_layout.segment_between(a, b) is not None
        assert small_layout.segment_between(*list(small_layout.data_qubits[:2])) is None

    def test_segment_endpoints_are_close_on_hardware(self, small_layout, small_array):
        topo = small_array.topology
        for seg in small_layout.segments:
            if seg.is_bridged:
                assert topo.is_coupled(seg.a, seg.via)
                assert topo.is_coupled(seg.via, seg.b)
                assert not small_layout.is_highway(seg.via)
            else:
                assert topo.is_coupled(seg.a, seg.b)

    def test_lines_cover_highway_qubits(self, small_layout):
        on_lines = set()
        for line in small_layout.lines:
            on_lines.update(line)
        # stitching may add off-line highway qubits, but the bulk comes from lines
        assert len(set(small_layout.highway_qubits) - on_lines) <= len(
            small_layout.highway_qubits
        ) // 2


class TestReachability:
    def test_every_data_qubit_has_nearby_entrance(self, small_layout):
        for q in small_layout.data_qubits:
            entrances = small_layout.entrances_near(q)
            assert entrances
            assert all(small_layout.is_highway(e) for e in entrances)
            assert small_layout.distance_to_highway(q) <= 4

    def test_data_subgraph_stays_connected(self, small_array, small_layout):
        """Local routing must be possible without crossing the highway."""
        data = set(small_layout.data_qubits)
        sub = small_array.topology.graph.subgraph(data)
        assert nx.is_connected(sub)

    def test_entrances_have_parking(self, small_array, small_layout):
        topo = small_array.topology
        with_parking = [
            h
            for h in small_layout.highway_qubits
            if any(not small_layout.is_highway(nb) for nb in topo.neighbors(h))
        ]
        # the vast majority of highway qubits must be usable as entrances
        assert len(with_parking) >= 0.7 * len(small_layout.highway_qubits)


class TestDensityAndStructures:
    def test_density_increases_overhead(self):
        arr = ChipletArray("square", 7, 2, 2)
        fractions = [
            HighwayLayout(arr, density=d).qubit_overhead() for d in (1, 2, 3)
        ]
        assert fractions[0] < fractions[1] < fractions[2]

    def test_interleaving_reduces_overhead(self):
        arr = ChipletArray("square", 7, 2, 2)
        sparse = HighwayLayout(arr, interleave=True)
        dense = HighwayLayout(arr, interleave=False)
        assert sparse.qubit_overhead() < dense.qubit_overhead()

    def test_overhead_decreases_with_chiplet_size(self):
        fractions = []
        for width in (5, 7, 9):
            arr = ChipletArray("square", width, 2, 2)
            fractions.append(HighwayLayout(arr).qubit_overhead())
        assert fractions[0] > fractions[-1]

    @pytest.mark.parametrize("structure", ["square", "hexagon", "heavy_square", "heavy_hexagon"])
    def test_all_coupling_structures_supported(self, structure):
        arr = ChipletArray(structure, 6, 2, 2)
        layout = HighwayLayout(arr)
        assert nx.is_connected(layout.highway_graph)
        assert layout.num_data_qubits > arr.num_qubits // 2

    def test_crossroads_exist_on_multi_chiplet_meshes(self, small_layout):
        assert len(small_layout.crossroads) >= 1
        assert small_layout.crossroads <= small_layout.highway_qubits

    def test_sparse_cross_links_still_give_connected_highway(self):
        arr = ChipletArray("square", 7, 2, 2, cross_links_per_edge=1)
        layout = HighwayLayout(arr)
        assert nx.is_connected(layout.highway_graph)

    def test_invalid_density_rejected(self, small_array):
        with pytest.raises(ValueError):
            HighwayLayout(small_array, density=0)
