"""Backend registry tests plus the contract suite every registered compiler
backend must satisfy: fixed-seed determinism, CompilationResult schema
completeness, and full-statevector routed-circuit equivalence on a small
GHZ/QFT pair.

The contract tests parametrise over ``available_backends()``, so a newly
registered backend is automatically held to the same bar as the built-ins.
"""

import pytest

from helpers import assert_all_two_qubit_ops_coupled, assert_semantically_equivalent
from repro.backends import (
    DEFAULT_COMPILERS,
    CompilerBackend,
    available_backends,
    backend_descriptions,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.circuits import Circuit
from repro.compiler.result import CompilationResult
from repro.hardware.array import ChipletArray
from repro.hardware.noise import DEFAULT_NOISE
from repro.highway.layout import HighwayLayout
from repro.programs import ghz_circuit, qft_circuit

BUILTINS = (
    "baseline",
    "mech",
    "mech-noagg",
    "mech-nofuse",
    "mech-singleentry",
    "sabre-noise",
    "sabre-x",
)


@pytest.fixture(scope="module")
def tiny_array():
    """18 physical qubits: small enough for full statevector verification."""
    return ChipletArray("square", 3, 1, 2)


def _configured(name, array, seed=0):
    return get_backend(name).configure(array, noise=DEFAULT_NOISE, seed=seed)


class TestRegistry:
    def test_builtins_are_registered(self):
        assert set(BUILTINS) <= set(available_backends())

    def test_available_backends_is_sorted(self):
        names = available_backends()
        assert names == sorted(names)

    def test_default_pair_is_registered(self):
        assert DEFAULT_COMPILERS == ("baseline", "mech")
        assert set(DEFAULT_COMPILERS) <= set(available_backends())

    def test_get_backend_returns_fresh_instances(self):
        assert get_backend("mech") is not get_backend("mech")

    def test_get_backend_is_case_insensitive(self):
        assert get_backend("MECH").name == "mech"

    def test_unknown_name_error_lists_choices(self):
        with pytest.raises(ValueError, match="unknown compiler 'nope'"):
            get_backend("nope")
        with pytest.raises(ValueError, match="choose from"):
            get_backend("nope")

    def test_duplicate_registration_is_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("mech", lambda: None)

    def test_replace_and_unregister(self):
        class Fake:
            name = "test-fake"
            description = "fake backend for the registry test"

        try:
            register_backend("test-fake", Fake)
            assert "test-fake" in available_backends()
            register_backend("test-fake", Fake, replace=True)
            assert isinstance(get_backend("test-fake"), Fake)
        finally:
            unregister_backend("test-fake")
        assert "test-fake" not in available_backends()

    def test_empty_name_is_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            register_backend("  ", lambda: None)

    def test_descriptions_cover_every_backend(self):
        descriptions = backend_descriptions()
        assert sorted(descriptions) == available_backends()
        for name in BUILTINS:
            assert descriptions[name], f"backend {name} has no description"


class TestBackendContract:
    """Every registered backend must satisfy these invariants."""

    @pytest.fixture(scope="class")
    def compiled(self, tiny_array):
        """name -> (ghz circuit, ghz result, qft circuit, qft result)."""
        capacity = HighwayLayout(tiny_array).num_data_qubits
        n = min(5, capacity)
        ghz = ghz_circuit(n, measure=False)
        qft = qft_circuit(n, measure=False)
        out = {}
        for name in available_backends():
            ghz_result = _configured(name, tiny_array).compile(ghz)
            qft_result = _configured(name, tiny_array).compile(qft)
            out[name] = (ghz, ghz_result, qft, qft_result)
        return out

    @pytest.mark.parametrize("name", BUILTINS)
    def test_satisfies_protocol(self, name):
        assert isinstance(get_backend(name), CompilerBackend)

    @pytest.mark.parametrize("name", BUILTINS)
    def test_compile_before_configure_fails_loudly(self, name):
        with pytest.raises(RuntimeError, match="configure"):
            get_backend(name).compile(Circuit(2).cx(0, 1))

    @pytest.mark.parametrize("name", BUILTINS)
    def test_result_schema_is_complete(self, name, tiny_array, compiled):
        _, result, _, qft_result = compiled[name]
        for res in (result, qft_result):
            assert isinstance(res, CompilationResult)
            assert res.topology is tiny_array.topology
            assert res.compiler == name
            assert res.circuit.num_qubits == tiny_array.num_qubits
            # layouts are injective logical -> physical maps over the circuit
            for layout in (res.initial_layout, res.final_layout):
                assert set(layout) == set(range(5))
                assert len(set(layout.values())) == 5
            assert all(isinstance(v, (int, float)) for v in res.stats.values())
            assert res.metrics(DEFAULT_NOISE).depth > 0
            assert res.metrics(DEFAULT_NOISE).eff_cnots > 0

    @pytest.mark.parametrize("name", BUILTINS)
    def test_fixed_seed_determinism(self, name, tiny_array, compiled):
        _, first, _, _ = compiled[name]
        ghz = ghz_circuit(5, measure=False)
        again = _configured(name, tiny_array).compile(ghz)
        assert again.metrics(DEFAULT_NOISE).depth == first.metrics(DEFAULT_NOISE).depth
        assert again.metrics(DEFAULT_NOISE).eff_cnots == first.metrics(DEFAULT_NOISE).eff_cnots
        assert len(again.circuit) == len(first.circuit)
        assert again.initial_layout == first.initial_layout
        assert again.final_layout == first.final_layout

    @pytest.mark.parametrize("name", BUILTINS)
    def test_two_qubit_ops_respect_the_coupling_graph(self, name, compiled):
        _, ghz_result, _, qft_result = compiled[name]
        assert_all_two_qubit_ops_coupled(ghz_result)
        assert_all_two_qubit_ops_coupled(qft_result)

    @pytest.mark.parametrize("name", BUILTINS)
    def test_routed_ghz_is_equivalent(self, name, compiled):
        ghz, ghz_result, _, _ = compiled[name]
        assert_semantically_equivalent(ghz, ghz_result)

    @pytest.mark.parametrize("name", BUILTINS)
    def test_routed_qft_is_equivalent(self, name, compiled):
        _, _, qft, qft_result = compiled[name]
        assert_semantically_equivalent(qft, qft_result)

    @pytest.mark.parametrize("name", BUILTINS)
    def test_static_verifier_certifies_the_compilation(self, name, compiled):
        from repro.analysis import format_report, verify_compilation

        ghz, ghz_result, qft, qft_result = compiled[name]
        for source, result in ((ghz, ghz_result), (qft, qft_result)):
            report = verify_compilation(source, result, noise=DEFAULT_NOISE)
            assert report.ok, format_report(report)
            assert report.ops_checked == len(result.circuit.operations)

    @pytest.mark.parametrize("name", BUILTINS)
    def test_unknown_knobs_are_ignored(self, name, tiny_array):
        backend = get_backend(name).configure(
            tiny_array, noise=DEFAULT_NOISE, seed=0, not_a_real_knob=17
        )
        assert backend.compile(ghz_circuit(4, measure=False)).compiler == name


class TestBackendDifferences:
    """The variant backends genuinely differ from their parents."""

    def test_sabre_x_runs_more_trials(self, tiny_array):
        base = _configured("baseline", tiny_array)
        extended = _configured("sabre-x", tiny_array)
        qft = qft_circuit(5, measure=False)
        assert extended.compile(qft).stats["trials"] > base.compile(qft).stats["trials"]

    def test_mech_nofuse_disables_the_rewrite(self, tiny_array):
        fused = _configured("mech", tiny_array)
        unfused = _configured("mech-nofuse", tiny_array)
        assert fused.compiler.rewrite_zz is True
        assert unfused.compiler.rewrite_zz is False
        # a ZZ ladder is exactly what the rewrite targets; without it the
        # compiled circuit keeps more 2-qubit operations
        ladder = Circuit(4)
        ladder.h(0).h(1)
        ladder.cx(0, 2).rz(0.8, 2).cx(0, 2)
        ladder.cx(1, 3).rz(0.4, 3).cx(1, 3)
        with_rewrite = fused.compile(ladder)
        without_rewrite = unfused.compile(ladder)
        assert without_rewrite.stats.get("fused_zz", 0.0) == 0.0
        assert with_rewrite.stats.get("fused_zz", 0.0) >= 0.0
        assert_semantically_equivalent(ladder, without_rewrite)

    def test_mech_noagg_never_forms_highway_gates(self, tiny_array):
        aggregated = _configured("mech", tiny_array)
        ablated = _configured("mech-noagg", tiny_array)
        qft = qft_circuit(5, measure=False)
        with_agg = aggregated.compile(qft)
        without_agg = ablated.compile(qft)
        # QFT is the aggregation pass's best case (all-commuting controlled
        # phases); the ablation must route every gate individually
        assert with_agg.stats.get("aggregated_units", 0.0) > 0.0
        assert without_agg.stats.get("aggregated_units", 0.0) == 0.0
        assert_semantically_equivalent(qft, without_agg)

    def test_mech_singleentry_pins_one_entrance(self, tiny_array):
        multi = _configured("mech", tiny_array)
        single = _configured("mech-singleentry", tiny_array)
        assert multi.compiler.entrance_candidates > 1
        assert single.compiler.entrance_candidates == 1
        qft = qft_circuit(5, measure=False)
        assert_semantically_equivalent(qft, single.compile(qft))

    def test_sabre_noise_changes_the_layout(self, tiny_array):
        corner = _configured("baseline", tiny_array)
        adaptive = _configured("sabre-noise", tiny_array)
        qft = qft_circuit(5, measure=False)
        corner_result = corner.compile(qft)
        adaptive_result = adaptive.compile(qft)
        assert adaptive_result.initial_layout != corner_result.initial_layout
        assert_semantically_equivalent(qft, adaptive_result)
