"""End-to-end tests of the MECH compiler (routing validity, semantics, stats)."""

import pytest

from repro.baseline import BaselineCompiler
from repro.circuits import Circuit
from repro.compiler import MechCompiler, SchedulerError
from repro.hardware import ChipletArray
from repro.highway import HighwayLayout
from repro.programs import (
    bernstein_vazirani_circuit,
    qft_circuit,
    random_commuting_layer_circuit,
    random_two_qubit_circuit,
)

from helpers import assert_all_two_qubit_ops_coupled, assert_semantically_equivalent


@pytest.fixture(scope="module")
def tiny_array():
    """18 physical qubits: small enough for full statevector verification."""
    return ChipletArray("square", 3, 1, 2)


@pytest.fixture(scope="module")
def tiny_compiler(tiny_array):
    return MechCompiler(tiny_array)


@pytest.fixture(scope="module")
def medium_array():
    return ChipletArray("square", 5, 2, 2)


@pytest.fixture(scope="module")
def medium_compiler(medium_array):
    return MechCompiler(medium_array)


class TestStructuralValidity:
    def test_every_two_qubit_op_uses_a_coupler(self, medium_compiler):
        circuit = qft_circuit(medium_compiler.num_data_qubits, measure=False)
        result = medium_compiler.compile(circuit)
        assert_all_two_qubit_ops_coupled(result)

    def test_logical_qubits_stay_on_data_positions(self, medium_compiler):
        circuit = random_commuting_layer_circuit(medium_compiler.num_data_qubits, 20, seed=1)
        result = medium_compiler.compile(circuit)
        layout = medium_compiler.layout
        for logical, phys in result.final_layout.items():
            assert not layout.is_highway(phys), (
                f"logical qubit {logical} ended on highway qubit {phys}"
            )
        assert len(set(result.final_layout.values())) == circuit.num_qubits

    def test_measurement_count_includes_protocol_overhead(self, medium_compiler):
        circuit = Circuit(medium_compiler.num_data_qubits)
        circuit.h(0)
        for t in range(1, 9):
            circuit.cx(0, t)
        result = medium_compiler.compile(circuit)
        metrics = result.metrics()
        # the highway protocol adds mid-circuit measurements
        assert metrics.counts.measurements > 0
        assert result.stats["highway_gates"] >= 1

    def test_stats_are_reported(self, medium_compiler):
        circuit = qft_circuit(12, measure=False)
        result = medium_compiler.compile(circuit)
        for key in (
            "swaps_inserted",
            "highway_gates",
            "highway_components",
            "shuttles",
            "aggregated_units",
            "highway_qubit_fraction",
        ):
            assert key in result.stats
        assert result.compiler == "mech"

    def test_circuit_width_capped_by_data_qubits(self, tiny_compiler):
        too_big = Circuit(tiny_compiler.num_data_qubits + 1).h(0)
        with pytest.raises(ValueError):
            tiny_compiler.compile(too_big)

    def test_custom_initial_mapping(self, tiny_compiler):
        data = tiny_compiler.layout.data_qubits
        circuit = Circuit(2).cx(0, 1)
        mapping = {0: data[0], 1: data[1]}
        result = tiny_compiler.compile(circuit, initial_mapping=mapping)
        assert result.initial_layout == mapping

    def test_mapping_on_highway_rejected(self, tiny_array, tiny_compiler):
        hw = next(iter(tiny_compiler.layout.highway_qubits))
        circuit = Circuit(1).h(0)
        with pytest.raises(SchedulerError):
            tiny_compiler.compile(circuit, initial_mapping={0: hw})


class TestSemantics:
    """Full statevector equivalence of compiled circuits on tiny devices."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_circuits(self, tiny_compiler, seed):
        n = min(5, tiny_compiler.num_data_qubits)
        circuit = random_two_qubit_circuit(n, 18, seed=seed)
        result = tiny_compiler.compile(circuit)
        assert_semantically_equivalent(circuit, result)

    def test_fanout_highway_gate(self, tiny_compiler):
        n = min(6, tiny_compiler.num_data_qubits)
        circuit = Circuit(n).rx(0.4, 0)
        for t in range(1, n):
            circuit.cx(0, t)
        result = tiny_compiler.compile(circuit)
        assert result.stats["highway_gates"] >= 1
        assert_semantically_equivalent(circuit, result)

    def test_target_shared_highway_gate(self, tiny_compiler):
        n = min(5, tiny_compiler.num_data_qubits)
        circuit = Circuit(n)
        for c in range(n - 1):
            circuit.rx(0.2 * (c + 1), c)
            circuit.cx(c, n - 1)
        result = tiny_compiler.compile(circuit)
        assert_semantically_equivalent(circuit, result)

    def test_small_qft(self, tiny_compiler):
        circuit = qft_circuit(5, measure=False)
        result = tiny_compiler.compile(circuit)
        assert_semantically_equivalent(circuit, result)

    def test_mixed_gate_types(self, tiny_compiler):
        circuit = Circuit(5)
        circuit.h(0).cp(0.3, 0, 3).cp(0.5, 0, 4).cz(0, 2)
        circuit.rz(0.7, 3).cx(1, 3).cx(1, 4).swap(2, 3)
        result = tiny_compiler.compile(circuit)
        assert_semantically_equivalent(circuit, result)

    def test_zz_ladder_rewrite_preserves_semantics(self, tiny_compiler):
        circuit = Circuit(4)
        circuit.h(0).h(1)
        circuit.cx(0, 2).rz(0.8, 2).cx(0, 2)
        circuit.cx(1, 3).rz(0.4, 3).cx(1, 3)
        result = tiny_compiler.compile(circuit)
        assert_semantically_equivalent(circuit, result)


class TestBehaviouralClaims:
    """The paper's qualitative claims, checked at small scale."""

    def test_bv_depth_beats_baseline(self, medium_array, medium_compiler):
        n = medium_compiler.num_data_qubits
        circuit = bernstein_vazirani_circuit(n - 1, seed=0)
        mech = medium_compiler.compile(circuit)
        base = BaselineCompiler(medium_array.topology).compile(circuit)
        assert mech.metrics().depth < base.metrics().depth

    def test_qft_improvement_grows_with_scale(self):
        """Depth improvement at 2x2x5x5 should be below the 2x3x6x6 one."""
        improvements = []
        for width, rows, cols in ((4, 1, 2), (5, 2, 2)):
            array = ChipletArray("square", width, rows, cols)
            mech = MechCompiler(array)
            circuit = qft_circuit(mech.num_data_qubits, measure=False)
            ours = mech.compile(circuit).metrics().depth
            base = BaselineCompiler(array.topology).compile(circuit).metrics().depth
            improvements.append(1.0 - ours / base)
        assert improvements[-1] > improvements[0]

    def test_min_components_controls_highway_usage(self, medium_array):
        circuit = random_commuting_layer_circuit(30, 15, fanout=3, seed=2)
        eager = MechCompiler(medium_array, min_components=2).compile(circuit)
        reluctant = MechCompiler(medium_array, min_components=10).compile(circuit)
        assert eager.stats["highway_gates"] > reluctant.stats["highway_gates"]

    def test_highway_density_increases_overhead_not_validity(self, medium_array):
        dense = MechCompiler(medium_array, highway_density=2)
        assert dense.highway_qubit_fraction > MechCompiler(medium_array).highway_qubit_fraction
        circuit = qft_circuit(10, measure=False)
        result = dense.compile(circuit)
        assert_all_two_qubit_ops_coupled(result)

    def test_prebuilt_layout_is_accepted(self, medium_array):
        layout = HighwayLayout(medium_array, density=1)
        compiler = MechCompiler(medium_array, layout=layout)
        assert compiler.layout is layout

    def test_invalid_parameters(self, medium_array):
        with pytest.raises(ValueError):
            MechCompiler(medium_array, min_components=0)
        compiler = MechCompiler(medium_array)
        with pytest.raises(ValueError):
            compiler.default_mapping(compiler.num_data_qubits + 1)
