"""Tests for the longitudinal bench-history analytics: ``repro.perf.history``
loading/sorting/rescaling, the per-backend trend deltas, the drift gate, the
TREND document, and the ``repro bench --history`` CLI exit codes.

The synthetic-document tests build BENCH documents by hand so every number
in the trend report is checkable against arithmetic; the committed-samples
test runs the real pipeline over ``benchmarks/history/`` — the same
documents the CI bench-history job seeds its cache from.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.perf import (
    BENCH_SCHEMA_VERSION,
    TREND_SCHEMA_VERSION,
    HistoryError,
    compute_history,
    format_history,
    history_report,
    load_history,
    write_trend,
)

REPO_HISTORY = Path(__file__).resolve().parent.parent / "benchmarks" / "history"


def _doc(
    seconds_by_row,
    *,
    created=0.0,
    calibration=1.0,
    metrics=None,
    phases=None,
):
    """A synthetic BENCH document; ``seconds_by_row`` maps
    ``(workload, backend) -> seconds``."""
    rows = []
    for (workload, backend), seconds in seconds_by_row.items():
        row = {
            "workload": workload,
            "backend": backend,
            "seconds": seconds,
            **(metrics or {"swaps": 10.0, "depth": 20.0, "eff_cnots": 30.0}),
        }
        if phases is not None:
            row["phases"] = dict(phases)
        rows.append(row)
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "suite": "quick",
        "seed": 7,
        "created_at": "synthetic",
        "created_unix": created,
        "compilers": sorted({backend for _, backend in seconds_by_row}),
        "calibration_seconds": calibration,
        "rows": rows,
    }


def _write(directory, name, document):
    path = Path(directory) / name
    path.write_text(json.dumps(document))
    return path


class TestLoadHistory:
    def test_sorted_by_created_unix_not_filename(self, tmp_path):
        # filenames deliberately sort against the recording times
        _write(tmp_path, "BENCH_a.json", _doc({("w", "mech"): 1.0}, created=300))
        _write(tmp_path, "BENCH_b.json", _doc({("w", "mech"): 2.0}, created=100))
        _write(tmp_path, "BENCH_c.json", _doc({("w", "mech"): 3.0}, created=200))
        documents, skipped = load_history(tmp_path)
        assert [p.name for p, _ in documents] == [
            "BENCH_b.json",
            "BENCH_c.json",
            "BENCH_a.json",
        ]
        assert skipped == []

    def test_invalid_documents_are_skipped_not_fatal(self, tmp_path):
        _write(tmp_path, "BENCH_good.json", _doc({("w", "mech"): 1.0}))
        (tmp_path / "BENCH_junk.json").write_text("{not json")
        _write(
            tmp_path,
            "BENCH_oldschema.json",
            {"schema_version": 99, "rows": []},
        )
        documents, skipped = load_history(tmp_path)
        assert [p.name for p, _ in documents] == ["BENCH_good.json"]
        assert sorted(entry["file"] for entry in skipped) == [
            "BENCH_junk.json",
            "BENCH_oldschema.json",
        ]

    def test_non_bench_files_ignored(self, tmp_path):
        _write(tmp_path, "BENCH_one.json", _doc({("w", "mech"): 1.0}))
        (tmp_path / "TREND_x.json").write_text("{}")
        (tmp_path / "notes.txt").write_text("hi")
        documents, _ = load_history(tmp_path)
        assert len(documents) == 1

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(HistoryError, match="does not exist"):
            load_history(tmp_path / "nope")

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(HistoryError, match="no BENCH_"):
            load_history(tmp_path)

    def test_all_invalid_raises(self, tmp_path):
        (tmp_path / "BENCH_junk.json").write_text("{not json")
        with pytest.raises(HistoryError, match="passed schema validation"):
            load_history(tmp_path)


class TestComputeHistory:
    _dirs = 0

    def _history(self, tmp_path, docs, **kwargs):
        TestComputeHistory._dirs += 1
        root = tmp_path / f"h{TestComputeHistory._dirs}"
        root.mkdir()
        for index, doc in enumerate(docs):
            _write(root, f"BENCH_{index}.json", doc)
        documents, skipped = load_history(root)
        return compute_history(documents, skipped=skipped, **kwargs)

    def test_deltas_vs_oldest_and_previous(self, tmp_path):
        report = self._history(
            tmp_path,
            [
                _doc({("w", "mech"): 4.0}, created=1),
                _doc({("w", "mech"): 2.0}, created=2),
                _doc({("w", "mech"): 1.0}, created=3),
            ],
        )
        entry = report["backends"]["mech"]
        assert entry["vs_oldest"]["wallclock_speedup"] == pytest.approx(4.0)
        assert entry["vs_previous"]["wallclock_speedup"] == pytest.approx(2.0)
        assert entry["vs_oldest"]["matched"] == 1
        assert not entry["drifted"]
        assert not report["regressed"]
        assert report["schema_version"] == TREND_SCHEMA_VERSION

    def test_calibration_rescales_every_document(self, tmp_path):
        # the old machine was 2x faster (calibration 0.5 vs the newest 1.0):
        # its 1.0s equals 2.0s on the reference machine, so an identical-speed
        # run shows speedup 1.0 only after rescaling
        report = self._history(
            tmp_path,
            [
                _doc({("w", "mech"): 1.0}, created=1, calibration=0.5),
                _doc({("w", "mech"): 2.0}, created=2, calibration=1.0),
            ],
        )
        entry = report["backends"]["mech"]
        assert entry["vs_previous"]["wallclock_speedup"] == pytest.approx(1.0)
        assert entry["points"][0]["wallclock_geomean"] == pytest.approx(2.0)
        assert entry["points"][1]["wallclock_geomean"] == pytest.approx(2.0)
        assert report["reference_calibration_seconds"] == pytest.approx(1.0)

    def test_drift_gate_fires_past_threshold(self, tmp_path):
        docs = [
            _doc({("w", "mech"): 1.0}, created=1),
            _doc({("w", "mech"): 1.6}, created=2),  # 60% slower than previous
        ]
        drifted = self._history(tmp_path, docs, max_drift=0.5)
        assert drifted["backends"]["mech"]["drifted"]
        assert drifted["regressed"]
        assert "DRIFT" in format_history(drifted)

        tolerant = self._history(tmp_path, docs, max_drift=0.75)
        assert not tolerant["regressed"]
        assert "no backend drifted" in format_history(tolerant)

    def test_drift_compares_previous_not_oldest(self, tmp_path):
        # slow creep: each step within the gate even though the total is not
        report = self._history(
            tmp_path,
            [
                _doc({("w", "mech"): 1.0}, created=1),
                _doc({("w", "mech"): 1.4}, created=2),
                _doc({("w", "mech"): 1.96}, created=3),
            ],
            max_drift=0.5,
        )
        entry = report["backends"]["mech"]
        assert entry["vs_oldest"]["wallclock_speedup"] == pytest.approx(1 / 1.96)
        assert not entry["drifted"]

    def test_backend_missing_from_some_documents(self, tmp_path):
        report = self._history(
            tmp_path,
            [
                _doc({("w", "baseline"): 1.0}, created=1),
                _doc({("w", "baseline"): 1.0, ("w", "mech"): 2.0}, created=2),
                _doc({("w", "baseline"): 1.0, ("w", "mech"): 1.0}, created=3),
            ],
        )
        mech = report["backends"]["mech"]
        assert mech["documents"] == [1, 2]
        assert mech["points"][0] is None
        # mech's "previous" is document 1, not the mech-less document 0
        assert mech["vs_previous"]["wallclock_speedup"] == pytest.approx(2.0)
        single = self._history(tmp_path, [_doc({("w", "mech"): 1.0})])
        assert single["backends"]["mech"]["vs_oldest"] is None
        assert single["backends"]["mech"]["vs_previous"] is None
        assert not single["regressed"]

    def test_metric_ratios_are_new_over_old(self, tmp_path):
        report = self._history(
            tmp_path,
            [
                _doc(
                    {("w", "mech"): 1.0},
                    created=1,
                    metrics={"swaps": 10.0, "depth": 20.0, "eff_cnots": 40.0},
                ),
                _doc(
                    {("w", "mech"): 1.0},
                    created=2,
                    metrics={"swaps": 5.0, "depth": 30.0, "eff_cnots": 40.0},
                ),
            ],
        )
        delta = report["backends"]["mech"]["vs_previous"]
        assert delta["swaps_ratio"] == pytest.approx(0.5)
        assert delta["depth_ratio"] == pytest.approx(1.5)
        assert delta["eff_cnots_ratio"] == pytest.approx(1.0)

    def test_phase_seconds_summed_and_rescaled(self, tmp_path):
        report = self._history(
            tmp_path,
            [
                _doc(
                    {("a", "mech"): 1.0, ("b", "mech"): 1.0},
                    created=1,
                    calibration=0.5,
                    phases={"route": 0.25, "layout": 0.05},
                ),
                _doc(
                    {("a", "mech"): 1.0},
                    created=2,
                    calibration=1.0,
                    phases={"route": 0.5},
                ),
            ],
        )
        points = report["backends"]["mech"]["points"]
        assert points[0]["phase_seconds"]["route"] == pytest.approx(1.0)
        assert points[0]["phase_seconds"]["layout"] == pytest.approx(0.2)
        assert points[1]["phase_seconds"] == {"route": pytest.approx(0.5)}

    def test_write_trend_document(self, tmp_path):
        report = self._history(tmp_path, [_doc({("w", "mech"): 1.0})])
        path = write_trend(report, tmp_path / "out")
        assert path.name.startswith("TREND_") and path.suffix == ".json"
        assert json.loads(path.read_text())["schema_version"] == TREND_SCHEMA_VERSION

    def test_bad_max_drift_rejected(self, tmp_path):
        docs = [(Path("x"), _doc({("w", "mech"): 1.0}))]
        with pytest.raises(ValueError, match="max_drift"):
            compute_history(docs, max_drift=-0.1)
        with pytest.raises(ValueError, match="max_drift"):
            compute_history(docs, max_drift=float("nan"))
        with pytest.raises(HistoryError, match="at least one"):
            compute_history([])


class TestCommittedSamples:
    """The repo ships real bench documents the CI job seeds its cache from."""

    def test_at_least_two_documents_committed(self):
        assert len(sorted(REPO_HISTORY.glob("BENCH_*.json"))) >= 2

    def test_history_report_over_committed_samples(self):
        report = history_report(REPO_HISTORY)
        assert report["skipped"] == []
        assert len(report["documents"]) >= 2
        # the default pair spans every committed document
        for backend in ("baseline", "mech"):
            entry = report["backends"][backend]
            assert len(entry["documents"]) == len(report["documents"])
            assert entry["vs_oldest"]["wallclock_speedup"] > 0
            assert entry["vs_previous"]["matched"] >= 1
        text = format_history(report)
        assert "baseline" in text and "mech" in text


class TestHistoryCli:
    def _seed(self, tmp_path, seconds=(1.0, 1.0)):
        history = tmp_path / "history"
        history.mkdir()
        for index, value in enumerate(seconds):
            _write(
                history,
                f"BENCH_{index}.json",
                _doc({("w", "mech"): value}, created=float(index)),
            )
        return history

    def test_history_passes_and_writes_trend(self, tmp_path, capsys):
        history = self._seed(tmp_path)
        code = main(
            ["bench", "--history", str(history), "--out-dir", str(tmp_path / "out")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "repro bench history: 2 documents" in out
        assert "trend report:" in out
        assert len(list((tmp_path / "out").glob("TREND_*.json"))) == 1

    def test_history_drift_gate_exits_1(self, tmp_path, capsys):
        history = self._seed(tmp_path, seconds=(1.0, 2.0))
        code = main(
            [
                "bench",
                "--history",
                str(history),
                "--out-dir",
                str(tmp_path / "out"),
                "--max-drift",
                "0.5",
            ]
        )
        assert code == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_history_json_mode(self, tmp_path, capsys):
        history = self._seed(tmp_path)
        code = main(
            [
                "bench",
                "--history",
                str(history),
                "--out-dir",
                str(tmp_path / "out"),
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trend"]["schema_version"] == TREND_SCHEMA_VERSION
        assert "mech" in payload["trend"]["backends"]
        assert payload["path"].endswith(".json")

    def test_history_usage_errors(self, tmp_path, capsys):
        history = self._seed(tmp_path)
        # empty / missing directory
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["bench", "--history", str(empty)]) == 2
        assert main(["bench", "--history", str(tmp_path / "missing")]) == 2
        # --history and --against are mutually exclusive
        assert (
            main(
                [
                    "bench",
                    "--history",
                    str(history),
                    "--against",
                    str(history / "BENCH_0.json"),
                ]
            )
            == 2
        )
        # bad drift threshold
        assert main(["bench", "--history", str(history), "--max-drift", "-1"]) == 2
        err = capsys.readouterr().err
        assert "mutually exclusive" in err
        assert "--max-drift must be >= 0" in err

    def test_history_does_not_compile(self, tmp_path, monkeypatch):
        # analysis-only: the compile path must never be touched
        import repro.perf as perf_module
        import repro.perf.bench as bench_module

        def boom(*args, **kwargs):  # pragma: no cover - fails the test if hit
            raise AssertionError("--history must not run the bench suite")

        monkeypatch.setattr(bench_module, "run_bench", boom)
        monkeypatch.setattr(perf_module, "run_bench", boom)
        history = self._seed(tmp_path)
        assert (
            main(
                ["bench", "--history", str(history), "--out-dir", str(tmp_path / "o")]
            )
            == 0
        )


class TestBackendsSweepCli:
    def test_backends_all_expands_to_registry(self, tmp_path, monkeypatch, capsys):
        import repro.perf as perf_module
        from repro.backends import available_backends

        captured = {}

        def fake_run_bench(suite, *, compilers=None, repeat=1, progress=None, verify=False):
            captured["compilers"] = tuple(compilers)
            return _doc({("w", name): 1.0 for name in compilers}, created=1.0)

        monkeypatch.setattr(perf_module, "run_bench", fake_run_bench)
        code = main(
            ["bench", "--quick", "--backends", "all", "--out-dir", str(tmp_path), "--quiet"]
        )
        assert code == 0
        assert captured["compilers"] == tuple(available_backends())

    def test_single_backend_sweep_is_allowed(self, tmp_path, monkeypatch):
        import repro.perf as perf_module

        monkeypatch.setattr(
            perf_module,
            "run_bench",
            lambda suite, *, compilers=None, repeat=1, progress=None, verify=False: _doc(
                {("w", name): 1.0 for name in compilers}, created=1.0
            ),
        )
        assert (
            main(
                ["bench", "--quick", "--backends", "mech", "--out-dir", str(tmp_path), "--quiet"]
            )
            == 0
        )

    def test_duplicate_and_unknown_backends_rejected(self, capsys):
        assert main(["bench", "--backends", "mech,mech"]) == 2
        assert "duplicate" in capsys.readouterr().err
        assert main(["bench", "--backends", "mech,nope"]) == 2
        assert "unknown compiler" in capsys.readouterr().err
