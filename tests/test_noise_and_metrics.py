"""Unit tests for the noise model and the paper's metrics."""


import pytest

from repro.circuits import Circuit
from repro.hardware import ChipletArray, NoiseModel
from repro.hardware.noise import DEFAULT_NOISE
from repro.metrics import (
    OperationCounts,
    circuit_metrics,
    count_operations,
    geometric_mean,
    improvement,
    normalized_ratio,
)


class TestNoiseModel:
    def test_default_ratios_match_paper(self):
        assert DEFAULT_NOISE.cross_on_ratio == pytest.approx(7.4)
        assert DEFAULT_NOISE.meas_on_ratio == pytest.approx(2.2)
        assert DEFAULT_NOISE.meas_latency == pytest.approx(2.0)

    def test_effective_cnots_formula(self):
        noise = NoiseModel(cross_on_ratio=7.4, meas_on_ratio=2.2)
        assert noise.effective_cnots(10, 2, 5) == pytest.approx(10 + 7.4 * 2 + 2.2 * 5)

    def test_absolute_error_rates(self):
        noise = NoiseModel(on_chip_error=1e-3)
        assert noise.cross_chip_error == pytest.approx(7.4e-3)
        assert noise.measurement_error == pytest.approx(2.2e-3)

    def test_with_ratios_replaces_selected_fields(self):
        swept = DEFAULT_NOISE.with_ratios(meas_latency=8.0)
        assert swept.meas_latency == 8.0
        assert swept.cross_on_ratio == DEFAULT_NOISE.cross_on_ratio
        assert DEFAULT_NOISE.meas_latency == 2.0  # original untouched

    def test_success_probability_decreases_with_ops(self):
        noise = NoiseModel()
        assert noise.success_probability(10, 0, 0) > noise.success_probability(100, 0, 0)
        assert 0.0 < noise.success_probability(1000, 50, 100) < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(cross_on_ratio=0)
        with pytest.raises(ValueError):
            NoiseModel(meas_latency=-1)
        with pytest.raises(ValueError):
            NoiseModel(on_chip_error=2.0)


class TestOperationCounts:
    def test_counts_classify_on_and_cross_chip(self):
        arr = ChipletArray("square", 3, 1, 2)
        topo = arr.topology
        cross_a, cross_b = topo.cross_chip_edges()[0]
        on_a, on_b = topo.on_chip_edges()[0]
        c = Circuit(topo.num_qubits)
        c.cx(on_a, on_b)
        c.cx(cross_a, cross_b)
        c.measure(on_a)
        counts = count_operations(c, topo)
        assert counts.on_chip_cnots == 1
        assert counts.cross_chip_cnots == 1
        assert counts.measurements == 1
        assert counts.total_cnots == 2

    def test_swap_counts_as_three_cnots(self):
        arr = ChipletArray("square", 3, 1, 1)
        topo = arr.topology
        a, b = topo.on_chip_edges()[0]
        c = Circuit(topo.num_qubits).swap(a, b)
        assert count_operations(c, topo).on_chip_cnots == 3

    def test_uncoupled_operation_raises_in_strict_mode(self):
        arr = ChipletArray("square", 3, 1, 1)
        c = Circuit(arr.num_qubits).cx(0, 8)
        with pytest.raises(ValueError):
            count_operations(c, arr.topology, strict=True)
        lenient = count_operations(c, arr.topology, strict=False)
        assert lenient.on_chip_cnots == 1

    def test_counts_without_topology(self):
        c = Circuit(4).cx(0, 3).cz(1, 2).h(0).measure(0)
        counts = count_operations(c)
        assert counts.on_chip_cnots == 2
        assert counts.cross_chip_cnots == 0
        assert counts.one_qubit_gates == 1

    def test_counts_add(self):
        a = OperationCounts(1, 2, 3, 4)
        b = OperationCounts(10, 20, 30, 40)
        s = a + b
        assert (s.on_chip_cnots, s.cross_chip_cnots, s.measurements, s.one_qubit_gates) == (
            11, 22, 33, 44
        )

    def test_effective_cnots_uses_noise(self):
        counts = OperationCounts(on_chip_cnots=5, cross_chip_cnots=1, measurements=2)
        assert counts.effective_cnots(NoiseModel(cross_on_ratio=4, meas_on_ratio=3)) == 5 + 4 + 6


class TestCircuitMetrics:
    def test_depth_and_eff_cnots(self):
        arr = ChipletArray("square", 3, 1, 1)
        topo = arr.topology
        a, b = topo.on_chip_edges()[0]
        c = Circuit(topo.num_qubits).cx(a, b).cx(a, b).measure(a)
        m = circuit_metrics(c, topo)
        assert m.depth == pytest.approx(2 + 2)  # two CNOTs + one measurement (latency 2)
        assert m.eff_cnots == pytest.approx(2 + 2.2)
        assert m.num_physical_qubits == topo.num_qubits
        assert m.as_dict()["measurements"] == 1

    def test_metrics_expand_macros_before_counting(self):
        arr = ChipletArray("square", 3, 1, 1)
        topo = arr.topology
        a, b = topo.on_chip_edges()[0]
        c = Circuit(topo.num_qubits).swap(a, b)
        m = circuit_metrics(c, topo)
        assert m.counts.on_chip_cnots == 3
        assert m.depth == 3


class TestSummaryStatistics:
    def test_improvement(self):
        assert improvement(100, 30) == pytest.approx(0.7)
        assert improvement(100, 120) == pytest.approx(-0.2)
        with pytest.raises(ValueError):
            improvement(0, 5)

    def test_normalized_ratio(self):
        assert normalized_ratio(200, 50) == pytest.approx(0.25)

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([5]) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])
