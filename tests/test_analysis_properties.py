"""Property-based corruption tests for the static verifier.

Each property injects a random corruption into a genuine compilation — drop a
SWAP, reorder a dependent gate pair, retarget a 2-qubit gate off the coupling
graph, tamper with a reported statistic — and asserts the verifier flags it
under the *correct* rule family.  The compilations themselves are built once
per module (they are the expensive part); hypothesis only draws the
corruption site.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    RULE_HARDWARE,
    RULE_METRICS,
    RULE_SEMANTICS,
    format_report,
    verify_compilation,
)
from repro.backends import get_backend
from repro.circuits import commutes
from repro.circuits import gates as g
from repro.hardware.array import ChipletArray
from repro.programs import qft_circuit

ARRAY = ChipletArray("square", 3, 1, 2)
QFT = qft_circuit(5, measure=False)
BASELINE = get_backend("baseline").configure(ARRAY, seed=0).compile(QFT)
MECH = get_backend("mech").configure(ARRAY, seed=0).compile(QFT)

_BASE_OPS = BASELINE.circuit.operations
#: Indices of inserted movement SWAPs (what the drop-a-swap property removes).
_SWAP_SITES = tuple(i for i, op in enumerate(_BASE_OPS) if op.name == "swap")
#: Adjacent (i, i+1) pairs that share a qubit and do not commute.
_DEPENDENT_PAIRS = tuple(
    i
    for i in range(len(_BASE_OPS) - 1)
    if set(_BASE_OPS[i].qubits) & set(_BASE_OPS[i + 1].qubits)
    and not commutes(_BASE_OPS[i], _BASE_OPS[i + 1])
)
#: Physical pairs that are NOT edges of the device.
_UNCOUPLED_PAIRS = tuple(
    (a, b)
    for a in range(ARRAY.topology.num_qubits)
    for b in range(ARRAY.topology.num_qubits)
    if a != b and not ARRAY.topology.is_coupled(a, b)
)


def _with_ops(result, ops):
    circuit = result.circuit.copy()
    circuit._ops = list(ops)
    return dataclasses.replace(
        result, circuit=circuit, _metrics_cache=None, _metrics_noise=None
    )


def _rules_hit(report):
    return {violation.rule for violation in report.violations}


class TestCorruptionsAreCaught:
    @given(st.sampled_from(_SWAP_SITES))
    @settings(max_examples=len(_SWAP_SITES), deadline=None)
    def test_dropping_any_swap_is_a_semantics_violation(self, site):
        ops = list(_BASE_OPS)
        del ops[site]
        report = verify_compilation(QFT, _with_ops(BASELINE, ops))
        assert not report.ok, f"dropping swap @op[{site}] went unnoticed"
        assert RULE_SEMANTICS in _rules_hit(report), format_report(report)

    @given(st.sampled_from(_DEPENDENT_PAIRS))
    @settings(max_examples=len(_DEPENDENT_PAIRS), deadline=None)
    def test_reordering_dependent_gates_is_a_semantics_violation(self, site):
        ops = list(_BASE_OPS)
        ops[site], ops[site + 1] = ops[site + 1], ops[site]
        report = verify_compilation(QFT, _with_ops(BASELINE, ops), rules=(RULE_SEMANTICS,))
        assert not report.ok, f"reordering @op[{site}]<->@op[{site + 1}] went unnoticed"
        assert _rules_hit(report) == {RULE_SEMANTICS}

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_retargeting_off_coupling_is_a_hardware_violation(self, data):
        result = data.draw(st.sampled_from((BASELINE, MECH)), label="result")
        ops = list(result.circuit.operations)
        sites = [
            i
            for i, op in enumerate(ops)
            if op.name in ("cx", "cz", "cp") and op.condition is None
        ]
        site = data.draw(st.sampled_from(sites), label="site")
        pair = data.draw(st.sampled_from(_UNCOUPLED_PAIRS), label="pair")
        old = ops[site]
        ops[site] = g.cp(old.params[0], *pair) if old.name == "cp" else g.cx(*pair)
        report = verify_compilation(QFT, _with_ops(result, ops), rules=(RULE_HARDWARE,))
        codes = {(v.code, v.gate_index) for v in report.violations}
        assert ("uncoupled-2q", site) in codes, format_report(report)

    @given(st.integers(min_value=1, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_swap_stat_tampering_is_a_metrics_violation(self, delta):
        stats = dict(BASELINE.stats)
        stats["swaps_inserted"] = stats.get("swaps_inserted", 0.0) + delta
        tampered = dataclasses.replace(BASELINE, stats=stats)
        report = verify_compilation(QFT, tampered, rules=(RULE_METRICS,))
        assert {v.code for v in report.violations} == {"swap-count-mismatch"}

    @given(st.sampled_from(_SWAP_SITES))
    @settings(max_examples=len(_SWAP_SITES), deadline=None)
    def test_corruption_reports_survive_a_json_roundtrip(self, site):
        from repro.analysis import report_from_dict

        ops = list(_BASE_OPS)
        del ops[site]
        report = verify_compilation(QFT, _with_ops(BASELINE, ops))
        rebuilt = report_from_dict(report.as_dict())
        assert rebuilt.as_dict() == report.as_dict()
