"""Tests for access-ranked eviction and its CLI surfaces.

The eviction daemon (``repro clean-cache --watch``) combines the TTL sweep
with an access-ranked pass: entries with the fewest recorded hits go first,
ties broken by least-recent use, then by entry name — and ``repro
cache-stats --rank access`` must print *exactly* that order, because it is
the operator's preview of what the daemon will delete.
"""

import json
import os
import time

import pytest

from repro.cli import main
from repro.experiments.engine import Job, ResultCache, config_key


def _job(seed):
    return Job(benchmark="BV", chiplet_width=4, rows=1, cols=2, seed=seed)


def _payload(seed):
    return {"record_type": "comparison", "seed": seed, "blob": "x" * 512}


@pytest.fixture()
def warm_cache(tmp_path):
    """Four entries with distinct hit counts and mtimes, oldest first."""
    cache = ResultCache(tmp_path / "cache")
    keys = []
    now = time.time()
    for seed in range(4):
        job = _job(seed)
        key = config_key(job)
        path = cache.put(key, job, _payload(seed))
        os.utime(path, (now - 1000 + seed, now - 1000 + seed))
        keys.append(key)
    # seed 2 gets two hits, seed 3 one hit; 0 and 1 stay cold
    cache.get(keys[2])
    cache.get(keys[2])
    cache.get(keys[3])
    return cache, keys


class TestEvictionRanking:
    def test_ranking_orders_by_hits_then_recency(self, warm_cache):
        cache, keys = warm_cache
        ranking = cache.eviction_ranking()
        assert [entry["key"] for entry in ranking] == [
            keys[0],  # 0 hits, oldest
            keys[1],  # 0 hits, newer
            keys[3],  # 1 hit
            keys[2],  # 2 hits — most valuable, evicted last
        ]
        assert all(entry["bytes"] > 0 for entry in ranking)

    def test_a_get_refreshes_an_entrys_rank(self, warm_cache):
        cache, keys = warm_cache
        cache.get(keys[0])
        cache.get(keys[0])
        cache.get(keys[0])
        ranking = cache.eviction_ranking()
        assert ranking[-1]["key"] == keys[0]  # 3 hits: now the most valuable

    def test_evict_ranked_removes_the_head_until_under_cap(self, warm_cache):
        cache, keys = warm_cache
        ranking = cache.eviction_ranking()
        total = sum(entry["bytes"] for entry in ranking)
        # cap sized to force out exactly the two cold entries
        cap = total - ranking[0]["bytes"] - ranking[1]["bytes"]
        result = cache.evict_ranked(cap)
        assert result["removed"] == 2
        assert result["total_bytes"] <= cap
        assert cache.peek(keys[0]) is None
        assert cache.peek(keys[1]) is None
        assert cache.peek(keys[2]) is not None
        assert cache.peek(keys[3]) is not None

    def test_evict_ranked_is_a_noop_under_the_cap(self, warm_cache):
        cache, _keys = warm_cache
        result = cache.evict_ranked(10 * 1024 * 1024)
        assert result["removed"] == 0
        assert len(cache) == 4


class TestCacheStatsRankCli:
    def test_rank_access_prints_the_daemons_exact_order(self, warm_cache, capsys):
        cache, keys = warm_cache
        assert main(["cache-stats", "--cache-dir", str(cache.cache_dir), "--rank", "access"]) == 0
        out = capsys.readouterr().out
        positions = {key: out.index(key[:16]) for key in keys}
        assert positions[keys[0]] < positions[keys[1]] < positions[keys[3]] < positions[keys[2]]

    def test_rank_access_json_document(self, warm_cache, capsys):
        cache, keys = warm_cache
        assert main(
            ["cache-stats", "--cache-dir", str(cache.cache_dir), "--rank", "access", "--json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert [entry["key"] for entry in document] == [keys[0], keys[1], keys[3], keys[2]]
        assert [entry["rank"] for entry in document] == [1, 2, 3, 4]
        assert document[0]["hits"] == 0
        assert document[-1]["hits"] == 2

    def test_rank_access_on_an_empty_cache(self, tmp_path, capsys):
        assert main(["cache-stats", "--cache-dir", str(tmp_path / "none"), "--rank", "access"]) == 0
        assert "empty" in capsys.readouterr().out


class TestCleanCacheCli:
    def test_max_mb_dry_run_matches_the_real_eviction(self, warm_cache, capsys):
        cache, _keys = warm_cache
        total_mb = sum(e["bytes"] for e in cache.eviction_ranking()) / 1048576
        cap = f"{total_mb / 2:.6f}"
        assert main(
            ["clean-cache", "--cache-dir", str(cache.cache_dir), "--max-mb", cap, "--dry-run"]
        ) == 0
        preview = capsys.readouterr().out
        assert "would evict" in preview
        assert main(["clean-cache", "--cache-dir", str(cache.cache_dir), "--max-mb", cap]) == 0
        real = capsys.readouterr().out
        # dry run predicted exactly what the real pass then did
        assert preview.replace("would evict", "evicted") == real

    def test_watch_requires_a_policy(self, tmp_path, capsys):
        assert main(["clean-cache", "--cache-dir", str(tmp_path), "--watch"]) == 2
        assert "needs at least one policy" in capsys.readouterr().err

    def test_max_cycles_requires_watch(self, tmp_path, capsys):
        assert main(["clean-cache", "--cache-dir", str(tmp_path), "--max-cycles", "1"]) == 2
        assert "--max-cycles requires --watch" in capsys.readouterr().err

    def test_watch_rejects_dry_run(self, tmp_path, capsys):
        assert main(
            ["clean-cache", "--cache-dir", str(tmp_path), "--watch", "--max-mb", "1", "--dry-run"]
        ) == 2
        assert "drop --dry-run" in capsys.readouterr().err

    def test_daemon_cycles_combine_ttl_and_ranked_eviction(self, warm_cache, capsys):
        cache, keys = warm_cache
        # TTL sweeps nothing (entries are seconds old, threshold is 1 day);
        # the cap pass evicts the two cold entries — all in one daemon cycle
        ranking = cache.eviction_ranking()
        keep_bytes = sum(e["bytes"] for e in ranking[2:])
        cap_mb = f"{(keep_bytes + 10) / 1048576:.6f}"
        assert main(
            [
                "clean-cache", "--cache-dir", str(cache.cache_dir), "--watch",
                "--interval", "0.05", "--max-cycles", "2",
                "--older-than", "1", "--max-mb", cap_mb,
            ]
        ) == 0
        captured = capsys.readouterr()
        assert "stopped after 2 cycle(s)" in captured.err
        lines = [line for line in captured.out.splitlines() if "evicted" in line]
        assert len(lines) == 2  # one ranked pass per cycle
        assert "evicted 2" in lines[0]  # first cycle did the work
        assert "evicted 0" in lines[1]  # second cycle found a healthy cache
        assert cache.peek(keys[2]) is not None
        assert cache.peek(keys[3]) is not None
        assert len(cache) == 2
