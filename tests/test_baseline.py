"""Unit and integration tests for the SABRE-style baseline compiler."""

import pytest

from repro.baseline import BaselineCompiler, SabreRouter, compact_layout, initial_layout, trivial_layout
from repro.circuits import Circuit
from repro.hardware import ChipletArray
from repro.programs import qft_circuit, random_two_qubit_circuit

from helpers import assert_all_two_qubit_ops_coupled, assert_semantically_equivalent


@pytest.fixture(scope="module")
def small_array():
    return ChipletArray("square", 3, 1, 2)


class TestLayouts:
    def test_trivial_layout(self, small_array):
        layout = trivial_layout(5, small_array.topology)
        assert layout == {i: i for i in range(5)}

    def test_compact_layout_is_injective_and_connected(self, small_array):
        topo = small_array.topology
        layout = compact_layout(10, topo)
        positions = list(layout.values())
        assert len(set(positions)) == 10
        sub = topo.graph.subgraph(positions)
        import networkx as nx

        assert nx.is_connected(sub)

    def test_layout_too_large_rejected(self, small_array):
        with pytest.raises(ValueError):
            trivial_layout(small_array.num_qubits + 1, small_array.topology)
        with pytest.raises(ValueError):
            initial_layout(3, small_array.topology, "fancy")


class TestSabreRouting:
    def test_already_routable_circuit_gets_no_swaps(self, small_array):
        topo = small_array.topology
        a, b = topo.on_chip_edges()[0]
        circuit = Circuit(2).cx(0, 1)
        result = SabreRouter(topo).run(circuit, layout={0: a, 1: b})
        assert result.stats["swaps_inserted"] == 0
        assert result.circuit.count_ops() == {"cx": 1}

    def test_all_operations_on_couplers(self, small_array):
        circuit = random_two_qubit_circuit(6, 40, seed=2)
        result = BaselineCompiler(small_array.topology).compile(circuit)
        assert_all_two_qubit_ops_coupled(result)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_routing_preserves_semantics(self, small_array, seed):
        circuit = random_two_qubit_circuit(5, 25, seed=seed)
        result = BaselineCompiler(small_array.topology).compile(circuit)
        assert_semantically_equivalent(circuit, result)

    def test_measurements_and_one_qubit_gates_pass_through(self, small_array):
        circuit = Circuit(3).h(0).cx(0, 2).measure(2).rz(0.3, 1)
        result = BaselineCompiler(small_array.topology).compile(circuit)
        counts = result.circuit.count_ops()
        assert counts["measure"] == 1
        assert counts["h"] == 1
        assert counts["rz"] == 1

    def test_final_layout_tracks_swaps(self, small_array):
        circuit = random_two_qubit_circuit(5, 30, seed=3)
        result = BaselineCompiler(small_array.topology).compile(circuit)
        assert set(result.final_layout) == set(result.initial_layout)
        assert len(set(result.final_layout.values())) == 5

    def test_multi_qubit_ops_rejected(self, small_array):
        from repro.circuits import gates as g

        circuit = Circuit(4)
        circuit.append(g.multi_target_cx(0, [1, 2]))
        with pytest.raises(ValueError):
            SabreRouter(small_array.topology).run(circuit)

    def test_duplicate_layout_rejected(self, small_array):
        circuit = Circuit(2).cx(0, 1)
        with pytest.raises(ValueError):
            SabreRouter(small_array.topology).run(circuit, layout={0: 3, 1: 3})

    def test_commutation_aware_mode_runs(self, small_array):
        circuit = qft_circuit(6, measure=False)
        strict = BaselineCompiler(small_array.topology).compile(circuit)
        relaxed = BaselineCompiler(
            small_array.topology, respect_commutation=True
        ).compile(circuit)
        assert_all_two_qubit_ops_coupled(relaxed)
        assert relaxed.circuit.num_ops("cx", "cp", "swap") > 0
        assert strict.compiler == relaxed.compiler == "baseline"

    def test_trials_keep_best_result(self, small_array):
        circuit = random_two_qubit_circuit(6, 40, seed=4)
        single = BaselineCompiler(small_array.topology, trials=1).compile(circuit)
        multi = BaselineCompiler(small_array.topology, trials=3).compile(circuit)
        assert multi.eff_cnots <= single.eff_cnots + 1e-9
        assert multi.stats["trials"] == 3.0

    def test_invalid_trials(self, small_array):
        with pytest.raises(ValueError):
            BaselineCompiler(small_array.topology, trials=0)

    def test_depth_grows_with_distance(self):
        """Routing a CNOT between far corners costs more than between neighbours."""
        array = ChipletArray("square", 4, 1, 2)
        topo = array.topology
        near = Circuit(2).cx(0, 1)
        far = Circuit(2).cx(0, 1)
        r_near = SabreRouter(topo).run(near, layout={0: 0, 1: 1})
        corner = array.qubit_at((3, 7))
        r_far = SabreRouter(topo).run(far, layout={0: 0, 1: corner})
        assert r_far.metrics().depth > r_near.metrics().depth
        assert r_far.stats["swaps_inserted"] >= 4
