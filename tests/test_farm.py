"""Unit and integration tests for the compile-farm subsystem.

Covers the protocol-v2 schema (including that the v1 wire format is
untouched), the lease queue's transition semantics — the attempt-budget
invariant above all — the coordinator served over real TCP against a
hand-rolled worker client, the launcher plumbing, and an in-process
``run_farm`` smoke (real subprocess workers).
"""

import json
import time

import pytest

from repro.experiments.engine import (
    Job,
    JobError,
    JobPolicy,
    ResultCache,
    config_key,
    job_to_dict,
    read_journal,
)
from repro.farm import FarmCoordinator, LeaseQueue, LocalWorkerLauncher, run_farm
from repro.farm.launcher import render_worker_command
from repro.farm.queue import COMPLETED, FAILED, LEASED, PENDING
from repro.farm.schema import (
    Lease,
    claim_request,
    complete_request,
    fail_request,
    heartbeat_request,
    parse_claim,
    parse_complete,
    parse_fail,
    parse_heartbeat,
    progress_request,
)
from repro.serve.client import ServeClient
from repro.serve.schema import (
    FARM_PROTOCOL_VERSION,
    SERVE_PROTOCOL_VERSION,
    WORK_STATS_VERSION,
    ServeProtocolError,
    ServeRequest,
    ServeResponse,
    decode_line,
    encode_message,
    work_stats,
)


def _job(benchmark="BV", seed=0):
    return Job(benchmark=benchmark, chiplet_width=4, rows=1, cols=2, seed=seed)


def _error(key, attempts=1):
    return JobError(
        key=key,
        benchmark="BV",
        kind="comparison",
        error_type="ValueError",
        message="boom",
        traceback_tail="",
        attempts=attempts,
        seconds=0.1,
    )


class TestProtocolV2Schema:
    def test_v1_wire_format_is_byte_identical_to_before(self):
        request = ServeRequest(op="ping", request_id="r1")
        assert json.loads(encode_message(request)) == {
            "protocol": 1,
            "op": "ping",
            "request_id": "r1",
        }

    def test_v1_rejects_farm_ops(self):
        with pytest.raises(ServeProtocolError, match="unknown op 'claim' for protocol 1"):
            ServeRequest(op="claim", request_id="r1")

    def test_v2_requires_a_body_for_work_ops(self):
        with pytest.raises(ServeProtocolError, match="must carry a body"):
            ServeRequest(op="claim", request_id="r1", protocol=FARM_PROTOCOL_VERSION)

    def test_v2_control_ops_need_no_body(self):
        request = ServeRequest(op="stats", request_id="r1", protocol=FARM_PROTOCOL_VERSION)
        assert request.body is None

    def test_request_round_trips_through_the_wire(self):
        request = claim_request("w1", 3)
        decoded = decode_line(encode_message(request), ServeRequest)
        assert decoded == request
        assert decoded.protocol == FARM_PROTOCOL_VERSION

    def test_response_round_trips_with_protocol(self):
        response = ServeResponse(
            request_id="r9", ok=True, payload={"x": 1}, protocol=FARM_PROTOCOL_VERSION
        )
        assert decode_line(encode_message(response), ServeResponse) == response

    def test_unknown_protocol_version_fails_loudly(self):
        with pytest.raises(ServeProtocolError, match="unknown protocol version 3"):
            ServeRequest(op="ping", request_id="r1", protocol=3)

    def test_lease_round_trip(self):
        lease = Lease(
            key="k1",
            job=job_to_dict(_job()),
            attempt=1,
            policy={"timeout": 5.0, "retries": 0, "reseed_on_retry": False, "on_error": "record"},
            deadline_unix=123.5,
        )
        assert Lease.from_dict(lease.to_dict()) == lease

    def test_lease_validation_rejects_garbage(self):
        with pytest.raises(ServeProtocolError, match="missing a string 'key'"):
            Lease.from_dict({"job": {}, "attempt": 0, "policy": {}, "deadline_unix": 0})

    def test_parsers_invert_constructors(self):
        assert parse_claim(claim_request("w1", 4)) == ("w1", 4)
        assert parse_complete(complete_request("w1", "k", {"a": 1})) == ("w1", "k", {"a": 1})
        worker, key, err = parse_fail(fail_request("w1", "k", {"message": "x"}))
        assert (worker, key, err) == ("w1", "k", {"message": "x"})
        assert parse_heartbeat(heartbeat_request("w1", ["a", "b"])) == ("w1", ["a", "b"])
        assert progress_request().op == "progress"

    def test_parse_claim_defaults_and_validates_max_jobs(self):
        request = ServeRequest(
            op="claim",
            request_id="r1",
            protocol=FARM_PROTOCOL_VERSION,
            body={"worker_id": "w1"},
        )
        assert parse_claim(request) == ("w1", 1)
        bad = ServeRequest(
            op="claim",
            request_id="r2",
            protocol=FARM_PROTOCOL_VERSION,
            body={"worker_id": "w1", "max_jobs": 0},
        )
        with pytest.raises(ServeProtocolError, match="positive int"):
            parse_claim(bad)

    def test_work_stats_schema_is_versioned_and_validated(self):
        stats = work_stats(total=4, queue_depth=1, in_flight=2, completed=1, failed=0)
        assert stats["work_stats_version"] == WORK_STATS_VERSION
        assert stats["total"] == 4
        with pytest.raises(ValueError, match="non-negative"):
            work_stats(total=-1, queue_depth=0, in_flight=0, completed=0, failed=0)


class TestLeaseQueue:
    def _queue(self, n=3, retries=1, lease_seconds=15.0):
        pending = {}
        for i in range(n):
            job = _job(seed=i)
            pending[config_key(job)] = job
        return LeaseQueue(pending, policy=JobPolicy(retries=retries), lease_seconds=lease_seconds), list(pending)

    def test_claim_hands_out_single_attempt_policies(self):
        queue, _keys = self._queue(retries=2)
        (lease,) = queue.claim("w1", 1)
        assert lease.policy == {
            "timeout": None,
            "retries": 0,
            "reseed_on_retry": False,
            "on_error": "record",
        }
        assert lease.attempt == 0

    def test_claim_respects_max_jobs_and_insertion_order(self):
        queue, keys = self._queue(n=3)
        leases = queue.claim("w1", 2)
        assert [lease.key for lease in leases] == keys[:2]
        assert queue.counts() == {PENDING: 1, LEASED: 2, COMPLETED: 0, FAILED: 0}

    def test_complete_is_idempotent(self):
        queue, keys = self._queue(n=1)
        queue.claim("w1", 1)
        assert queue.complete(keys[0], "w1") is True
        assert queue.complete(keys[0], "w1") is False  # duplicate: no double-store
        assert queue.entry_state(keys[0]) == COMPLETED
        assert queue.done() is True

    def test_fail_requeues_until_the_budget_is_exhausted(self):
        queue, keys = self._queue(n=1, retries=1)
        key = keys[0]
        queue.claim("w1", 1)
        assert queue.fail(key, "w1", _error(key)) is True  # attempt 1 of 2: requeue
        (lease,) = queue.claim("w2", 1)
        assert lease.attempt == 1
        assert queue.fail(key, "w2", _error(key, attempts=2)) is False  # budget gone
        assert queue.entry_state(key) == FAILED
        assert queue.done() is True
        assert [e.attempts for e in queue.failed_errors()] == [2]

    def test_stale_failure_from_an_expired_lease_is_ignored(self):
        queue, keys = self._queue(n=1, retries=3, lease_seconds=0.01)
        key = keys[0]
        queue.claim("w1", 1)
        time.sleep(0.02)
        (lease,) = queue.claim("w2", 1)  # expiry reclaims, re-leases to w2
        assert lease.attempt == 1
        assert queue.fail(key, "w1", _error(key)) is False  # w1 is stale
        assert queue.entry_state(key) == LEASED

    def test_expiry_preserves_the_attempt_count(self):
        queue, keys = self._queue(n=1, retries=1, lease_seconds=0.01)
        key = keys[0]
        queue.claim("w1", 1)
        transitions = queue.expire(now=time.time() + 1)
        assert transitions == [(key, "requeued")]
        (lease,) = queue.claim("w2", 1)
        assert lease.attempt == 1  # the lost attempt still counted
        transitions = queue.expire(now=time.time() + 10)
        assert transitions == [(key, "failed")]
        (error,) = queue.failed_errors()
        assert error.error_type == "WorkerLostError"
        assert error.attempts == 2
        # the budget is spent: nothing left to claim
        assert queue.claim("w3", 1) == []

    def test_late_complete_from_a_presumed_dead_worker_is_salvaged(self):
        queue, keys = self._queue(n=1, retries=0, lease_seconds=0.01)
        key = keys[0]
        queue.claim("w1", 1)
        queue.expire(now=time.time() + 1)  # w1 presumed dead -> permanent failure
        assert queue.entry_state(key) == FAILED
        assert queue.complete(key, "w1") is True  # the late result rescues it
        assert queue.entry_state(key) == COMPLETED
        assert queue.failed_errors() == []

    def test_heartbeat_extends_only_the_callers_live_leases(self):
        queue, keys = self._queue(n=2, lease_seconds=0.05)
        queue.claim("w1", 1)
        queue.claim("w2", 1)
        assert queue.heartbeat("w1", keys) == 1  # w2's lease is not w1's to extend
        time.sleep(0.06)
        assert queue.heartbeat("w1", [keys[0]]) == 1  # still leased until expire runs

    def test_reseed_on_retry_is_applied_coordinator_side(self):
        job = _job()
        key = config_key(job)
        queue = LeaseQueue(
            {key: job},
            policy=JobPolicy(retries=1, reseed_on_retry=True),
            lease_seconds=15.0,
        )
        (first,) = queue.claim("w1", 1)
        assert first.job["seed"] == job.seed
        queue.fail(key, "w1", _error(key))
        (second,) = queue.claim("w1", 1)
        assert second.key == key  # the result still lands under the original key
        assert second.job["seed"] == job.seed + 1


class TestCoordinatorOverTcp:
    """Drive a live coordinator with a hand-rolled protocol-v2 client."""

    @pytest.fixture()
    def farm(self, tmp_path):
        jobs = [_job(seed=0), _job(seed=1)]
        cache = ResultCache(tmp_path / "cache")
        coordinator = FarmCoordinator(
            jobs,
            cache=cache,
            policy=JobPolicy(retries=1),
            lease_seconds=10.0,
            checkpoint=tmp_path / "farm.checkpoint.json",
            checkpoint_meta={"experiment": "table2"},
        )
        coordinator.start()
        yield coordinator, cache
        coordinator.shutdown()

    def test_claim_execute_complete_drains_the_queue(self, farm):
        from repro.experiments.engine import _execute_keyed

        coordinator, cache = farm
        with ServeClient(coordinator.host, coordinator.port) as client:
            while True:
                payload = client.request(claim_request("w1", 2)).payload
                leases = [Lease.from_dict(item) for item in payload["leases"]]
                if not leases:
                    assert payload["done"] is True
                    break
                for lease in leases:
                    key, result = _execute_keyed((lease.key, lease.job, lease.policy))
                    assert "job_error" not in result
                    reply = client.request(complete_request("w1", key, result))
                    assert reply.payload["accepted"] is True
        assert coordinator.wait(timeout=5.0) is True
        assert len(coordinator.records()) == 2
        assert len(cache) == 2  # results landed in the shared cache
        # the checkpoint compacted to finished and the journal has the story
        doc = json.loads(coordinator.checkpoint_path.read_text())
        assert doc["finished"] is True
        events = [entry["event"] for entry in read_journal(coordinator.journal_path)]
        assert events.count("lease") == 2
        assert events.count("complete") == 2
        assert events[0] == "plan"

    def test_progress_reply_reuses_the_work_stats_schema(self, farm):
        coordinator, _cache = farm
        with ServeClient(coordinator.host, coordinator.port) as client:
            client.request(claim_request("w1", 1))
            payload = client.request(progress_request()).payload
        queue = payload["queue"]
        assert queue["work_stats_version"] == WORK_STATS_VERSION
        assert queue["total"] == 2
        assert queue["in_flight"] == 1
        assert queue["queue_depth"] == 1
        assert payload["done"] is False

    def test_v1_ping_and_stats_still_work_against_a_coordinator(self, farm):
        coordinator, _cache = farm
        with ServeClient(coordinator.host, coordinator.port) as client:
            assert client.ping().ok is True
            stats = client.stats()
        assert stats["queue"]["total"] == 2

    def test_reported_failure_consumes_the_budget_and_journals(self, farm):
        coordinator, _cache = farm
        with ServeClient(coordinator.host, coordinator.port) as client:
            (lease_dict,) = client.request(claim_request("w1", 1)).payload["leases"]
            key = lease_dict["key"]
            error = _error(key).__dict__
            assert client.request(fail_request("w1", key, dict(error))).payload["requeued"] is True
            (again,) = client.request(claim_request("w1", 1)).payload["leases"]
            assert again["key"] == key
            assert again["attempt"] == 1
            assert (
                client.request(fail_request("w1", key, dict(error))).payload["requeued"] is False
            )
        errors = coordinator.errors()
        assert [e.key for e in errors] == [key]

    def test_compile_op_is_redirected_to_repro_serve(self, farm):
        coordinator, _cache = farm
        with ServeClient(coordinator.host, coordinator.port) as client:
            response = client.request(
                ServeRequest(op="compile", request_id="c1", job=job_to_dict(_job()))
            )
        assert response.ok is False
        assert "repro serve" in response.error

    def test_cached_jobs_are_never_dispatched(self, tmp_path):
        from repro.experiments.engine import _execute_keyed

        cache = ResultCache(tmp_path / "cache")
        job = _job()
        key, payload = _execute_keyed((config_key(job), job_to_dict(job), {}))
        cache.put(key, job, payload)
        coordinator = FarmCoordinator([job], cache=cache)
        coordinator.start()
        try:
            assert coordinator.wait(timeout=0.5) is True  # done before any worker
            with ServeClient(coordinator.host, coordinator.port) as client:
                reply = client.request(claim_request("w1", 4)).payload
            assert reply["leases"] == []
            assert reply["done"] is True
            assert len(coordinator.records()) == 1
            assert coordinator.report().cache_hits == 1
        finally:
            coordinator.shutdown()


class TestLauncher:
    def test_render_worker_command_substitutes_placeholders(self):
        command = render_worker_command(
            "ssh node{index} repro farm-worker --connect {host}:{port} --workers {workers}",
            index=3,
            host="10.0.0.1",
            port=7464,
            workers=2,
        )
        assert command == "ssh node3 repro farm-worker --connect 10.0.0.1:7464 --workers 2"

    def test_render_worker_command_rejects_unknown_placeholders(self):
        with pytest.raises(ValueError, match="unknown placeholder"):
            render_worker_command("run {cluster}", index=0, host="h", port=1, workers=1)

    def test_local_launcher_validates_threads(self):
        with pytest.raises(ValueError, match="threads"):
            LocalWorkerLauncher(threads=0)


class TestRunFarm:
    def test_run_farm_with_local_workers_produces_records(self, tmp_path):
        jobs = [_job(seed=0), _job(seed=1), _job(seed=2)]
        records, report = run_farm(
            jobs,
            launcher=LocalWorkerLauncher(threads=2, log_dir=tmp_path / "logs"),
            workers=1,
            cache=ResultCache(tmp_path / "cache"),
            policy=JobPolicy(timeout=300, retries=1),
            checkpoint=tmp_path / "farm.checkpoint.json",
        )
        assert len(records) == 3
        assert report.failed == 0
        assert report.executed == 3
        doc = json.loads((tmp_path / "farm.checkpoint.json").read_text())
        assert doc["finished"] is True

    def test_run_farm_skips_workers_when_everything_is_cached(self, tmp_path):
        class ExplodingLauncher:
            def launch(self, index, host, port):  # pragma: no cover - must not run
                raise AssertionError("launched a worker for a fully cached run")

        jobs = [_job(seed=0)]
        cache = ResultCache(tmp_path / "cache")
        records, _report = run_farm(
            jobs,
            launcher=LocalWorkerLauncher(threads=1),
            workers=1,
            cache=cache,
        )
        assert len(records) == 1
        records, report = run_farm(
            jobs, launcher=ExplodingLauncher(), workers=4, cache=cache
        )
        assert len(records) == 1
        assert report.cache_hits == 1

    def test_run_farm_validates_workers(self):
        with pytest.raises(ValueError, match="workers"):
            run_farm([_job()], launcher=LocalWorkerLauncher(), workers=0)
