"""Golden-output equivalence suite for the vectorized routing cores (PR 5).

``tests/goldens/routing_goldens.json`` pins the exact routed output — swap
sequence, operation counts, depth, effective CNOTs, final layout — that the
*pre-vectorization* SABRE router and MECH scheduler produced for fixed-seed
GHZ/QFT/QAOA inputs at two device sizes, for **every registered backend**
(the PR-4 contract surface).  The optimized hot paths must reproduce those
circuits bit for bit, which is what keeps every paper figure unchanged.

If a future PR changes routing behaviour *on purpose*, regenerate with::

    PYTHONPATH=src python tests/goldens/generate_goldens.py
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "goldens"))

from generate_goldens import (  # noqa: E402  (path inserted above)
    GOLDEN_PATH,
    build_case_circuit,
    record_result,
)
from repro.backends import available_backends, get_backend  # noqa: E402
from repro.baseline.sabre import SabreRouter  # noqa: E402
from repro.hardware.array import ChipletArray  # noqa: E402
from repro.highway.layout import HighwayLayout  # noqa: E402
from repro.programs import qft_circuit  # noqa: E402

GOLDENS = json.loads(Path(GOLDEN_PATH).read_text())

#: Fields a case must reproduce exactly (everything record_result captures).
COMPARED_FIELDS = (
    "num_operations",
    "op_counts",
    "swap_sequence",
    "depth",
    "eff_cnots",
    "swaps_inserted",
    "final_layout",
)


@pytest.fixture(scope="module")
def environments():
    """Shared arrays/layouts/circuits so 24 cases build each device once."""
    built = {}
    for case in GOLDENS["cases"]:
        key = tuple(case["array"])
        if key not in built:
            structure, width, rows, cols = case["array"]
            array = ChipletArray(structure, width, rows, cols)
            built[key] = (array, HighwayLayout(array, density=1), {})
    return built


def test_goldens_cover_every_registered_backend():
    """New backends must be added to the golden suite, not silently skipped."""
    recorded = {case["backend"] for case in GOLDENS["cases"]}
    assert set(available_backends()) <= recorded


def test_golden_file_shape():
    assert GOLDENS["version"] == 1
    assert len(GOLDENS["cases"]) >= 24
    for case in GOLDENS["cases"]:
        for field in COMPARED_FIELDS:
            assert field in case, f"{case['case']} lacks {field}"


@pytest.mark.parametrize(
    "case", GOLDENS["cases"], ids=[c["case"] for c in GOLDENS["cases"]]
)
def test_routed_output_matches_golden(case, environments):
    array, layout, circuits = environments[tuple(case["array"])]
    benchmark = case["benchmark"]
    if benchmark not in circuits:
        circuits[benchmark] = build_case_circuit(benchmark, case["num_data_qubits"])
    backend = get_backend(case["backend"]).configure(
        array, seed=case["seed"], layout=layout
    )
    result = backend.compile(circuits[benchmark])
    recorded = record_result(result)
    for field in COMPARED_FIELDS:
        assert recorded[field] == case[field], (
            f"{case['case']}: optimized router diverged on {field!r} — routing"
            " is no longer output-identical to the recorded implementation"
        )


class TestScalarFallbackEquivalence:
    """The batched scorer and the historic scalar scorer agree bit for bit
    whenever the distance matrix is integral (the default everywhere)."""

    def test_batched_and_scalar_scores_identical(self):
        from repro.baseline.sabre import _base_sum, _partner_csr

        array = ChipletArray("square", 4, 1, 2)
        topo = array.topology
        router = SabreRouter(topo, seed=3)
        assert router._exact_distances
        circuit = qft_circuit(topo.num_qubits - 4)
        num_logical = circuit.num_qubits
        rng = np.random.default_rng(0)
        l2p = np.arange(topo.num_qubits, dtype=np.int64)
        rng.shuffle(l2p)
        l2p = l2p[:num_logical]
        p2l = np.full(topo.num_qubits, -1, dtype=np.int64)
        p2l[l2p] = np.arange(num_logical)
        front_list = [(0, 5), (1, 9), (2, 5), (0, 5)]  # duplicate pair on purpose
        ext_list = [(3, 7), (0, 5), (4, 8)]
        front_pairs = np.asarray(front_list, dtype=np.int64)
        ext_pairs = np.asarray(ext_list, dtype=np.int64)
        decay = np.ones(topo.num_qubits)
        decay[3] = 1.002
        candidates = router._candidate_swaps(front_pairs, l2p)
        batched, delta_front, delta_ext = router._score_swaps_batched(
            candidates,
            front_pairs,
            ext_pairs,
            _partner_csr(
                dict.fromkeys(front_list), dict.fromkeys(ext_list), num_logical
            ),
            _base_sum(router._distance, l2p, front_pairs),
            _base_sum(router._distance, l2p, ext_pairs),
            l2p,
            p2l,
            decay,
        )
        scalar = router._score_swaps_scalar(
            candidates, front_pairs, ext_pairs, l2p, decay
        )
        assert batched.tolist() == scalar.tolist()
        assert len(delta_front) == len(candidates) == len(delta_ext)

    def test_non_integer_distances_use_scalar_path(self):
        array = ChipletArray("square", 4, 1, 2)
        router = SabreRouter(array.topology, cross_chip_weight=1.5)
        # 1.5 is exactly representable, sums may not stay integral -> fallback
        assert not router._exact_distances

    def test_non_integer_weight_routing_still_works(self):
        array = ChipletArray("square", 4, 1, 2)
        router = SabreRouter(array.topology, cross_chip_weight=2.5)
        circuit = qft_circuit(8)
        result = router.run(circuit)
        assert result.stats["swaps_inserted"] >= 0
        assert result.metrics().depth > 0


class TestPartialLayoutRejected:
    """A partial explicit layout must fail loudly (the historic dict-based
    mapping raised KeyError at the first unmapped gate; the index-array
    mapping rejects it up front instead of routing qubit -1)."""

    def test_partial_layout_raises(self):
        from repro.circuits.circuit import Circuit

        array = ChipletArray("square", 4, 1, 2)
        router = SabreRouter(array.topology, seed=0)
        circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2)
        with pytest.raises(ValueError, match="does not map logical qubit 2"):
            router.run(circuit, layout={0: 0, 1: 1})

    def test_idle_unmapped_qubit_still_allowed(self):
        from repro.circuits.circuit import Circuit

        array = ChipletArray("square", 4, 1, 2)
        router = SabreRouter(array.topology, seed=0)
        circuit = Circuit(3).h(0).cx(0, 1)  # qubit 2 never used
        result = router.run(circuit, layout={0: 0, 1: 1})
        assert result.final_layout == {0: 0, 1: 1}

    def test_out_of_range_layout_key_rejected(self):
        from repro.circuits.circuit import Circuit

        array = ChipletArray("square", 4, 1, 2)
        router = SabreRouter(array.topology, seed=0)
        with pytest.raises(ValueError, match="outside"):
            router.run(Circuit(2).cx(0, 1), layout={0: 0, 1: 1, 7: 2})
