"""Unit tests for the circuit gadgets (repro.circuits.library)."""

import numpy as np
import pytest

from repro.circuits import (
    Circuit,
    Simulator,
    bridge_cnot,
    circuit_unitary,
    cluster_state_circuit,
    expand_macros,
    ghz_chain_circuit,
    statevectors_equal,
    swap_to_cnots,
)
from repro.circuits import gates as g


class TestSwapAndBridge:
    def test_swap_decomposition_is_three_cnots(self):
        ops = swap_to_cnots(0, 1)
        assert len(ops) == 3
        assert all(op.name == "cx" for op in ops)

    def test_swap_decomposition_matches_swap_unitary(self):
        c = Circuit(2).extend(swap_to_cnots(0, 1))
        assert np.allclose(circuit_unitary(c), g.swap(0, 1).matrix())

    def test_bridge_cnot_is_four_cnots(self):
        ops = bridge_cnot(0, 1, 2)
        assert len(ops) == 4
        assert all(op.name == "cx" for op in ops)

    def test_bridge_cnot_implements_cnot_and_restores_middle(self):
        bridge = Circuit(3).extend(bridge_cnot(0, 1, 2))
        direct = Circuit(3).cx(0, 2)
        assert np.allclose(circuit_unitary(bridge), circuit_unitary(direct), atol=1e-9)

    def test_bridge_cnot_only_touches_neighbouring_pairs(self):
        # the point of the bridge: no operation directly couples 0 and 2
        for op in bridge_cnot(0, 1, 2):
            assert set(op.qubits) != {0, 2}


class TestStatePreparations:
    def test_ghz_chain_prepares_ghz(self):
        c = ghz_chain_circuit([0, 1, 2, 3])
        probs = Simulator(4, seed=0).run(c).probabilities()
        assert np.isclose(probs[0], 0.5) and np.isclose(probs[-1], 0.5)

    def test_ghz_chain_on_sublist_of_qubits(self):
        c = ghz_chain_circuit([1, 3], num_qubits=4)
        probs = Simulator(4, seed=0).run(c).probabilities()
        assert np.isclose(probs[0b0000], 0.5)
        assert np.isclose(probs[0b0101], 0.5)

    def test_ghz_chain_rejects_empty(self):
        with pytest.raises(ValueError):
            ghz_chain_circuit([])

    def test_cluster_state_two_qubits(self):
        c = cluster_state_circuit([(0, 1)], [0, 1])
        state = Simulator(2, seed=0).run(c).statevector
        expected = np.array([1, 1, 1, -1], dtype=complex) / 2.0
        assert statevectors_equal(state, expected)

    def test_cluster_state_counts(self):
        c = cluster_state_circuit([(0, 1), (1, 2)], [0, 1, 2])
        counts = c.count_ops()
        assert counts["h"] == 3 and counts["cz"] == 2


class TestExpandMacros:
    def test_expand_swap(self):
        c = Circuit(3).swap(0, 2).h(1)
        expanded = expand_macros(c)
        assert expanded.count_ops() == {"cx": 3, "h": 1}

    def test_expand_multi_target(self):
        c = Circuit(4)
        c.append(g.multi_target_cx(0, [1, 2, 3]))
        expanded = expand_macros(c)
        assert expanded.count_ops() == {"cx": 3}

    def test_expand_preserves_semantics(self):
        c = Circuit(3).h(0).swap(0, 2).cx(2, 1)
        assert np.allclose(circuit_unitary(c), circuit_unitary(expand_macros(c)))

    def test_expand_keeps_measurements_and_barriers(self):
        c = Circuit(2).swap(0, 1).barrier().measure(0)
        expanded = expand_macros(c)
        assert expanded.num_measurements() == 1
        assert any(op.is_barrier for op in expanded)
