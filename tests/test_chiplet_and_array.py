"""Unit tests for chiplet structures and chiplet arrays (repro.hardware)."""

import networkx as nx
import pytest

from repro.hardware import (
    COUPLING_STRUCTURES,
    ChipletArray,
    build_chiplet,
    heavy_hexagon_chiplet,
    heavy_square_chiplet,
    hexagon_chiplet,
    square_chiplet,
)


class TestChipletStructures:
    def test_square_chiplet_counts(self):
        c = square_chiplet(5)
        assert c.num_qubits == 25
        assert len(c.edges) == 2 * 5 * 4  # 2*w*(w-1)

    def test_hexagon_keeps_all_sites_with_fewer_edges(self):
        sq, hx = square_chiplet(6), hexagon_chiplet(6)
        assert hx.num_qubits == sq.num_qubits == 36
        assert len(hx.edges) < len(sq.edges)

    def test_heavy_square_removes_odd_odd_sites(self):
        c = heavy_square_chiplet(8)
        assert c.num_qubits == 48  # 64 - 16, matches Table 1 (432 / 9 chiplets)
        assert not c.has_node((1, 1))
        assert c.has_node((0, 1))

    def test_heavy_hexagon_counts(self):
        c = heavy_hexagon_chiplet(8)
        assert c.num_qubits == 40  # matches Table 1 (480 / 12 chiplets)

    @pytest.mark.parametrize("name", sorted(COUPLING_STRUCTURES))
    @pytest.mark.parametrize("width", [4, 6, 8])
    def test_every_structure_is_connected(self, name, width):
        c = build_chiplet(name, width)
        g = nx.Graph()
        g.add_nodes_from(c.nodes)
        g.add_edges_from(c.edges)
        assert nx.is_connected(g)

    @pytest.mark.parametrize("name", sorted(COUPLING_STRUCTURES))
    def test_edges_connect_existing_orthogonal_neighbours(self, name):
        c = build_chiplet(name, 6)
        for (a, b) in c.edges:
            assert a in c.nodes and b in c.nodes
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    def test_boundary_nodes(self):
        c = square_chiplet(4)
        assert len(c.boundary_nodes("top")) == 4
        assert all(r == 3 for r, _ in c.boundary_nodes("bottom"))
        assert all(col == 0 for _, col in c.boundary_nodes("left"))
        with pytest.raises(ValueError):
            c.boundary_nodes("middle")

    def test_unknown_structure_rejected(self):
        with pytest.raises(ValueError):
            build_chiplet("triangular", 5)
        with pytest.raises(ValueError):
            square_chiplet(1)


class TestChipletArray:
    @pytest.mark.parametrize(
        "structure,width,rows,cols,expected_total",
        [
            ("square", 6, 3, 3, 324),      # Table 1: program-261
            ("square", 7, 3, 3, 441),      # program-360
            ("square", 8, 3, 3, 576),      # program-495
            ("square", 9, 3, 3, 729),      # program-630
            ("square", 7, 2, 2, 196),      # program-160
            ("square", 7, 2, 3, 294),      # program-240
            ("square", 7, 3, 4, 588),      # program-480
            ("square", 9, 2, 3, 486),      # program-420
            ("hexagon", 8, 2, 3, 384),     # program-312
            ("heavy_square", 8, 3, 3, 432),    # program-351
            ("heavy_hexagon", 8, 3, 4, 480),   # program-336
        ],
    )
    def test_table1_total_qubit_counts(self, structure, width, rows, cols, expected_total):
        arr = ChipletArray(structure, width, rows, cols)
        assert arr.num_qubits == expected_total

    def test_array_is_connected_and_labelled(self):
        arr = ChipletArray("square", 4, 2, 3)
        topo = arr.topology
        assert topo.is_connected()
        assert set(topo.chiplets()) == {(i, j) for i in range(2) for j in range(3)}
        # every qubit has a coordinate and chiplet
        for q in topo.qubits():
            assert topo.position(q) is not None
            assert topo.chiplet_of(q) is not None

    def test_cross_chip_edges_connect_different_chiplets(self):
        arr = ChipletArray("square", 4, 2, 2)
        topo = arr.topology
        for a, b in topo.cross_chip_edges():
            assert topo.chiplet_of(a) != topo.chiplet_of(b)
        for a, b in topo.on_chip_edges():
            assert topo.chiplet_of(a) == topo.chiplet_of(b)

    def test_dense_cross_link_count_square(self):
        # 3x3 array of w-wide square chiplets: 12 facing boundaries, w links each
        arr = ChipletArray("square", 6, 3, 3)
        assert len(arr.topology.cross_chip_edges()) == 12 * 6

    def test_sparsity_reduces_cross_links(self):
        dense = ChipletArray("square", 7, 2, 2)
        sparse3 = ChipletArray("square", 7, 2, 2, cross_links_per_edge=3)
        sparse1 = ChipletArray("square", 7, 2, 2, cross_links_per_edge=1)
        n_dense = len(dense.topology.cross_chip_edges())
        n_3 = len(sparse3.topology.cross_chip_edges())
        n_1 = len(sparse1.topology.cross_chip_edges())
        assert n_dense == 7 * 4 and n_3 == 3 * 4 and n_1 == 1 * 4
        assert sparse1.topology.is_connected()

    def test_sparse_links_include_the_middle_position(self):
        arr = ChipletArray("square", 7, 1, 2, cross_links_per_edge=1)
        (a, b), = arr.topology.cross_chip_edges()
        rows = {arr.coordinate_of(a)[0], arr.coordinate_of(b)[0]}
        assert rows == {3}  # the middle row of a 7-wide chiplet

    def test_coordinate_round_trip(self):
        arr = ChipletArray("square", 4, 2, 2)
        for q in arr.topology.qubits():
            assert arr.qubit_at(arr.coordinate_of(q)) == q
        assert arr.qubit_at((99, 99)) is None

    def test_heavy_structures_are_connected_as_arrays(self):
        for structure in ("heavy_square", "heavy_hexagon", "hexagon"):
            arr = ChipletArray(structure, 8, 2, 2)
            assert arr.topology.is_connected()

    def test_global_dimensions_and_chiplet_queries(self):
        arr = ChipletArray("square", 5, 2, 3)
        assert arr.global_rows == 10 and arr.global_cols == 15
        assert arr.num_chiplets == 6
        assert len(arr.qubits_in_chiplet((1, 2))) == 25
        assert arr.max_cross_links_per_edge() == 5

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ChipletArray("square", 4, 0, 2)
        with pytest.raises(ValueError):
            ChipletArray("square", 4, 1, 1, cross_links_per_edge=0)
        with pytest.raises(ValueError):
            ChipletArray("nonexistent", 4, 1, 2)
