"""Integration tests for the table/figure reproduction harness (small scale)."""

import pytest

from repro.experiments import (
    BENCHMARK_NAMES,
    TABLE1_SETTINGS,
    TABLE2_PAPER_REFERENCE,
    ArchitectureSetting,
    compare,
    format_fig12,
    format_fig13,
    format_fig14,
    format_fig15,
    format_fig16,
    format_records,
    format_table2,
    improvement_series,
    normalized_by_density,
    normalized_by_sparsity,
    normalized_by_structure,
    run_fig12,
    run_fig13,
    run_fig14,
    run_fig15,
    run_fig16,
    run_table2,
    scaled_setting,
)
from repro.hardware import ChipletArray
from repro.metrics import improvement


class TestSettings:
    def test_table1_settings_build(self):
        setting = TABLE1_SETTINGS["program-360"]
        array = setting.build_array()
        assert array.num_qubits == 441
        assert setting.num_chiplets == 9

    def test_scaled_setting_shrinks_chiplets(self):
        setting = TABLE1_SETTINGS["program-360"]
        small = scaled_setting(setting, "small")
        assert small.chiplet_width < setting.chiplet_width
        assert (small.rows, small.cols) == (setting.rows, setting.cols)
        assert scaled_setting(setting, "paper") == setting
        with pytest.raises(ValueError):
            scaled_setting(setting, "huge")

    def test_paper_reference_improvements_are_positive(self):
        for row in TABLE2_PAPER_REFERENCE.values():
            assert improvement(row["base_depth"], row["mech_depth"]) > 0
            assert improvement(row["base_eff"], row["mech_eff"]) > 0


class TestCompare:
    @pytest.fixture(scope="class")
    def record(self):
        array = ChipletArray("square", 4, 1, 2)
        return compare("BV", array, seed=1)

    def test_record_fields(self, record):
        assert record.benchmark == "BV"
        assert record.baseline_depth > 0 and record.mech_depth > 0
        assert 0 < record.highway_qubit_fraction < 1
        assert record.num_data_qubits > 0

    def test_improvements_and_ratios_consistent(self, record):
        assert record.depth_improvement == pytest.approx(1 - record.normalized_depth)
        assert record.eff_cnots_improvement == pytest.approx(
            1 - record.normalized_eff_cnots
        )

    def test_as_dict_and_formatting(self, record):
        d = record.as_dict()
        assert "depth_improvement" in d and "eff_cnots_improvement" in d
        table = format_records([record], title="t")
        assert "BV" in table and "t" in table


class TestExperimentRunners:
    """Each figure/table runner is exercised on a deliberately tiny instance."""

    def test_table2_smallest(self):
        records = run_table2(scale="small", benchmarks=["BV"], chiplet_sizes=(4,))
        assert len(records) == 1
        text = format_table2(records)
        assert "BV" in text
        assert records[0].depth_improvement > 0

    def test_fig12_series(self):
        records = run_fig12(
            scale="small", benchmarks=["BV"], chiplet_width=4, array_shapes=((1, 2), (2, 2))
        )
        assert len(records) == 2
        series = improvement_series(records)["BV"]
        assert [count for count, _, _ in series] == [2, 4]
        assert "Fig. 12" in format_fig12(records)

    def test_fig13_sensitivity_shapes(self):
        results = run_fig13(
            scale="small",
            benchmarks=["BV"],
            meas_latencies=(1, 4, 8),
            meas_error_ratios=(1.0, 3.0),
            cross_error_ratios=(4.0, 8.0),
        )
        assert len(results) == 1
        r = results[0]
        assert len(r.depth_vs_latency) == 3
        assert len(r.eff_vs_meas_error) == 2
        assert len(r.eff_vs_cross_error) == 2
        # MECH uses more measurements, so its depth advantage shrinks with latency
        assert r.depth_vs_latency[0][1] >= r.depth_vs_latency[-1][1] - 1e-9
        # and its eff advantage grows when cross-chip links get noisier
        assert r.eff_vs_cross_error[-1][1] >= r.eff_vs_cross_error[0][1] - 1e-9
        assert "Fig. 13" in format_fig13(results)

    def test_fig14_sparsity(self):
        records = run_fig14(scale="small", benchmarks=["BV"], sparsity_levels=(4, 1))
        series = normalized_by_sparsity(records)["BV"]
        assert len(series) == 2
        assert "Fig. 14" in format_fig14(records)

    def test_fig15_density(self):
        records = run_fig15(scale="small", benchmarks=["BV"], densities=(1, 2))
        series = normalized_by_density(records)["BV"]
        fractions = [fraction for _, fraction, _, _ in series]
        assert fractions[0] < fractions[1]
        # same circuit width across densities (the paper's convention)
        assert len({r.num_data_qubits for r in records}) == 1
        assert "Fig. 15" in format_fig15(records)

    def test_fig16_structures(self):
        settings = [
            ArchitectureSetting("sq", "square", 4, 1, 2),
            ArchitectureSetting("hex", "hexagon", 4, 1, 2),
        ]
        records = run_fig16(benchmarks=["BV"], settings=settings)
        series = normalized_by_structure(records)["BV"]
        assert {s for s, _, _ in series} == {"square", "hexagon"}
        assert "Fig. 16" in format_fig16(records)

    def test_invalid_scales_rejected(self):
        with pytest.raises(ValueError):
            run_table2(scale="galactic")
        with pytest.raises(ValueError):
            run_fig12(scale="galactic")
        with pytest.raises(ValueError):
            run_fig13(scale="galactic")
        with pytest.raises(ValueError):
            run_fig14(scale="galactic")
        with pytest.raises(ValueError):
            run_fig15(scale="galactic")

    def test_benchmark_names_constant(self):
        assert BENCHMARK_NAMES == ("QFT", "QAOA", "VQE", "BV")
