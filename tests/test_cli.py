"""End-to-end tests for the ``python -m repro`` CLI."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def dirs(tmp_path):
    return {
        "cache": str(tmp_path / "cache"),
        "out": str(tmp_path / "artifacts"),
    }


def _run_fig12(dirs, *extra):
    return main(
        [
            "run",
            "fig12",
            "--scale",
            "small",
            "--benchmarks",
            "BV",
            "--jobs",
            "2",
            "--cache-dir",
            dirs["cache"],
            "--out-dir",
            dirs["out"],
            *extra,
        ]
    )


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table2", "fig12", "fig13", "fig14", "fig15", "fig16"):
            assert name in out


class TestRun:
    def test_run_writes_artifacts_and_caches(self, dirs, tmp_path, capsys):
        assert _run_fig12(dirs) == 0
        out = capsys.readouterr().out
        assert "Fig. 12" in out
        assert "0 cached, 3 executed" in out

        json_path = tmp_path / "artifacts" / "fig12.json"
        csv_path = tmp_path / "artifacts" / "fig12.csv"
        assert json_path.is_file() and csv_path.is_file()
        doc = json.loads(json_path.read_text())
        assert doc["experiment"] == "fig12"
        assert doc["scale"] == "small"
        assert len(doc["records"]) == 3
        first_records = doc["records"]

        # warm re-run: everything served from the cache, identical artifacts
        assert _run_fig12(dirs) == 0
        out = capsys.readouterr().out
        assert "3 cached, 0 executed" in out
        assert json.loads(json_path.read_text())["records"] == first_records

    def test_no_cache_disables_memoization(self, dirs, capsys):
        assert _run_fig12(dirs, "--no-cache") == 0
        assert _run_fig12(dirs, "--no-cache") == 0
        out = capsys.readouterr().out
        assert "0 cached, 3 executed" in out

    def test_unknown_experiment_is_a_usage_error(self, dirs, capsys):
        assert main(["run", "fig99", "--cache-dir", dirs["cache"]]) == 2
        err = capsys.readouterr().err
        assert "fig99" in err and "choose from" in err

    def test_unknown_scale_rejected_by_argparse(self, dirs):
        with pytest.raises(SystemExit):
            _run_fig12(dirs, "--scale", "galactic")


class TestCleanCache:
    def test_clean_cache_removes_entries(self, dirs, capsys):
        assert _run_fig12(dirs) == 0
        capsys.readouterr()
        assert main(["clean-cache", "--cache-dir", dirs["cache"]]) == 0
        assert "removed 3" in capsys.readouterr().out
        # next run recomputes
        assert _run_fig12(dirs) == 0
        assert "0 cached, 3 executed" in capsys.readouterr().out


class TestBenchmarkValidation:
    def test_unknown_benchmark_is_a_usage_error(self, dirs, capsys):
        assert main(["run", "fig12", "--benchmarks", "FOO", "--cache-dir", dirs["cache"]]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_empty_benchmarks_is_a_usage_error(self, dirs, capsys):
        assert main(["run", "fig12", "--benchmarks", "--cache-dir", dirs["cache"]]) == 2
        assert "no benchmarks given" in capsys.readouterr().err

    def test_lowercase_benchmark_shares_cache_with_uppercase(self, dirs, capsys):
        args = ["run", "fig12", "--scale", "small", "--jobs", "1",
                "--cache-dir", dirs["cache"], "--out-dir", dirs["out"]]
        assert main([*args, "--benchmarks", "bv"]) == 0
        capsys.readouterr()
        assert main([*args, "--benchmarks", "BV"]) == 0
        assert "3 cached, 0 executed" in capsys.readouterr().out
