"""End-to-end tests for the ``python -m repro`` CLI."""

import csv
import json
import os
import time

import pytest

from repro.cli import main
from repro.experiments.engine import FAULT_INJECT_ENV, ResultCache


@pytest.fixture()
def dirs(tmp_path):
    return {
        "cache": str(tmp_path / "cache"),
        "out": str(tmp_path / "artifacts"),
    }


def _run_fig12(dirs, *extra):
    return main(
        [
            "run",
            "fig12",
            "--scale",
            "small",
            "--benchmarks",
            "BV",
            "--jobs",
            "2",
            "--cache-dir",
            dirs["cache"],
            "--out-dir",
            dirs["out"],
            *extra,
        ]
    )


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table2", "fig12", "fig13", "fig14", "fig15", "fig16"):
            assert name in out


class TestRun:
    def test_run_writes_artifacts_and_caches(self, dirs, tmp_path, capsys):
        assert _run_fig12(dirs) == 0
        out = capsys.readouterr().out
        assert "Fig. 12" in out
        assert "0 cached, 3 executed" in out

        json_path = tmp_path / "artifacts" / "fig12.json"
        csv_path = tmp_path / "artifacts" / "fig12.csv"
        assert json_path.is_file() and csv_path.is_file()
        doc = json.loads(json_path.read_text())
        assert doc["experiment"] == "fig12"
        assert doc["scale"] == "small"
        assert len(doc["records"]) == 3
        first_records = doc["records"]

        # warm re-run: everything served from the cache, identical artifacts
        assert _run_fig12(dirs) == 0
        out = capsys.readouterr().out
        assert "3 cached, 0 executed" in out
        assert json.loads(json_path.read_text())["records"] == first_records

    def test_no_cache_disables_memoization(self, dirs, capsys):
        assert _run_fig12(dirs, "--no-cache") == 0
        assert _run_fig12(dirs, "--no-cache") == 0
        out = capsys.readouterr().out
        assert "0 cached, 3 executed" in out

    def test_run_verify_flag_checks_fresh_compilations(self, dirs, capsys, monkeypatch):
        from repro.experiments.engine import VERIFY_ENV

        # seed the key so monkeypatch restores the pre-test state afterwards
        # (the CLI exports VERIFY_ENV=1 for its worker processes)
        monkeypatch.setenv(VERIFY_ENV, "0")
        assert _run_fig12(dirs, "--verify") == 0
        assert os.environ[VERIFY_ENV] == "1"
        assert "0 cached, 3 executed" in capsys.readouterr().out

    def test_unknown_experiment_is_a_usage_error(self, dirs, capsys):
        assert main(["run", "fig99", "--cache-dir", dirs["cache"]]) == 2
        err = capsys.readouterr().err
        assert "fig99" in err and "choose from" in err

    def test_unknown_scale_rejected_by_argparse(self, dirs):
        with pytest.raises(SystemExit):
            _run_fig12(dirs, "--scale", "galactic")


class TestCleanCache:
    def test_clean_cache_removes_entries(self, dirs, capsys):
        assert _run_fig12(dirs) == 0
        capsys.readouterr()
        assert main(["clean-cache", "--cache-dir", dirs["cache"]]) == 0
        assert "removed 3" in capsys.readouterr().out
        # next run recomputes
        assert _run_fig12(dirs) == 0
        assert "0 cached, 3 executed" in capsys.readouterr().out


class TestCacheStats:
    def test_stats_on_a_populated_cache(self, dirs, capsys):
        assert _run_fig12(dirs) == 0
        capsys.readouterr()
        assert main(["cache-stats", "--cache-dir", dirs["cache"]]) == 0
        out = capsys.readouterr().out
        assert "entries:      3" in out
        assert "corrupt:      0" in out

    def test_stats_on_an_empty_cache(self, dirs, capsys):
        assert main(["cache-stats", "--cache-dir", dirs["cache"]]) == 0
        assert "entries:      0" in capsys.readouterr().out


class TestFaultTolerance:
    def test_policy_flags_are_accepted(self, dirs):
        assert (
            _run_fig12(
                dirs, "--timeout", "600", "--retries", "1", "--reseed-on-retry",
                "--on-error", "record", "--cache-max-mb", "64",
            )
            == 0
        )

    def test_injected_failure_yields_exit_1_and_error_artifacts(
        self, dirs, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv(FAULT_INJECT_ENV, "BV")
        assert _run_fig12(dirs) == 1
        captured = capsys.readouterr()
        assert "FAILED BV" in captured.err
        assert "injected fault" in captured.err
        assert "3 failed" in captured.out

        doc = json.loads((tmp_path / "artifacts" / "fig12.json").read_text())
        assert doc["records"] == []
        assert len(doc["errors"]) == 3
        assert doc["errors"][0]["error_type"] == "RuntimeError"
        with open(tmp_path / "artifacts" / "fig12.csv", newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert [row["status"] for row in rows] == ["error"] * 3

        checkpoint = json.loads(
            (tmp_path / "artifacts" / "fig12.checkpoint.json").read_text()
        )
        assert checkpoint["finished"] is True
        assert len(checkpoint["failed"]) == 3

        # failures were not cached: clearing the fault and rerunning recovers
        monkeypatch.delenv(FAULT_INJECT_ENV)
        assert _run_fig12(dirs) == 0
        assert "0 cached, 3 executed" in capsys.readouterr().out

    def test_on_error_record_appends_failed_rows_to_the_table(
        self, dirs, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv(FAULT_INJECT_ENV, "BV")
        assert _run_fig12(dirs) == 1
        assert "FAILED after 1 attempt" in capsys.readouterr().out
        txt = (tmp_path / "artifacts" / "fig12.txt").read_text()
        assert "FAILED after 1 attempt" in txt

    def test_on_error_skip_omits_error_artifacts(self, dirs, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv(FAULT_INJECT_ENV, "BV")
        assert _run_fig12(dirs, "--on-error", "skip") == 1
        assert "FAILED" not in capsys.readouterr().err
        doc = json.loads((tmp_path / "artifacts" / "fig12.json").read_text())
        assert doc["errors"] == []

    def test_non_positive_cache_max_mb_is_a_usage_error(self, dirs, capsys):
        assert _run_fig12(dirs, "--cache-max-mb", "0") == 2
        assert "--cache-max-mb" in capsys.readouterr().err

    def test_healthy_run_writes_finished_checkpoint(self, dirs, tmp_path):
        assert _run_fig12(dirs) == 0
        checkpoint = json.loads(
            (tmp_path / "artifacts" / "fig12.checkpoint.json").read_text()
        )
        assert checkpoint["finished"] is True
        assert checkpoint["pending"] == [] and checkpoint["failed"] == []


class TestBenchmarkValidation:
    def test_unknown_benchmark_is_a_usage_error(self, dirs, capsys):
        assert main(["run", "fig12", "--benchmarks", "FOO", "--cache-dir", dirs["cache"]]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_empty_benchmarks_is_a_usage_error(self, dirs, capsys):
        assert main(["run", "fig12", "--benchmarks", "--cache-dir", dirs["cache"]]) == 2
        assert "no benchmarks given" in capsys.readouterr().err

    def test_lowercase_benchmark_shares_cache_with_uppercase(self, dirs, capsys):
        args = ["run", "fig12", "--scale", "small", "--jobs", "1",
                "--cache-dir", dirs["cache"], "--out-dir", dirs["out"]]
        assert main([*args, "--benchmarks", "bv"]) == 0
        capsys.readouterr()
        assert main([*args, "--benchmarks", "BV"]) == 0
        assert "3 cached, 0 executed" in capsys.readouterr().out


class TestDryRun:
    """Golden tests: the dry-run plan output is a stable contract."""

    COLD_PLAN = (
        "fig12: 3 jobs, 3 unique (0 duplicates) — 0 cached, 3 pending, 0 failed\n"
        "  kind compare: 0 cached, 3 pending, 0 failed\n"
        "  benchmark BV: 0 cached, 3 pending, 0 failed\n"
        "dry-run: no jobs executed, no artifacts written\n"
    )
    WARM_PLAN = (
        "fig12: 3 jobs, 3 unique (0 duplicates) — 3 cached, 0 pending, 0 failed\n"
        "  kind compare: 3 cached, 0 pending, 0 failed\n"
        "  benchmark BV: 3 cached, 0 pending, 0 failed\n"
        "dry-run: no jobs executed, no artifacts written\n"
    )

    def test_cold_cache_human_plan_is_golden(self, dirs, capsys):
        assert _run_fig12(dirs, "--dry-run") == 0
        assert capsys.readouterr().out == self.COLD_PLAN

    def test_warm_cache_human_plan_is_golden(self, dirs, capsys):
        assert _run_fig12(dirs) == 0
        capsys.readouterr()
        assert _run_fig12(dirs, "--dry-run") == 0
        assert capsys.readouterr().out == self.WARM_PLAN

    def test_cold_cache_json_plan_is_golden(self, dirs, capsys):
        assert _run_fig12(dirs, "--dry-run", "--json") == 0
        assert json.loads(capsys.readouterr().out) == {
            "dry_run": True,
            "scale": "small",
            "benchmarks": ["BV"],
            "seed": 0,
            "cache_dir": dirs["cache"],
            "compilers": ["baseline", "mech"],
            "experiments": [
                {
                    "experiment": "fig12",
                    "total": 3,
                    "unique": 3,
                    "duplicates": 0,
                    "cached": 0,
                    "pending": 3,
                    "failed": 0,
                    "by_kind": {"compare": {"cached": 0, "pending": 3, "failed": 0}},
                    "by_benchmark": {"BV": {"cached": 0, "pending": 3, "failed": 0}},
                }
            ],
        }

    def test_dry_run_executes_nothing_and_writes_nothing(self, dirs, tmp_path, capsys):
        assert _run_fig12(dirs, "--dry-run") == 0
        assert not (tmp_path / "artifacts").exists()
        assert len(ResultCache(dirs["cache"])) == 0

    def test_dry_run_counts_match_the_subsequent_real_run(self, dirs, capsys):
        assert _run_fig12(dirs, "--dry-run", "--json") == 0
        plan = json.loads(capsys.readouterr().out)["experiments"][0]
        assert _run_fig12(dirs) == 0
        out = capsys.readouterr().out
        assert f"{plan['cached']} cached, {plan['pending']} executed" in out

    def test_failed_jobs_from_the_checkpoint_are_classified(self, dirs, monkeypatch, capsys):
        monkeypatch.setenv(FAULT_INJECT_ENV, "BV")
        assert _run_fig12(dirs) == 1
        monkeypatch.delenv(FAULT_INJECT_ENV)
        capsys.readouterr()
        assert _run_fig12(dirs, "--dry-run", "--json") == 0
        plan = json.loads(capsys.readouterr().out)["experiments"][0]
        assert (plan["cached"], plan["pending"], plan["failed"]) == (0, 0, 3)

    def test_json_without_dry_run_is_a_usage_error(self, dirs, capsys):
        assert _run_fig12(dirs, "--json") == 2
        assert "--json requires --dry-run" in capsys.readouterr().err

    def test_multiple_experiments_emit_one_plan_each(self, dirs, capsys):
        args = ["run", "fig12", "table2", "--benchmarks", "BV", "--dry-run",
                "--cache-dir", dirs["cache"], "--out-dir", dirs["out"]]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert out.startswith("fig12: ")
        assert "\ntable2: " in out
        assert out.count("dry-run: no jobs executed") == 1


class TestCleanCacheTtl:
    def _age_half_of_the_cache(self, dirs, days=40):
        cache = ResultCache(dirs["cache"])
        entries = cache.entries()
        stamp = time.time() - days * 86400
        aged = entries[: len(entries) // 2 or 1]
        aged_keys = {path.stem for path in aged}
        for path in aged:
            os.utime(path, (stamp, stamp))
        # recency is mtime-independent too: the access log's P/H lines count
        # as last use, so aging an entry means aging its logged timestamps
        log = cache.access_log_path
        if log.exists():
            lines = []
            for line in log.read_text().splitlines():
                parts = line.split()
                timestamped = (
                    len(parts) == 3 and parts[0] in ("H", "M", "P")
                ) or (len(parts) == 4 and parts[0] == "A")
                if timestamped and parts[1] in aged_keys:
                    parts[-1] = f"{stamp:.6f}"
                    line = " ".join(parts)
                lines.append(line)
            log.write_text("\n".join(lines) + "\n")
        return len(entries), len(aged)

    def test_older_than_removes_only_aged_entries(self, dirs, capsys):
        assert _run_fig12(dirs) == 0
        total, aged = self._age_half_of_the_cache(dirs)
        capsys.readouterr()
        assert main(["clean-cache", "--cache-dir", dirs["cache"], "--older-than", "30"]) == 0
        out = capsys.readouterr().out
        assert f"removed {aged} of {total} cache entries older than 30 days" in out
        assert len(ResultCache(dirs["cache"])) == total - aged

    def test_older_than_dry_run_removes_nothing(self, dirs, capsys):
        assert _run_fig12(dirs) == 0
        total, aged = self._age_half_of_the_cache(dirs)
        capsys.readouterr()
        assert main(
            ["clean-cache", "--cache-dir", dirs["cache"], "--older-than", "30", "--dry-run"]
        ) == 0
        assert f"would remove {aged} of {total}" in capsys.readouterr().out
        assert len(ResultCache(dirs["cache"])) == total

    def test_full_clear_dry_run_reports_the_count(self, dirs, capsys):
        assert _run_fig12(dirs) == 0
        capsys.readouterr()
        assert main(["clean-cache", "--cache-dir", dirs["cache"], "--dry-run"]) == 0
        assert "would remove 3 cache entries" in capsys.readouterr().out
        assert len(ResultCache(dirs["cache"])) == 3

    def test_negative_older_than_is_a_usage_error(self, dirs, capsys):
        assert main(["clean-cache", "--cache-dir", dirs["cache"], "--older-than", "-1"]) == 2
        assert "--older-than" in capsys.readouterr().err

    def test_swept_jobs_recompute_on_the_next_run(self, dirs, capsys):
        assert _run_fig12(dirs) == 0
        self._age_half_of_the_cache(dirs, days=40)
        capsys.readouterr()
        assert main(["clean-cache", "--cache-dir", dirs["cache"], "--older-than", "30"]) == 0
        capsys.readouterr()
        assert _run_fig12(dirs) == 0
        assert "2 cached, 1 executed" in capsys.readouterr().out

    def test_nan_older_than_is_a_usage_error(self, dirs, capsys):
        assert _run_fig12(dirs) == 0
        capsys.readouterr()
        assert main(["clean-cache", "--cache-dir", dirs["cache"], "--older-than", "nan"]) == 2
        assert "--older-than" in capsys.readouterr().err
        assert len(ResultCache(dirs["cache"])) == 3  # the cache survived

    def test_nan_cache_max_mb_is_a_usage_error(self, dirs, capsys):
        assert _run_fig12(dirs, "--cache-max-mb", "nan") == 2
        assert "--cache-max-mb" in capsys.readouterr().err

    def test_unreadable_checkpoint_warns_during_dry_run(self, dirs, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        out_dir.mkdir()
        (out_dir / "fig12.checkpoint.json").write_text("{not json")
        assert _run_fig12(dirs, "--dry-run") == 0
        captured = capsys.readouterr()
        assert "warning: ignoring unreadable checkpoint" in captured.err
        assert "0 cached, 3 pending, 0 failed" in captured.out
