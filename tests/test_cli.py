"""End-to-end tests for the ``python -m repro`` CLI."""

import csv
import json

import pytest

from repro.cli import main
from repro.experiments.engine import FAULT_INJECT_ENV


@pytest.fixture()
def dirs(tmp_path):
    return {
        "cache": str(tmp_path / "cache"),
        "out": str(tmp_path / "artifacts"),
    }


def _run_fig12(dirs, *extra):
    return main(
        [
            "run",
            "fig12",
            "--scale",
            "small",
            "--benchmarks",
            "BV",
            "--jobs",
            "2",
            "--cache-dir",
            dirs["cache"],
            "--out-dir",
            dirs["out"],
            *extra,
        ]
    )


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table2", "fig12", "fig13", "fig14", "fig15", "fig16"):
            assert name in out


class TestRun:
    def test_run_writes_artifacts_and_caches(self, dirs, tmp_path, capsys):
        assert _run_fig12(dirs) == 0
        out = capsys.readouterr().out
        assert "Fig. 12" in out
        assert "0 cached, 3 executed" in out

        json_path = tmp_path / "artifacts" / "fig12.json"
        csv_path = tmp_path / "artifacts" / "fig12.csv"
        assert json_path.is_file() and csv_path.is_file()
        doc = json.loads(json_path.read_text())
        assert doc["experiment"] == "fig12"
        assert doc["scale"] == "small"
        assert len(doc["records"]) == 3
        first_records = doc["records"]

        # warm re-run: everything served from the cache, identical artifacts
        assert _run_fig12(dirs) == 0
        out = capsys.readouterr().out
        assert "3 cached, 0 executed" in out
        assert json.loads(json_path.read_text())["records"] == first_records

    def test_no_cache_disables_memoization(self, dirs, capsys):
        assert _run_fig12(dirs, "--no-cache") == 0
        assert _run_fig12(dirs, "--no-cache") == 0
        out = capsys.readouterr().out
        assert "0 cached, 3 executed" in out

    def test_unknown_experiment_is_a_usage_error(self, dirs, capsys):
        assert main(["run", "fig99", "--cache-dir", dirs["cache"]]) == 2
        err = capsys.readouterr().err
        assert "fig99" in err and "choose from" in err

    def test_unknown_scale_rejected_by_argparse(self, dirs):
        with pytest.raises(SystemExit):
            _run_fig12(dirs, "--scale", "galactic")


class TestCleanCache:
    def test_clean_cache_removes_entries(self, dirs, capsys):
        assert _run_fig12(dirs) == 0
        capsys.readouterr()
        assert main(["clean-cache", "--cache-dir", dirs["cache"]]) == 0
        assert "removed 3" in capsys.readouterr().out
        # next run recomputes
        assert _run_fig12(dirs) == 0
        assert "0 cached, 3 executed" in capsys.readouterr().out


class TestCacheStats:
    def test_stats_on_a_populated_cache(self, dirs, capsys):
        assert _run_fig12(dirs) == 0
        capsys.readouterr()
        assert main(["cache-stats", "--cache-dir", dirs["cache"]]) == 0
        out = capsys.readouterr().out
        assert "entries:      3" in out
        assert "corrupt:      0" in out

    def test_stats_on_an_empty_cache(self, dirs, capsys):
        assert main(["cache-stats", "--cache-dir", dirs["cache"]]) == 0
        assert "entries:      0" in capsys.readouterr().out


class TestFaultTolerance:
    def test_policy_flags_are_accepted(self, dirs):
        assert (
            _run_fig12(
                dirs, "--timeout", "600", "--retries", "1", "--reseed-on-retry",
                "--on-error", "record", "--cache-max-mb", "64",
            )
            == 0
        )

    def test_injected_failure_yields_exit_1_and_error_artifacts(
        self, dirs, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv(FAULT_INJECT_ENV, "BV")
        assert _run_fig12(dirs) == 1
        captured = capsys.readouterr()
        assert "FAILED BV" in captured.err
        assert "injected fault" in captured.err
        assert "3 failed" in captured.out

        doc = json.loads((tmp_path / "artifacts" / "fig12.json").read_text())
        assert doc["records"] == []
        assert len(doc["errors"]) == 3
        assert doc["errors"][0]["error_type"] == "RuntimeError"
        with open(tmp_path / "artifacts" / "fig12.csv", newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert [row["status"] for row in rows] == ["error"] * 3

        checkpoint = json.loads(
            (tmp_path / "artifacts" / "fig12.checkpoint.json").read_text()
        )
        assert checkpoint["finished"] is True
        assert len(checkpoint["failed"]) == 3

        # failures were not cached: clearing the fault and rerunning recovers
        monkeypatch.delenv(FAULT_INJECT_ENV)
        assert _run_fig12(dirs) == 0
        assert "0 cached, 3 executed" in capsys.readouterr().out

    def test_on_error_record_appends_failed_rows_to_the_table(
        self, dirs, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv(FAULT_INJECT_ENV, "BV")
        assert _run_fig12(dirs) == 1
        assert "FAILED after 1 attempt" in capsys.readouterr().out
        txt = (tmp_path / "artifacts" / "fig12.txt").read_text()
        assert "FAILED after 1 attempt" in txt

    def test_on_error_skip_omits_error_artifacts(self, dirs, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv(FAULT_INJECT_ENV, "BV")
        assert _run_fig12(dirs, "--on-error", "skip") == 1
        assert "FAILED" not in capsys.readouterr().err
        doc = json.loads((tmp_path / "artifacts" / "fig12.json").read_text())
        assert doc["errors"] == []

    def test_non_positive_cache_max_mb_is_a_usage_error(self, dirs, capsys):
        assert _run_fig12(dirs, "--cache-max-mb", "0") == 2
        assert "--cache-max-mb" in capsys.readouterr().err

    def test_healthy_run_writes_finished_checkpoint(self, dirs, tmp_path):
        assert _run_fig12(dirs) == 0
        checkpoint = json.loads(
            (tmp_path / "artifacts" / "fig12.checkpoint.json").read_text()
        )
        assert checkpoint["finished"] is True
        assert checkpoint["pending"] == [] and checkpoint["failed"] == []


class TestBenchmarkValidation:
    def test_unknown_benchmark_is_a_usage_error(self, dirs, capsys):
        assert main(["run", "fig12", "--benchmarks", "FOO", "--cache-dir", dirs["cache"]]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_empty_benchmarks_is_a_usage_error(self, dirs, capsys):
        assert main(["run", "fig12", "--benchmarks", "--cache-dir", dirs["cache"]]) == 2
        assert "no benchmarks given" in capsys.readouterr().err

    def test_lowercase_benchmark_shares_cache_with_uppercase(self, dirs, capsys):
        args = ["run", "fig12", "--scale", "small", "--jobs", "1",
                "--cache-dir", dirs["cache"], "--out-dir", dirs["out"]]
        assert main([*args, "--benchmarks", "bv"]) == 0
        capsys.readouterr()
        assert main([*args, "--benchmarks", "BV"]) == 0
        assert "3 cached, 0 executed" in capsys.readouterr().out
