"""Shared verification helpers for the test suite.

The most important one is :func:`assert_semantically_equivalent`: it checks
that a *compiled physical circuit* (possibly containing SWAPs, highway GHZ
preparations, mid-circuit measurements and classically conditioned
corrections) implements the same unitary on the data qubits as the original
logical circuit, up to the final logical-to-physical permutation.  It does so
by simulating both circuits from a non-trivial product input state and
comparing the reduced state on the data qubits, after slicing out the
(measured, hence product-state) ancilla qubits.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.circuits import Circuit, Simulator, statevectors_equal
from repro.compiler.result import CompilationResult

__all__ = [
    "product_input",
    "assert_semantically_equivalent",
    "assert_all_two_qubit_ops_coupled",
]


def product_input(num_qubits: int, qubits: Sequence[int], *, scale: float = 0.37) -> Circuit:
    """A layer of distinct single-qubit rotations marking each listed qubit.

    Distinct RX/RZ angles per qubit make the input state generic enough that
    permutation or semantics bugs show up as state mismatches.
    """
    circuit = Circuit(num_qubits, name="input")
    for rank, q in enumerate(qubits):
        circuit.rx(scale * (rank + 1), q)
        circuit.rz(0.21 * (rank + 2), q)
    return circuit


def assert_semantically_equivalent(
    logical: Circuit,
    result: CompilationResult,
    *,
    seeds: Iterable[int] = (0, 1, 2),
    atol: float = 1e-7,
) -> None:
    """Check the compiled circuit acts on data qubits like the logical one.

    The logical circuit must be measurement-free (measurements would make the
    comparison stochastic).  The compiled circuit may contain measurements on
    ancilla (highway) qubits; after execution those qubits are in computational
    basis states, so the joint state factorises and the data-qubit state can be
    extracted by slicing at the measured values.
    """
    if any(op.is_measurement for op in logical):
        raise ValueError("semantic comparison needs a measurement-free logical circuit")
    n_logical = logical.num_qubits
    n_physical = result.circuit.num_qubits

    reference_prep = product_input(n_logical, list(range(n_logical)))
    reference = Simulator(n_logical, seed=0).run(reference_prep.compose(logical)).statevector

    for seed in seeds:
        prep = Circuit(n_physical, name="physical-input")
        for logical_q in range(n_logical):
            phys = result.initial_layout[logical_q]
            prep.rx(0.37 * (logical_q + 1), phys)
            prep.rz(0.21 * (logical_q + 2), phys)
        sim = Simulator(n_physical, seed=seed)
        sim.run(prep)
        outcome = sim.run(result.circuit)

        state = outcome.statevector.reshape((2,) * n_physical)
        data_positions = [result.final_layout[q] for q in range(n_logical)]
        others = [q for q in range(n_physical) if q not in data_positions]

        # ancilla qubits must be unentangled from the data: they are either
        # untouched (|0>) or measured; verify each has a definite value and
        # slice the state at it.
        index = [slice(None)] * n_physical
        for q in others:
            expectation = _z_expectation(state, q)
            assert abs(abs(expectation) - 1.0) < 1e-6, (
                f"ancilla/physical qubit {q} is not in a computational basis state "
                f"(<Z> = {expectation:.6f}); the compiled circuit leaks entanglement"
            )
            index[q] = 0 if expectation > 0 else 1
        reduced = state[tuple(index)]

        remaining = sorted(data_positions)
        permutation = [remaining.index(result.final_layout[q]) for q in range(n_logical)]
        reduced = np.transpose(reduced, permutation).reshape(-1)
        assert statevectors_equal(reduced, reference, atol=atol), (
            f"compiled circuit is not equivalent to the logical circuit (seed {seed})"
        )


def _z_expectation(state: np.ndarray, qubit: int) -> float:
    moved = np.moveaxis(state, qubit, 0)
    p0 = float(np.sum(np.abs(moved[0]) ** 2))
    p1 = float(np.sum(np.abs(moved[1]) ** 2))
    return p0 - p1


def assert_all_two_qubit_ops_coupled(result: CompilationResult) -> None:
    """Every 2-qubit operation of the compiled circuit must use a real coupler."""
    from repro.circuits.library import expand_macros

    expanded = expand_macros(result.circuit)
    for op in expanded:
        if op.num_qubits == 2 and not op.is_barrier:
            assert result.topology.is_coupled(*op.qubits), (
                f"operation {op} acts on uncoupled physical qubits"
            )
