"""Tests for the incremental execution subsystem: the plan phase, the
versioned (v2) checkpoint schema with fully serialised jobs, checkpoint
re-hydration via :func:`load_checkpoint`, and engine-level resume.

Like the fault-tolerance suite, fake executors keep these tests fast — no
real compilation happens here (the CLI end-to-end flows live in
``tests/test_resume_e2e.py``).
"""

import json
import os
import time

import pytest

from repro.experiments import engine
from repro.experiments.engine import (
    CHECKPOINT_VERSION,
    CheckpointError,
    Job,
    JobPolicy,
    ResultCache,
    config_key,
    load_checkpoint,
    plan_jobs,
    plan_summary,
    run_jobs,
    run_jobs_report,
)
from repro.experiments.registry import experiment_meta, plan_experiment
from repro.experiments.runner import ComparisonRecord

pytestmark = pytest.mark.usefixtures("fake_executors")


def _dummy_record(job: Job) -> ComparisonRecord:
    return ComparisonRecord(
        benchmark=job.benchmark,
        architecture="fake-1x1",
        num_data_qubits=2,
        num_physical_qubits=4,
        baseline_depth=10.0,
        mech_depth=5.0,
        baseline_eff_cnots=20.0,
        mech_eff_cnots=10.0,
        highway_qubit_fraction=0.25,
        extra={"seed": float(job.seed)},
    )


def _boom(job: Job) -> ComparisonRecord:
    raise RuntimeError(f"poisoned job {job.benchmark}")


def _kbint(job: Job) -> ComparisonRecord:
    raise KeyboardInterrupt


@pytest.fixture()
def fake_executors(monkeypatch):
    monkeypatch.setitem(engine.EXECUTORS, "ok", _dummy_record)
    monkeypatch.setitem(engine.EXECUTORS, "boom", _boom)
    monkeypatch.setitem(engine.EXECUTORS, "kbint", _kbint)


OK1 = Job(benchmark="A", kind="ok")
OK2 = Job(benchmark="B", kind="ok")
BAD = Job(benchmark="POISON", kind="boom")
TAGGED = Job(benchmark="A", kind="ok", tags=(("swept", 2.0),))


class TestPlanJobs:
    def test_cold_cache_plans_everything_pending(self, tmp_path):
        plan = plan_jobs([OK1, OK2], cache=tmp_path)
        assert (plan.total, plan.cache_hits, plan.deduplicated) == (2, 0, 0)
        assert set(plan.pending) == {config_key(OK1), config_key(OK2)}

    def test_warm_cache_plans_everything_cached(self, tmp_path):
        run_jobs([OK1, OK2], cache=tmp_path)
        plan = plan_jobs([OK1, OK2], cache=tmp_path)
        assert (plan.cache_hits, len(plan.pending)) == (2, 0)

    def test_duplicates_and_tag_variants_share_one_unique_job(self, tmp_path):
        # TAGGED differs from OK1 only by tags, which are not in the config key
        plan = plan_jobs([OK1, OK1, TAGGED], cache=tmp_path)
        assert (plan.total, len(plan.unique), plan.deduplicated) == (3, 1, 2)

    def test_no_cache_plans_everything_pending(self):
        plan = plan_jobs([OK1, OK2])
        assert (plan.cache_hits, len(plan.pending)) == (0, 2)

    def test_unknown_kind_is_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            plan_jobs([Job(benchmark="X", kind="nope")])

    def test_plan_matches_what_a_real_run_reports(self, tmp_path):
        run_jobs([OK1], cache=tmp_path)
        plan = plan_jobs([OK1, OK2, OK2], cache=tmp_path)
        _, report = run_jobs_report([OK1, OK2, OK2], cache=tmp_path)
        assert plan.cache_hits == report.cache_hits
        assert len(plan.pending) == report.executed
        assert plan.deduplicated == report.deduplicated

    def test_planning_executes_nothing(self, tmp_path, monkeypatch):
        calls = []
        monkeypatch.setitem(
            engine.EXECUTORS, "ok", lambda job: calls.append(job) or _dummy_record(job)
        )
        plan_jobs([OK1, OK2], cache=tmp_path)
        assert calls == []


class TestPlanSummary:
    def test_counts_and_breakdowns(self, tmp_path):
        run_jobs([OK1], cache=tmp_path)
        plan = plan_jobs([OK1, OK2, BAD, OK2], cache=tmp_path)
        summary = plan_summary(plan, failed_keys=[config_key(BAD)])
        assert summary["total"] == 4
        assert summary["unique"] == 3
        assert summary["duplicates"] == 1
        assert (summary["cached"], summary["pending"], summary["failed"]) == (1, 1, 1)
        assert summary["by_kind"] == {
            "boom": {"cached": 0, "pending": 0, "failed": 1},
            "ok": {"cached": 1, "pending": 1, "failed": 0},
        }
        assert summary["by_benchmark"]["POISON"] == {"cached": 0, "pending": 0, "failed": 1}

    def test_cached_wins_over_failed(self, tmp_path):
        # a job that failed in a previous run but has since been cached
        run_jobs([OK1], cache=tmp_path)
        plan = plan_jobs([OK1], cache=tmp_path)
        summary = plan_summary(plan, failed_keys=[config_key(OK1)])
        assert (summary["cached"], summary["failed"]) == (1, 0)

    def test_plan_experiment_diff_against_cache(self, tmp_path):
        plan = plan_experiment("fig12", scale="small", benchmarks=["BV"], cache=tmp_path)
        summary = plan_summary(plan)
        assert summary["pending"] == summary["unique"] > 0
        assert list(summary["by_benchmark"]) == ["BV"]


class TestCheckpointSchema:
    def test_v2_checkpoint_serialises_the_full_job_list(self, tmp_path):
        path = tmp_path / "run.checkpoint.json"
        jobs = [OK1, TAGGED, OK2]
        run_jobs(jobs, cache=tmp_path / "cache", checkpoint=path, checkpoint_meta={"x": 1})
        doc = json.loads(path.read_text())
        assert doc["checkpoint_version"] == CHECKPOINT_VERSION == 2
        assert doc["meta"] == {"x": 1}
        assert len(doc["jobs"]) == 3  # duplicates/tag-variants preserved
        assert doc["jobs"][1]["tags"] == [["swept", 2.0]]

    def test_load_checkpoint_round_trips_jobs_and_sets(self, tmp_path):
        path = tmp_path / "run.checkpoint.json"
        run_jobs_report(
            [OK1, BAD, OK2],
            cache=tmp_path / "cache",
            checkpoint=path,
            checkpoint_meta=experiment_meta("fig12", scale="small", benchmarks=["BV"]),
            policy=JobPolicy(on_error="record"),
        )
        checkpoint = load_checkpoint(path)
        assert checkpoint.version == 2
        assert checkpoint.finished is True
        assert checkpoint.jobs == [OK1, BAD, OK2]
        assert checkpoint.meta["experiment"] == "fig12"
        assert checkpoint.completed_keys == {config_key(OK1), config_key(OK2)}
        assert checkpoint.failed_keys == {config_key(BAD)}
        assert [error.benchmark for error in checkpoint.failed] == ["POISON"]

    def test_cached_keys_recorded_on_warm_runs(self, tmp_path):
        cache = tmp_path / "cache"
        run_jobs([OK1], cache=cache)
        path = tmp_path / "run.checkpoint.json"
        run_jobs([OK1, OK2], cache=cache, checkpoint=path)
        checkpoint = load_checkpoint(path)
        assert checkpoint.cached_keys == {config_key(OK1)}
        assert checkpoint.remaining_jobs() == []

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="not found"):
            load_checkpoint(tmp_path / "nope.checkpoint.json")

    def test_corrupt_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(path)

    def test_v1_checkpoint_is_rejected_with_guidance(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"checkpoint_version": 1, "pending": []}))
        with pytest.raises(CheckpointError, match="version 1"):
            load_checkpoint(path)

    def test_unknown_version_is_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"checkpoint_version": 99, "jobs": []}))
        with pytest.raises(CheckpointError, match="unsupported version"):
            load_checkpoint(path)

    def test_malformed_job_is_rejected(self, tmp_path):
        path = tmp_path / "mangled.json"
        # a job with no benchmark at all cannot round-trip
        path.write_text(
            json.dumps({"checkpoint_version": 2, "jobs": [{"kind": "compare"}]})
        )
        with pytest.raises(CheckpointError, match="round-trip"):
            load_checkpoint(path)

    def test_pre_backend_job_rehydrates_with_default_compilers(self, tmp_path):
        # checkpoints written before the Job.compilers field existed must
        # keep loading: absent fields fall back to the dataclass defaults
        path = tmp_path / "old.json"
        path.write_text(
            json.dumps({"checkpoint_version": 2, "jobs": [{"benchmark": "A"}]})
        )
        checkpoint = load_checkpoint(path)
        assert checkpoint.jobs == [Job(benchmark="A")]
        assert checkpoint.jobs[0].compilers == ("baseline", "mech")


class TestEngineResume:
    def test_interrupted_run_resumes_from_checkpoint_alone(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        path = tmp_path / "run.checkpoint.json"
        interrupting = Job(benchmark="INT", kind="kbint")
        with pytest.raises(KeyboardInterrupt):
            run_jobs([OK1, interrupting, OK2], cache=cache, checkpoint=path)

        checkpoint = load_checkpoint(path)
        assert checkpoint.interrupted is True
        remaining = {job.benchmark for job in checkpoint.remaining_jobs()}
        assert remaining == {"INT", "B"}

        # the transient condition clears; resume executes only what remains
        monkeypatch.setitem(engine.EXECUTORS, "kbint", _dummy_record)
        records, report = run_jobs_report(checkpoint.jobs, cache=cache, checkpoint=path)
        assert (report.cache_hits, report.executed) == (1, 2)
        assert [record.benchmark for record in records] == ["A", "INT", "B"]
        assert load_checkpoint(path).finished is True

    def test_resumed_records_match_an_uninterrupted_run(self, tmp_path, monkeypatch):
        jobs = [OK1, Job(benchmark="INT", kind="kbint"), TAGGED, OK2]
        path = tmp_path / "run.checkpoint.json"
        with pytest.raises(KeyboardInterrupt):
            run_jobs(jobs, cache=tmp_path / "cache", checkpoint=path)
        monkeypatch.setitem(engine.EXECUTORS, "kbint", _dummy_record)
        resumed = run_jobs(load_checkpoint(path).jobs, cache=tmp_path / "cache")
        uninterrupted = run_jobs(jobs, cache=tmp_path / "fresh-cache")
        assert resumed == uninterrupted  # tags re-applied, order preserved

    def test_failed_run_resumes_only_failed_jobs(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        path = tmp_path / "run.checkpoint.json"
        _, report = run_jobs_report(
            [OK1, BAD, OK2], cache=cache, checkpoint=path, policy=JobPolicy(on_error="record")
        )
        assert report.failed == 1
        checkpoint = load_checkpoint(path)
        assert {job.benchmark for job in checkpoint.remaining_jobs()} == {"POISON"}
        monkeypatch.setitem(engine.EXECUTORS, "boom", _dummy_record)
        records, report = run_jobs_report(checkpoint.jobs, cache=cache, checkpoint=path)
        assert (report.cache_hits, report.executed, report.failed) == (2, 1, 0)
        assert len(records) == 3


class TestReviewRegressions:
    def test_malformed_checkpoint_fields_raise_checkpoint_error(self, tmp_path):
        # a non-iterable cached/completed list must not escape as a bare
        # TypeError (the CLI only catches CheckpointError)
        for fields in ({"cached": 5}, {"completed": 7}):
            path = tmp_path / "mangled.json"
            path.write_text(json.dumps({"checkpoint_version": 2, "jobs": [], **fields}))
            with pytest.raises(CheckpointError, match="malformed fields"):
                load_checkpoint(path)

    def test_peek_classifies_like_get_without_touching_mtime(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_jobs([OK1], cache=cache)
        key = config_key(OK1)
        path = cache.path_for(key)
        stamp = time.time() - 5000
        os.utime(path, (stamp, stamp))
        peeked = cache.peek(key)
        assert peeked is not None
        assert abs(path.stat().st_mtime - stamp) < 1.0  # peek left the mtime alone
        assert cache.peek(config_key(OK2)) is None  # miss classification matches get
        assert cache.get(key) == peeked  # and a real get returns the same payload
        assert path.stat().st_mtime > stamp + 1000  # which *does* refresh recency

    def test_unrefreshed_plan_does_not_shield_entries_from_a_ttl_sweep(self, tmp_path):
        # record_access=False so mtime is the only recency source here — with
        # the access log on, the put timestamps would (correctly) shield the
        # entries from the sweep regardless of the mtime aging below
        cache = ResultCache(tmp_path, record_access=False)
        run_jobs([OK1, OK2], cache=cache)
        now = time.time()
        for path in cache.entries():
            os.utime(path, (now - 5000, now - 5000))
        # a dry-run preview plans without refreshing...
        plan = plan_jobs([OK1, OK2], cache=cache, refresh=False)
        assert plan.cache_hits == 2
        # ...so the TTL sweep the operator runs next still collects everything
        assert cache.sweep_older_than(1000, now=now)["removed"] == 2

    def test_ttl_sweep_rejects_nan_instead_of_deleting_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_jobs([OK1], cache=cache)
        with pytest.raises(ValueError, match="max_age_seconds"):
            cache.sweep_older_than(float("nan"))
        assert len(cache) == 1  # nothing was deleted

    def test_plan_jobs_default_is_read_only(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_jobs([OK1], cache=cache)
        path = cache.path_for(config_key(OK1))
        stamp = time.time() - 5000
        os.utime(path, (stamp, stamp))
        plan_jobs([OK1], cache=cache)  # defaults must not refresh recency
        assert abs(path.stat().st_mtime - stamp) < 1.0
