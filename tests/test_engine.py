"""Unit tests for the experiment-orchestration engine.

Covers the acceptance properties of the engine: config-hash stability,
cache hit/miss behaviour, parallel/serial result identity, in-run
deduplication, tag handling and the JSON/CSV artifact writer.
"""

import csv
import hashlib
import json
import os

import pytest

from repro.experiments.engine import (
    CACHE_VERSION,
    Job,
    ResultCache,
    config_key,
    job_from_dict,
    job_to_dict,
    noise_from_items,
    noise_to_items,
    record_from_payload,
    record_to_payload,
    run_jobs,
    run_jobs_report,
    write_artifacts,
)
from repro.experiments.fig13_sensitivity import sensitivity_results_from_records
from repro.hardware.noise import DEFAULT_NOISE

#: The cheapest meaningful job: BV on a 1x2 array of 4x4 chiplets.
TINY = Job(benchmark="BV", chiplet_width=4, rows=1, cols=2, seed=1)


def _dicts(records):
    return [r.as_dict() for r in records]


class TestConfigHash:
    def test_deterministic_and_sensitive(self):
        assert config_key(TINY) == config_key(Job(benchmark="BV", chiplet_width=4, rows=1, cols=2, seed=1))
        assert config_key(TINY) != config_key(TINY.with_(seed=2))
        assert config_key(TINY) != config_key(TINY.with_(chiplet_width=5))
        assert config_key(TINY) != config_key(TINY.with_(kind="sensitivity"))

    def test_tags_do_not_affect_the_hash(self):
        tagged = TINY.with_(tags=(("sweep_value", 3.0),))
        assert config_key(tagged) == config_key(TINY)

    def test_stable_across_serialization_roundtrip(self):
        job = TINY.with_(
            benchmark_kwargs=(("layers", 2),),
            params=(("meas_latencies", (1.0, 2.0)),),
            tags=(("label", "x"),),
        )
        clone = job_from_dict(job_to_dict(job))
        assert clone == job
        assert config_key(clone) == config_key(job)

    def test_pinned_hash_value(self):
        # Guards the canonical-JSON hashing scheme: if this changes, every
        # existing cache directory is invalidated, so change CACHE_VERSION too.
        # (Version 2: jobs hash their compiler list, see the backends package.)
        assert CACHE_VERSION == 2
        assert config_key(TINY) == (
            "386b64d3a435ab2050b0c797f8501019ec5453e1425b483d256c5ed1d88b90a7"
        )

    def test_noise_roundtrip(self):
        items = noise_to_items(DEFAULT_NOISE)
        assert noise_from_items(items) == DEFAULT_NOISE
        swept = DEFAULT_NOISE.with_ratios(meas_latency=8.0)
        assert config_key(TINY) != config_key(TINY.with_(noise=noise_to_items(swept)))


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = [TINY, TINY.with_(seed=2)]
        records1, report1 = run_jobs_report(jobs, cache=cache)
        assert (report1.cache_hits, report1.executed) == (0, 2)
        assert len(cache) == 2

        records2, report2 = run_jobs_report(jobs, cache=cache)
        assert (report2.cache_hits, report2.executed) == (2, 0)
        assert _dicts(records1) == _dicts(records2)

    def test_cache_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_jobs([TINY], cache=cache)
        path = cache.path_for(config_key(TINY))
        entry = json.loads(path.read_text())
        entry["cache_version"] = CACHE_VERSION + 1
        path.write_text(json.dumps(entry))
        assert cache.get(config_key(TINY)) is None

    def test_corrupt_entry_is_a_miss_and_gets_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        records1, _ = run_jobs_report([TINY], cache=cache)
        cache.path_for(config_key(TINY)).write_text("{not json")
        records2, report = run_jobs_report([TINY], cache=cache)
        assert report.executed == 1
        assert _dicts(records1) == _dicts(records2)

    def test_non_dict_json_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_jobs([TINY], cache=cache)
        for garbage in ("null", "[]", '"str"'):
            cache.path_for(config_key(TINY)).write_text(garbage)
            assert cache.get(config_key(TINY)) is None

    def test_completed_jobs_are_cached_even_when_a_later_job_fails(self, tmp_path):
        cache = ResultCache(tmp_path)
        bad = TINY.with_(benchmark="NOPE")
        with pytest.raises(ValueError):
            run_jobs([TINY, bad], cache=cache)
        # the job that finished before the failure survived in the cache
        assert cache.get(config_key(TINY)) is not None
        _, report = run_jobs_report([TINY], cache=cache)
        assert report.cache_hits == 1

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_jobs([TINY], cache=cache)
        assert cache.clear() == 1
        assert len(cache) == 0
        assert cache.clear() == 0

    def test_cache_accepts_plain_paths(self, tmp_path):
        _, report1 = run_jobs_report([TINY], cache=str(tmp_path))
        _, report2 = run_jobs_report([TINY], cache=tmp_path)
        assert report1.executed == 1
        assert report2.cache_hits == 1

    def test_corrupt_entries_are_dropped_and_surfaced_in_the_report(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_jobs([TINY], cache=cache)
        path = cache.path_for(config_key(TINY))
        path.write_text("{not json")
        _, report = run_jobs_report([TINY], cache=cache)
        assert report.corrupt_entries == 1
        assert report.executed == 1
        assert cache.corrupt_seen == 1
        assert "1 corrupt cache entry dropped" in report.summary()


def _fake_key(label: str) -> str:
    return hashlib.sha256(label.encode()).hexdigest()


def _fake_payload(label: str) -> dict:
    return {"benchmark": label, "padding": "x" * 64}


class TestShardedCache:
    """Layout, legacy migration, LRU eviction and temp-litter hygiene."""

    def test_entries_are_sharded_by_hash_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _fake_key("a")
        path = cache.put(key, TINY, _fake_payload("a"))
        assert path == tmp_path / key[:2] / f"{key}.json"
        assert path.is_file()
        assert cache.entries() == [path]
        assert cache.get(key) == _fake_payload("a")

    def test_flat_legacy_entry_migrates_on_get(self, tmp_path):
        key = _fake_key("legacy")
        legacy = tmp_path / f"{key}.json"
        legacy.parent.mkdir(parents=True, exist_ok=True)
        legacy.write_text(
            json.dumps(
                {"cache_version": CACHE_VERSION, "key": key, "record": _fake_payload("legacy")}
            )
        )
        cache = ResultCache(tmp_path)
        assert cache.get(key) == _fake_payload("legacy")
        assert not legacy.exists()
        assert cache.path_for(key).is_file()

    def test_bulk_migrate(self, tmp_path):
        keys = [_fake_key(str(i)) for i in range(3)]
        tmp_path.mkdir(exist_ok=True)
        for key in keys:
            (tmp_path / f"{key}.json").write_text(
                json.dumps({"cache_version": CACHE_VERSION, "record": _fake_payload(key)})
            )
        cache = ResultCache(tmp_path)
        assert cache.stats()["legacy_entries"] == 3
        assert cache.migrate() == 3
        assert cache.stats()["legacy_entries"] == 0
        assert len(cache) == 3
        for key in keys:
            assert cache.get(key) is not None

    def test_clear_spans_shards_and_legacy_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_fake_key("a"), TINY, _fake_payload("a"))
        key = _fake_key("flat")
        (tmp_path / f"{key}.json").write_text("{}")
        assert cache.clear() == 2
        assert len(cache) == 0
        # shard directories are pruned too
        assert not any(p.is_dir() for p in tmp_path.iterdir())

    def test_lru_eviction_removes_oldest_entries_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        p1 = cache.put(_fake_key("one"), TINY, _fake_payload("one"))
        cache.max_bytes = int(p1.stat().st_size * 2.5)
        os.utime(p1, (1000, 1000))
        p2 = cache.put(_fake_key("two"), TINY, _fake_payload("two"))
        os.utime(p2, (2000, 2000))
        p3 = cache.put(_fake_key("three"), TINY, _fake_payload("three"))
        assert not p1.exists()  # oldest evicted
        assert p2.exists() and p3.exists()
        assert cache.evicted == 1

    def test_get_refreshes_lru_rank(self, tmp_path):
        cache = ResultCache(tmp_path)
        p1 = cache.put(_fake_key("one"), TINY, _fake_payload("one"))
        p2 = cache.put(_fake_key("two"), TINY, _fake_payload("two"))
        os.utime(p1, (1000, 1000))
        os.utime(p2, (2000, 2000))
        assert cache.get(_fake_key("one")) is not None  # touches p1
        cache.max_bytes = int(p1.stat().st_size * 2.5)
        p3 = cache.put(_fake_key("three"), TINY, _fake_payload("three"))
        assert p1.exists() and p3.exists()
        assert not p2.exists()  # p2 became the least recently used

    def test_stale_tmp_litter_swept_on_put(self, tmp_path):
        # two keys in the same shard: the second put sweeps the first's litter
        key1, key2 = "ab" + "1" * 62, "ab" + "2" * 62
        cache = ResultCache(tmp_path)
        first = cache.put(key1, TINY, _fake_payload("one"))
        stale = first.parent / f".{'ab' + '3' * 62}.json.tmp-12345"
        stale.write_text("partial write from a crashed run")
        os.utime(stale, (1000, 1000))
        fresh = first.parent / f".{'ab' + '4' * 62}.json.tmp-67890"
        fresh.write_text("a concurrent writer mid-put")
        root_stale = tmp_path / f".{'cd' + '5' * 62}.json.tmp-777"
        root_stale.write_text("legacy-layout litter")
        os.utime(root_stale, (1000, 1000))
        cache.put(key2, TINY, _fake_payload("two"))
        assert not stale.exists()
        assert not root_stale.exists()  # the cache root is always swept too
        assert fresh.exists()  # young files are never swept by put()

    def test_clear_removes_all_tmp_litter(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(_fake_key("a"), TINY, _fake_payload("a"))
        litter_shard = path.parent / f".{_fake_key('x')}.json.tmp-1"
        litter_shard.write_text("x")
        litter_root = tmp_path / f".{_fake_key('y')}.json.tmp-2"
        litter_root.write_text("y")
        cache.clear()
        assert not litter_shard.exists() and not litter_root.exists()

    def test_non_positive_max_bytes_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(tmp_path, max_bytes=0)
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(tmp_path, max_bytes=-1)

    def test_migration_race_loser_still_gets_a_hit(self, tmp_path):
        # two cache handles race to migrate the same legacy entry; the loser
        # must fall through to the sharded copy instead of crashing
        key = _fake_key("raced")
        (tmp_path / f"{key}.json").write_text(
            json.dumps({"cache_version": CACHE_VERSION, "record": _fake_payload("raced")})
        )
        winner, loser = ResultCache(tmp_path), ResultCache(tmp_path)
        assert winner.get(key) == _fake_payload("raced")
        assert loser.get(key) == _fake_payload("raced")

    def test_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_fake_key("a"), TINY, _fake_payload("a"))
        cache.put(_fake_key("b"), TINY, _fake_payload("b"))
        cache.path_for(_fake_key("b")).write_text("{rotten")
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["corrupt_entries"] == 1
        assert stats["total_bytes"] > 0
        assert stats["legacy_entries"] == 0
        assert stats["tmp_files"] == 0
        assert stats["oldest_mtime"] <= stats["newest_mtime"]


class TestExecution:
    def test_parallel_matches_serial(self):
        jobs = [TINY, TINY.with_(rows=2), TINY.with_(seed=3)]
        serial = run_jobs(jobs, workers=1)
        parallel = run_jobs(jobs, workers=2)
        assert _dicts(serial) == _dicts(parallel)

    def test_identical_jobs_deduplicated_within_a_run(self):
        records, report = run_jobs_report([TINY, TINY, TINY.with_(tags=(("t", 1.0),))])
        assert report.total == 3
        assert report.executed == 1
        assert report.deduplicated == 2
        assert len(records) == 3
        # the tagged copy shares the computation but keeps its own extras
        assert records[2].extra["t"] == 1.0
        assert "t" not in records[0].extra

    def test_tags_survive_cache_retrieval(self, tmp_path):
        tagged = TINY.with_(tags=(("highway_density", 2.0),))
        first = run_jobs([tagged], cache=tmp_path)
        second = run_jobs([tagged], cache=tmp_path)
        assert first[0].extra["highway_density"] == 2.0
        assert second[0].extra["highway_density"] == 2.0

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            run_jobs([TINY.with_(kind="nope")])

    def test_progress_callback_fires_per_executed_job(self):
        seen = []
        run_jobs([TINY, TINY.with_(seed=9)], progress=seen.append)
        assert len(seen) == 2

    def test_record_payload_roundtrip(self):
        record = run_jobs([TINY])[0]
        clone = record_from_payload(record_to_payload(record))
        assert clone.as_dict() == record.as_dict()
        assert clone.extra is not record.extra

    def test_sensitivity_job_series_roundtrip(self, tmp_path):
        job = TINY.with_(
            kind="sensitivity",
            params=(
                ("meas_latencies", (1.0, 4.0)),
                ("meas_error_ratios", (1.0, 3.0)),
                ("cross_error_ratios", (4.0, 8.0)),
            ),
        )
        cold = run_jobs([job], cache=tmp_path)
        warm, report = run_jobs_report([job], cache=tmp_path)
        assert report.cache_hits == 1
        assert _dicts(cold) == _dicts(warm)
        result = sensitivity_results_from_records(warm)[0]
        assert [x for x, _ in result.depth_vs_latency] == [1.0, 4.0]
        assert [x for x, _ in result.eff_vs_meas_error] == [1.0, 3.0]
        assert [x for x, _ in result.eff_vs_cross_error] == [4.0, 8.0]


class TestArtifacts:
    @pytest.fixture(scope="class")
    def records(self):
        return run_jobs([TINY, TINY.with_(seed=2, tags=(("sweep", 1.0),))])

    def test_json_and_csv_written(self, tmp_path, records):
        paths = write_artifacts(
            "demo", records, tmp_path, text="demo table", metadata={"scale": "small"}
        )
        doc = json.loads(paths["json"].read_text())
        assert doc["experiment"] == "demo"
        assert doc["scale"] == "small"
        assert len(doc["records"]) == 2
        assert doc["records"][0]["benchmark"] == "BV"
        assert "depth_improvement" in doc["records"][0]

        with open(paths["csv"], newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["benchmark"] == "BV"
        # the tag column exists for both rows; the untagged one is blank
        assert rows[1]["sweep"] == "1.0"
        assert rows[0]["sweep"] == ""

        assert paths["txt"].read_text().startswith("demo table")

    def test_json_matches_records(self, tmp_path, records):
        paths = write_artifacts("demo", records, tmp_path)
        doc = json.loads(paths["json"].read_text())
        for row, record in zip(doc["records"], records, strict=True):
            assert row["baseline_depth"] == record.baseline_depth
            assert row["mech_depth"] == record.mech_depth
            assert row["depth_improvement"] == pytest.approx(record.depth_improvement)


class TestVerifyHook:
    """REPRO_VERIFY gates in-line static verification of fresh compilations."""

    def test_clean_compilation_passes_under_verify(self, monkeypatch):
        from repro.experiments.engine import VERIFY_ENV

        monkeypatch.setenv(VERIFY_ENV, "1")
        records, report = run_jobs_report([TINY])
        assert report.failed == 0 and len(records) == 1

    def test_tampered_compilation_fails_the_job(self, monkeypatch):
        import repro.experiments.engine as engine_module
        from repro.experiments.engine import VERIFY_ENV, JobPolicy

        monkeypatch.setenv(VERIFY_ENV, "1")
        real = engine_module.compile_many

        def tampering(*args, **kwargs):
            compiled = real(*args, **kwargs)
            ops = compiled.results["mech"].circuit._ops
            index = max(
                i
                for i, op in enumerate(ops)
                if op.name in ("cx", "cz", "cp") and op.condition is None
            )
            del ops[index]
            return compiled

        monkeypatch.setattr(engine_module, "compile_many", tampering)
        records, report = run_jobs_report(
            [TINY], policy=JobPolicy(on_error="record")
        )
        assert report.failed == 1 and not records
        (error,) = report.errors
        assert error.error_type == "VerificationError"
        assert "backend 'mech'" in error.message
        assert "violation(s)" in error.message

    def test_verify_off_by_default(self, monkeypatch):
        import repro.experiments.engine as engine_module
        from repro.experiments.engine import VERIFY_ENV

        monkeypatch.delenv(VERIFY_ENV, raising=False)
        real = engine_module.compile_many

        def tampering(*args, **kwargs):
            compiled = real(*args, **kwargs)
            ops = compiled.results["mech"].circuit._ops
            del ops[max(i for i, op in enumerate(ops) if len(op.qubits) == 2)]
            return compiled

        monkeypatch.setattr(engine_module, "compile_many", tampering)
        records, report = run_jobs_report([TINY])
        # without the env var the tamper sails through: verification is opt-in
        assert report.failed == 0 and len(records) == 1
