"""Unit tests for the statevector simulator (repro.circuits.simulator)."""

import numpy as np
import pytest

from repro.circuits import (
    Circuit,
    Simulator,
    circuit_unitary,
    statevectors_equal,
)
from repro.circuits import gates as g


class TestBasics:
    def test_initial_state_is_all_zero(self):
        sim = Simulator(3)
        state = sim.statevector
        assert np.isclose(state[0], 1.0)
        assert np.allclose(state[1:], 0.0)

    def test_qubit_limits(self):
        with pytest.raises(ValueError):
            Simulator(0)
        with pytest.raises(ValueError):
            Simulator(Simulator.MAX_QUBITS + 1)

    def test_bell_state(self):
        c = Circuit(2).h(0).cx(0, 1)
        result = Simulator(2, seed=0).run(c)
        probs = result.probabilities()
        assert np.isclose(probs[0b00], 0.5)
        assert np.isclose(probs[0b11], 0.5)

    def test_ghz_state(self):
        c = Circuit(4).h(0).cx(0, 1).cx(1, 2).cx(2, 3)
        probs = Simulator(4, seed=0).run(c).probabilities()
        assert np.isclose(probs[0], 0.5)
        assert np.isclose(probs[-1], 0.5)
        assert np.isclose(probs[1:-1].sum(), 0.0)

    def test_x_flips(self):
        c = Circuit(2).x(1)
        probs = Simulator(2, seed=0).run(c).probabilities()
        assert np.isclose(probs[0b01], 1.0)

    def test_qubit_zero_is_most_significant(self):
        c = Circuit(2).x(0)
        probs = Simulator(2, seed=0).run(c).probabilities()
        assert np.isclose(probs[0b10], 1.0)

    def test_run_rejects_larger_circuit(self):
        with pytest.raises(ValueError):
            Simulator(2).run(Circuit(3).h(0))

    def test_set_statevector_normalises(self):
        sim = Simulator(1)
        sim.set_statevector([3.0, 4.0])
        assert np.isclose(np.linalg.norm(sim.statevector), 1.0)
        with pytest.raises(ValueError):
            sim.set_statevector([1.0, 0.0, 0.0])
        with pytest.raises(ValueError):
            sim.set_statevector([0.0, 0.0])

    def test_reset(self):
        sim = Simulator(2, seed=0)
        sim.run(Circuit(2).h(0).measure(0))
        sim.reset()
        assert np.isclose(sim.statevector[0], 1.0)
        assert sim.classical_bits == {}


class TestMeasurement:
    def test_deterministic_measurement(self):
        sim = Simulator(1, seed=0)
        sim.run(Circuit(1).x(0))
        assert sim.measure(0) == 1

    def test_measurement_collapses_state(self):
        sim = Simulator(2, seed=3)
        sim.run(Circuit(2).h(0).cx(0, 1))
        outcome = sim.measure(0)
        # after measuring one half of a Bell pair the other half is determined
        assert sim.measure(1) == outcome

    def test_measurement_records_classical_bit(self):
        c = Circuit(2).x(1).measure(1, cbit=5)
        result = Simulator(2, seed=0).run(c)
        assert result.classical_bits[5] == 1

    def test_measurement_statistics_are_roughly_uniform(self):
        ones = 0
        for seed in range(200):
            sim = Simulator(1, seed=seed)
            sim.run(Circuit(1).h(0))
            ones += sim.measure(0)
        assert 60 <= ones <= 140  # loose 3-sigma-ish bound around 100

    def test_expectation_z(self):
        sim = Simulator(1, seed=0)
        assert np.isclose(sim.expectation_z(0), 1.0)
        sim.run(Circuit(1).x(0))
        assert np.isclose(sim.expectation_z(0), -1.0)
        sim.reset()
        sim.run(Circuit(1).h(0))
        assert np.isclose(sim.expectation_z(0), 0.0, atol=1e-9)


class TestConditionalOperations:
    def test_conditional_applied_when_parity_matches(self):
        c = Circuit(2)
        c.x(0)
        c.measure(0, cbit=0)
        c.append(g.x(1).with_condition([0], 1))
        result = Simulator(2, seed=0).run(c)
        assert np.isclose(result.probabilities()[0b11], 1.0)

    def test_conditional_skipped_when_parity_differs(self):
        c = Circuit(2)
        c.measure(0, cbit=0)  # outcome 0
        c.append(g.x(1).with_condition([0], 1))
        result = Simulator(2, seed=0).run(c)
        assert np.isclose(result.probabilities()[0b00], 1.0)

    def test_parity_condition_over_multiple_bits(self):
        c = Circuit(3)
        c.x(0)
        c.measure(0, cbit=0)
        c.measure(1, cbit=1)  # 0
        c.append(g.x(2).with_condition([0, 1], 1))  # parity 1 -> applied
        result = Simulator(3, seed=0).run(c)
        assert np.isclose(result.probabilities()[0b101], 1.0)

    def test_unmeasured_condition_bits_default_to_zero(self):
        c = Circuit(1)
        c.append(g.x(0).with_condition([7], 1))
        result = Simulator(1, seed=0).run(c)
        assert np.isclose(result.probabilities()[0], 1.0)

    def test_deferred_measurement_teleportation(self):
        """One-qubit teleportation: |psi> on q0 teleported to q2."""
        c = Circuit(3)
        c.rx(0.9, 0)
        c.rz(0.4, 0)
        # Bell pair on (1, 2)
        c.h(1).cx(1, 2)
        # Bell measurement of (0, 1)
        c.cx(0, 1).h(0)
        c.measure(0, cbit=0)
        c.measure(1, cbit=1)
        c.append(g.x(2).with_condition([1], 1))
        c.append(g.z(2).with_condition([0], 1))
        for seed in range(5):
            out = Simulator(3, seed=seed).run(c)
            ref = Simulator(1, seed=0).run(Circuit(1).rx(0.9, 0).rz(0.4, 0)).statevector
            # slice out measured qubits
            state = out.statevector.reshape(2, 2, 2)
            sub = state[out.classical_bits[0], out.classical_bits[1], :]
            assert statevectors_equal(sub, ref)


class TestUnitaryHelpers:
    def test_circuit_unitary_of_cnot(self):
        u = circuit_unitary(Circuit(2).cx(0, 1))
        expected = np.array([[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]])
        assert np.allclose(u, expected)

    def test_swap_macro_equals_three_cnots(self):
        direct = circuit_unitary(Circuit(2).swap(0, 1))
        threes = circuit_unitary(Circuit(2).cx(0, 1).cx(1, 0).cx(0, 1))
        assert np.allclose(direct, threes)

    def test_multi_target_gate_execution(self):
        c = Circuit(3)
        c.append(g.multi_target_cx(0, [1, 2]))
        u = circuit_unitary(c)
        ref = circuit_unitary(Circuit(3).cx(0, 1).cx(0, 2))
        assert np.allclose(u, ref)

    def test_statevectors_equal_global_phase(self):
        v = np.array([1.0, 1.0]) / np.sqrt(2)
        assert statevectors_equal(v, v * np.exp(1j * 0.7))
        assert not statevectors_equal(v, np.array([1.0, 0.0]))
        assert not statevectors_equal(v, np.array([1.0, 0.0, 0.0]))
