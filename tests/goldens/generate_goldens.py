"""Regenerate the routing-equivalence goldens (``routing_goldens.json``).

The goldens pin the *exact* routed output — swap sequence, depth, effective
CNOTs, operation counts — of every registered compiler backend on fixed-seed
GHZ/QFT/QAOA inputs at two device sizes.  They were recorded from the
pre-vectorization routers (PR 5), so the optimized hot paths are provably
output-identical and every paper figure is unchanged.

Run from the repository root to re-record (only after an *intentional*
routing-behaviour change, never to paper over a diff)::

    PYTHONPATH=src python tests/goldens/generate_goldens.py
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_PATH = Path(__file__).resolve().parent / "routing_goldens.json"

#: (case name, structure, chiplet_width, rows, cols) — one small and one
#: medium device, both fast enough for the tier-1 suite.
ARRAYS = [
    ("square-4x4-1x2", "square", 4, 1, 2),
    ("square-5x5-2x2", "square", 5, 2, 2),
]

BENCHMARKS = ("GHZ", "QFT", "QAOA")

SEED = 7


def build_case_circuit(benchmark: str, width: int):
    from repro.programs import build_benchmark
    from repro.programs.ghz import ghz_circuit

    if benchmark == "GHZ":
        return ghz_circuit(width, measure=False)
    kwargs = {"seed": SEED} if benchmark == "QAOA" else {}
    return build_benchmark(benchmark, width, **kwargs)


def record_result(result) -> dict:
    """The equivalence fingerprint of one compiled circuit."""
    circuit = result.circuit
    swaps = [list(op.qubits) for op in circuit if op.name == "swap"]
    counts = {}
    for op in circuit:
        counts[op.name] = counts.get(op.name, 0) + 1
    metrics = result.metrics()
    return {
        "num_operations": len(circuit),
        "op_counts": dict(sorted(counts.items())),
        "swap_sequence": swaps,
        "depth": metrics.depth,
        "eff_cnots": metrics.eff_cnots,
        "swaps_inserted": result.stats.get("swaps_inserted", 0.0),
        "final_layout": {str(k): int(v) for k, v in sorted(result.final_layout.items())},
    }


def generate() -> dict:
    from repro.backends import available_backends, get_backend
    from repro.hardware.array import ChipletArray
    from repro.highway.layout import HighwayLayout

    cases = []
    for case_name, structure, width, rows, cols in ARRAYS:
        array = ChipletArray(structure, width, rows, cols)
        layout = HighwayLayout(array, density=1)
        n = layout.num_data_qubits
        for benchmark in BENCHMARKS:
            circuit = build_case_circuit(benchmark, n)
            for backend_name in available_backends():
                backend = get_backend(backend_name).configure(
                    array, seed=SEED, layout=layout
                )
                result = backend.compile(circuit)
                cases.append(
                    {
                        "case": f"{case_name}/{benchmark}/{backend_name}",
                        "array": [structure, width, rows, cols],
                        "benchmark": benchmark,
                        "backend": backend_name,
                        "seed": SEED,
                        "num_data_qubits": n,
                        **record_result(result),
                    }
                )
    return {"version": 1, "seed": SEED, "cases": cases}


if __name__ == "__main__":
    document = generate()
    GOLDEN_PATH.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    print(f"wrote {len(document['cases'])} cases to {GOLDEN_PATH}")
