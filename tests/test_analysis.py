"""Unit tests for ``repro.analysis`` — the static circuit-IR verifier.

Covers the four rule families (hardware legality, semantic preservation,
highway-protocol invariants, metric consistency) on genuine compilations and
on hand-tampered ones, plus the report/violation data model and its JSON
round-trip.
"""

import dataclasses

import pytest

from repro.analysis import (
    ALL_RULES,
    RULE_HARDWARE,
    RULE_HIGHWAY,
    RULE_METRICS,
    RULE_SEMANTICS,
    VerificationError,
    VerificationReport,
    Violation,
    assert_verified,
    check_hardware_legality,
    format_report,
    replay_result,
    report_from_dict,
    verify_compilation,
)
from repro.backends import get_backend
from repro.circuits import gates as g
from repro.hardware.array import ChipletArray
from repro.programs import qft_circuit

ARRAY = ChipletArray("square", 3, 1, 2)


def _compile(backend, circuit, seed=0):
    return get_backend(backend).configure(ARRAY, seed=seed).compile(circuit)


def _with_ops(result, ops):
    """A copy of ``result`` whose circuit holds exactly ``ops``.

    Bypasses ``Circuit.append`` validation on purpose so tests can build
    physically impossible circuits (e.g. out-of-range qubits).
    """
    circuit = result.circuit.copy()
    circuit._ops = list(ops)
    return dataclasses.replace(
        result, circuit=circuit, _metrics_cache=None, _metrics_noise=None
    )


@pytest.fixture(scope="module")
def qft():
    return qft_circuit(5, measure=False)


@pytest.fixture(scope="module")
def mech(qft):
    return _compile("mech", qft)


@pytest.fixture(scope="module")
def baseline(qft):
    return _compile("baseline", qft)


class TestCleanVerification:
    def test_mech_compilation_is_clean(self, qft, mech):
        report = verify_compilation(qft, mech)
        assert report.ok, format_report(report)
        assert report.compiler == "mech"
        assert report.rules_checked == ALL_RULES
        assert report.ops_checked == len(mech.circuit.operations)
        assert report.protocol_instances > 0

    def test_baseline_compilation_is_clean(self, qft, baseline):
        report = verify_compilation(qft, baseline)
        assert report.ok, format_report(report)
        assert report.protocol_instances == 0  # no highway on the baseline

    def test_assert_verified_returns_the_report(self, qft, mech):
        report = assert_verified(qft, mech, context="unit test")
        assert report.ok and report.compiler == "mech"

    def test_recorded_metrics_crosscheck(self, qft, mech):
        metrics = mech.metrics()
        report = verify_compilation(
            qft, mech, expected_depth=metrics.depth, expected_eff_cnots=metrics.eff_cnots
        )
        assert report.ok, format_report(report)

    def test_replay_outcome_counts_protocols(self, qft, mech):
        outcome = replay_result(qft, mech)
        assert outcome.protocol_instances == int(mech.stats["ghz_preparations"])


class TestRuleSelection:
    def test_subset_runs_only_selected_rules(self, qft, mech):
        report = verify_compilation(qft, mech, rules=(RULE_HARDWARE,))
        assert report.rules_checked == (RULE_HARDWARE,)
        assert report.protocol_instances == 0  # replay never ran

    def test_rule_order_is_normalised(self, qft, baseline):
        report = verify_compilation(qft, baseline, rules=(RULE_METRICS, RULE_HARDWARE))
        assert report.rules_checked == (RULE_HARDWARE, RULE_METRICS)

    def test_unknown_rule_is_rejected(self, qft, baseline):
        with pytest.raises(ValueError, match="unknown verifier rule"):
            verify_compilation(qft, baseline, rules=("hardware", "vibes"))


class TestHardwareRule:
    def test_retargeted_gate_off_coupling_is_flagged(self, qft, baseline):
        topology = baseline.topology
        bad_pair = next(
            (a, b)
            for a in range(topology.num_qubits)
            for b in range(topology.num_qubits)
            if a != b and not topology.is_coupled(a, b)
        )
        ops = list(baseline.circuit.operations)
        index = next(i for i, op in enumerate(ops) if op.name in ("cx", "cp", "cz"))
        ops[index] = g.cx(*bad_pair)
        violations = check_hardware_legality(_with_ops(baseline, ops))
        assert [v.code for v in violations] == ["uncoupled-2q"]
        assert violations[0].rule == RULE_HARDWARE
        assert violations[0].gate_index == index
        assert violations[0].qubits == bad_pair

    def test_out_of_range_qubit_is_flagged(self, baseline):
        ops = [*baseline.circuit.operations, g.cx(0, 10_000)]
        violations = check_hardware_legality(_with_ops(baseline, ops))
        assert [v.code for v in violations] == ["unknown-qubit"]
        assert 10_000 in violations[0].qubits

    def test_uncoupled_swap_is_flagged_like_its_cnots(self, baseline):
        topology = baseline.topology
        bad_pair = next(
            (a, b)
            for a in range(topology.num_qubits)
            for b in range(topology.num_qubits)
            if a != b and not topology.is_coupled(a, b)
        )
        ops = [*baseline.circuit.operations, g.swap(*bad_pair)]
        violations = check_hardware_legality(_with_ops(baseline, ops))
        assert [v.code for v in violations] == ["uncoupled-2q"]


class TestSemanticsRule:
    def test_dropped_gate_is_caught(self, qft, baseline):
        ops = list(baseline.circuit.operations)
        index = max(i for i, op in enumerate(ops) if op.name in ("cx", "cp", "cz"))
        del ops[index]
        report = verify_compilation(qft, _with_ops(baseline, ops), rules=(RULE_SEMANTICS,))
        assert not report.ok
        assert "dropped-op" in {v.code for v in report.violations}

    def test_extra_gate_is_caught(self, qft, baseline):
        edge = baseline.topology.edges()[0]
        ops = [*baseline.circuit.operations, g.cx(*edge)]
        report = verify_compilation(qft, _with_ops(baseline, ops), rules=(RULE_SEMANTICS,))
        assert not report.ok
        assert {v.rule for v in report.violations} == {RULE_SEMANTICS}

    def test_wrong_final_layout_is_caught(self, qft, baseline):
        layout = dict(baseline.final_layout)
        a, b = sorted(layout)[:2]
        layout[a], layout[b] = layout[b], layout[a]
        tampered = dataclasses.replace(baseline, final_layout=layout)
        report = verify_compilation(qft, tampered, rules=(RULE_SEMANTICS,))
        assert "final-layout-mismatch" in {v.code for v in report.violations}


class TestHighwayRule:
    def test_protocol_without_measurements_is_caught(self, qft, mech):
        # the cat-entangler/disentangler measurements are what release the
        # highway; stripping them leaves shuttles unreleased and overlapping
        ops = [op for op in mech.circuit.operations if not op.is_measurement]
        report = verify_compilation(qft, _with_ops(mech, ops), rules=(RULE_HIGHWAY,))
        assert not report.ok
        codes = {v.code for v in report.violations}
        assert codes & {"occupancy-overlap", "unreleased-shuttle"}

    def test_truncated_protocol_drops_logical_gates(self, qft, mech):
        ops = mech.circuit.operations
        first_measure = next(i for i, op in enumerate(ops) if op.is_measurement)
        report = verify_compilation(
            qft, _with_ops(mech, ops[: first_measure + 1]), rules=(RULE_SEMANTICS,)
        )
        assert "dropped-op" in {v.code for v in report.violations}


class TestMetricsRule:
    def test_swap_count_tamper_is_caught(self, qft, baseline):
        stats = dict(baseline.stats)
        stats["swaps_inserted"] = stats.get("swaps_inserted", 0.0) + 1.0
        tampered = dataclasses.replace(baseline, stats=stats)
        report = verify_compilation(qft, tampered, rules=(RULE_METRICS,))
        assert "swap-count-mismatch" in {v.code for v in report.violations}

    def test_ghz_count_tamper_is_caught(self, qft, mech):
        stats = dict(mech.stats)
        stats["ghz_preparations"] = stats.get("ghz_preparations", 0.0) + 1.0
        tampered = dataclasses.replace(mech, stats=stats)
        # the recomputation comes from the replay, so both rules must run
        report = verify_compilation(qft, tampered, rules=(RULE_SEMANTICS, RULE_METRICS))
        assert "ghz-count-mismatch" in {v.code for v in report.violations}

    def test_wrong_external_depth_is_caught(self, qft, baseline):
        report = verify_compilation(
            qft, baseline, rules=(RULE_METRICS,), expected_depth=-1.0
        )
        assert "depth-mismatch" in {v.code for v in report.violations}

    def test_wrong_external_eff_cnots_is_caught(self, qft, baseline):
        report = verify_compilation(
            qft, baseline, rules=(RULE_METRICS,), expected_eff_cnots=-1.0
        )
        assert "eff-cnots-mismatch" in {v.code for v in report.violations}


class TestReportDataModel:
    def _dirty_report(self, qft, baseline):
        ops = list(baseline.circuit.operations)
        del ops[max(i for i, op in enumerate(ops) if op.name in ("cx", "cp", "cz"))]
        return verify_compilation(qft, _with_ops(baseline, ops))

    def test_violation_renders_location_and_qubits(self):
        violation = Violation(
            rule=RULE_HARDWARE,
            code="uncoupled-2q",
            message="cx acts on (0, 9)",
            gate_index=3,
            qubits=(0, 9),
        )
        text = str(violation)
        assert "[hardware/uncoupled-2q]" in text
        assert "@op[3]" in text and "qubits=[0, 9]" in text

    def test_report_roundtrips_through_dict(self, qft, baseline):
        report = self._dirty_report(qft, baseline)
        assert not report.ok
        rebuilt = report_from_dict(report.as_dict())
        assert rebuilt.as_dict() == report.as_dict()
        assert rebuilt.rules_checked == report.rules_checked
        assert len(rebuilt.violations) == len(report.violations)

    def test_by_rule_groups_every_violation(self, qft, baseline):
        report = self._dirty_report(qft, baseline)
        grouped = report.by_rule()
        assert set(grouped) >= set(report.rules_checked)
        assert sum(len(v) for v in grouped.values()) == len(report.violations)

    def test_format_report_truncates_past_the_limit(self):
        violations = tuple(
            Violation(rule=RULE_SEMANTICS, code="dropped-op", message=f"gate {i}")
            for i in range(30)
        )
        report = VerificationReport(
            compiler="mech", rules_checked=ALL_RULES, violations=violations
        )
        text = format_report(report, limit=25)
        assert "30 violation(s)" in text
        assert "... and 5 more" in text

    def test_assert_verified_raises_with_context(self, qft, baseline):
        ops = list(baseline.circuit.operations)
        del ops[max(i for i, op in enumerate(ops) if op.name in ("cx", "cp", "cz"))]
        tampered = _with_ops(baseline, ops)
        with pytest.raises(VerificationError, match="backend 'baseline'") as excinfo:
            assert_verified(qft, tampered, context="backend 'baseline' on QFT")
        assert not excinfo.value.report.ok
        assert excinfo.value.context == "backend 'baseline' on QFT"
