"""End-to-end chaos tests: scripted multi-fault runs must self-heal.

The acceptance criterion of the chaos subsystem: a farm run under a
scripted ``REPRO_CHAOS`` scenario (connection drops on the worker
sockets, truncated frames on the coordinator's, a torn journal line, a
failed cache write) completes with exit code 0 and artifacts identical
to a fault-free run's — modulo the ``*_seconds`` timing fields — with
every degradation counted in the run report instead of hidden.

The scenarios here use ``garble:mode=truncate`` (never-parseable frames,
healed instantly by the same-id retry + dedup-replay path) rather than
``mode=flip``; a flipped byte *inside a JSON string literal* can survive
parsing with altered content, which is a fault class the transport
protocol does not promise to heal (that is what result verification is
for).  Flip-mode behaviour is covered by the unit tests.
"""

import csv
import json

import pytest

from repro.chaos import CHAOS_ENV, CHAOS_REPORT_ENV, reset_chaos
from repro.cli import main
from repro.experiments.engine import (
    load_checkpoint,
    quarantine_path_for,
    read_journal,
)

TIMING_FIELDS = ("baseline_seconds", "mech_seconds")

#: The pinned farm scenario (also the CI chaos-smoke matrix entry): drops
#: on the worker sockets, truncated frames on the coordinator's, one torn
#: journal line, one failed cache write.
FARM_SCENARIO = (
    "seed=42"
    ";conn-drop:site=worker,after=3,times=2"
    ";garble:site=coordinator,mode=truncate,rate=0.2,times=2"
    ";torn-tail:journal"
    ";enospc:op=put,times=1"
)

#: The pinned batch scenario: the cache goes read-only for the whole run
#: and the checkpoint tears once.
BATCH_SCENARIO = "seed=7;readonly:op=put,sticky=1;torn-tail:checkpoint"


def _normalized_json(path):
    doc = json.loads(path.read_text())
    for row in doc["records"]:
        for field in TIMING_FIELDS:
            row[field] = 0.0
    return doc


def _normalized_csv(path):
    with open(path, newline="") as handle:
        rows = list(csv.DictReader(handle))
    for row in rows:
        for field in TIMING_FIELDS:
            row[field] = "0"
    return rows


@pytest.fixture(autouse=True)
def _chaos_off(monkeypatch):
    """Chaos is opt-in per test: clear the env and singleton on both sides."""
    monkeypatch.delenv(CHAOS_ENV, raising=False)
    monkeypatch.delenv(CHAOS_REPORT_ENV, raising=False)
    reset_chaos()
    yield
    reset_chaos()


def _enable_chaos(monkeypatch, spec, report=None):
    monkeypatch.setenv(CHAOS_ENV, spec)
    if report is not None:
        monkeypatch.setenv(CHAOS_REPORT_ENV, str(report))
    # re-resolve the in-process singleton; worker subprocesses inherit env
    reset_chaos()


class TestChaosFarmParity:
    def test_farm_run_under_multi_fault_scenario_matches_fault_free(
        self, tmp_path, monkeypatch, capsys
    ):
        clean_out, chaos_out = tmp_path / "clean", tmp_path / "chaos"
        report_path = tmp_path / "chaos-report.jsonl"

        # fault-free reference (plain single-process run)
        assert (
            main(
                ["run", "table2", "--scale", "small", "--benchmarks", "BV", "QFT",
                 "--jobs", "2", "--quiet",
                 "--cache-dir", str(tmp_path / "clean-cache"),
                 "--out-dir", str(clean_out)]
            )
            == 0
        )

        _enable_chaos(monkeypatch, FARM_SCENARIO, report=report_path)
        assert (
            main(
                ["farm", "run", "table2", "--scale", "smoke",
                 "--benchmarks", "BV", "QFT", "--local-workers", "2",
                 "--cache-dir", str(tmp_path / "chaos-cache"),
                 "--out-dir", str(chaos_out)]
            )
            == 0
        )
        output = capsys.readouterr()

        # artifacts are identical modulo wall-clock fields
        assert _normalized_json(chaos_out / "table2.json") == _normalized_json(
            clean_out / "table2.json"
        )
        assert _normalized_csv(chaos_out / "table2.csv") == _normalized_csv(
            clean_out / "table2.csv"
        )
        assert (chaos_out / "table2.txt").read_bytes() == (
            clean_out / "table2.txt"
        ).read_bytes()

        # the run finished and checkpointed despite the faults
        checkpoint = load_checkpoint(chaos_out / "table2.checkpoint.json")
        assert checkpoint.finished is True

        # degradation is surfaced, not hidden: the coordinator lost one
        # cache write to the injected ENOSPC and says so in the summary
        assert "cache degraded to pass-through" in output.out

        # each worker process flushed a chaos report line at exit
        reports = [json.loads(line) for line in report_path.read_text().splitlines()]
        assert reports, "no chaos report was written"
        assert all(r["spec"] == FARM_SCENARIO for r in reports)
        assert all(r["seed"] == 42 for r in reports)
        injected = {}
        for r in reports:
            for key, count in r["injected"].items():
                injected[key] = injected.get(key, 0) + count
        # the conn-drop clause targets the worker sockets and fired there
        assert any(key.startswith("conn-drop@worker") for key in injected), injected

    def test_torn_journal_line_only_costs_bookkeeping(self, tmp_path, monkeypatch):
        out = tmp_path / "out"
        _enable_chaos(monkeypatch, "torn-tail:journal")
        assert (
            main(
                ["farm", "run", "table2", "--scale", "smoke", "--benchmarks", "BV",
                 "--local-workers", "1", "--quiet",
                 "--cache-dir", str(tmp_path / "cache"), "--out-dir", str(out)]
            )
            == 0
        )
        # the torn line (and whatever merged into it) is skipped on read —
        # with two jobs at most one of the two "complete" events is lost —
        # and the run itself completed and checkpointed as finished
        events = read_journal(out / "table2.checkpoint.journal.jsonl")
        assert any(event["event"] == "complete" for event in events)
        assert load_checkpoint(out / "table2.checkpoint.json").finished is True


class TestChaosBatchDegradedStorage:
    def test_batch_run_completes_on_read_only_cache(
        self, tmp_path, monkeypatch, capsys
    ):
        out = tmp_path / "out"
        _enable_chaos(monkeypatch, BATCH_SCENARIO)
        assert (
            main(
                ["run", "table2", "--scale", "small", "--benchmarks", "BV",
                 "--cache-dir", str(tmp_path / "cache"), "--out-dir", str(out)]
            )
            == 0
        )
        output = capsys.readouterr()
        # every put failed, the run still produced its artifacts
        assert (out / "table2.json").exists()
        assert "cache degraded to pass-through (2 write errors)" in output.out

        reset_chaos()
        monkeypatch.delenv(CHAOS_ENV)
        # nothing was persisted: a re-run executes everything again
        capsys.readouterr()
        assert (
            main(
                ["run", "table2", "--scale", "small", "--benchmarks", "BV",
                 "--cache-dir", str(tmp_path / "cache"), "--out-dir", str(out)]
            )
            == 0
        )
        assert "2 jobs: 0 cached, 2 executed" in capsys.readouterr().out

    def test_degraded_artifacts_match_a_clean_run(self, tmp_path, monkeypatch, capsys):
        clean_out, degraded_out = tmp_path / "clean", tmp_path / "degraded"
        assert (
            main(
                ["run", "table2", "--scale", "small", "--benchmarks", "BV",
                 "--jobs", "2", "--quiet",
                 "--cache-dir", str(tmp_path / "clean-cache"),
                 "--out-dir", str(clean_out)]
            )
            == 0
        )
        _enable_chaos(monkeypatch, "enospc:op=put,sticky=1")
        assert (
            main(
                ["run", "table2", "--scale", "small", "--benchmarks", "BV",
                 "--jobs", "2", "--quiet",
                 "--cache-dir", str(tmp_path / "degraded-cache"),
                 "--out-dir", str(degraded_out)]
            )
            == 0
        )
        capsys.readouterr()
        assert _normalized_json(degraded_out / "table2.json") == _normalized_json(
            clean_out / "table2.json"
        )
        assert (degraded_out / "table2.txt").read_bytes() == (
            clean_out / "table2.txt"
        ).read_bytes()


class TestTornJournalResume:
    """Satellite: `repro resume` against a journal torn mid-line."""

    @pytest.fixture()
    def finished_farm(self, tmp_path, capsys):
        out = tmp_path / "out"
        assert (
            main(
                ["farm", "run", "table2", "--scale", "smoke", "--benchmarks", "BV",
                 "--local-workers", "1", "--quiet",
                 "--cache-dir", str(tmp_path / "cache"), "--out-dir", str(out)]
            )
            == 0
        )
        capsys.readouterr()
        return out

    def test_resume_quarantines_torn_tail_and_recovers(self, finished_farm, capsys):
        journal = finished_farm / "table2.checkpoint.journal.jsonl"
        good = journal.read_bytes()
        good_events = read_journal(journal)
        torn = b'{"event":"lease","key":"deadbeef","att'
        journal.write_bytes(good + torn)

        assert main(["resume", str(finished_farm / "table2.checkpoint.json")]) == 0
        output = capsys.readouterr()
        assert "quarantined a torn journal tail" in output.err
        assert f"{len(torn)} byte(s)" in output.err

        # the journal was truncated back to the intact prefix...
        assert journal.read_bytes() == good
        assert read_journal(journal) == good_events
        # ...and the torn bytes are preserved on disk, not discarded
        quarantine = quarantine_path_for(journal)
        assert quarantine.read_bytes() == torn + b"\n"

    def test_resume_without_torn_tail_prints_no_note(self, finished_farm, capsys):
        assert main(["resume", str(finished_farm / "table2.checkpoint.json")]) == 0
        output = capsys.readouterr()
        assert "quarantined" not in output.err
        assert not quarantine_path_for(
            finished_farm / "table2.checkpoint.journal.jsonl"
        ).exists()

    def test_resume_quarantines_unreadable_checkpoint(self, finished_farm, capsys):
        checkpoint = finished_farm / "table2.checkpoint.json"
        checkpoint.write_text(checkpoint.read_text()[:40])  # torn mid-document
        assert main(["resume", str(checkpoint)]) == 2
        err = capsys.readouterr().err
        assert "unreadable checkpoint" in err
        assert "preserved at" in err
        assert quarantine_path_for(checkpoint).exists()
        assert not checkpoint.exists()
