"""Tests for the warm-state compile server (``repro serve``).

Covers the wire schema, the warm-state registry's sharing/LRU behaviour,
thread-safe job timeouts (the ``_deadline`` SIGALRM fallback the server's
worker threads depend on), and the end-to-end acceptance property: results
served over the socket are byte-identical — modulo wall-clock fields — to
what the batch engine computes for the same jobs, for every registered
backend.
"""

import json
import threading
import time

import pytest

from repro import cli
from repro.backends import available_backends
from repro.experiments import engine
from repro.experiments.engine import (
    Job,
    JobPolicy,
    JobTimeoutError,
    ResultCache,
    _deadline,
    _execute_keyed,
    config_key,
    job_to_dict,
    set_warm_state_provider,
)
from repro.perf.latency import strip_timing
from repro.serve import (
    SERVE_PROTOCOL_VERSION,
    CompileServer,
    ServeClient,
    ServeProtocolError,
    ServeRequest,
    ServeResponse,
    WarmStateRegistry,
    decode_line,
    device_key,
    encode_message,
    submit_jobs,
    wait_until_ready,
)

SMALL = dict(chiplet_width=4, rows=1, cols=2)


def canonical(payload):
    return json.dumps(strip_timing(payload), sort_keys=True)


def batch_payload(job):
    _, payload = _execute_keyed((config_key(job), job_to_dict(job), None))
    assert "job_error" not in payload, payload
    return payload


# --------------------------------------------------------------------------
# wire schema


class TestSchema:
    def test_request_round_trip(self):
        request = ServeRequest(
            op="compile",
            request_id="r-1",
            job=job_to_dict(Job(benchmark="QFT", **SMALL)),
            policy=JobPolicy(timeout=5.0).to_dict(),
        )
        decoded = decode_line(encode_message(request), ServeRequest)
        assert decoded == request

    def test_response_round_trip(self):
        response = ServeResponse(
            request_id="r-2", ok=False, payload={"key": "abc"}, error="boom"
        )
        decoded = decode_line(encode_message(response), ServeResponse)
        assert decoded == response

    def test_encode_is_one_line(self):
        line = encode_message(ServeRequest(op="ping", request_id="p-1"))
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]

    def test_unknown_op_rejected(self):
        with pytest.raises(ServeProtocolError, match="unknown op"):
            ServeRequest(op="explode", request_id="x")

    def test_compile_requires_job(self):
        with pytest.raises(ServeProtocolError, match="job"):
            ServeRequest(op="compile", request_id="x")

    def test_empty_request_id_rejected(self):
        with pytest.raises(ServeProtocolError, match="request_id"):
            ServeRequest(op="ping", request_id="")

    def test_protocol_version_mismatch(self):
        # version 2 is now the farm work-queue protocol, so "unknown" means
        # a version beyond anything this build speaks
        payload = ServeRequest(op="ping", request_id="p").to_dict()
        payload["protocol"] = 99
        with pytest.raises(ServeProtocolError, match="protocol version"):
            ServeRequest.from_dict(payload)

    def test_malformed_line(self):
        with pytest.raises(ServeProtocolError, match="malformed JSON"):
            decode_line(b"{not json}\n", ServeRequest)
        with pytest.raises(ServeProtocolError, match="JSON object"):
            decode_line(b"[1, 2]\n", ServeRequest)
        with pytest.raises(ServeProtocolError, match="empty"):
            decode_line(b"   \n", ServeRequest)


# --------------------------------------------------------------------------
# warm-state registry


class TestWarmStateRegistry:
    def test_second_get_returns_identical_objects(self):
        registry = WarmStateRegistry()
        job = Job(benchmark="QFT", **SMALL)
        first = registry.get(job)
        second = registry.get(Job(benchmark="QAOA", seed=9, **SMALL))
        assert first is second  # same device -> same resident state
        assert first.array is second.array
        assert first.router is second.router

    def test_device_key_ignores_benchmark_and_seed(self):
        a = device_key(Job(benchmark="QFT", seed=0, **SMALL))
        b = device_key(Job(benchmark="BV", seed=7, **SMALL))
        assert a == b
        c = device_key(Job(benchmark="QFT", chiplet_width=5, rows=1, cols=2))
        assert a != c

    def test_lru_cap_evicts_oldest(self):
        registry = WarmStateRegistry(max_devices=2)
        jobs = [
            Job(benchmark="QFT", chiplet_width=3, rows=1, cols=2),
            Job(benchmark="QFT", chiplet_width=4, rows=1, cols=2),
            Job(benchmark="QFT", chiplet_width=5, rows=1, cols=2),
        ]
        for job in jobs:
            registry.get(job)
        assert len(registry) == 2
        assert jobs[0] not in registry  # oldest evicted
        assert jobs[1] in registry and jobs[2] in registry

    def test_stats_counters(self):
        registry = WarmStateRegistry()
        job = Job(benchmark="QFT", **SMALL)
        registry.get(job)
        registry.get(job)
        stats = registry.stats()
        assert stats["cold_builds"] == 1
        assert stats["warm_hits"] == 1
        assert stats["devices_resident"] == 1
        assert stats["device_keys"] == [list(device_key(job))]

    def test_concurrent_gets_share_one_state(self):
        registry = WarmStateRegistry()
        job = Job(benchmark="QFT", **SMALL)
        results = []
        barrier = threading.Barrier(4)

        def fetch():
            barrier.wait()
            results.append(registry.get(job))

        threads = [threading.Thread(target=fetch) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(state is results[0] for state in results)
        assert registry.stats()["devices_resident"] == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError, match="max_devices"):
            WarmStateRegistry(max_devices=0)

    def test_warm_state_matches_cold_compile(self):
        """The acceptance property at the provider level: warm-state compiles
        produce exactly the batch payload (timing stripped)."""
        registry = WarmStateRegistry()
        job = Job(benchmark="QFT", **SMALL)
        cold = batch_payload(job)
        previous = set_warm_state_provider(registry.get)
        try:
            warm = batch_payload(job)
        finally:
            set_warm_state_provider(previous)
        assert canonical(warm) == canonical(cold)


# --------------------------------------------------------------------------
# thread-safe timeouts (the _deadline SIGALRM-fallback regression tests)


def _spin(job):
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        pass
    raise AssertionError("spin executor was never interrupted")


class TestWorkerThreadTimeout:
    def test_deadline_raises_in_worker_thread(self):
        """Regression: _deadline used signal.setitimer unconditionally, which
        raises ValueError off the main thread."""
        outcome = {}

        def body():
            try:
                with _deadline(0.2):
                    deadline = time.monotonic() + 10.0
                    while time.monotonic() < deadline:
                        pass
                outcome["result"] = "completed"
            except JobTimeoutError:
                outcome["result"] = "timeout"
            except ValueError as exc:  # the historic failure mode
                outcome["result"] = f"ValueError: {exc}"

        thread = threading.Thread(target=body)
        thread.start()
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert outcome["result"] == "timeout"

    def test_deadline_noop_without_timeout_in_thread(self):
        outcome = {}

        def body():
            with _deadline(None):
                outcome["ran"] = True

        thread = threading.Thread(target=body)
        thread.start()
        thread.join(timeout=10.0)
        assert outcome == {"ran": True}

    def test_timed_out_job_in_worker_thread_yields_job_error(self, monkeypatch):
        """A served (thread-pooled) job that exceeds its timeout must come
        back as a JobTimeoutError payload, not hang or crash the worker."""
        monkeypatch.setitem(engine.EXECUTORS, "spin", _spin)
        job = Job(benchmark="SPIN", kind="spin")
        item = (config_key(job), job_to_dict(job), JobPolicy(timeout=0.2).to_dict())
        out = {}

        def run():
            _, payload = _execute_keyed(item)
            out["payload"] = payload

        thread = threading.Thread(target=run)
        thread.start()
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        error = out["payload"]["job_error"]
        assert error["error_type"] == "JobTimeoutError"
        assert "0.2" in error["message"]

    def test_main_thread_timeout_still_works(self):
        with pytest.raises(JobTimeoutError):
            with _deadline(0.2):
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    pass


# --------------------------------------------------------------------------
# end-to-end server


@pytest.fixture(scope="module")
def server():
    with CompileServer(workers=3) as running:
        assert wait_until_ready(running.host, running.port)
        yield running


class TestCompileServer:
    def test_ping(self, server):
        with ServeClient(server.host, server.port) as client:
            response = client.ping()
        assert response.ok
        assert response.payload["protocol"] == SERVE_PROTOCOL_VERSION

    def test_parallel_submissions_match_batch_for_every_backend(self, server):
        """Acceptance: concurrent served results are byte-identical (modulo
        wall-clock) to the batch path, with every registered backend in one
        comparison."""
        everything = tuple(available_backends())
        jobs = [
            Job(benchmark="QFT", compilers=everything, **SMALL),
            Job(benchmark="QAOA", seed=3, **SMALL),
            Job(benchmark="BV", seed=1, **SMALL),
            Job(benchmark="QFT", chiplet_width=3, rows=1, cols=2),
        ]
        expected = [batch_payload(job) for job in jobs]
        responses = submit_jobs(jobs, server.host, server.port, concurrency=4)
        assert len(responses) == len(jobs)
        for job, response, batch in zip(jobs, responses, expected):
            assert response.ok, response.error
            served = response.payload["result"]
            assert canonical(served) == canonical(batch), job.benchmark
            assert response.payload["key"] == config_key(job)

    def test_repeat_submission_is_warm(self, server):
        job = Job(benchmark="QAOA", seed=11, **SMALL)
        with ServeClient(server.host, server.port) as client:
            first = client.compile_job(job)
            second = client.compile_job(job)
        assert first.ok and second.ok
        # the device was already resident from earlier tests or the first
        # request; the second must be warm either way
        assert second.payload["warm"] is True
        assert canonical(first.payload["result"]) == canonical(
            second.payload["result"]
        )

    def test_error_response_keeps_server_alive(self, server):
        bad = Job(benchmark="NOPE", **SMALL)
        with ServeClient(server.host, server.port) as client:
            response = client.compile_job(bad)
            assert not response.ok
            assert "unknown benchmark" in response.error
            assert response.payload["job_error"]["error_type"] == "ValueError"
            # the connection and the server both survive a failed job
            assert client.ping().ok

    def test_request_timeout_enforced_per_request(self, server, monkeypatch):
        monkeypatch.setitem(engine.EXECUTORS, "spin", _spin)
        job = Job(benchmark="SPIN", kind="spin")
        with ServeClient(server.host, server.port) as client:
            response = client.compile_job(job, policy=JobPolicy(timeout=0.2))
        assert not response.ok
        assert response.payload["job_error"]["error_type"] == "JobTimeoutError"

    def test_invalid_job_dict_is_rejected_not_fatal(self, server):
        request = ServeRequest(
            op="compile", request_id="bad-job", job={"no_such_field": 1}
        )
        with ServeClient(server.host, server.port) as client:
            response = client.request(request)
            assert not response.ok
            assert "invalid job" in response.error
            assert client.ping().ok

    def test_stats_counters_progress(self, server):
        with ServeClient(server.host, server.port) as client:
            before = client.stats()
            client.compile_job(Job(benchmark="QFT", seed=21, **SMALL))
            after = client.stats()
        assert after["compiles"] >= before["compiles"] + 1
        assert after["warm_state"]["devices_resident"] >= 1
        assert after["protocol"] == SERVE_PROTOCOL_VERSION


class TestServerLifecycle:
    def test_result_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        job = Job(benchmark="QFT", chiplet_width=3, rows=1, cols=2)
        with CompileServer(workers=1, cache=cache) as server:
            with ServeClient(server.host, server.port) as client:
                first = client.compile_job(job)
                second = client.compile_job(job)
        assert first.ok and second.ok
        assert first.payload["cached"] is False
        assert second.payload["cached"] is True
        assert canonical(first.payload["result"]) == canonical(
            second.payload["result"]
        )
        # the served entry is a regular engine cache entry
        assert cache.peek(config_key(job)) is not None

    def test_shutdown_request_stops_server(self):
        before = engine._WARM_STATE_PROVIDER
        server = CompileServer(workers=1).start()
        try:
            with ServeClient(server.host, server.port) as client:
                response = client.shutdown_server()
            assert response.ok
            deadline = time.monotonic() + 10.0
            while not server._shutdown.is_set() and time.monotonic() < deadline:
                time.sleep(0.02)
            assert server._shutdown.is_set()
        finally:
            server.shutdown()
        # the engine hook is restored to whatever was installed before
        assert engine._WARM_STATE_PROVIDER is before

    def test_start_restores_previous_provider_on_shutdown(self):
        marker = object()
        previous = set_warm_state_provider(marker)
        try:
            server = CompileServer(workers=1).start()
            # bound methods are re-created per access, so compare by equality
            assert engine._WARM_STATE_PROVIDER == server.registry.get
            server.shutdown()
            assert engine._WARM_STATE_PROVIDER is marker
        finally:
            set_warm_state_provider(previous)

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="workers"):
            CompileServer(workers=0)


# --------------------------------------------------------------------------
# CLI pair


class TestServeCli:
    def test_submit_ping_and_stats(self, server, capsys):
        assert cli.main(["submit", "--port", str(server.port), "--ping"]) == 0
        assert "is up" in capsys.readouterr().out
        assert cli.main(["submit", "--port", str(server.port), "--stats"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["protocol"] == SERVE_PROTOCOL_VERSION

    def test_submit_single_job_table(self, server, capsys):
        code = cli.main(
            [
                "submit",
                "--port",
                str(server.port),
                "--benchmark",
                "QFT",
                "--chiplet-width",
                "4",
                "--rows",
                "1",
                "--cols",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "baseline" in out and "mech" in out

    def test_submit_json_mode(self, server, capsys):
        code = cli.main(
            [
                "submit",
                "--port",
                str(server.port),
                "--benchmark",
                "QAOA",
                "--chiplet-width",
                "4",
                "--rows",
                "1",
                "--cols",
                "2",
                "--json",
            ]
        )
        assert code == 0
        responses = json.loads(capsys.readouterr().out)
        assert len(responses) == 1 and responses[0]["ok"] is True

    def test_submit_unknown_benchmark_usage_error(self, server, capsys):
        code = cli.main(
            ["submit", "--port", str(server.port), "--benchmark", "XYZZY"]
        )
        assert code == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_submit_rejects_single_compiler(self, server, capsys):
        code = cli.main(
            ["submit", "--port", str(server.port), "--compilers", "mech"]
        )
        assert code == 2

    def test_submit_no_server_fails_cleanly(self, capsys):
        code = cli.main(
            ["submit", "--port", "1", "--benchmark", "QFT", "--chiplet-width", "4"]
        )
        assert code == 1
        assert "cannot talk to repro serve" in capsys.readouterr().err

    def test_ping_no_server(self, capsys):
        code = cli.main(["submit", "--port", "1", "--ping"])
        assert code == 1

    def test_control_ops_mutually_exclusive(self, capsys):
        code = cli.main(["submit", "--ping", "--stats"])
        assert code == 2
