"""Simulator-backed verification of the GHZ machinery and the highway protocol.

These tests are the correctness core of the reproduction: they check that the
measurement-based GHZ preparation (paper Figs. 5-8), its tree generalisation
(Fig. 7) and the communication protocol (Fig. 3) do what the paper claims,
including the dynamic-circuit Pauli corrections.
"""

import numpy as np
import pytest

from repro.circuits import Circuit, Simulator, statevectors_equal
from repro.highway import (
    chain_ghz,
    extend_ghz,
    highway_multi_target,
    measurement_based_ghz,
    tree_ghz,
)


def _verify_ghz_members(plan, num_qubits, seeds=(0, 1, 2, 3)):
    """Run the plan and check the members hold a GHZ state (any outcome)."""
    for seed in seeds:
        circuit = Circuit(num_qubits)
        circuit.extend(plan.operations)
        sim = Simulator(num_qubits, seed=seed)
        sim.run(circuit)
        members = plan.members
        # disentangle: fan-out CNOTs from the first member, then H
        verify = Circuit(num_qubits)
        for m in members[1:]:
            verify.cx(members[0], m)
        verify.h(members[0])
        sim.run(verify)
        for q in members:
            assert abs(sim.expectation_z(q) - 1.0) < 1e-8, (
                f"member {q} not part of a GHZ state (seed {seed})"
            )


class TestLinearGhzPreparation:
    @pytest.mark.parametrize("length", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_path_lengths(self, length):
        path = list(range(length))
        plan = measurement_based_ghz(path)
        _verify_ghz_members(plan, length)

    def test_members_are_alternating_positions(self):
        plan = measurement_based_ghz([0, 1, 2, 3, 4])
        assert plan.members == [0, 2, 4]
        assert plan.measured == [1, 3]
        assert set(plan.measurement_cbits.keys()) == {1, 3}

    def test_even_path_keeps_trailing_qubit_as_member(self):
        plan = measurement_based_ghz([0, 1, 2, 3])
        assert 3 in plan.members
        assert 3 not in plan.measured

    def test_constant_depth_vs_chain(self):
        """The measurement-based scheme beats the CNOT chain in depth for long paths."""
        path = list(range(12))
        chain = Circuit(12).extend(chain_ghz(path))
        fast = Circuit(12).extend(measurement_based_ghz(path).operations)
        assert chain.depth(meas_latency=2.0) == 11
        assert fast.depth(meas_latency=2.0) < chain.depth(meas_latency=2.0)

    def test_reentanglement_of_measured_entrances(self):
        plan = measurement_based_ghz([0, 1, 2, 3, 4], reentangle=[1, 3])
        assert {1, 3} <= set(plan.members)
        _verify_ghz_members(plan, 5)

    def test_reentangle_unknown_qubit_rejected(self):
        with pytest.raises(ValueError):
            measurement_based_ghz([0, 1, 2], reentangle=[9])

    def test_bridged_segments(self):
        # highway qubits 0,2,4 with interval qubits 1,3 bridged across
        via = {(0, 2): 1, (2, 0): 1, (2, 4): 3, (4, 2): 3}
        plan = measurement_based_ghz([0, 2, 4], via_lookup=lambda a, b: via.get((a, b)))
        _verify_ghz_members(plan, 5)

    def test_bridged_segments_restore_interval_qubit_state(self):
        via = {(0, 2): 1, (2, 0): 1}
        plan = measurement_based_ghz([0, 2], via_lookup=lambda a, b: via.get((a, b)))
        for seed in range(3):
            circuit = Circuit(3)
            circuit.rx(0.83, 1)  # interval qubit carries data
            circuit.extend(plan.operations)
            sim = Simulator(3, seed=seed)
            sim.run(circuit)
            # undo the GHZ on members and check the interval qubit is untouched
            verify = Circuit(3).cx(0, 2).h(0)
            sim.run(verify)
            ref = Simulator(1, seed=0).run(Circuit(1).rx(0.83, 0)).statevector
            state = sim.statevector.reshape(2, 2, 2)
            sub = state[0, :, 0]
            assert statevectors_equal(sub, ref)

    def test_empty_and_duplicate_paths_rejected(self):
        with pytest.raises(ValueError):
            measurement_based_ghz([])
        with pytest.raises(ValueError):
            measurement_based_ghz([0, 1, 0])

    def test_cbits_are_allocated_from_base(self):
        plan = measurement_based_ghz([0, 1, 2, 3, 4], cbit_base=10)
        assert sorted(plan.measurement_cbits.values()) == [10, 11]
        assert plan.next_cbit == 12


class TestTreeGhzPreparation:
    def test_t_shaped_tree(self):
        adjacency = {0: [1], 1: [0, 2], 2: [1, 3, 5], 3: [2, 4], 4: [3], 5: [2, 6], 6: [5]}
        plan = tree_ghz(adjacency, 0)
        _verify_ghz_members(plan, 7)

    def test_cross_shaped_tree_with_required_members(self):
        adjacency = {
            0: [1, 3, 5, 7],
            1: [0, 2], 2: [1],
            3: [0, 4], 4: [3],
            5: [0, 6], 6: [5],
            7: [0, 8], 8: [7],
        }
        required = [2, 4, 6, 8]
        plan = tree_ghz(adjacency, 0, required_members=required)
        assert set(required) <= set(plan.members)
        _verify_ghz_members(plan, 9)

    def test_single_node_tree(self):
        plan = tree_ghz({0: []}, 0)
        assert plan.members == [0]

    def test_root_must_be_in_tree(self):
        with pytest.raises(ValueError):
            tree_ghz({0: [1], 1: [0]}, 5)

    def test_chain_ghz_and_extension(self):
        ops = chain_ghz([0, 1, 2])
        c = Circuit(4).extend(ops).extend(extend_ghz(2, 3))
        probs = Simulator(4, seed=0).run(c).probabilities()
        assert np.isclose(probs[0], 0.5) and np.isclose(probs[-1], 0.5)


class TestHighwayProtocol:
    def _run_protocol(self, seed, gate_name="cx", params=()):
        """6 qubits: 0=control data, 1-3=GHZ members, 4,5=target data."""
        full = Circuit(6)
        full.rx(0.7, 0).rz(0.3, 0)
        full.x(4)
        full.ry(0.5, 5)
        full.extend(chain_ghz([1, 2, 3]))
        plan = highway_multi_target(
            0, 1, [(2, 4), (3, 5)], all_members=[1, 2, 3], cbit_base=10,
            gate_name=gate_name, params=params,
        )
        full.extend(plan.operations)
        sim = Simulator(6, seed=seed)
        result = sim.run(full)

        reference = Circuit(6)
        reference.rx(0.7, 0).rz(0.3, 0)
        reference.x(4)
        reference.ry(0.5, 5)
        if gate_name == "cx":
            reference.cx(0, 4).cx(0, 5)
        elif gate_name == "cz":
            reference.cz(0, 4).cz(0, 5)
        else:
            reference.cp(params[0], 0, 4).cp(params[0], 0, 5)
        ref_state = Simulator(6, seed=0).run(reference).statevector

        # the protocol measures *and resets* every consumed highway qubit, so
        # the compiled state factorises with qubits 1-3 back in |0>
        state = result.statevector.reshape((2,) * 6)
        sliced = state[:, 0, 0, 0, :, :].reshape(-1)
        ref = ref_state.reshape((2,) * 6)[:, 0, 0, 0, :, :].reshape(-1)
        return statevectors_equal(sliced, ref)

    @pytest.mark.parametrize("seed", range(5))
    def test_multi_target_cx(self, seed):
        assert self._run_protocol(seed)

    @pytest.mark.parametrize("seed", range(3))
    def test_multi_target_cz(self, seed):
        assert self._run_protocol(seed, gate_name="cz")

    @pytest.mark.parametrize("seed", range(3))
    def test_multi_target_cp(self, seed):
        assert self._run_protocol(seed, gate_name="cp", params=(0.9,))

    def test_fan_out_member_must_be_ghz_member(self):
        with pytest.raises(ValueError):
            highway_multi_target(0, 1, [(9, 4)], all_members=[1, 2, 3], cbit_base=0)

    def test_protocol_plan_allocates_cbits(self):
        plan = highway_multi_target(0, 1, [(2, 4)], all_members=[1, 2, 3], cbit_base=20)
        assert plan.entangle_cbit == 20
        assert plan.disentangle_cbits == [21, 22]
        assert plan.next_cbit == 23

    def test_protocol_frees_and_resets_highway_qubits(self):
        """After the protocol every GHZ member is measured and reset to |0>."""
        full = Circuit(6)
        full.rx(1.1, 0)
        full.extend(chain_ghz([1, 2, 3]))
        plan = highway_multi_target(0, 1, [(2, 4), (3, 5)], all_members=[1, 2, 3], cbit_base=10)
        full.extend(plan.operations)
        for seed in range(4):
            sim = Simulator(6, seed=seed)
            sim.run(full)
            for member in (1, 2, 3):
                assert abs(sim.expectation_z(member) - 1.0) < 1e-8
