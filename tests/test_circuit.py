"""Unit tests for the circuit container (repro.circuits.circuit)."""


import numpy as np
import pytest

from repro.circuits import Circuit, CircuitError, circuit_unitary
from repro.circuits import gates as g


class TestBuilding:
    def test_builder_methods_append_gates(self):
        c = Circuit(3)
        c.h(0).cx(0, 1).cp(0.5, 1, 2).measure(2)
        assert len(c) == 4
        assert [op.name for op in c] == ["h", "cx", "cp", "measure"]

    def test_out_of_range_qubit_rejected(self):
        c = Circuit(2)
        with pytest.raises(CircuitError):
            c.cx(0, 2)
        with pytest.raises(CircuitError):
            c.h(-1)

    def test_zero_qubit_circuit_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(0)

    def test_measure_all_appends_one_measurement_per_qubit(self):
        c = Circuit(4).measure_all()
        assert c.num_measurements() == 4
        assert sorted(op.qubits[0] for op in c) == [0, 1, 2, 3]

    def test_barrier_defaults_to_all_qubits(self):
        c = Circuit(3).barrier()
        assert c[0].qubits == (0, 1, 2)

    def test_extend_appends_iterable(self):
        c = Circuit(2).extend([g.h(0), g.cx(0, 1)])
        assert len(c) == 2


class TestAnalysis:
    def test_count_ops(self):
        c = Circuit(3).h(0).h(1).cx(0, 1).cx(1, 2).measure(2)
        assert c.count_ops() == {"h": 2, "cx": 2, "measure": 1}
        assert c.num_ops("cx") == 2
        assert c.num_ops() == 5

    def test_two_qubit_counts(self):
        c = Circuit(3).h(0).cx(0, 1).swap(1, 2).cz(0, 2)
        assert c.num_two_qubit_ops() == 3
        assert len(c.two_qubit_gates()) == 3

    def test_qubits_used(self):
        c = Circuit(5).h(4).cx(1, 3)
        assert c.qubits_used() == [1, 3, 4]

    def test_depth_counts_only_two_qubit_gates_by_default(self):
        c = Circuit(2).h(0).rz(0.1, 0).cx(0, 1).cx(0, 1)
        assert c.depth() == 2.0

    def test_depth_parallel_gates_share_a_step(self):
        c = Circuit(4).cx(0, 1).cx(2, 3)
        assert c.depth() == 1.0

    def test_depth_measurement_latency(self):
        c = Circuit(1).measure(0)
        assert c.depth(meas_latency=2.0) == 2.0
        assert c.depth(meas_latency=8.0) == 8.0

    def test_depth_barrier_synchronises_without_cost(self):
        c = Circuit(3)
        c.cx(0, 1)          # qubits 0,1 busy until t=1
        c.barrier([1, 2])   # qubit 2 synced to t=1
        c.cx(1, 2)
        assert c.depth() == 2.0
        # without the barrier the same gates still give 2 (dependency via qubit 1)
        c2 = Circuit(3).cx(0, 1).cx(1, 2)
        assert c2.depth() == 2.0

    def test_depth_custom_weights(self):
        c = Circuit(2).h(0).cx(0, 1)
        assert c.depth(one_qubit_weight=1.0) == 2.0

    def test_depth_empty_circuit_is_zero(self):
        assert Circuit(3).depth() == 0.0


class TestTransforms:
    def test_copy_is_independent(self):
        c = Circuit(2).h(0)
        d = c.copy()
        d.cx(0, 1)
        assert len(c) == 1 and len(d) == 2

    def test_compose(self):
        a = Circuit(3).h(0)
        b = Circuit(2).cx(0, 1)
        combined = a.compose(b)
        assert [op.name for op in combined] == ["h", "cx"]
        with pytest.raises(CircuitError):
            b.compose(a)  # cannot compose larger onto smaller

    def test_remap_moves_qubits(self):
        c = Circuit(2).cx(0, 1).measure(1)
        mapped = c.remap({0: 4, 1: 2}, num_qubits=6)
        assert mapped.num_qubits == 6
        assert mapped[0].qubits == (4, 2)
        assert mapped[1].qubits == (2,)
        assert mapped[1].is_measurement

    def test_remap_preserves_condition(self):
        c = Circuit(2)
        c.append(g.x(1).with_condition([0], 1))
        mapped = c.remap({0: 0, 1: 1})
        assert mapped[0].condition == ((0,), 1)

    def test_inverse_reverses_and_inverts(self):
        c = Circuit(2).h(0).s(1).cx(0, 1).rz(0.4, 1)
        inv = c.inverse()
        assert [op.name for op in inv] == ["rz", "cx", "sdg", "h"]
        assert inv[0].params == (-0.4,)
        # circuit followed by its inverse is the identity
        u = circuit_unitary(c.compose(inv))
        assert np.allclose(u, np.eye(4), atol=1e-9)

    def test_inverse_rejects_measurements(self):
        with pytest.raises(CircuitError):
            Circuit(1).measure(0).inverse()

    def test_without_measurements(self):
        c = Circuit(2).h(0).measure(0).cx(0, 1).measure(1)
        stripped = c.without_measurements()
        assert stripped.num_measurements() == 0
        assert len(stripped) == 2

    def test_filtered(self):
        c = Circuit(2).h(0).cx(0, 1).h(1)
        only_h = c.filtered(lambda op: op.name == "h")
        assert len(only_h) == 2

    def test_equality(self):
        a = Circuit(2).h(0).cx(0, 1)
        b = Circuit(2).h(0).cx(0, 1)
        assert a == b
        b.h(1)
        assert a != b
