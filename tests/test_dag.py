"""Unit tests for the commutation-aware dependency DAG (repro.circuits.dag)."""


from repro.circuits import Circuit, DependencyDag
from repro.programs import qft_circuit


class TestConstruction:
    def test_independent_gates_have_no_edges(self):
        c = Circuit(4).cx(0, 1).cx(2, 3)
        dag = DependencyDag(c)
        assert all(not n.predecessors for n in dag)
        assert len(dag.front_layer()) == 2

    def test_sequential_dependency(self):
        c = Circuit(3).cx(0, 1).cx(1, 2)
        dag = DependencyDag(c)
        assert dag.node(1).predecessors == {0}
        assert dag.node(0).successors == {1}

    def test_commuting_gates_share_level(self):
        c = Circuit(4).h(0).cx(0, 1).cx(0, 2).cx(0, 3)
        dag = DependencyDag(c)
        # the three CNOTs share the control and commute -> all depend only on H
        for i in (1, 2, 3):
            assert dag.node(i).predecessors == {0}

    def test_strict_mode_chains_all_wire_neighbours(self):
        c = Circuit(4).h(0).cx(0, 1).cx(0, 2).cx(0, 3)
        dag = DependencyDag(c, commutation_aware=False)
        assert dag.node(2).predecessors == {1}
        assert dag.node(3).predecessors == {2}

    def test_dependency_found_past_commuting_gate(self):
        # cx(0,1) then rz(0) (commutes with cx control) then h(0): the h must
        # depend on cx(0,1) even though rz sits in between
        c = Circuit(2).cx(0, 1).rz(0.3, 0).h(0)
        dag = DependencyDag(c)
        assert 0 in dag.node(2).predecessors

    def test_measurement_blocks_wire(self):
        c = Circuit(2).cx(0, 1).measure(1).cx(0, 1)
        dag = DependencyDag(c)
        assert 1 in dag.node(2).predecessors

    def test_len_and_iteration(self):
        c = Circuit(2).h(0).cx(0, 1)
        dag = DependencyDag(c)
        assert len(dag) == 2
        assert [n.index for n in dag] == [0, 1]


class TestLevels:
    def test_layers_partition_all_nodes(self):
        c = qft_circuit(5, measure=False)
        dag = DependencyDag(c)
        layers = dag.layers()
        assert sum(len(layer) for layer in layers) == len(dag)
        # within a layer no node depends on another node of the same layer
        for layer in layers:
            indices = {n.index for n in layer}
            for node in layer:
                assert not (node.predecessors & indices)

    def test_asap_levels_respect_dependencies(self):
        c = Circuit(3).cx(0, 1).cx(1, 2).cx(0, 1)
        dag = DependencyDag(c)
        start = dag.asap_levels()
        assert start[0] == 0.0
        assert start[1] == 1.0
        assert start[2] == 2.0

    def test_asap_levels_measurement_latency(self):
        c = Circuit(2).measure(0).cx(0, 1)
        dag = DependencyDag(c)
        start = dag.asap_levels(meas_latency=5.0)
        assert start[1] == 5.0

    def test_asap_one_qubit_gates_free_by_default(self):
        c = Circuit(2).h(0).cx(0, 1)
        dag = DependencyDag(c)
        assert dag.asap_levels()[1] == 0.0
        assert dag.asap_levels(one_qubit_weight=1.0)[1] == 1.0

    def test_commuting_controlled_gates_get_equal_start_times(self):
        c = Circuit(4).h(0).cx(0, 1).cx(0, 2).cx(0, 3)
        dag = DependencyDag(c)
        start = dag.asap_levels()
        assert start[1] == start[2] == start[3]

    def test_descendants(self):
        c = Circuit(3).cx(0, 1).cx(1, 2).h(2)
        dag = DependencyDag(c)
        assert dag.descendants(0) == {1, 2}
        assert dag.descendants(2) == set()

    def test_topological_order_is_program_order(self):
        c = qft_circuit(4, measure=False)
        dag = DependencyDag(c)
        order = dag.topological_order()
        assert [n.index for n in order] == list(range(len(dag)))


class TestQftStructure:
    def test_qft_controlled_phase_fanout_is_flat(self):
        """All CP gates sharing a target must sit in one dependency layer."""
        n = 6
        c = qft_circuit(n, measure=False)
        dag = DependencyDag(c)
        layers = dag.layers()
        # find the layer containing the CP gates that touch qubit 0
        cp_on_0 = [
            node.index
            for node in dag
            if node.op.name == "cp" and 0 in node.op.qubits
        ]
        level_of = {}
        for level, layer in enumerate(layers):
            for node in layer:
                level_of[node.index] = level
        levels = {level_of[i] for i in cp_on_0}
        assert len(levels) == 1
