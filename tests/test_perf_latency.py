"""Tests for the serve-path latency suite (``repro bench --latency``)."""

import json

import pytest

from repro.perf import (
    LATENCY_SCHEMA_VERSION,
    format_latency,
    latency_regressed,
    load_latency,
    percentile,
    run_latency,
    strip_timing,
    workload_job,
    write_latency,
)
from repro.perf.bench import BenchWorkload


# --------------------------------------------------------------------------
# percentile (nearest-rank)


class TestPercentile:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], -1)
        with pytest.raises(ValueError):
            percentile([1.0], 100.5)

    def test_nearest_rank_values(self):
        values = [4.0, 1.0, 3.0, 2.0]  # unsorted on purpose
        assert percentile(values, 50) == 2.0  # rank ceil(0.5*4) = 2
        assert percentile(values, 75) == 3.0
        assert percentile(values, 99) == 4.0  # rank ceil(3.96) = 4
        assert percentile(values, 100) == 4.0

    def test_q_zero_is_minimum(self):
        assert percentile([3.0, 1.0, 2.0], 0) == 1.0

    def test_single_element(self):
        assert percentile([7.5], 50) == 7.5
        assert percentile([7.5], 99) == 7.5


# --------------------------------------------------------------------------
# canonical payload form


class TestStripTiming:
    def test_drops_wall_clock_keys_only(self):
        payload = {
            "baseline_depth": 10,
            "baseline_seconds": 0.123,
            "mech_seconds": 0.456,
            "seconds": {"baseline": 0.1},
            "extra": {"note": "kept"},
        }
        stripped = strip_timing(payload)
        assert stripped == {"baseline_depth": 10, "extra": {"note": "kept"}}

    def test_does_not_mutate_input(self):
        payload = {"seconds": {"mech": 0.2}, "depth": 4}
        strip_timing(payload)
        assert "seconds" in payload


# --------------------------------------------------------------------------
# workload -> job mapping


class TestWorkloadJob:
    def test_field_mapping(self):
        workload = BenchWorkload(
            name="qft-w5-2x2",
            benchmark="QFT",
            structure="square",
            chiplet_width=5,
            rows=2,
            cols=2,
            seed=7,
        )
        job = workload_job(workload, ["baseline", "mech"])
        assert job.benchmark == "QFT"
        assert job.structure == "square"
        assert job.chiplet_width == 5
        assert (job.rows, job.cols) == (2, 2)
        assert job.seed == 7
        assert job.compilers == ("baseline", "mech")


# --------------------------------------------------------------------------
# gate logic on synthetic documents


def synthetic_document(
    *,
    warm_cold_ratio: float = 0.2,
    warm_concurrent_p99: float = 0.05,
    results_identical: bool = True,
) -> dict:
    return {
        "schema_version": LATENCY_SCHEMA_VERSION,
        "suite": "quick",
        "compilers": ["baseline", "mech"],
        "requests": 4,
        "concurrency": 2,
        "results_identical": results_identical,
        "aggregate": {
            "cold_p50": 1.0,
            "cold_p99": 1.2,
            "warm_p50": warm_cold_ratio,
            "warm_p99": warm_cold_ratio * 1.5,
            "warm_concurrent_p50": warm_concurrent_p99 * 0.8,
            "warm_concurrent_p99": warm_concurrent_p99,
            "warm_cold_ratio": warm_cold_ratio,
            "throughput_rps": 40.0,
        },
        "rows": [
            {
                "workload": "qft-w5-1x2",
                "results_identical": results_identical,
                "cold_p50": 1.0,
                "warm_p50": warm_cold_ratio,
                "warm_p99": warm_cold_ratio * 1.5,
                "warm_concurrent_p50": warm_concurrent_p99 * 0.8,
                "warm_concurrent_p99": warm_concurrent_p99,
            }
        ],
    }


class TestLatencyGate:
    def test_passing_document(self):
        assert latency_regressed(synthetic_document()) == []

    def test_ratio_gate(self):
        reasons = latency_regressed(
            synthetic_document(warm_cold_ratio=0.9), max_warm_ratio=0.75
        )
        assert len(reasons) == 1
        assert "warm/cold p50 ratio" in reasons[0]

    def test_p99_gate_only_when_requested(self):
        document = synthetic_document(warm_concurrent_p99=2.0)
        assert latency_regressed(document) == []
        reasons = latency_regressed(document, max_p99=1.0)
        assert len(reasons) == 1
        assert "p99" in reasons[0]

    def test_identity_failure_always_gates(self):
        reasons = latency_regressed(synthetic_document(results_identical=False))
        assert any("byte-identical" in reason for reason in reasons)

    def test_missing_aggregate_gates(self):
        document = synthetic_document()
        del document["aggregate"]
        reasons = latency_regressed(document)
        assert any("no aggregate" in reason for reason in reasons)

    def test_format_contains_rows_and_aggregate(self):
        text = format_latency(synthetic_document())
        assert "qft-w5-1x2" in text
        assert "warm/cold" in text
        assert "yes" in text

    def test_format_flags_identity_failure(self):
        text = format_latency(synthetic_document(results_identical=False))
        assert "NO" in text


# --------------------------------------------------------------------------
# document round-trip


class TestLatencyDocuments:
    def test_write_and_load_round_trip(self, tmp_path):
        document = synthetic_document()
        path = write_latency(document, tmp_path)
        assert path.name.startswith("LATENCY") and path.suffix == ".json"
        loaded = load_latency(path)
        assert loaded["aggregate"]["warm_cold_ratio"] == 0.2

    def test_load_rejects_wrong_schema(self, tmp_path):
        document = synthetic_document()
        document["schema_version"] = 99
        path = tmp_path / "LATENCY_bad.json"
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="schema"):
            load_latency(path)

    def test_load_rejects_non_document(self, tmp_path):
        path = tmp_path / "LATENCY_junk.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="not a repro latency document"):
            load_latency(path)


# --------------------------------------------------------------------------
# one real (tiny) measurement run


class TestRunLatencySmall:
    def test_quick_limit_one_end_to_end(self):
        messages = []
        document = run_latency(
            "quick",
            requests=2,
            concurrency=2,
            cold_requests=1,
            limit=1,
            progress=messages.append,
        )
        assert document["schema_version"] == LATENCY_SCHEMA_VERSION
        assert document["suite"] == "quick"
        assert document["cold_includes_process_startup"] is True
        assert len(document["rows"]) == 1
        row = document["rows"][0]
        assert row["results_identical"] is True
        assert document["results_identical"] is True
        assert len(row["cold_seconds"]) == 1
        assert len(row["warm_seconds"]) == 2
        assert len(row["warm_concurrent_seconds"]) == 2
        aggregate = document["aggregate"]
        # the acceptance bar: warm p50 at most half of cold p50 (the CI gate
        # allows 0.75; a warm compile skips spawn+import+state entirely so in
        # practice the ratio sits well under both)
        assert aggregate["warm_cold_ratio"] < 0.75
        assert aggregate["throughput_rps"] > 0
        assert document["warm_state"]["devices_resident"] == 1
        assert latency_regressed(document) == []
        assert messages  # progress callback was exercised

    def test_run_latency_validates_arguments(self):
        with pytest.raises(ValueError, match="requests"):
            run_latency("quick", requests=0)
        with pytest.raises(ValueError, match="cold_requests"):
            run_latency("quick", cold_requests=0)
        with pytest.raises(ValueError, match="concurrency"):
            run_latency("quick", concurrency=0)
        with pytest.raises(ValueError, match="limit"):
            run_latency("quick", limit=0)

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="quick"):
            run_latency("no-such-suite")
