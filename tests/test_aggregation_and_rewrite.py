"""Unit tests for the aggregation pass and the ZZ-ladder rewrite."""

import pytest

from repro.circuits import Circuit, DependencyDag, Simulator, statevectors_equal
from repro.compiler import HighwayGateUnit, SingleUnit, aggregate, fuse_zz_ladders
from repro.programs import (
    bernstein_vazirani_circuit,
    qaoa_maxcut_circuit,
    qft_circuit,
    vqe_full_entanglement_circuit,
)


def _highway_units(units):
    return [u for u in units if isinstance(u, HighwayGateUnit)]


def _single_two_qubit_units(units):
    return [u for u in units if isinstance(u, SingleUnit) and u.op.num_qubits == 2]


class TestAggregation:
    def test_cx_fanout_becomes_one_group(self):
        c = Circuit(5).h(0).cx(0, 1).cx(0, 2).cx(0, 3).cx(0, 4)
        units = aggregate(DependencyDag(c))
        groups = _highway_units(units)
        assert len(groups) == 1
        group = groups[0]
        assert group.hub == 0
        assert group.kind == "control"
        assert sorted(group.spokes) == [1, 2, 3, 4]
        assert group.num_components == 4

    def test_target_shared_cx_group(self):
        c = Circuit(4).cx(0, 3).cx(1, 3).cx(2, 3)
        groups = _highway_units(aggregate(DependencyDag(c)))
        assert len(groups) == 1
        assert groups[0].hub == 3
        assert groups[0].kind == "target"
        assert sorted(groups[0].spokes) == [0, 1, 2]

    def test_symmetric_gates_can_hub_on_either_qubit(self):
        c = Circuit(4).cp(0.3, 1, 0).cp(0.2, 2, 0).cp(0.1, 3, 0)
        groups = _highway_units(aggregate(DependencyDag(c)))
        assert len(groups) == 1
        assert groups[0].hub == 0
        assert sorted(groups[0].spokes) == [1, 2, 3]

    def test_min_components_threshold(self):
        c = Circuit(4).cx(0, 1).cx(0, 2).cx(0, 3)
        assert len(_highway_units(aggregate(DependencyDag(c), min_components=3))) == 1
        assert len(_highway_units(aggregate(DependencyDag(c), min_components=4))) == 0

    def test_small_groups_stay_single(self):
        c = Circuit(4).cx(0, 1).cx(2, 3)
        units = aggregate(DependencyDag(c))
        assert not _highway_units(units)
        assert len(_single_two_qubit_units(units)) == 2

    def test_every_gate_appears_exactly_once(self):
        c = qft_circuit(8, measure=False)
        units = aggregate(DependencyDag(c))
        indices = []
        for unit in units:
            indices.extend(unit.indices)
        assert sorted(indices) == list(range(len(c)))

    def test_unit_order_respects_dependencies(self):
        c = qaoa_maxcut_circuit(8, seed=1, measure=False)
        dag = DependencyDag(c)
        units = aggregate(dag)
        seen = set()
        for unit in units:
            for index in unit.indices:
                assert dag.node(index).predecessors <= seen | set(unit.indices), (
                    f"unit containing gate {index} scheduled before its dependencies"
                )
            seen.update(unit.indices)

    def test_qft_groups_per_round(self):
        n = 10
        c = qft_circuit(n, measure=False)
        groups = _highway_units(aggregate(DependencyDag(c)))
        # one group per QFT round with at least 2 remaining rotations
        assert len(groups) == n - 2
        sizes = sorted(g.num_components for g in groups)
        assert sizes == list(range(2, n))

    def test_bv_oracle_collapses_to_single_group(self):
        c = bernstein_vazirani_circuit(12, secret="101010101010")
        groups = _highway_units(aggregate(DependencyDag(c)))
        assert len(groups) == 1
        assert groups[0].kind == "target"
        assert groups[0].num_components == 6

    def test_vqe_layer_aggregation(self):
        c = vqe_full_entanglement_circuit(8, measure=False)
        groups = _highway_units(aggregate(DependencyDag(c)))
        assert sum(g.num_components for g in groups) >= 0.8 * (8 * 7 / 2)

    def test_invalid_min_components(self):
        c = Circuit(2).cx(0, 1)
        with pytest.raises(ValueError):
            aggregate(DependencyDag(c), min_components=0)

    def test_highway_gate_unit_validation(self):
        with pytest.raises(ValueError):
            HighwayGateUnit(hub=0, components=(), kind="control")
        c = Circuit(3).cx(0, 1).cx(0, 2)
        group = _highway_units(aggregate(DependencyDag(c)))[0]
        with pytest.raises(ValueError):
            HighwayGateUnit(hub=0, components=group.components, kind="sideways")


class TestZZRewrite:
    def test_basic_fusion(self):
        c = Circuit(2).cx(0, 1).rz(0.8, 1).cx(0, 1)
        fused = fuse_zz_ladders(c)
        assert fused.count_ops() == {"rz": 2, "cp": 1}
        s1 = Simulator(2, seed=0).run(c).statevector
        s2 = Simulator(2, seed=0).run(fused).statevector
        assert statevectors_equal(s1, s2)

    def test_fusion_across_unrelated_gates(self):
        c = Circuit(3).cx(0, 1).h(2).rz(0.4, 1).x(2).cx(0, 1)
        fused = fuse_zz_ladders(c)
        assert fused.count_ops()["cp"] == 1
        s1 = Simulator(3, seed=0).run(c).statevector
        s2 = Simulator(3, seed=0).run(fused).statevector
        assert statevectors_equal(s1, s2)

    def test_no_fusion_when_pattern_broken(self):
        # an H on the target between the CNOTs breaks the pattern
        c = Circuit(2).cx(0, 1).h(1).rz(0.4, 1).cx(0, 1)
        fused = fuse_zz_ladders(c)
        assert "cp" not in fused.count_ops()

    def test_no_fusion_when_control_touched(self):
        c = Circuit(3).cx(0, 1).rz(0.4, 1).cx(2, 0).cx(0, 1)
        fused = fuse_zz_ladders(c)
        assert "cp" not in fused.count_ops()

    def test_qaoa_ladder_fully_fused(self):
        ladder = qaoa_maxcut_circuit(10, seed=2, measure=False, use_cx_ladder=True)
        fused = fuse_zz_ladders(ladder)
        assert "cx" not in fused.count_ops()
        assert fused.count_ops()["cp"] == ladder.count_ops()["cx"] // 2
        s1 = Simulator(10, seed=0).run(ladder).statevector
        s2 = Simulator(10, seed=0).run(fused).statevector
        assert statevectors_equal(s1, s2)

    def test_chained_ladders_on_shared_qubits(self):
        c = Circuit(3)
        c.cx(0, 1).rz(0.3, 1).cx(0, 1)
        c.cx(1, 2).rz(0.7, 2).cx(1, 2)
        fused = fuse_zz_ladders(c)
        assert fused.count_ops()["cp"] == 2
        s1 = Simulator(3, seed=0).run(c).statevector
        s2 = Simulator(3, seed=0).run(fused).statevector
        assert statevectors_equal(s1, s2)

    def test_rewrite_leaves_other_circuits_alone(self):
        c = qft_circuit(6, measure=False)
        fused = fuse_zz_ladders(c)
        assert fused.count_ops() == c.count_ops()
