"""Property-based tests (hypothesis) on the core data structures and invariants."""

import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.engine import CACHE_VERSION, Job, ResultCache

from repro.baseline import BaselineCompiler
from repro.circuits import Circuit, DependencyDag, Simulator, circuit_unitary, commutes, expand_macros
from repro.circuits import gates as g
from repro.compiler import MechCompiler, fuse_zz_ladders
from repro.hardware import ChipletArray, NoiseModel
from repro.highway import measurement_based_ghz
from repro.metrics import count_operations, geometric_mean, improvement
from repro.programs import random_two_qubit_circuit

from helpers import assert_all_two_qubit_ops_coupled, assert_semantically_equivalent

# shared small devices (building them is comparatively expensive)
TINY_ARRAY = ChipletArray("square", 3, 1, 2)
TINY_MECH = MechCompiler(TINY_ARRAY)
TINY_BASE = BaselineCompiler(TINY_ARRAY.topology)


# --------------------------------------------------------------------------- #
# circuit-level strategies
# --------------------------------------------------------------------------- #
def random_ops(num_qubits: int):
    """Strategy producing a random gate on ``num_qubits`` qubits."""
    pairs = st.tuples(
        st.integers(0, num_qubits - 1), st.integers(0, num_qubits - 1)
    ).filter(lambda ab: ab[0] != ab[1])
    angle = st.floats(0.1, 3.0)
    return st.one_of(
        st.builds(lambda q: g.h(q), st.integers(0, num_qubits - 1)),
        st.builds(lambda t, q: g.rz(t, q), angle, st.integers(0, num_qubits - 1)),
        st.builds(lambda t, q: g.rx(t, q), angle, st.integers(0, num_qubits - 1)),
        st.builds(lambda ab: g.cx(*ab), pairs),
        st.builds(lambda ab: g.cz(*ab), pairs),
        st.builds(lambda t, ab: g.cp(t, *ab), angle, pairs),
    )


def circuits(num_qubits=4, max_ops=12):
    return st.lists(random_ops(num_qubits), min_size=1, max_size=max_ops).map(
        lambda ops: Circuit(num_qubits).extend(ops)
    )


# --------------------------------------------------------------------------- #
# properties
# --------------------------------------------------------------------------- #
class TestCircuitProperties:
    @given(circuits())
    @settings(max_examples=40, deadline=None)
    def test_depth_never_exceeds_weighted_op_count(self, circuit):
        depth = circuit.depth(meas_latency=2.0)
        upper = sum(1.0 for op in circuit if op.num_qubits >= 2) + 2.0 * circuit.num_measurements()
        assert 0.0 <= depth <= upper + 1e-9

    @given(circuits())
    @settings(max_examples=25, deadline=None)
    def test_remap_round_trip_preserves_structure(self, circuit):
        n = circuit.num_qubits
        forward = {i: (i + 1) % n for i in range(n)}
        backward = {v: k for k, v in forward.items()}
        round_tripped = circuit.remap(forward).remap(backward)
        assert round_tripped == circuit

    @given(circuits())
    @settings(max_examples=20, deadline=None)
    def test_inverse_composes_to_identity(self, circuit):
        u = circuit_unitary(circuit.compose(circuit.inverse()))
        assert np.allclose(u, np.eye(u.shape[0]), atol=1e-7)

    @given(circuits())
    @settings(max_examples=25, deadline=None)
    def test_expand_macros_never_changes_metric_relevant_counts(self, circuit):
        counts_before = count_operations(circuit)
        counts_after = count_operations(expand_macros(circuit))
        assert counts_after.measurements == counts_before.measurements
        assert counts_after.total_cnots >= counts_before.total_cnots


class TestDagProperties:
    @given(circuits(num_qubits=5, max_ops=20))
    @settings(max_examples=30, deadline=None)
    def test_dag_edges_only_between_noncommuting_or_ordered_gates(self, circuit):
        dag = DependencyDag(circuit)
        for node in dag:
            for pred in node.predecessors:
                assert pred < node.index  # respects program order
        # strict DAG always has at least as many constrained pairs
        strict = DependencyDag(circuit, commutation_aware=False)
        relaxed_edges = sum(len(n.predecessors) for n in dag)
        strict_longest = len(strict.layers())
        relaxed_longest = len(dag.layers())
        assert relaxed_longest <= strict_longest

    @given(circuits(num_qubits=4, max_ops=14))
    @settings(max_examples=20, deadline=None)
    def test_commutation_aware_reordering_is_sound(self, circuit):
        """Executing gates layer by layer gives the same unitary as program order."""
        dag = DependencyDag(circuit)
        reordered = Circuit(circuit.num_qubits)
        for layer in dag.layers():
            for node in sorted(layer, key=lambda n: n.index):
                reordered.append(node.op)
        u1 = circuit_unitary(circuit)
        u2 = circuit_unitary(reordered)
        assert np.allclose(u1, u2, atol=1e-7)


class TestCommutationProperties:
    @given(random_ops(3), random_ops(3))
    @settings(max_examples=60, deadline=None)
    def test_commutes_is_symmetric(self, a, b):
        assert commutes(a, b) == commutes(b, a)


class TestGhzProperties:
    @given(st.integers(1, 9), st.integers(0, 4))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_ghz_preparation_for_any_path_length(self, length, seed):
        path = list(range(length))
        plan = measurement_based_ghz(path)
        circuit = Circuit(length).extend(plan.operations)
        sim = Simulator(length, seed=seed)
        sim.run(circuit)
        members = plan.members
        verify = Circuit(length)
        for m in members[1:]:
            verify.cx(members[0], m)
        verify.h(members[0])
        sim.run(verify)
        assert all(abs(sim.expectation_z(q) - 1.0) < 1e-8 for q in members)


class TestMetricProperties:
    @given(st.floats(1.0, 1e6), st.floats(0.5, 1e6))
    @settings(max_examples=50, deadline=None)
    def test_improvement_sign_matches_ordering(self, baseline, ours):
        value = improvement(baseline, ours)
        assert (value > 0) == (ours < baseline)

    @given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_geometric_mean_bounded_by_extremes(self, values):
        mean = geometric_mean(values)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9

    @given(
        st.integers(0, 500), st.integers(0, 100), st.integers(0, 200),
        st.floats(1.0, 20.0), st.floats(0.5, 10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_effective_cnots_monotone_in_counts_and_ratios(self, on, cross, meas, r_cross, r_meas):
        noise = NoiseModel(cross_on_ratio=r_cross, meas_on_ratio=r_meas)
        base = noise.effective_cnots(on, cross, meas)
        assert noise.effective_cnots(on + 1, cross, meas) > base
        assert noise.effective_cnots(on, cross + 1, meas) > base
        assert noise.effective_cnots(on, cross, meas + 1) > base


class TestCompilerProperties:
    @given(st.integers(0, 10**6))
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_mech_output_is_always_routable_and_equivalent(self, seed):
        circuit = random_two_qubit_circuit(5, 14, seed=seed)
        result = TINY_MECH.compile(circuit)
        assert_all_two_qubit_ops_coupled(result)
        assert_semantically_equivalent(circuit, result, seeds=(seed % 3,))

    @given(st.integers(0, 10**6))
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_baseline_output_is_always_routable_and_equivalent(self, seed):
        circuit = random_two_qubit_circuit(5, 14, seed=seed)
        result = TINY_BASE.compile(circuit)
        assert_all_two_qubit_ops_coupled(result)
        assert_semantically_equivalent(circuit, result, seeds=(seed % 3,))

    @given(st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_zz_rewrite_is_always_equivalent(self, seed):
        circuit = random_two_qubit_circuit(4, 16, seed=seed, one_qubit_fraction=0.5)
        fused = fuse_zz_ladders(circuit)
        u1 = circuit_unitary(circuit)
        u2 = circuit_unitary(fused)
        product = u1.conj().T @ u2
        phase = product[0, 0]
        assert np.isclose(abs(phase), 1.0, atol=1e-7)
        assert np.allclose(product, phase * np.eye(u1.shape[0]), atol=1e-7)


# --------------------------------------------------------------------------- #
# result-cache invariants (LRU cap, TTL sweep, recency, shard migration)
# --------------------------------------------------------------------------- #
_CACHE_JOB = Job(benchmark="BV")
_CACHE_PAYLOAD = {"benchmark": "BV", "architecture": "prop-1x1"}


def _cache_key(index: int) -> str:
    """A distinct, shardable (hex) config key per index."""
    return f"{index:02x}" * 32


class TestResultCacheProperties:
    @given(
        ages=st.lists(st.integers(0, 10_000), min_size=1, max_size=12),
        max_age=st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_ttl_sweep_never_evicts_entries_newer_than_the_cutoff(self, ages, max_age):
        """Exactly the entries strictly older than ``now - max_age`` go."""
        with tempfile.TemporaryDirectory() as tmp:
            cache = ResultCache(tmp, record_access=False)  # mtime-only recency
            now = time.time()
            paths = {}
            for index, age in enumerate(ages):
                key = _cache_key(index)
                path = cache.put(key, _CACHE_JOB, _CACHE_PAYLOAD)
                os.utime(path, (now - age, now - age))
                paths[key] = (path, age)
            result = cache.sweep_older_than(max_age, now=now)
            for path, age in paths.values():
                assert path.exists() == (age <= max_age), (age, max_age)
            assert result["removed"] == sum(1 for _, age in paths.values() if age > max_age)
            assert result["scanned"] == len(ages)

    @given(
        ages=st.lists(st.integers(0, 10_000), min_size=1, max_size=8),
        max_age=st.integers(0, 10_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_ttl_dry_run_removes_nothing_but_counts_identically(self, ages, max_age):
        with tempfile.TemporaryDirectory() as tmp:
            cache = ResultCache(tmp, record_access=False)  # mtime-only recency
            now = time.time()
            for index, age in enumerate(ages):
                path = cache.put(_cache_key(index), _CACHE_JOB, _CACHE_PAYLOAD)
                os.utime(path, (now - age, now - age))
            preview = cache.sweep_older_than(max_age, dry_run=True, now=now)
            assert len(cache) == len(ages)  # nothing deleted
            real = cache.sweep_older_than(max_age, now=now)
            assert preview == real

    @given(n_entries=st.integers(1, 10), cap_entries=st.integers(1, 10))
    @settings(max_examples=25, deadline=None)
    def test_lru_cap_evicts_oldest_first_and_never_the_newest(self, n_entries, cap_entries):
        """After a capped put, survivors are exactly the most recently used."""
        with tempfile.TemporaryDirectory() as tmp:
            uncapped = ResultCache(tmp, record_access=False)  # mtime-only recency
            now = time.time()
            size = None
            for index in range(n_entries):
                path = uncapped.put(_cache_key(index), _CACHE_JOB, _CACHE_PAYLOAD)
                # distinct mtimes: index 0 is the least recently used
                stamp = now - (n_entries - index)
                os.utime(path, (stamp, stamp))
                size = path.stat().st_size
            capped = ResultCache(tmp, max_bytes=size * cap_entries, record_access=False)
            newest = _cache_key(n_entries)
            capped.put(newest, _CACHE_JOB, _CACHE_PAYLOAD)  # mtime ~now, triggers eviction
            survivors = {path.name[: -len(".json")] for path in capped.entries()}
            expected = {
                _cache_key(index)
                for index in range(n_entries + 1)
                if index >= (n_entries + 1) - cap_entries
            }
            assert survivors == expected
            assert newest in survivors

    @given(n_entries=st.integers(2, 10), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_get_refreshes_recency_so_served_entries_survive_a_ttl_sweep(
        self, n_entries, data
    ):
        with tempfile.TemporaryDirectory() as tmp:
            cache = ResultCache(tmp, record_access=False)  # mtime-only recency
            now = time.time()
            for index in range(n_entries):
                path = cache.put(_cache_key(index), _CACHE_JOB, _CACHE_PAYLOAD)
                os.utime(path, (now - 1000, now - 1000))
            touched = data.draw(st.integers(0, n_entries - 1))
            assert cache.get(_cache_key(touched)) == _CACHE_PAYLOAD  # refreshes mtime
            cache.sweep_older_than(500, now=time.time())
            survivors = {path.name[: -len(".json")] for path in cache.entries()}
            assert survivors == {_cache_key(touched)}

    @given(n_entries=st.integers(1, 12))
    @settings(max_examples=20, deadline=None)
    def test_shard_migration_is_idempotent_and_preserves_payloads(self, n_entries):
        with tempfile.TemporaryDirectory() as tmp:
            cache = ResultCache(tmp)
            for index in range(n_entries):
                key = _cache_key(index)
                entry = {"cache_version": CACHE_VERSION, "key": key, "record": dict(_CACHE_PAYLOAD)}
                (Path(tmp) / f"{key}.json").write_text(json.dumps(entry), encoding="utf-8")
            assert cache.migrate() == n_entries
            assert cache.migrate() == 0  # idempotent: nothing left to move
            for path in cache.entries():
                assert path.parent != cache.cache_dir  # everything sharded
            for index in range(n_entries):
                assert cache.get(_cache_key(index)) == _CACHE_PAYLOAD
            assert cache.migrate() == 0  # gets did not un-shard anything
