"""End-to-end resume tests through the real CLI and real compilations.

The flow under test is the acceptance criterion of the incremental
execution subsystem: a sweep is killed mid-run via the
``REPRO_FAULT_BENCHMARK`` injection hook, then ``repro resume`` must execute
*only* the jobs that never completed and the merged artifacts must equal an
uninterrupted run's byte-for-byte — modulo the timing fields, which are the
only nondeterministic part of a record.
"""

import csv
import json
import re
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments.engine import FAULT_INJECT_ENV, load_checkpoint

#: Record fields that carry wall-clock timings (legitimately differ run-to-run).
TIMING_FIELDS = ("baseline_seconds", "mech_seconds")

RUN_ARGS = ["--scale", "small", "--benchmarks", "BV", "QFT", "--jobs", "2"]


def _run(dirs, *extra):
    return main(
        ["run", "fig12", *RUN_ARGS, "--cache-dir", dirs["cache"], "--out-dir", dirs["out"], *extra]
    )


def _normalized_json(path):
    doc = json.loads(path.read_text())
    for row in doc["records"]:
        for field in TIMING_FIELDS:
            row[field] = 0.0
    return doc


def _normalized_csv(path):
    with open(path, newline="") as handle:
        rows = list(csv.DictReader(handle))
    for row in rows:
        for field in TIMING_FIELDS:
            row[field] = "0"
    return rows


@pytest.fixture()
def dirs(tmp_path):
    return {
        "cache": str(tmp_path / "cache"),
        "out": str(tmp_path / "artifacts"),
        "fresh_cache": str(tmp_path / "fresh-cache"),
        "fresh_out": str(tmp_path / "fresh-artifacts"),
    }


@pytest.fixture()
def interrupted(dirs, monkeypatch, capsys):
    """A fig12 sweep killed mid-run: BV completed, every QFT job failed."""
    monkeypatch.setenv(FAULT_INJECT_ENV, "QFT")
    assert _run(dirs) == 1
    monkeypatch.delenv(FAULT_INJECT_ENV)
    capsys.readouterr()  # drop the interrupted run's output
    return f"{dirs['out']}/fig12.checkpoint.json"


class TestResumeAfterInterrupt:
    def test_resume_executes_only_the_unfinished_jobs(self, dirs, interrupted, capsys):
        checkpoint = load_checkpoint(interrupted)
        assert len(checkpoint.remaining_jobs()) == 3  # the three QFT cells
        assert main(["resume", interrupted, "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        # the job-count assertion: completed jobs are cache hits, the rest executes
        assert "6 jobs: 3 cached, 3 executed" in out

    def test_merged_artifact_equals_an_uninterrupted_run(self, dirs, interrupted, capsys):
        assert main(["resume", interrupted]) == 0
        fresh = {**dirs, "cache": dirs["fresh_cache"], "out": dirs["fresh_out"]}
        assert _run(fresh, "--quiet") == 0
        resumed_out, fresh_out = Path(dirs["out"]), Path(dirs["fresh_out"])
        assert _normalized_json(resumed_out / "fig12.json") == _normalized_json(
            fresh_out / "fig12.json"
        )
        assert _normalized_csv(resumed_out / "fig12.csv") == _normalized_csv(
            fresh_out / "fig12.csv"
        )
        # the human-readable table is fully deterministic: byte-for-byte equal
        assert (resumed_out / "fig12.txt").read_bytes() == (fresh_out / "fig12.txt").read_bytes()

    def test_resume_finishes_the_checkpoint(self, dirs, interrupted, capsys):
        assert main(["resume", interrupted]) == 0
        checkpoint = load_checkpoint(interrupted)
        assert checkpoint.finished is True
        assert checkpoint.remaining_jobs() == []
        assert checkpoint.failed == []

    def test_resume_dry_run_previews_without_executing(self, dirs, interrupted, capsys):
        assert main(["resume", interrupted, "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "fig12: 6 jobs, 6 unique (0 duplicates) — 3 cached, 0 pending, 3 failed" in out
        assert "dry-run: no jobs executed, no artifacts written" in out
        # nothing ran: the checkpoint still lists the failures
        assert len(load_checkpoint(interrupted).failed) == 3

    def test_resume_is_idempotent(self, dirs, interrupted, capsys):
        assert main(["resume", interrupted]) == 0
        capsys.readouterr()
        assert main(["resume", interrupted]) == 0
        assert "6 jobs: 6 cached, 0 executed" in capsys.readouterr().out


class TestResumeErrors:
    def test_missing_checkpoint_is_a_usage_error(self, tmp_path, capsys):
        assert main(["resume", str(tmp_path / "nope.json")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_v1_checkpoint_is_a_usage_error_with_guidance(self, tmp_path, capsys):
        path = tmp_path / "old.checkpoint.json"
        path.write_text(json.dumps({"checkpoint_version": 1, "pending": []}))
        assert main(["resume", str(path)]) == 2
        assert "version 1" in capsys.readouterr().err

    def test_checkpoint_without_experiment_meta_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "anon.checkpoint.json"
        path.write_text(
            json.dumps({"checkpoint_version": 2, "jobs": [], "meta": {}})
        )
        assert main(["resume", str(path)]) == 2
        assert "does not name a known experiment" in capsys.readouterr().err

    def test_json_without_dry_run_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "x.json"
        path.write_text("{}")
        assert main(["resume", str(path), "--json"]) == 2
        assert "--json requires --dry-run" in capsys.readouterr().err


class TestRunDryRunAgainstCheckpoint:
    def test_dry_run_counts_match_the_checkpoint_a_real_run_wrote(
        self, dirs, interrupted, capsys
    ):
        # `repro run --dry-run` must agree with the checkpoint: 3 BV cells
        # cached, 3 QFT cells failed, nothing else pending
        assert _run(dirs, "--dry-run", "--json") == 0
        plan = json.loads(capsys.readouterr().out)["experiments"][0]
        checkpoint = load_checkpoint(interrupted)
        assert plan["cached"] == len(checkpoint.cached_keys) + len(checkpoint.completed_keys)
        assert plan["failed"] == len(checkpoint.failed)
        assert plan["pending"] == 0

    def test_summary_report_line_matches_dry_run_prediction(self, dirs, interrupted, capsys):
        assert _run(dirs, "--dry-run", "--json") == 0
        plan = json.loads(capsys.readouterr().out)["experiments"][0]
        assert _run(dirs, "--quiet") == 0
        out = capsys.readouterr().out
        match = re.search(r"(\d+) jobs: (\d+) cached, (\d+) executed", out)
        assert match is not None
        total, cached, executed = (int(g) for g in match.groups())
        assert total == plan["total"]
        assert cached == plan["cached"]
        assert executed == plan["pending"] + plan["failed"]


class TestResumeCacheDirOverride:
    def test_cache_dir_override_is_recorded_for_later_resumes(
        self, dirs, interrupted, tmp_path, capsys
    ):
        override = str(tmp_path / "cache-b")
        assert main(["resume", interrupted, "--cache-dir", override]) == 0
        assert load_checkpoint(interrupted).meta["cache_dir"] == override
        capsys.readouterr()
        # a later bare resume must find the results where this one put them
        assert main(["resume", interrupted]) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out

    def test_resume_of_a_no_cache_run_warns_and_reexecutes_everything(
        self, dirs, monkeypatch, capsys
    ):
        monkeypatch.setenv(FAULT_INJECT_ENV, "QFT")
        assert _run(dirs, "--no-cache") == 1
        monkeypatch.delenv(FAULT_INJECT_ENV)
        capsys.readouterr()
        override = dirs["fresh_cache"]  # keep the default .repro-cache out of cwd
        checkpoint = f"{dirs['out']}/fig12.checkpoint.json"
        assert main(["resume", checkpoint, "--cache-dir", override, "--jobs", "2"]) == 0
        captured = capsys.readouterr()
        # nothing was persisted by the --no-cache run, so everything executes
        assert "6 jobs: 0 cached, 6 executed" in captured.out
