"""Unit tests for the gate vocabulary (repro.circuits.gates)."""

import math

import numpy as np
import pytest

from repro.circuits import gates as g
from repro.circuits.gates import Barrier, Gate, GateError, Measurement


class TestGateConstruction:
    def test_one_qubit_gate_properties(self):
        gate = g.h(3)
        assert gate.name == "h"
        assert gate.qubits == (3,)
        assert gate.is_one_qubit
        assert not gate.is_two_qubit
        assert not gate.is_measurement
        assert not gate.is_barrier
        assert gate.num_qubits == 1

    def test_two_qubit_gate_properties(self):
        gate = g.cx(1, 2)
        assert gate.is_two_qubit
        assert gate.is_controlled
        assert gate.control == 1
        assert gate.target == 2
        assert gate.targets == (2,)

    def test_parameterised_gate_stores_params(self):
        gate = g.cp(0.25, 0, 1)
        assert gate.params == (0.25,)
        gate = g.rz(1.5, 4)
        assert gate.params == (1.5,)

    def test_repeated_qubits_rejected(self):
        with pytest.raises(GateError):
            g.cx(2, 2)
        with pytest.raises(GateError):
            Gate("swap", (1, 1))

    def test_wrong_arity_rejected(self):
        with pytest.raises(GateError):
            Gate("h", (0, 1))
        with pytest.raises(GateError):
            Gate("cx", (0,))

    def test_empty_name_rejected(self):
        with pytest.raises(GateError):
            Gate("", (0,))

    def test_qubits_are_coerced_to_int_tuple(self):
        gate = Gate("cx", [np.int64(0), np.int64(5)])
        assert gate.qubits == (0, 5)
        assert all(isinstance(q, int) for q in gate.qubits)

    def test_multi_target_gate(self):
        gate = g.multi_target_cx(0, [2, 4, 6])
        assert gate.is_multi_target
        assert gate.control == 0
        assert gate.targets == (2, 4, 6)
        components = gate.components()
        assert [c.qubits for c in components] == [(0, 2), (0, 4), (0, 6)]
        assert all(c.name == "cx" for c in components)

    def test_multi_target_cp_components_keep_params(self):
        gate = g.multi_target_cp(0.5, 1, [2, 3])
        assert all(c.name == "cp" and c.params == (0.5,) for c in gate.components())

    def test_multi_target_needs_targets(self):
        with pytest.raises(GateError):
            Gate("mcx", (0,))

    def test_plain_gate_components_is_itself(self):
        gate = g.cz(0, 1)
        assert gate.components() == (gate,)

    def test_control_accessor_requires_controlled_gate(self):
        with pytest.raises(GateError):
            _ = g.h(0).control
        with pytest.raises(GateError):
            _ = g.swap(0, 1).target


class TestMeasurementAndBarrier:
    def test_measurement_defaults_cbit_to_qubit(self):
        m = g.measure(7)
        assert isinstance(m, Measurement)
        assert m.is_measurement
        assert m.cbit == 7

    def test_measurement_explicit_cbit(self):
        m = g.measure(3, cbit=11)
        assert m.cbit == 11
        assert m.qubits == (3,)

    def test_measurement_has_no_matrix(self):
        with pytest.raises(GateError):
            g.measure(0).matrix()

    def test_barrier_spans_qubits(self):
        b = g.barrier([0, 2, 4])
        assert isinstance(b, Barrier)
        assert b.is_barrier
        assert b.qubits == (0, 2, 4)
        with pytest.raises(GateError):
            g.barrier([])

    def test_barrier_has_no_matrix(self):
        with pytest.raises(GateError):
            g.barrier([0]).matrix()


class TestConditions:
    def test_with_condition_builds_parity_condition(self):
        gate = g.x(2).with_condition([4, 5], 1)
        assert gate.condition == ((4, 5), 1)
        assert gate.qubits == (2,)

    def test_condition_value_normalised_mod_two(self):
        gate = g.z(0).with_condition([1], 3)
        assert gate.condition == ((1,), 1)


class TestDiagonality:
    @pytest.mark.parametrize("gate", [g.z(0), g.s(0), g.t(0), g.rz(0.3, 0), g.p(0.2, 0)])
    def test_diagonal_one_qubit_gates(self, gate):
        assert gate.is_diagonal
        assert gate.diagonal_on(0)

    @pytest.mark.parametrize("gate", [g.h(0), g.x(0), g.rx(0.1, 0), g.ry(0.1, 0)])
    def test_non_diagonal_one_qubit_gates(self, gate):
        assert not gate.is_diagonal

    def test_cx_diagonal_on_control_only(self):
        gate = g.cx(3, 5)
        assert gate.diagonal_on(3)
        assert not gate.diagonal_on(5)

    def test_cz_diagonal_on_both(self):
        gate = g.cz(3, 5)
        assert gate.diagonal_on(3)
        assert gate.diagonal_on(5)

    def test_diagonal_on_unrelated_qubit_is_true(self):
        assert g.cx(0, 1).diagonal_on(9)


class TestMatrices:
    def test_hadamard_matrix(self):
        m = g.h(0).matrix()
        expected = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
        assert np.allclose(m, expected)

    def test_cnot_matrix(self):
        m = g.cx(0, 1).matrix()
        expected = np.array([[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]])
        assert np.allclose(m, expected)

    @pytest.mark.parametrize(
        "gate",
        [
            g.h(0), g.x(0), g.y(0), g.z(0), g.s(0), g.sdg(0), g.t(0), g.tdg(0),
            g.rx(0.7, 0), g.ry(0.7, 0), g.rz(0.7, 0), g.p(0.7, 0),
            g.cx(0, 1), g.cz(0, 1), g.cp(0.7, 0, 1), g.crz(0.7, 0, 1), g.swap(0, 1),
        ],
    )
    def test_all_matrices_are_unitary(self, gate):
        m = gate.matrix()
        assert np.allclose(m @ m.conj().T, np.eye(m.shape[0]), atol=1e-12)

    def test_inverse_pairs_multiply_to_identity(self):
        assert np.allclose(g.s(0).matrix() @ g.sdg(0).matrix(), np.eye(2))
        assert np.allclose(g.t(0).matrix() @ g.tdg(0).matrix(), np.eye(2))

    def test_rz_p_phase_relation(self):
        theta = 0.9
        rz = g.rz(theta, 0).matrix()
        p = g.p(theta, 0).matrix()
        # RZ equals P up to a global phase of exp(-i theta / 2)
        assert np.allclose(rz * np.exp(1j * theta / 2), p)

    def test_unknown_gate_matrix_raises(self):
        with pytest.raises(GateError):
            Gate("mcx", (0, 1, 2)).matrix()
