"""Tests for the PR-5 performance subsystem: phase timers, the ``repro
bench`` suites/documents/comparisons, the CLI command, and the cache access
telemetry behind ``repro cache-stats --json``."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.experiments.engine import Job, ResultCache, noise_to_items
from repro.hardware.noise import DEFAULT_NOISE
from repro.perf import (
    BENCH_SCHEMA_VERSION,
    SUITES,
    BenchWorkload,
    PhaseTimer,
    compare_bench,
    format_bench,
    format_comparison,
    load_bench,
    measure_calibration,
    phase_breakdown,
    run_bench,
    write_bench,
)

TINY_SUITE = (
    BenchWorkload(
        name="square4-1x2/qft",
        benchmark="QFT",
        structure="square",
        chiplet_width=4,
        rows=1,
        cols=2,
    ),
)


@pytest.fixture
def tiny_suite(monkeypatch):
    """Shrink the quick suite to one workload so CLI tests stay fast."""
    import repro.perf.bench as bench_module

    monkeypatch.setitem(bench_module.SUITES, "quick", TINY_SUITE)
    return TINY_SUITE


# --------------------------------------------------------------------------
# timers


class TestPhaseTimer:
    def test_phases_accumulate_and_write_stats(self):
        timer = PhaseTimer()
        with timer.phase("route"):
            pass
        with timer.phase("route"):
            pass
        timer.add("simulate", 0.25)
        stats = {"swaps_inserted": 3.0}
        timer.write_stats(stats)
        assert stats["phase_simulate_seconds"] == 0.25
        assert stats["phase_route_seconds"] >= 0.0
        assert stats["swaps_inserted"] == 3.0
        assert all(isinstance(v, float) for v in stats.values())

    def test_phase_breakdown_roundtrip(self):
        stats = {
            "phase_route_seconds": 1.5,
            "phase_layout_seconds": 0.5,
            "swaps_inserted": 7.0,
            "phase__seconds": 9.0,  # empty phase name is ignored
        }
        assert phase_breakdown(stats) == {"route": 1.5, "layout": 0.5}

    def test_compilers_record_phases(self):
        from repro.backends import get_backend
        from repro.hardware.array import ChipletArray

        array = ChipletArray("square", 4, 1, 2)
        for name, expected in (("baseline", "route"), ("mech", "schedule")):
            result = get_backend(name).configure(array, seed=1).compile(
                _tiny_circuit(array)
            )
            phases = phase_breakdown(result.stats)
            assert expected in phases and phases[expected] > 0
            assert "layout" in phases


def _tiny_circuit(array):
    from repro.highway.layout import HighwayLayout
    from repro.programs import qft_circuit

    return qft_circuit(HighwayLayout(array, density=1).num_data_qubits)


# --------------------------------------------------------------------------
# bench documents


class TestBenchDocument:
    def test_suites_are_pinned(self):
        assert set(SUITES) == {"quick", "fig12", "full"}
        for workloads in SUITES.values():
            assert workloads  # never empty
        fig12 = SUITES["fig12"]
        assert all(w.chiplet_width == 7 for w in fig12)
        assert {(w.rows, w.cols) for w in fig12} == {(2, 2), (2, 3), (3, 3), (3, 4)}

    def test_document_schema(self, tiny_suite, tmp_path):
        doc = run_bench("quick", compilers=("baseline", "mech"))
        assert doc["schema_version"] == BENCH_SCHEMA_VERSION
        assert doc["suite"] == "quick"
        assert doc["compilers"] == ["baseline", "mech"]
        assert doc["calibration_seconds"] > 0
        assert len(doc["rows"]) == len(tiny_suite) * 2
        for row in doc["rows"]:
            for field in (
                "workload",
                "benchmark",
                "architecture",
                "num_data_qubits",
                "backend",
                "seconds",
                "swaps",
                "depth",
                "eff_cnots",
                "phases",
            ):
                assert field in row
            assert row["seconds"] > 0
            assert isinstance(row["phases"], dict) and row["phases"]
        path = write_bench(doc, tmp_path)
        assert path.name.startswith("BENCH_") and path.suffix == ".json"
        assert load_bench(path)["rows"] == doc["rows"]
        assert format_bench(doc)  # renders without raising

    def test_write_bench_never_overwrites(self, tiny_suite, tmp_path):
        doc = run_bench("quick", compilers=("baseline", "mech"))
        first = write_bench(doc, tmp_path)
        second = write_bench(doc, tmp_path)
        assert first != second and first.exists() and second.exists()

    def test_same_second_writes_do_not_collide(self, tmp_path, monkeypatch):
        # regression: BENCH_<timestamp>.json is second-granular, so two runs
        # starting in the same second used to race onto the same filename;
        # the name now carries the pid and a counter, and creation is atomic
        import repro.perf.bench as bench_module

        monkeypatch.setattr(
            bench_module.time, "strftime", lambda fmt: "20260101-000000"
        )
        doc = _fake_doc({("w1", "baseline"): 1.0})
        paths = [write_bench(doc, tmp_path) for _ in range(3)]
        assert len(set(paths)) == 3
        assert all(p.exists() for p in paths)
        pid = f"-p{os.getpid()}"
        assert all(pid in p.name for p in paths)
        # the counter kicks in, never an overwrite
        assert paths[0].name == f"BENCH_20260101-000000{pid}.json"
        assert paths[1].name == f"BENCH_20260101-000000{pid}.1.json"
        assert paths[2].name == f"BENCH_20260101-000000{pid}.2.json"
        for path in paths:
            assert json.loads(path.read_text())["rows"] == doc["rows"]

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown bench suite"):
            run_bench("nope")

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"schema_version": 99, "rows": []}))
        with pytest.raises(ValueError, match="schema"):
            load_bench(path)

    def test_calibration_is_positive_and_repeatable(self):
        assert measure_calibration(repeats=1) > 0


def _fake_doc(seconds_by_row, calibration=1.0):
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "suite": "quick",
        "seed": 7,
        "compilers": ["baseline"],
        "calibration_seconds": calibration,
        "rows": [
            {"workload": workload, "backend": backend, "seconds": seconds}
            for (workload, backend), seconds in seconds_by_row.items()
        ],
    }


class TestCompareBench:
    def test_speedup_and_geomean(self):
        old = _fake_doc({("w1", "baseline"): 4.0, ("w2", "baseline"): 9.0})
        new = _fake_doc({("w1", "baseline"): 1.0, ("w2", "baseline"): 1.0})
        cmp = compare_bench(old, new)
        assert cmp["matched"] == 2
        assert cmp["geomean_speedup"] == pytest.approx(6.0)
        assert not cmp["regressed"]
        assert format_comparison(cmp)

    def test_regression_detected_beyond_threshold(self):
        old = _fake_doc({("w1", "baseline"): 1.0})
        new = _fake_doc({("w1", "baseline"): 1.5})
        cmp = compare_bench(old, new, max_regression=0.25)
        assert cmp["regressed"]
        assert "REGRESSION" in format_comparison(cmp)
        ok = compare_bench(old, _fake_doc({("w1", "baseline"): 1.2}))
        assert not ok["regressed"]

    def test_calibration_rescales_old_timings(self):
        # old machine was 2x faster (calibration 0.5 vs 1.0): its 1.0s
        # workload corresponds to 2.0s here, so a 2.0s run is no regression
        old = _fake_doc({("w1", "baseline"): 1.0}, calibration=0.5)
        new = _fake_doc({("w1", "baseline"): 2.0}, calibration=1.0)
        cmp = compare_bench(old, new)
        assert cmp["calibration_ratio"] == pytest.approx(2.0)
        assert cmp["rows"][0]["speedup"] == pytest.approx(1.0)
        assert not cmp["regressed"]

    def test_unmatched_rows_reported(self):
        old = _fake_doc({("w1", "baseline"): 1.0})
        new = _fake_doc({("w2", "baseline"): 1.0})
        cmp = compare_bench(old, new)
        assert cmp["matched"] == 0
        assert set(cmp["missing"]) == {"w1::baseline", "w2::baseline"}


# --------------------------------------------------------------------------
# CLI


class TestBenchCli:
    def test_bench_quick_writes_document(self, tiny_suite, tmp_path, capsys):
        code = main(["bench", "--quick", "--out-dir", str(tmp_path), "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "square4-1x2/qft" in out and "bench document:" in out
        files = list(tmp_path.glob("BENCH_*.json"))
        assert len(files) == 1
        doc = json.loads(files[0].read_text())
        assert doc["schema_version"] == BENCH_SCHEMA_VERSION

    def test_bench_json_mode(self, tiny_suite, tmp_path, capsys):
        code = main(
            ["bench", "--quick", "--out-dir", str(tmp_path), "--quiet", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["bench"]["suite"] == "quick"
        assert payload["path"].endswith(".json")

    def test_bench_against_passes_and_fails(self, tiny_suite, tmp_path, capsys):
        assert main(["bench", "--quick", "--out-dir", str(tmp_path), "--quiet"]) == 0
        baseline = next(iter(tmp_path.glob("BENCH_*.json")))
        code = main(
            [
                "bench",
                "--quick",
                "--out-dir",
                str(tmp_path),
                "--quiet",
                "--against",
                str(baseline),
                "--max-regression",
                "1000",
            ]
        )
        assert code == 0
        assert "geometric-mean speedup" in capsys.readouterr().out
        # doctor the baseline to claim near-zero old timings -> regression
        doc = json.loads(baseline.read_text())
        for row in doc["rows"]:
            row["seconds"] = 1e-9
        fast = tmp_path / "BENCH_fast.json"
        fast.write_text(json.dumps(doc))
        code = main(
            [
                "bench",
                "--quick",
                "--out-dir",
                str(tmp_path),
                "--quiet",
                "--against",
                str(fast),
            ]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_bench_usage_errors(self, tmp_path, capsys):
        assert main(["bench", "--repeat", "0"]) == 2
        assert main(["bench", "--compilers", "baseline,nope"]) == 2
        assert main(["bench", "--against", str(tmp_path / "missing.json")]) == 2
        capsys.readouterr()


class TestVerifyCli:
    def test_verify_quick_is_clean(self, tiny_suite, tmp_path, capsys):
        code = main(
            [
                "verify",
                "--suite",
                "quick",
                "--compilers",
                "baseline,mech",
                "--out-dir",
                str(tmp_path),
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verify suite=quick: 2/2 rows clean" in out
        files = list(tmp_path.glob("VERIFY_*.json"))
        assert len(files) == 1
        doc = json.loads(files[0].read_text())
        assert doc["clean"] is True and doc["dirty_rows"] == 0
        assert {row["backend"] for row in doc["rows"]} == {"baseline", "mech"}
        for row in doc["rows"]:
            assert row["verified"] is True and row["violations"] == 0
            assert row["verify"]["ok"] is True
            assert row["verify"]["ops_checked"] > 0
            assert "verify" in row["phases"]

    def test_verify_json_mode(self, tiny_suite, tmp_path, capsys):
        code = main(
            [
                "verify",
                "--compilers",
                "baseline",
                "--out-dir",
                str(tmp_path),
                "--quiet",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verify"]["clean"] is True
        assert payload["verify"]["compilers"] == ["baseline"]
        assert payload["path"].endswith(".json")

    def test_verify_unknown_backend_is_usage_error(self, tmp_path, capsys):
        code = main(
            ["verify", "--compilers", "baseline,nope", "--out-dir", str(tmp_path)]
        )
        assert code == 2
        assert "nope" in capsys.readouterr().err

    def test_verify_dirty_rows_exit_one(self, tiny_suite, tmp_path, capsys, monkeypatch):
        import repro.perf.workloads as workloads_module

        real = workloads_module.compile_workload

        def sabotaged(workload, compilers, *, verify=False):
            rows = real(workload, compilers, verify=verify)
            row = rows["baseline"]
            report = dict(row["verify"])
            report["ok"] = False
            report["violations"] = [
                {
                    "rule": "hardware",
                    "code": "uncoupled-2q",
                    "message": "cx acts on physical pair (0, 9)",
                    "gate_index": 3,
                    "qubits": [0, 9],
                    "counterexample": {},
                }
            ]
            row.update(verified=False, violations=1, verify=report)
            return rows

        monkeypatch.setattr(workloads_module, "compile_workload", sabotaged)
        code = main(
            [
                "verify",
                "--compilers",
                "baseline",
                "--out-dir",
                str(tmp_path),
                "--quiet",
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "0/1 rows clean" in captured.out
        assert "uncoupled-2q" in captured.err
        doc = json.loads(next(iter(tmp_path.glob("VERIFY_*.json"))).read_text())
        assert doc["clean"] is False and doc["dirty_rows"] == 1

    def test_bench_verify_flag_annotates_rows(self, tiny_suite, tmp_path, capsys):
        code = main(
            [
                "bench",
                "--quick",
                "--compilers",
                "baseline",
                "--verify",
                "--out-dir",
                str(tmp_path),
                "--quiet",
            ]
        )
        assert code == 0
        assert "verify: all 1 rows clean" in capsys.readouterr().out
        doc = json.loads(next(iter(tmp_path.glob("BENCH_*.json"))).read_text())
        assert doc["verify"] is True
        assert all(row["verified"] for row in doc["rows"])

    def test_bench_without_verify_has_no_verdict(self, tiny_suite, tmp_path, capsys):
        code = main(
            [
                "bench",
                "--quick",
                "--compilers",
                "baseline",
                "--out-dir",
                str(tmp_path),
                "--quiet",
            ]
        )
        assert code == 0
        capsys.readouterr()
        doc = json.loads(next(iter(tmp_path.glob("BENCH_*.json"))).read_text())
        assert doc["verify"] is False
        assert all("verified" not in row for row in doc["rows"])


# --------------------------------------------------------------------------
# cache access telemetry


def _job(seed=0):
    return Job(
        benchmark="QFT",
        structure="square",
        chiplet_width=4,
        rows=1,
        cols=2,
        seed=seed,
        noise=noise_to_items(DEFAULT_NOISE),
    )


class TestCacheAccessTelemetry:
    def test_hits_and_misses_logged(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("aa11", _job(), {"kind": "compare", "record": {"x": 1.0}})
        assert cache.get("aa11") is not None
        assert cache.get("aa11") is not None
        assert cache.get("bb22") is None
        stats = cache.access_stats()
        assert stats["hits"] == 2 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(2 / 3)
        assert stats["top_entries"] == [{"key": "aa11", "hits": 2}]

    def test_read_against_missing_cache_creates_nothing(self, tmp_path):
        cache_dir = tmp_path / "never-written"
        cache = ResultCache(cache_dir)
        assert cache.get("aa11") is None
        assert not cache_dir.exists()
        assert cache.access_stats()["recorded"] == 0

    def test_record_access_off_keeps_log_empty(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", record_access=False)
        cache.put("aa11", _job(), {"kind": "compare", "record": {"x": 1.0}})
        cache.get("aa11")
        assert not cache.access_log_path.exists()
        assert cache.access_stats()["recorded"] == 0

    def test_peek_is_silent(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("aa11", _job(), {"kind": "compare", "record": {"x": 1.0}})
        cache.peek("aa11")
        cache.peek("bb22")
        assert cache.access_stats()["recorded"] == 0

    def test_clear_removes_log(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("aa11", _job(), {"kind": "compare", "record": {"x": 1.0}})
        cache.get("aa11")
        assert cache.access_log_path.exists()
        cache.clear()
        assert not cache.access_log_path.exists()

    def test_stats_embeds_access_summary(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("aa11", _job(), {"kind": "compare", "record": {"x": 1.0}})
        cache.get("aa11")
        assert cache.stats()["access"]["hits"] == 1

    def test_cache_stats_cli_json(self, tmp_path, capsys):
        cache = ResultCache(tmp_path / "cache")
        cache.put("aa11", _job(), {"kind": "compare", "record": {"x": 1.0}})
        cache.get("aa11")
        cache.get("cc33")
        code = main(["cache-stats", "--cache-dir", str(tmp_path / "cache"), "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["entries"] == 1
        assert doc["access"]["hits"] == 1
        assert doc["access"]["misses"] == 1
        assert doc["access"]["hit_rate"] == pytest.approx(0.5)

    def test_cache_stats_cli_human_mentions_accesses(self, tmp_path, capsys):
        cache = ResultCache(tmp_path / "cache")
        cache.put("aa11", _job(), {"kind": "compare", "record": {"x": 1.0}})
        cache.get("aa11")
        assert main(["cache-stats", "--cache-dir", str(tmp_path / "cache")]) == 0
        assert "hit rate" in capsys.readouterr().out


class TestAccessLogCompaction:
    def test_compaction_preserves_totals_and_counts(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("aa11", _job(), {"kind": "compare", "record": {"x": 1.0}})
        for _ in range(3):
            cache.get("aa11")
        cache.get("bb22")
        before = cache.access_stats()
        cache._compact_access_log()
        text = cache.access_log_path.read_text()
        assert text.startswith("T ") and "A aa11 3" in text
        assert cache.access_stats() == before
        # further accesses append on top of the compacted history
        cache.get("aa11")
        after = cache.access_stats()
        assert after["hits"] == 4 and after["misses"] == 1
        assert after["top_entries"] == [{"key": "aa11", "hits": 4}]

    def test_compaction_triggers_past_size_cap(self, tmp_path, monkeypatch):
        import repro.experiments.engine as engine_module

        monkeypatch.setattr(engine_module, "_ACCESS_LOG_MAX_BYTES", 64)
        monkeypatch.setattr(engine_module, "_ACCESS_COMPACT_EVERY", 8)
        cache = ResultCache(tmp_path / "cache")
        cache.put("aa11", _job(), {"kind": "compare", "record": {"x": 1.0}})
        for _ in range(64):
            cache.get("aa11")
        assert cache.access_log_path.stat().st_size < 64 + 8 * len("H aa11\n")
        stats = cache.access_stats()
        assert stats["hits"] == 64

    def test_top_entries_only_list_live_cache_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("aa11", _job(), {"kind": "compare", "record": {"x": 1.0}})
        cache.put("bb22", _job(1), {"kind": "compare", "record": {"x": 2.0}})
        cache.get("aa11")
        cache.get("bb22")
        cache.path_for("bb22").unlink()  # evicted / swept entry
        stats = cache.access_stats()
        assert stats["top_entries"] == [{"key": "aa11", "hits": 1}]
        assert stats["tracked_entries"] == 2


class TestZeroMatchComparisonFails:
    def test_cli_rejects_comparison_with_no_common_rows(self, tiny_suite, tmp_path, capsys):
        foreign = tmp_path / "BENCH_foreign.json"
        foreign.write_text(
            json.dumps(
                _fake_doc({("some-other-workload", "baseline"): 1.0})
            )
        )
        code = main(
            [
                "bench",
                "--quick",
                "--out-dir",
                str(tmp_path),
                "--quiet",
                "--against",
                str(foreign),
            ]
        )
        assert code == 2
        assert "no (workload, backend) rows in common" in capsys.readouterr().err

    def test_format_comparison_mentions_unmatched_rows(self):
        old = _fake_doc({("w1", "baseline"): 1.0, ("w2", "baseline"): 1.0})
        new = _fake_doc({("w1", "baseline"): 1.0})
        text = format_comparison(compare_bench(old, new))
        assert "unmatched row" in text and "w2::baseline" in text
