"""Unit tests for the device coupling graph (repro.hardware.topology)."""

import networkx as nx
import numpy as np
import pytest

from repro.hardware import ChipletArray, Topology, TopologyError


def line_topology(n=5, cross_at=None):
    g = nx.Graph()
    for q in range(n):
        g.add_node(q, pos=(0, q))
    for q in range(n - 1):
        g.add_edge(q, q + 1, cross_chip=(cross_at == q))
    return Topology(g, name="line")


class TestBasicQueries:
    def test_counts_and_neighbours(self):
        t = line_topology(5)
        assert t.num_qubits == 5
        assert t.num_edges == 4
        assert t.neighbors(2) == (1, 3)
        assert t.degree(0) == 1
        assert t.qubits() == (0, 1, 2, 3, 4)

    def test_coupling_queries(self):
        t = line_topology(4, cross_at=1)
        assert t.is_coupled(0, 1)
        assert not t.is_coupled(0, 2)
        assert t.is_cross_chip(1, 2)
        assert not t.is_cross_chip(0, 1)
        with pytest.raises(TopologyError):
            t.is_cross_chip(0, 3)

    def test_edge_lists(self):
        t = line_topology(4, cross_at=2)
        assert t.cross_chip_edges() == ((2, 3),)
        assert len(t.on_chip_edges()) == 2
        assert len(t.edges()) == 3

    def test_invalid_indices_rejected(self):
        g = nx.Graph()
        g.add_node(0)
        g.add_node(5)
        with pytest.raises(TopologyError):
            Topology(g)
        with pytest.raises(TopologyError):
            Topology(nx.Graph())

    def test_positions_and_chiplets(self):
        arr = ChipletArray("square", 3, 1, 2)
        topo = arr.topology
        assert topo.position(0) == (0, 0)
        assert topo.chiplet_of(0) == (0, 0)
        assert topo.chiplets() == [(0, 0), (0, 1)]
        assert len(topo.qubits_in_chiplet((0, 1))) == 9

    def test_is_connected(self):
        assert line_topology(5).is_connected()


class TestDistances:
    def test_hop_distances(self):
        t = line_topology(5)
        assert t.distance(0, 4) == 4
        assert t.distance(2, 2) == 0

    def test_distance_matrix_symmetry(self):
        t = ChipletArray("square", 3, 1, 2).topology
        d = t.distance_matrix()
        assert np.allclose(d, d.T)
        assert d.shape == (18, 18)

    def test_cross_chip_weighting(self):
        t = line_topology(4, cross_at=1)
        assert t.distance(0, 3) == 3
        assert t.distance(0, 3, cross_chip_weight=5.0) == 7  # 1 + 5 + 1

    def test_shortest_path_endpoints(self):
        t = line_topology(6)
        path = t.shortest_path(1, 4)
        assert path[0] == 1 and path[-1] == 4
        assert all(t.is_coupled(a, b) for a, b in zip(path, path[1:], strict=False))

    def test_weighted_shortest_path_avoids_cross_links_when_possible(self):
        g = nx.Graph()
        for q in range(4):
            g.add_node(q)
        # two routes 0->3: direct cross-chip edge, or 3 on-chip hops
        g.add_edge(0, 3, cross_chip=True)
        g.add_edge(0, 1, cross_chip=False)
        g.add_edge(1, 2, cross_chip=False)
        g.add_edge(2, 3, cross_chip=False)
        t = Topology(g)
        assert t.shortest_path(0, 3) == [0, 3]
        assert t.shortest_path(0, 3, cross_chip_weight=10.0) == [0, 1, 2, 3]


class TestDerived:
    def test_subtopology_relabels_and_tracks_originals(self):
        t = line_topology(5)
        sub = t.subtopology([1, 2, 4])
        assert sub.num_qubits == 3
        assert sub.is_coupled(0, 1)       # original 1-2
        assert not sub.is_coupled(1, 2)   # original 2-4 not coupled
        originals = [sub.graph.nodes[q]["original"] for q in sub.qubits()]
        assert originals == [1, 2, 4]

    def test_copy_is_independent(self):
        t = line_topology(3)
        c = t.copy()
        assert c.graph is not t.graph
        assert c.edges() == t.edges()

    def test_wrapped_graph_is_frozen(self):
        # the invalidation-free query caches rely on graph immutability, so
        # a mutation attempt must fail loudly instead of staling the caches
        t = line_topology(3)
        with pytest.raises(nx.NetworkXError):
            t.graph.add_edge(0, 2)
        c = t.copy()
        with pytest.raises(nx.NetworkXError):
            c.graph.add_edge(0, 2)


class TestQueryCaches:
    """PR-5 satellite: query results are cached as tuples (graph immutable)."""

    def test_cached_tuples_are_stable_objects(self):
        t = line_topology(5)
        assert t.edges() is t.edges()
        assert t.qubits() is t.qubits()
        assert t.neighbors(2) is t.neighbors(2)
        assert t.cross_chip_edges() is t.cross_chip_edges()
        assert t.on_chip_edges() is t.on_chip_edges()

    def test_cached_values_match_graph(self):
        t = line_topology(6, cross_at=3)
        assert t.edges() == tuple((q, q + 1) for q in range(5))
        assert t.cross_chip_edges() == ((3, 4),)
        assert len(t.on_chip_edges()) == 4
        for q in range(6):
            assert t.neighbors(q) == tuple(sorted(t.graph.neighbors(q)))

    def test_adjacency_matrix_matches_is_coupled(self):
        t = line_topology(5, cross_at=2)
        adj = t.adjacency_matrix()
        assert adj is t.adjacency_matrix()
        for a in range(5):
            for b in range(5):
                assert bool(adj[a, b]) == t.is_coupled(a, b)
