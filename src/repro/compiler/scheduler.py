"""MECH gate scheduling and emission (paper Sections 6.1-6.2).

The scheduler walks the execution units produced by the aggregation pass (in
dependency order) and emits a physical circuit:

* ordinary gates are executed in place or after SWAP-routing their qubits
  together through the data subgraph;
* highway gates go through the full protocol: entrance selection for the hub
  and every spoke (earliest-execution heuristic of §6.1), local routing of the
  hub to its entrance, a route tree over the highway (spatial sharing), the
  measurement-based GHZ preparation on that tree, the cat-entangler, one
  fan-out gate per spoke as it arrives at its entrance (temporal sharing /
  dynamic shuttle period of §6.2), and finally the cat-disentangler that
  releases the highway qubits for the next shuttle.

Per-physical-qubit clocks are maintained for the heuristics; the reported
depth is recomputed from the emitted circuit with the same ASAP rule, so the
heuristics only influence decisions, never the metric itself.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..circuits import gates as g
from ..circuits.circuit import Circuit, _rebuild_trusted
from ..circuits.gates import Gate
from ..hardware.noise import DEFAULT_NOISE, NoiseModel
from ..hardware.topology import Topology
from ..highway.ghz import tree_ghz
from ..highway.layout import HighwayLayout
from ..highway.occupancy import HighwayManager
from ..highway.protocol import cat_disentangler, cat_entangler, fan_out
from .aggregation import ExecutionUnit, HighwayGateUnit, SingleUnit
from .local_router import LocalRouter, RoutingError
from .result import CompilationResult

__all__ = ["MechScheduler", "SchedulerError"]

#: Depth cost of a SWAP (three CNOTs back to back on the same pair).
_SWAP_WEIGHT = 3.0


class SchedulerError(RuntimeError):
    """Raised when the scheduler cannot realise a unit on the hardware."""


class MechScheduler:
    """Emit a physical circuit for a list of execution units."""

    def __init__(
        self,
        topology: Topology,
        layout: HighwayLayout,
        *,
        noise: NoiseModel = DEFAULT_NOISE,
        entrance_candidates: int = 4,
        router: LocalRouter | None = None,
    ) -> None:
        self.topology = topology
        self.layout = layout
        self.noise = noise
        self.entrance_candidates = entrance_candidates

        self.manager = HighwayManager(layout)
        # a shared pre-warmed router (serve path) must match this device; its
        # distance/next-hop tables are deterministic, so reuse is exact
        if router is not None and router.highway_qubits != layout.highway_qubits:
            raise SchedulerError(
                "the supplied router was built for a different highway layout"
            )
        self.router = router if router is not None else LocalRouter(
            topology, layout.highway_qubits
        )
        self._distance = topology.distance_matrix()

    # ------------------------------------------------------------------ #
    # public entry point
    # ------------------------------------------------------------------ #
    def run(
        self,
        logical_circuit: Circuit,
        units: Sequence[ExecutionUnit],
        initial_mapping: dict[int, int],
    ) -> CompilationResult:
        """Execute ``units`` (already in dependency order) and emit the result."""
        self._l2p: dict[int, int] = dict(initial_mapping)
        self._p2l: dict[int, int] = {p: l for l, p in self._l2p.items()}
        if len(self._p2l) != len(self._l2p):
            raise SchedulerError("initial mapping is not injective")
        for phys in self._l2p.values():
            if self.layout.is_highway(phys):
                raise SchedulerError(f"initial mapping places a logical qubit on highway qubit {phys}")

        self._out = Circuit(
            self.topology.num_qubits, name=f"{logical_circuit.name}@mech"
        )
        self._clock: dict[int, float] = {q: 0.0 for q in self.topology.qubits()}
        self._next_cbit = logical_circuit.num_qubits
        self._stats = {
            "swaps_inserted": 0.0,
            "highway_gates": 0.0,
            "highway_components": 0.0,
            "regular_two_qubit_gates": 0.0,
            "ghz_preparations": 0.0,
            "highway_fallback_gates": 0.0,
        }

        for unit in units:
            if isinstance(unit, SingleUnit):
                self._execute_single(unit)
            elif isinstance(unit, HighwayGateUnit):
                self._execute_highway_gate(unit)
            else:  # pragma: no cover - defensive
                raise SchedulerError(f"unknown unit type {type(unit)!r}")

        self._stats["shuttles"] = float(self.manager.num_claims)
        self._stats["avg_route_size"] = self.manager.average_occupancy()
        return CompilationResult(
            circuit=self._out,
            topology=self.topology,
            initial_layout=dict(initial_mapping),
            final_layout=dict(self._l2p),
            compiler="mech",
            stats=self._stats,
        )

    # ------------------------------------------------------------------ #
    # emission helpers
    # ------------------------------------------------------------------ #
    def _emit(self, op: Gate, weight: float) -> None:
        # direct op-list append: the scheduler only emits on validated
        # physical positions, so the per-qubit range check is redundant
        self._out.operations.append(op)
        clock = self._clock
        qubits = op.qubits
        if op.is_barrier:
            sync = max((clock[q] for q in qubits), default=0.0)
            for q in qubits:
                clock[q] = sync
            return
        if len(qubits) == 2:
            ca, cb = clock[qubits[0]], clock[qubits[1]]
            start = ca if ca >= cb else cb
        elif len(qubits) == 1:
            start = clock[qubits[0]]
        else:
            start = max(clock[q] for q in qubits)
        finish = start + weight
        for q in qubits:
            clock[q] = finish

    def _emit_plain(self, op: Gate) -> None:
        """Emit an operation with the paper's default weights."""
        if op.is_barrier:
            self._emit(op, 0.0)
        elif op.is_measurement:
            self._emit(op, self.noise.meas_latency)
        elif op.num_qubits >= 2:
            self._emit(op, 1.0)
        else:
            self._emit(op, 0.0)

    def _emit_swap(self, a: int, b: int) -> None:
        """Emit a SWAP between two data positions and update the mapping."""
        # positions come from the router's (validated-int, distinct) chains
        self._emit(Gate.trusted("swap", (a, b)), _SWAP_WEIGHT)
        la = self._p2l.get(a)
        lb = self._p2l.get(b)
        if la is not None:
            self._l2p[la] = b
            self._p2l[b] = la
        elif b in self._p2l:
            del self._p2l[b]
        if lb is not None:
            self._l2p[lb] = a
            self._p2l[a] = lb
        elif a in self._p2l:
            del self._p2l[a]
        self._stats["swaps_inserted"] += 1.0

    def _apply_swaps(self, swaps: Sequence[tuple[int, int]]) -> None:
        for a, b in swaps:
            self._emit_swap(a, b)

    def _fresh_cbits(self, count: int) -> int:
        base = self._next_cbit
        self._next_cbit += count
        return base

    # ------------------------------------------------------------------ #
    # ordinary gates
    # ------------------------------------------------------------------ #
    def _execute_single(self, unit: SingleUnit) -> None:
        op = unit.op
        if op.is_barrier or op.is_measurement or op.num_qubits == 1:
            self._emit_plain(_rebuild_trusted(op, tuple(self._l2p[q] for q in op.qubits)))
            return
        if op.num_qubits != 2:
            raise SchedulerError(f"unsupported operation {op}")
        a = self._l2p[op.qubits[0]]
        b = self._l2p[op.qubits[1]]
        if not self.topology.is_coupled(a, b):
            try:
                swaps = self.router.swaps_to_adjacency(a, b)
            except RoutingError:
                # the data subgraph cannot connect them; fall back to the
                # highway.  A SWAP has no control/target structure, so it is
                # first decomposed into its three CNOTs.
                self._stats["highway_fallback_gates"] += 1.0
                if op.name == "swap":
                    q0, q1 = op.qubits
                    for control, target in ((q0, q1), (q1, q0), (q0, q1)):
                        self._execute_single(
                            SingleUnit(unit.node_index, g.cx(control, target))
                        )
                    return
                self._execute_via_highway(
                    hub=op.qubits[0],
                    components=[(op.qubits[1], op.name, op.params)],
                    kind="control",
                )
                return
            self._apply_swaps(swaps)
            a = self._l2p[op.qubits[0]]
            b = self._l2p[op.qubits[1]]
        self._emit_plain(_rebuild_trusted(op, (a, b)))
        self._stats["regular_two_qubit_gates"] += 1.0

    # ------------------------------------------------------------------ #
    # highway gates
    # ------------------------------------------------------------------ #
    def _execute_highway_gate(self, unit: HighwayGateUnit) -> None:
        components = [(c.spoke, c.gate_name, c.params) for c in unit.components]
        self._execute_via_highway(hub=unit.hub, components=components, kind=unit.kind)
        self._stats["highway_gates"] += 1.0
        self._stats["highway_components"] += float(unit.num_components)

    def _execute_via_highway(
        self,
        *,
        hub: int,
        components: Sequence[tuple[int, str, tuple[float, ...]]],
        kind: str,
    ) -> None:
        """Run one (possibly single-component) gate through the highway protocol."""
        hub_phys = self._l2p[hub]

        # --- hub entrance selection and local routing -------------------- #
        hub_entrance = self._select_entrance(hub_phys)
        parking = self.router.nearest_parking(hub_phys, hub_entrance)
        if parking is None:
            raise SchedulerError(f"entrance {hub_entrance} has no parking spot")
        if hub_phys != parking and not self.topology.is_coupled(hub_phys, hub_entrance):
            self._apply_swaps(self.router.swaps_to_position(hub_phys, parking))
        hub_phys = self._l2p[hub]

        # --- spoke entrance selection ------------------------------------ #
        # Spokes are assigned entrances in ascending order of their distance to
        # the highway (paper §6.1) and the per-entrance load is tracked so that
        # spokes spread over nearby entrances instead of all contending for the
        # same one (which would serialise their fan-out CNOTs).
        spoke_order = sorted(
            range(len(components)),
            key=lambda i: self.layout.distance_to_highway(self._l2p[components[i][0]]),
        )
        spoke_entrances: dict[int, int] = {}
        entrance_load: dict[int, int] = {}
        for i in spoke_order:
            spoke_phys = self._l2p[components[i][0]]
            chosen = self._select_entrance(
                spoke_phys, exclude=(hub_entrance,), load=entrance_load
            )
            spoke_entrances[i] = chosen
            entrance_load[chosen] = entrance_load.get(chosen, 0) + 1

        # --- highway route and GHZ preparation --------------------------- #
        route = self.manager.build_route(hub_entrance, list(spoke_entrances.values()))
        required = set(spoke_entrances.values()) | {hub_entrance}
        prep = tree_ghz(
            route.adjacency,
            hub_entrance,
            via_lookup=self.manager.via_lookup(),
            cbit_base=self._fresh_cbits(0),
            required_members=sorted(required),
        )
        self._next_cbit = max(self._next_cbit, prep.next_cbit)
        for op in prep.operations:
            self._emit_plain(op)
        self._stats["ghz_preparations"] += 1.0

        members = list(prep.members)
        other_members = [m for m in members if m != hub_entrance]

        # --- Hadamard conjugation for target-shared groups --------------- #
        if kind == "target":
            self._emit_plain(g.h(hub_phys))

        # --- cat-entangler ------------------------------------------------ #
        entangle_cbit = self._fresh_cbits(1)
        for op in cat_entangler(
            hub_phys, hub_entrance, other_members, cbit=entangle_cbit
        ):
            self._emit_plain(op)

        # --- fan-out, one spoke at a time (dynamic shuttle period) -------- #
        dead_members = {hub_entrance}  # measured out by the cat-entangler
        for i, (spoke, gate_name, params) in enumerate(components):
            entrance = spoke_entrances[i]
            if entrance in dead_members:
                # A congested region can leave a spoke with no reachable
                # entrance other than the hub's, which the cat-entangler has
                # already measured out of the GHZ chain (and reset to |0>).
                # Fanning out from it would silently drop the component, so
                # re-extend the cat state onto it from the hub data qubit and
                # include it in the disentangler with the other members.
                hub_now = self._l2p[hub]
                if not self.topology.is_coupled(hub_now, entrance):
                    parking = self.router.nearest_parking(hub_now, entrance)
                    if parking is None:
                        raise SchedulerError(f"entrance {entrance} has no parking spot")
                    self._apply_swaps(self.router.swaps_to_position(hub_now, parking))
                    hub_now = self._l2p[hub]
                self._emit_plain(g.cx(hub_now, entrance))
                other_members.append(entrance)
                dead_members.discard(entrance)
            spoke_phys = self._l2p[spoke]
            if not self.topology.is_coupled(spoke_phys, entrance):
                parking = self.router.nearest_parking(spoke_phys, entrance)
                if parking is None:
                    raise SchedulerError(f"entrance {entrance} has no parking spot")
                self._apply_swaps(self.router.swaps_to_position(spoke_phys, parking))
                spoke_phys = self._l2p[spoke]
            fan_name, fan_params = self._fan_out_gate(gate_name, params, kind)
            for op in fan_out([(entrance, spoke_phys)], gate_name=fan_name, params=fan_params):
                self._emit_plain(op)

        # --- cat-disentangler (ends this gate's use of the shuttle) ------- #
        hub_phys = self._l2p[hub]
        disentangle_ops, _ = cat_disentangler(
            hub_phys, other_members, cbit_base=self._fresh_cbits(len(other_members))
        )
        for op in disentangle_ops:
            self._emit_plain(op)

        # the closing Hadamard of the target-shared conjugation wraps the whole
        # protocol, including the disentangler's Z correction on the hub
        if kind == "target":
            self._emit_plain(g.h(hub_phys))

        release = max(self._clock[q] for q in route.nodes)
        self.manager.claim(route.nodes, release)

    @staticmethod
    def _fan_out_gate(
        gate_name: str, params: tuple[float, ...], kind: str
    ) -> tuple[str, tuple[float, ...]]:
        """The 2-qubit gate applied from a GHZ member to a spoke data qubit."""
        if kind == "target":
            # CX gates sharing a target are conjugated by Hadamards on the hub,
            # which turns each component into a CZ between the member (carrying
            # the spoke-control's value... the hub) and the spoke.
            return "cz", ()
        return gate_name, params

    # ------------------------------------------------------------------ #
    # entrance selection (earliest-execution heuristic)
    # ------------------------------------------------------------------ #
    def _select_entrance(
        self,
        data_phys: int,
        exclude: Sequence[int] = (),
        load: dict[int, int] | None = None,
    ) -> int:
        """Pick the highway entrance giving the earliest execution time.

        ``t_arr`` is estimated from the data qubit's clock plus the SWAP time
        to reach the entrance's surroundings; ``t_ava`` is when the entrance's
        highway qubit is released by the previous shuttle; the candidate with
        the smallest ``max(t_arr, t_ava)`` wins (ties broken by distance).
        ``load`` counts how many components of the current highway gate already
        use each entrance; every queued component delays this one by roughly a
        fan-out slot, which the score accounts for.
        """
        excluded = set(exclude)

        def usable(entrance: int) -> bool:
            # an entrance is usable only if the data qubit can actually reach
            # one of its parking spots through the data subgraph
            return self.router.nearest_parking(data_phys, entrance) is not None

        candidates = [
            e
            for e in self.manager.entrance_candidates(
                data_phys, limit=self.entrance_candidates + len(excluded)
            )
            if e not in excluded and usable(e)
        ]
        if not candidates:
            candidates = [
                e
                for e in self.manager.entrance_candidates(data_phys, limit=64)
                if e not in excluded and usable(e)
            ]
        if not candidates:
            # last resort: consider every highway qubit, nearest first.  Only
            # fall back on an excluded entrance (e.g. the hub's, which the
            # cat-entangler measures out) when nothing else is reachable; the
            # caller then has to re-extend the cat state onto it.
            pool = sorted(
                (e for e in self.manager.release_time if usable(e)),
                key=lambda e: self._distance[data_phys, e],
            )
            candidates = [e for e in pool if e not in excluded][:16] or pool[:16]
        if not candidates:
            raise SchedulerError(f"no usable highway entrance near position {data_phys}")

        def score(entrance: int) -> tuple[float, float, float, int]:
            hops = max(self._distance[data_phys, entrance] - 1.0, 0.0)
            queued = 0 if load is None else load.get(entrance, 0)
            t_arr = self._clock[data_phys] + _SWAP_WEIGHT * hops
            t_ava = self.manager.next_free(entrance)
            # queued components only break ties between otherwise equally
            # close entrances: moving farther costs a full SWAP chain, which
            # is worse than waiting one fan-out slot
            return (max(t_arr, t_ava), hops, float(queued), entrance)

        return min(candidates, key=score)
