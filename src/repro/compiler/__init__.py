"""The MECH compiler: aggregation, routing, scheduling and results."""

from .aggregation import (
    ExecutionUnit,
    GateComponent,
    HighwayGateUnit,
    SingleUnit,
    aggregate,
)
from .local_router import LocalRouter, RoutingError
from .mech import MechCompiler
from .result import CompilationResult
from .rewrite import fuse_zz_ladders
from .scheduler import MechScheduler, SchedulerError

__all__ = [
    "MechCompiler",
    "MechScheduler",
    "SchedulerError",
    "CompilationResult",
    "LocalRouter",
    "RoutingError",
    "aggregate",
    "fuse_zz_ladders",
    "ExecutionUnit",
    "SingleUnit",
    "HighwayGateUnit",
    "GateComponent",
]
