"""The MECH compiler facade.

Ties the pieces together: highway layout generation on the chiplet array,
commutation-aware dependency analysis, aggregation into multi-target highway
gates, and the scheduler that routes and emits the physical circuit.

Typical use::

    from repro.hardware import ChipletArray
    from repro.compiler import MechCompiler
    from repro.programs import qft_circuit

    array = ChipletArray("square", 7, 3, 3)
    compiler = MechCompiler(array)
    result = compiler.compile(qft_circuit(compiler.num_data_qubits))
    print(result.depth, result.eff_cnots)
"""

from __future__ import annotations


from ..circuits.circuit import Circuit
from ..circuits.dag import DependencyDag
from ..hardware.array import ChipletArray
from ..hardware.noise import DEFAULT_NOISE, NoiseModel
from ..hardware.topology import Topology
from ..highway.layout import HighwayLayout
from ..perf.timers import PhaseTimer
from .aggregation import HighwayGateUnit, aggregate
from .local_router import LocalRouter
from .result import CompilationResult
from .rewrite import fuse_zz_ladders
from .scheduler import MechScheduler

__all__ = ["MechCompiler"]


class MechCompiler:
    """Compile logical circuits onto a chiplet array using the highway.

    Parameters
    ----------
    array:
        The chiplet array to compile for.
    highway_density:
        Number of highway lines per chiplet per direction (Fig. 15's
        single/double/triple configurations).
    interleave:
        Thin the highway with interval qubits away from critical positions.
    min_components:
        Minimum number of aggregated components for a group to be executed via
        the highway; smaller groups run as regular routed gates.
    noise:
        Latency/error model used for scheduling weights and default metrics.
    layout:
        Pre-built highway layout; overrides ``highway_density``/``interleave``.
    router:
        Pre-warmed :class:`~repro.compiler.local_router.LocalRouter` for this
        device/layout, shared across compiles by the warm-state serve path.
        Its tables are pure functions of the static device configuration, so
        reuse is exact; ``None`` builds a fresh router per compile.
    rewrite_zz:
        Apply the CX-RZ-CX -> controlled-phase fusion pass before aggregation
        (the paper's circuit rewriting); the baseline never rewrites.
    aggregate_gates:
        Run the commuting-gate aggregation pass (paper §6.2).  When disabled
        — the ``mech-noagg`` ablation — every gate stays a ``SingleUnit``
        routed off the highway, which prices the aggregation mechanism alone.
    entrance_candidates:
        How many candidate highway entrances the scheduler scores per gate
        component; 1 is the ``mech-singleentry`` ablation (each data qubit is
        pinned to its nearest entrance, forfeiting the multi-entry freedom
        the paper's scheduler exploits).
    """

    def __init__(
        self,
        array: ChipletArray,
        *,
        highway_density: int = 1,
        interleave: bool = True,
        min_components: int = 2,
        noise: NoiseModel = DEFAULT_NOISE,
        layout: HighwayLayout | None = None,
        router: LocalRouter | None = None,
        entrance_candidates: int = 4,
        rewrite_zz: bool = True,
        aggregate_gates: bool = True,
    ) -> None:
        if min_components < 1:
            raise ValueError("min_components must be at least 1")
        if entrance_candidates < 1:
            raise ValueError("entrance_candidates must be at least 1")
        self.array = array
        self.topology: Topology = array.topology
        self.layout = layout if layout is not None else HighwayLayout(
            array, density=highway_density, interleave=interleave
        )
        #: Optional pre-warmed local router shared across compiles of the
        #: same device (the serve path); None builds one per compile.
        self.router = router
        self.min_components = min_components
        self.noise = noise
        self.entrance_candidates = entrance_candidates
        self.rewrite_zz = rewrite_zz
        self.aggregate_gates = aggregate_gates

    # ------------------------------------------------------------------ #
    # capacity queries
    # ------------------------------------------------------------------ #
    @property
    def num_data_qubits(self) -> int:
        """How many logical qubits this device/highway configuration supports."""
        return self.layout.num_data_qubits

    @property
    def highway_qubit_fraction(self) -> float:
        """Fraction of physical qubits reserved as highway qubits."""
        return self.layout.qubit_overhead()

    def default_mapping(self, num_logical: int) -> dict[int, int]:
        """Logical qubit ``i`` on the ``i``-th data qubit (row-major order)."""
        data = self.layout.data_qubits
        if num_logical > len(data):
            raise ValueError(
                f"circuit needs {num_logical} data qubits but only {len(data)} are available"
            )
        return {i: data[i] for i in range(num_logical)}

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #
    def compile(
        self,
        circuit: Circuit,
        *,
        initial_mapping: dict[int, int] | None = None,
    ) -> CompilationResult:
        """Compile ``circuit`` and return the physical result with statistics."""
        timer = PhaseTimer()
        with timer.phase("layout"):
            mapping = (
                dict(initial_mapping)
                if initial_mapping is not None
                else self.default_mapping(circuit.num_qubits)
            )
            if self.rewrite_zz:
                circuit = fuse_zz_ladders(circuit)
            dag = DependencyDag(circuit)
            # with aggregation ablated no group can reach the threshold, so
            # every gate stays a SingleUnit on the ordinary routed path
            min_components = (
                self.min_components if self.aggregate_gates else len(circuit) + 1
            )
            units = aggregate(dag, min_components=min_components)
            scheduler = MechScheduler(
                self.topology,
                self.layout,
                noise=self.noise,
                entrance_candidates=self.entrance_candidates,
                router=self.router,
            )
        with timer.phase("schedule"):
            result = scheduler.run(circuit, units, mapping)
        result.stats["aggregated_units"] = float(
            sum(1 for u in units if isinstance(u, HighwayGateUnit))
        )
        result.stats["highway_qubit_fraction"] = self.highway_qubit_fraction
        result.stats["num_data_qubits"] = float(self.num_data_qubits)
        timer.write_stats(result.stats)
        return result
