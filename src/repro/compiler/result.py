"""Compilation result container shared by the MECH and baseline compilers."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuits.circuit import Circuit
from ..hardware.noise import DEFAULT_NOISE, NoiseModel
from ..hardware.topology import Topology
from ..metrics import CircuitMetrics, circuit_metrics

__all__ = ["CompilationResult"]


@dataclass
class CompilationResult:
    """The output of compiling one logical circuit onto a device.

    Attributes
    ----------
    circuit:
        The physical circuit (all 2-qubit operations act on coupled pairs).
    topology:
        The device the circuit was compiled for.
    initial_layout / final_layout:
        Logical-to-physical qubit maps before and after routing.
    compiler:
        Name of the producing compiler (``"mech"`` or ``"baseline"``).
    stats:
        Free-form compiler statistics (number of shuttles, swaps inserted,
        highway gates scheduled, ...).
    """

    circuit: Circuit
    topology: Topology
    initial_layout: dict[int, int]
    final_layout: dict[int, int]
    compiler: str = "unknown"
    stats: dict[str, float] = field(default_factory=dict)
    _metrics_cache: CircuitMetrics | None = field(default=None, repr=False)
    _metrics_noise: NoiseModel | None = field(default=None, repr=False)

    def metrics(self, noise: NoiseModel = DEFAULT_NOISE, *, strict: bool = True) -> CircuitMetrics:
        """Depth / eff_CNOT metrics of the compiled circuit (cached per noise model)."""
        if self._metrics_cache is None or self._metrics_noise != noise:
            self._metrics_cache = circuit_metrics(
                self.circuit, self.topology, noise, strict=strict
            )
            self._metrics_noise = noise
        return self._metrics_cache

    @property
    def depth(self) -> float:
        return self.metrics().depth

    @property
    def eff_cnots(self) -> float:
        return self.metrics().eff_cnots

    def summary(self, noise: NoiseModel = DEFAULT_NOISE) -> dict[str, float]:
        """Flat dictionary of the headline metrics plus compiler statistics."""
        metrics = self.metrics(noise)
        out = {"compiler": self.compiler, **metrics.as_dict()}
        out.update(self.stats)
        return out
