"""Local routing of data qubits (paper Section 6.1, "local routing").

Data qubits involved in highway gates must be brought next to their chosen
highway entrance, and data qubits of regular (off-highway) 2-qubit gates must
be brought next to each other.  Both movements are realised by chains of SWAP
gates that stay on *data* qubits: highway qubits hold (or are about to hold)
entangled highway state, so routing never swaps through them.  Interval qubits
of the interleaved highway sections are ordinary data qubits and remain
available for routing, which keeps the data subgraph connected.

The router pre-computes an all-pairs distance matrix over the data subgraph
(the sparse adjacency is assembled with numpy masks over the topology's cached
edge list, no Python edge loop) so path extraction is cheap; per-destination
next-hop tables are derived lazily from the distance matrix, turning the
former sort-all-neighbours-per-hop descent of :meth:`path` into a table walk.
It returns SWAP pair lists and leaves the mapping bookkeeping to the
scheduler.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from ..hardware.topology import Topology

__all__ = ["LocalRouter", "RoutingError"]


class RoutingError(RuntimeError):
    """Raised when no data-qubit path exists between the requested positions."""


#: Sentinel distinguishing "memoized None" from "not memoized yet".
_MISS = object()


class LocalRouter:
    """Shortest-path SWAP routing restricted to the data-qubit subgraph."""

    def __init__(self, topology: Topology, highway_qubits: Iterable[int] = ()) -> None:
        self.topology = topology
        self.highway_qubits = frozenset(highway_qubits)
        n = topology.num_qubits
        is_data = np.ones(n, dtype=bool)
        for q in self.highway_qubits:
            is_data[q] = False
        self._is_data = is_data
        self._neighbors: dict[int, list[int]] = {}
        for q in topology.qubits():
            if q in self.highway_qubits:
                continue
            self._neighbors[q] = [
                nb for nb in topology.neighbors(q) if nb not in self.highway_qubits
            ]
        self._distances = self._compute_distances()
        # per-destination greedy next hop, derived lazily from the distance
        # matrix; replaces the per-hop neighbour re-sort of the historic path()
        self._next_hop: dict[int, np.ndarray] = {}
        # padded (n, max_degree) data-neighbour matrix backing the next-hop
        # derivation; -1 marks padding
        self._padded_neighbors: np.ndarray | None = None
        # per-anchor parking candidates (data neighbours in ascending order),
        # shared by nearest_parking / swaps_to_adjacency
        self._parking: dict[int, np.ndarray] = {}
        # nearest_parking is a pure function of the static distance matrix
        # when nothing is excluded; the scheduler probes it once per entrance
        # candidate per gate component, so memoize those answers
        self._nearest_memo: dict[tuple[int, int], int | None] = {}

    # ------------------------------------------------------------------ #
    # distances and paths
    # ------------------------------------------------------------------ #
    def _compute_distances(self) -> np.ndarray:
        n = self.topology.num_qubits
        edges = np.asarray(self.topology.edges(), dtype=np.int64).reshape(-1, 2)
        if len(edges):
            keep = self._is_data[edges[:, 0]] & self._is_data[edges[:, 1]]
            edges = edges[keep]
        rows = np.concatenate((edges[:, 0], edges[:, 1]))
        cols = np.concatenate((edges[:, 1], edges[:, 0]))
        matrix = csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n, n))
        return dijkstra(matrix, directed=False, unweighted=True)

    def data_distance(self, a: int, b: int) -> float:
        """Hop distance between two positions through data qubits only."""
        self._check_data(a)
        self._check_data(b)
        return float(self._distances[a, b])

    def is_data(self, qubit: int) -> bool:
        """Whether ``qubit`` is a data (non-highway) position."""
        return qubit not in self.highway_qubits

    def _next_hop_table(self, destination: int) -> np.ndarray:
        """Greedy next hop towards ``destination`` for every data position.

        ``table[q]`` is the data neighbour of ``q`` minimising
        ``(distance to destination, neighbour index)`` — exactly the key the
        historic per-hop ``min`` used — or ``-1`` where no neighbour leads
        anywhere.  Hop distances are small integers, so packing the pair into
        ``distance * n + neighbour`` keeps the lexicographic order exact.
        """
        table = self._next_hop.get(destination)
        if table is not None:
            return table
        n = self.topology.num_qubits
        padded = self._padded_neighbors
        if padded is None:
            width = max((len(nbs) for nbs in self._neighbors.values()), default=1)
            padded = np.full((n, max(width, 1)), -1, dtype=np.int64)
            for q, nbs in self._neighbors.items():
                padded[q, : len(nbs)] = nbs
            self._padded_neighbors = padded
        valid = padded >= 0
        dist = np.where(
            valid, self._distances[padded.clip(min=0), destination], np.inf
        )
        key = np.where(np.isfinite(dist), dist * n + padded, np.inf)
        best = key.argmin(axis=1)
        table = padded[np.arange(n), best]
        table[~np.isfinite(key[np.arange(n), best])] = -1
        self._next_hop[destination] = table
        return table

    def path(self, source: int, destination: int) -> list[int]:
        """A shortest data-qubit path from ``source`` to ``destination`` (inclusive).

        Raises :class:`RoutingError` when the two positions are not connected
        through data qubits.
        """
        self._check_data(source)
        self._check_data(destination)
        if source == destination:
            return [source]
        if not np.isfinite(self._distances[source, destination]):
            raise RoutingError(
                f"no data-qubit path between {source} and {destination}"
            )
        table = self._next_hop_table(destination)
        path = [source]
        current = source
        while current != destination:
            current = int(table[current])
            path.append(current)
        return path

    # ------------------------------------------------------------------ #
    # SWAP plans
    # ------------------------------------------------------------------ #
    def swaps_to_position(self, source: int, destination: int) -> list[tuple[int, int]]:
        """SWAPs moving the qubit at ``source`` onto ``destination``."""
        route = self.path(source, destination)
        return [(a, b) for a, b in zip(route, route[1:], strict=False)]

    def _parking_spots(self, anchor: int) -> np.ndarray:
        """Data neighbours of ``anchor`` in ascending order (cached)."""
        spots = self._parking.get(anchor)
        if spots is None:
            spots = np.asarray(
                [
                    nb
                    for nb in self.topology.neighbors(anchor)
                    if nb not in self.highway_qubits
                ],
                dtype=np.int64,
            )
            self._parking[anchor] = spots
        return spots

    def swaps_to_adjacency(self, mover: int, anchor: int) -> list[tuple[int, int]]:
        """SWAPs moving the qubit at ``mover`` until it is coupled to ``anchor``.

        Adjacency is checked against the *full* topology (a cross-chip coupler
        is fine for executing the gate); only the movement stays on data
        qubits.  The SWAP chain stops as soon as adjacency is reached, which in
        particular guarantees the ``anchor`` qubit itself is never displaced.
        """
        if self.topology.is_coupled(mover, anchor):
            return []
        self._check_data(mover)
        spots = self._parking_spots(anchor)
        best_target: int | None = None
        best_cost = np.inf
        if len(spots):
            costs = self._distances[mover, spots]
            costs = np.where(spots == mover, np.inf, costs)
            index = int(costs.argmin())
            if np.isfinite(costs[index]):
                best_target = int(spots[index])
                best_cost = costs[index]
        if best_target is None or not np.isfinite(best_cost):
            raise RoutingError(
                f"cannot bring position {mover} adjacent to {anchor} through data qubits"
            )
        swaps: list[tuple[int, int]] = []
        for a, b in self.swaps_to_position(mover, best_target):
            if self.topology.is_coupled(a, anchor):
                break
            swaps.append((a, b))
        return swaps

    def nearest_parking(
        self, source: int, entrance: int, *, exclude: Iterable[int] = ()
    ) -> int | None:
        """The data-qubit neighbour of ``entrance`` closest to ``source``.

        ``exclude`` removes parking spots already reserved by other components
        of the same highway gate.  Returns ``None`` when the entrance has no
        usable parking spot.
        """
        excluded = set(exclude)
        if not excluded:
            key = (source, entrance)
            cached = self._nearest_memo.get(key, _MISS)
            if cached is not _MISS:
                return cached
            result = self._nearest_parking_uncached(source, entrance, excluded)
            self._nearest_memo[key] = result
            return result
        return self._nearest_parking_uncached(source, entrance, excluded)

    def _nearest_parking_uncached(
        self, source: int, entrance: int, excluded: set
    ) -> int | None:
        spots = self._parking_spots(entrance)
        if not len(spots):
            return None
        costs = self._distances[source, spots]
        if excluded:
            mask = np.asarray([int(s) in excluded for s in spots])
            costs = np.where(mask, np.inf, costs)
        index = int(costs.argmin())
        if not np.isfinite(costs[index]):
            return None
        return int(spots[index])

    def _check_data(self, qubit: int) -> None:
        if qubit in self.highway_qubits:
            raise RoutingError(f"position {qubit} is a highway qubit, not a data qubit")
        if not 0 <= qubit < self.topology.num_qubits:
            raise RoutingError(f"position {qubit} is out of range")
