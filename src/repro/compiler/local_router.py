"""Local routing of data qubits (paper Section 6.1, "local routing").

Data qubits involved in highway gates must be brought next to their chosen
highway entrance, and data qubits of regular (off-highway) 2-qubit gates must
be brought next to each other.  Both movements are realised by chains of SWAP
gates that stay on *data* qubits: highway qubits hold (or are about to hold)
entangled highway state, so routing never swaps through them.  Interval qubits
of the interleaved highway sections are ordinary data qubits and remain
available for routing, which keeps the data subgraph connected.

The router pre-computes an all-pairs distance matrix over the data subgraph so
path extraction is a cheap greedy descent; it returns SWAP pair lists and
leaves the mapping bookkeeping to the scheduler.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from ..hardware.topology import Topology

__all__ = ["LocalRouter", "RoutingError"]


class RoutingError(RuntimeError):
    """Raised when no data-qubit path exists between the requested positions."""


class LocalRouter:
    """Shortest-path SWAP routing restricted to the data-qubit subgraph."""

    def __init__(self, topology: Topology, highway_qubits: Iterable[int] = ()) -> None:
        self.topology = topology
        self.highway_qubits = frozenset(highway_qubits)
        self._neighbors: Dict[int, List[int]] = {}
        for q in topology.qubits():
            if q in self.highway_qubits:
                continue
            self._neighbors[q] = [
                nb for nb in topology.neighbors(q) if nb not in self.highway_qubits
            ]
        self._distances = self._compute_distances()

    # ------------------------------------------------------------------ #
    # distances and paths
    # ------------------------------------------------------------------ #
    def _compute_distances(self) -> np.ndarray:
        n = self.topology.num_qubits
        rows: List[int] = []
        cols: List[int] = []
        for q, neighbors in self._neighbors.items():
            for nb in neighbors:
                rows.append(q)
                cols.append(nb)
        matrix = csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n, n))
        return dijkstra(matrix, directed=False, unweighted=True)

    def data_distance(self, a: int, b: int) -> float:
        """Hop distance between two positions through data qubits only."""
        self._check_data(a)
        self._check_data(b)
        return float(self._distances[a, b])

    def is_data(self, qubit: int) -> bool:
        """Whether ``qubit`` is a data (non-highway) position."""
        return qubit not in self.highway_qubits

    def path(self, source: int, destination: int) -> List[int]:
        """A shortest data-qubit path from ``source`` to ``destination`` (inclusive).

        Raises :class:`RoutingError` when the two positions are not connected
        through data qubits.
        """
        self._check_data(source)
        self._check_data(destination)
        if source == destination:
            return [source]
        if not np.isfinite(self._distances[source, destination]):
            raise RoutingError(
                f"no data-qubit path between {source} and {destination}"
            )
        path = [source]
        current = source
        while current != destination:
            current = min(
                self._neighbors[current],
                key=lambda nb: (self._distances[nb, destination], nb),
            )
            path.append(current)
        return path

    # ------------------------------------------------------------------ #
    # SWAP plans
    # ------------------------------------------------------------------ #
    def swaps_to_position(self, source: int, destination: int) -> List[Tuple[int, int]]:
        """SWAPs moving the qubit at ``source`` onto ``destination``."""
        route = self.path(source, destination)
        return [(a, b) for a, b in zip(route, route[1:])]

    def swaps_to_adjacency(self, mover: int, anchor: int) -> List[Tuple[int, int]]:
        """SWAPs moving the qubit at ``mover`` until it is coupled to ``anchor``.

        Adjacency is checked against the *full* topology (a cross-chip coupler
        is fine for executing the gate); only the movement stays on data
        qubits.  The SWAP chain stops as soon as adjacency is reached, which in
        particular guarantees the ``anchor`` qubit itself is never displaced.
        """
        if self.topology.is_coupled(mover, anchor):
            return []
        self._check_data(mover)
        best_target: Optional[int] = None
        best_cost = np.inf
        for nb in self.topology.neighbors(anchor):
            if nb in self.highway_qubits or nb == mover:
                continue
            cost = self._distances[mover, nb]
            if cost < best_cost:
                best_cost = cost
                best_target = nb
        if best_target is None or not np.isfinite(best_cost):
            raise RoutingError(
                f"cannot bring position {mover} adjacent to {anchor} through data qubits"
            )
        swaps: List[Tuple[int, int]] = []
        for a, b in self.swaps_to_position(mover, best_target):
            if self.topology.is_coupled(a, anchor):
                break
            swaps.append((a, b))
        return swaps

    def nearest_parking(
        self, source: int, entrance: int, *, exclude: Iterable[int] = ()
    ) -> Optional[int]:
        """The data-qubit neighbour of ``entrance`` closest to ``source``.

        ``exclude`` removes parking spots already reserved by other components
        of the same highway gate.  Returns ``None`` when the entrance has no
        usable parking spot.
        """
        excluded = set(exclude)
        best: Optional[int] = None
        best_cost = np.inf
        for nb in self.topology.neighbors(entrance):
            if nb in self.highway_qubits or nb in excluded:
                continue
            cost = self._distances[source, nb] if source != nb else 0.0
            if cost < best_cost:
                best_cost = cost
                best = nb
        if best is None or not np.isfinite(best_cost):
            return None
        return best

    def _check_data(self, qubit: int) -> None:
        if qubit in self.highway_qubits:
            raise RoutingError(f"position {qubit} is a highway qubit, not a data qubit")
        if not 0 <= qubit < self.topology.num_qubits:
            raise RoutingError(f"position {qubit} is out of range")
