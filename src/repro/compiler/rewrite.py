"""Circuit rewriting passes applied before aggregation (paper §6.2).

The paper "allows rewriting of the circuit to aggregate the controlled gates
sharing the same control qubit".  Besides the Hadamard conjugation of
target-shared CNOT groups (handled inside the scheduler), the most impactful
rewrite for the evaluated benchmarks is fusing the textbook two-CNOT ladder of
a ZZ interaction,

    CX(a, b) ; RZ(theta, b) ; CX(a, b)   ==   RZ/RZ on a, b  +  CP(-2*theta, a, b)

into its diagonal controlled-phase form (equal up to global phase).  The
diagonal form costs one 2-qubit operation instead of two and — because all
diagonal gates commute — exposes the aggregation opportunities that QAOA-style
phase-separation layers contain.  The baseline compiler deliberately does not
apply this rewrite: mainstream transpilers route the ladder as written.
"""

from __future__ import annotations


from ..circuits import gates as g
from ..circuits.circuit import Circuit
from ..circuits.gates import Gate

__all__ = ["fuse_zz_ladders"]


def fuse_zz_ladders(circuit: Circuit) -> Circuit:
    """Fuse every ``CX(a,b); RZ(t,b); CX(a,b)`` pattern into RZ+RZ+CP.

    The three pattern gates may be separated by operations acting on *other*
    qubits; any intervening operation touching ``a`` or ``b`` (other than the
    middle RZ on ``b``) breaks the pattern and leaves the gates untouched.
    The rewritten circuit is unitarily equivalent up to global phase.
    """
    ops = list(circuit.operations)
    replaced: dict[int, list[Gate]] = {}
    dropped: set[int] = set()

    for index, op in enumerate(ops):
        if index in dropped or index in replaced:
            continue
        if op.name != "cx" or op.condition is not None:
            continue
        match = _match_ladder(ops, index, dropped, replaced)
        if match is None:
            continue
        rz_index, closing_index, theta = match
        control, target = op.qubits
        replaced[index] = [
            g.rz(theta, control),
            g.rz(theta, target),
            g.cp(-2.0 * theta, control, target),
        ]
        dropped.add(rz_index)
        dropped.add(closing_index)

    out = Circuit(circuit.num_qubits, name=circuit.name)
    for index, op in enumerate(ops):
        if index in dropped:
            continue
        if index in replaced:
            out.extend(replaced[index])
        else:
            out.append(op)
    return out


def _match_ladder(
    ops: list[Gate],
    start: int,
    dropped: set,
    replaced: dict[int, list[Gate]],
) -> tuple[int, int, float] | None:
    """Find ``RZ(t, target)`` then ``CX(control, target)`` after ``ops[start]``.

    Returns ``(rz_index, closing_cx_index, theta)`` or ``None``.  The scan
    aborts as soon as another operation touches the pattern's qubits.
    """
    opening = ops[start]
    control, target = opening.qubits
    rz_index: int | None = None
    theta = 0.0
    for index in range(start + 1, len(ops)):
        if index in dropped or index in replaced:
            continue
        op = ops[index]
        if not (set(op.qubits) & {control, target}):
            continue
        if rz_index is None:
            if (
                op.name == "rz"
                and op.qubits == (target,)
                and op.condition is None
            ):
                rz_index = index
                theta = op.params[0]
                continue
            return None
        if (
            op.name == "cx"
            and op.qubits == (control, target)
            and op.condition is None
        ):
            return (rz_index, index, theta)
        return None
    return None
