"""Circuit rewriting: aggregation of commuting controlled gates (paper §6.2).

The MECH scheduler executes *multi-target* controlled gates on the highway.
This pass finds them: within each commutation-aware dependency layer it groups
2-qubit controlled gates that

* share a **control** qubit (CX/CZ/CP/CRZ — each is diagonal on its control,
  so gates sharing a control commute), or
* share a **target** qubit (CX only; conjugating the shared target with
  Hadamards turns the group into CZ gates sharing that qubit, which the
  highway protocol then executes with the shared qubit as its hub).

Groups with at least ``min_components`` members become
:class:`HighwayGateUnit`s; everything else stays a :class:`SingleUnit` routed
off the highway.  Grouping is greedy by descending group size, which mirrors
the paper's "those with the most gate components will be scheduled as highway
gates" rule.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..circuits.dag import DependencyDag
from ..circuits.gates import Gate

__all__ = ["GateComponent", "SingleUnit", "HighwayGateUnit", "ExecutionUnit", "aggregate"]

#: Controlled-gate names whose control side is diagonal (hub may be the control).
_CONTROL_HUB_GATES = frozenset({"cx", "cz", "cp", "crz"})
#: Gates that are symmetric/diagonal, so either qubit may serve as the hub.
_SYMMETRIC_GATES = frozenset({"cz", "cp"})


@dataclass(frozen=True)
class GateComponent:
    """One original 2-qubit gate inside a highway gate.

    ``spoke`` is the logical qubit at the far end of the component (the target
    for control-shared groups, the control for target-shared groups).
    """

    node_index: int
    spoke: int
    gate_name: str
    params: tuple[float, ...]


@dataclass(frozen=True)
class SingleUnit:
    """A gate executed in the ordinary gate-based way (off the highway)."""

    node_index: int
    op: Gate

    @property
    def indices(self) -> tuple[int, ...]:
        return (self.node_index,)


@dataclass(frozen=True)
class HighwayGateUnit:
    """An aggregated multi-target gate executed via the highway protocol.

    Attributes
    ----------
    hub:
        The shared logical qubit (the control for ``kind='control'`` groups,
        the shared target for ``kind='target'`` groups).
    components:
        The member gates, one per spoke qubit.
    kind:
        ``'control'`` or ``'target'``; target-shared groups need Hadamard
        conjugation of the hub and execute their fan-out as CZ.
    """

    hub: int
    components: tuple[GateComponent, ...]
    kind: str = "control"

    def __post_init__(self) -> None:
        if self.kind not in ("control", "target"):
            raise ValueError(f"invalid highway gate kind {self.kind!r}")
        if not self.components:
            raise ValueError("a highway gate needs at least one component")

    @property
    def num_components(self) -> int:
        return len(self.components)

    @property
    def spokes(self) -> tuple[int, ...]:
        return tuple(c.spoke for c in self.components)

    @property
    def indices(self) -> tuple[int, ...]:
        return tuple(c.node_index for c in self.components)


ExecutionUnit = SingleUnit | HighwayGateUnit


def aggregate(dag: DependencyDag, *, min_components: int = 2) -> list[ExecutionUnit]:
    """Group the DAG's gates into execution units, in a valid execution order.

    Layers of the commutation-aware DAG are processed in order; within a
    layer, hub qubits are chosen greedily by how many still-unassigned gates
    they could aggregate.  The returned unit order respects all dependencies
    (units only contain gates from a single layer, and layers are emitted in
    order), so the scheduler may execute the list sequentially.
    """
    if min_components < 1:
        raise ValueError("min_components must be at least 1")
    units: list[ExecutionUnit] = []
    for layer in dag.layers():
        units.extend(_aggregate_layer(layer, min_components))
    return units


def _aggregate_layer(layer, min_components: int) -> list[ExecutionUnit]:
    """Greedy hub selection via a lazy max-heap.

    Reproduces the historic rebuild-all-candidates-per-round loop exactly —
    same winner each round, including its tie-breaks — in near-linear time.
    The historic ``max`` compared ``(group size, -hub qubit)`` and fell back
    to dict insertion order, i.e. the scan position of the key's first
    *unassigned* contributor; with sizes only ever shrinking and first
    positions only ever advancing, every key's true rank worsens
    monotonically, so a heap with validate-on-pop (stale entries are
    re-pushed at their corrected rank) always yields the historic winner.
    """
    aggregatable = []
    passthrough: list[SingleUnit] = []
    for node in layer:
        op = node.op
        if op.name in _CONTROL_HUB_GATES and op.num_qubits == 2:
            aggregatable.append(node)
        else:
            passthrough.append(SingleUnit(node.index, op))

    assigned: dict[int, bool] = {node.index: False for node in aggregatable}
    units: list[ExecutionUnit] = []

    # (qubit, kind) -> contributors as (scan position, node), in scan order.
    # A node contributes its control key first, then its target-side key —
    # the historic setdefault order — but two keys can only tie on
    # (size, qubit, first position) if they share qubit *and* first
    # contributor, which a 2-qubit gate's distinct qubits rule out.
    key_nodes: dict[tuple[int, str], list] = {}
    for position, node in enumerate(aggregatable):
        op = node.op
        control, target = op.qubits
        key_nodes.setdefault((control, "control"), []).append((position, node))
        if op.name in _SYMMETRIC_GATES:
            key_nodes.setdefault((target, "control"), []).append((position, node))
        elif op.name == "cx":
            key_nodes.setdefault((target, "target"), []).append((position, node))

    counts: dict[tuple[int, str], int] = {
        key: len(entries) for key, entries in key_nodes.items()
    }
    pointers: dict[tuple[int, str], int] = {key: 0 for key in key_nodes}
    heap = [
        (-len(entries), key[0], entries[0][0], key)
        for key, entries in key_nodes.items()
    ]
    heapq.heapify(heap)

    while heap:
        neg_count, qubit, first_pos, key = heapq.heappop(heap)
        entries = key_nodes[key]
        pointer = pointers[key]
        while pointer < len(entries) and assigned[entries[pointer][1].index]:
            pointer += 1
        pointers[key] = pointer
        count = counts[key]
        current_first = entries[pointer][0] if pointer < len(entries) else len(aggregatable)
        if (-neg_count, first_pos) != (count, current_first):
            if count > 0:
                heapq.heappush(heap, (-count, qubit, current_first, key))
            continue
        if count < min_components or count < 2:
            break
        hub, kind = key
        components = []
        for _, node in entries:
            if assigned[node.index]:
                continue
            op = node.op
            control, target = op.qubits
            # the spoke is simply "the other qubit": for control-shared groups
            # the hub is the control side (directly, or either side of a
            # symmetric cz/cp), for target-shared cx groups the hub is the
            # shared target and the spoke is the control.
            spoke = target if hub == control else control
            components.append(
                GateComponent(node.index, spoke, op.name, op.params)
            )
            assigned[node.index] = True
            counts[(control, "control")] -= 1
            if op.name in _SYMMETRIC_GATES:
                counts[(target, "control")] -= 1
            elif op.name == "cx":
                counts[(target, "target")] -= 1
        units.append(HighwayGateUnit(hub, tuple(components), kind))

    for node in aggregatable:
        if not assigned[node.index]:
            units.append(SingleUnit(node.index, node.op))

    # 1-qubit gates, measurements and barriers keep their relative order at the
    # front of the layer (they are cheap and have no routing implications).
    return passthrough + units
