"""Circuit rewriting: aggregation of commuting controlled gates (paper §6.2).

The MECH scheduler executes *multi-target* controlled gates on the highway.
This pass finds them: within each commutation-aware dependency layer it groups
2-qubit controlled gates that

* share a **control** qubit (CX/CZ/CP/CRZ — each is diagonal on its control,
  so gates sharing a control commute), or
* share a **target** qubit (CX only; conjugating the shared target with
  Hadamards turns the group into CZ gates sharing that qubit, which the
  highway protocol then executes with the shared qubit as its hub).

Groups with at least ``min_components`` members become
:class:`HighwayGateUnit`s; everything else stays a :class:`SingleUnit` routed
off the highway.  Grouping is greedy by descending group size, which mirrors
the paper's "those with the most gate components will be scheduled as highway
gates" rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from ..circuits.dag import DependencyDag
from ..circuits.gates import Gate

__all__ = ["GateComponent", "SingleUnit", "HighwayGateUnit", "ExecutionUnit", "aggregate"]

#: Controlled-gate names whose control side is diagonal (hub may be the control).
_CONTROL_HUB_GATES = frozenset({"cx", "cz", "cp", "crz"})
#: Gates that are symmetric/diagonal, so either qubit may serve as the hub.
_SYMMETRIC_GATES = frozenset({"cz", "cp"})


@dataclass(frozen=True)
class GateComponent:
    """One original 2-qubit gate inside a highway gate.

    ``spoke`` is the logical qubit at the far end of the component (the target
    for control-shared groups, the control for target-shared groups).
    """

    node_index: int
    spoke: int
    gate_name: str
    params: Tuple[float, ...]


@dataclass(frozen=True)
class SingleUnit:
    """A gate executed in the ordinary gate-based way (off the highway)."""

    node_index: int
    op: Gate

    @property
    def indices(self) -> Tuple[int, ...]:
        return (self.node_index,)


@dataclass(frozen=True)
class HighwayGateUnit:
    """An aggregated multi-target gate executed via the highway protocol.

    Attributes
    ----------
    hub:
        The shared logical qubit (the control for ``kind='control'`` groups,
        the shared target for ``kind='target'`` groups).
    components:
        The member gates, one per spoke qubit.
    kind:
        ``'control'`` or ``'target'``; target-shared groups need Hadamard
        conjugation of the hub and execute their fan-out as CZ.
    """

    hub: int
    components: Tuple[GateComponent, ...]
    kind: str = "control"

    def __post_init__(self) -> None:
        if self.kind not in ("control", "target"):
            raise ValueError(f"invalid highway gate kind {self.kind!r}")
        if not self.components:
            raise ValueError("a highway gate needs at least one component")

    @property
    def num_components(self) -> int:
        return len(self.components)

    @property
    def spokes(self) -> Tuple[int, ...]:
        return tuple(c.spoke for c in self.components)

    @property
    def indices(self) -> Tuple[int, ...]:
        return tuple(c.node_index for c in self.components)


ExecutionUnit = Union[SingleUnit, HighwayGateUnit]


def aggregate(dag: DependencyDag, *, min_components: int = 2) -> List[ExecutionUnit]:
    """Group the DAG's gates into execution units, in a valid execution order.

    Layers of the commutation-aware DAG are processed in order; within a
    layer, hub qubits are chosen greedily by how many still-unassigned gates
    they could aggregate.  The returned unit order respects all dependencies
    (units only contain gates from a single layer, and layers are emitted in
    order), so the scheduler may execute the list sequentially.
    """
    if min_components < 1:
        raise ValueError("min_components must be at least 1")
    units: List[ExecutionUnit] = []
    for layer in dag.layers():
        units.extend(_aggregate_layer(layer, min_components))
    return units


def _aggregate_layer(layer, min_components: int) -> List[ExecutionUnit]:
    aggregatable = []
    passthrough: List[SingleUnit] = []
    for node in layer:
        op = node.op
        if op.name in _CONTROL_HUB_GATES and op.num_qubits == 2:
            aggregatable.append(node)
        else:
            passthrough.append(SingleUnit(node.index, op))

    assigned: Dict[int, bool] = {node.index: False for node in aggregatable}
    units: List[ExecutionUnit] = []

    while True:
        # hub candidates: (qubit, kind) -> nodes that could join
        candidates: Dict[Tuple[int, str], List] = {}
        for node in aggregatable:
            if assigned[node.index]:
                continue
            op = node.op
            control, target = op.qubits
            candidates.setdefault((control, "control"), []).append(node)
            if op.name in _SYMMETRIC_GATES:
                candidates.setdefault((target, "control"), []).append(node)
            elif op.name == "cx":
                candidates.setdefault((target, "target"), []).append(node)
        if not candidates:
            break
        (hub, kind), nodes = max(
            candidates.items(), key=lambda item: (len(item[1]), -item[0][0])
        )
        if len(nodes) < min_components or len(nodes) < 2:
            break
        components = []
        for node in nodes:
            op = node.op
            control, target = op.qubits
            # the spoke is simply "the other qubit": for control-shared groups
            # the hub is the control side (directly, or either side of a
            # symmetric cz/cp), for target-shared cx groups the hub is the
            # shared target and the spoke is the control.
            spoke = target if hub == control else control
            components.append(
                GateComponent(node.index, spoke, op.name, op.params)
            )
            assigned[node.index] = True
        units.append(HighwayGateUnit(hub, tuple(components), kind))

    for node in aggregatable:
        if not assigned[node.index]:
            units.append(SingleUnit(node.index, node.op))

    # 1-qubit gates, measurements and barriers keep their relative order at the
    # front of the layer (they are cheap and have no routing implications).
    return passthrough + units
