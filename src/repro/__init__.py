"""repro: reproduction of "MECH: Multi-Entry Communication Highway for
Superconducting Quantum Chiplets" (ASPLOS 2024).

The package provides, entirely from scratch (no Qiskit dependency):

* a quantum-circuit IR with commutation analysis and a statevector simulator
  (:mod:`repro.circuits`),
* chiplet-array device models with square / hexagon / heavy-square /
  heavy-hexagon coupling structures (:mod:`repro.hardware`),
* the multi-entry communication highway: layout generation, measurement-based
  GHZ preparation, the communication protocol and occupancy management
  (:mod:`repro.highway`),
* the MECH compiler (aggregation, local routing, highway routing, dynamic
  scheduling) and a SABRE-style baseline (:mod:`repro.compiler`,
  :mod:`repro.baseline`),
* the paper's benchmark programs, metrics and the harness regenerating every
  table and figure of its evaluation (:mod:`repro.programs`,
  :mod:`repro.metrics`, :mod:`repro.experiments`).

Quick start::

    from repro import ChipletArray, MechCompiler, BaselineCompiler
    from repro.programs import qft_circuit

    array = ChipletArray("square", 6, 2, 2)
    mech = MechCompiler(array)
    circuit = qft_circuit(mech.num_data_qubits)
    ours = mech.compile(circuit)
    base = BaselineCompiler(array.topology).compile(circuit)
    print(ours.depth, base.depth)
"""

__version__ = "1.0.0"

from .backends import (
    CompilerBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .baseline import BaselineCompiler, SabreRouter
from .circuits import (
    Circuit,
    DependencyDag,
    Gate,
    Measurement,
    SimulationResult,
    Simulator,
)
from .compiler import CompilationResult, MechCompiler
from .hardware import ChipletArray, ChipletStructure, NoiseModel, Topology
from .highway import HighwayLayout, HighwayManager
from .metrics import CircuitMetrics, OperationCounts, circuit_metrics, improvement

__all__ = [
    "__version__",
    # circuits
    "Circuit",
    "Gate",
    "Measurement",
    "DependencyDag",
    "Simulator",
    "SimulationResult",
    # hardware
    "ChipletArray",
    "ChipletStructure",
    "Topology",
    "NoiseModel",
    # highway
    "HighwayLayout",
    "HighwayManager",
    # compilers
    "MechCompiler",
    "BaselineCompiler",
    "SabreRouter",
    "CompilationResult",
    # pluggable backends
    "CompilerBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    # metrics
    "CircuitMetrics",
    "OperationCounts",
    "circuit_metrics",
    "improvement",
]
