"""``repro bench`` — pinned compile-workload suites and regression tracking.

The benchmark runner compiles a *pinned* set of routing workloads (fig12-style
chiplet arrays at fixed seeds) with every requested registered backend and
records wall-clock seconds, swaps, depth, effective CNOTs and the per-phase
breakdown the :mod:`repro.perf.timers` instrumentation wrote into each
result.  Every run emits a ``BENCH_<timestamp>.json`` document whose schema is
golden-tested, so the performance trajectory of the compiler is a first-class,
diffable artifact rather than an anecdote.

``--against`` mode compares a fresh run with a previous document: per-row
speedups (old seconds / new seconds), their geometric mean (the paper's
summary statistic), and a regression verdict against a threshold.  Documents
record a *calibration* scalar — the wall-clock of a fixed CPU workload — and
comparisons rescale the old timings by the calibration ratio, so a faster or
slower machine does not masquerade as a compiler change.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable, Mapping, Sequence

import numpy as np

from ..metrics import geometric_mean

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "SUITES",
    "BenchWorkload",
    "compare_bench",
    "format_bench",
    "format_comparison",
    "load_bench",
    "measure_calibration",
    "resolve_suite",
    "run_bench",
    "write_bench",
    "write_document",
]

#: Version stamp of the BENCH_*.json document schema.
BENCH_SCHEMA_VERSION = 1

#: Fixed seed every bench workload compiles with (comparability across runs).
BENCH_SEED = 7


@dataclass(frozen=True)
class BenchWorkload:
    """One pinned compile workload: a benchmark circuit on a chiplet array."""

    name: str
    benchmark: str
    structure: str
    chiplet_width: int
    rows: int
    cols: int
    seed: int = BENCH_SEED


def _fig12_workloads(
    width: int, shapes: Sequence[tuple[int, int]], benchmarks: Sequence[str]
) -> tuple[BenchWorkload, ...]:
    return tuple(
        BenchWorkload(
            name=f"square{width}-{rows}x{cols}/{benchmark.lower()}",
            benchmark=benchmark,
            structure="square",
            chiplet_width=width,
            rows=rows,
            cols=cols,
        )
        for rows, cols in shapes
        for benchmark in benchmarks
    )


#: Pinned suites.  ``quick`` is the CI smoke tier; ``fig12`` covers the
#: paper's large scalability presets (7x7 chiplets, the full 2x2..3x4 array
#: sweep) under the two routing-heavy benchmarks; ``full`` extends fig12 to
#: all four paper benchmarks.
SUITES: dict[str, tuple[BenchWorkload, ...]] = {
    # width-5 chiplets: big enough (~100-300ms per compile) that the CI
    # regression gate measures the compiler, not scheduler jitter
    "quick": _fig12_workloads(5, ((1, 2), (2, 2)), ("QFT", "QAOA")),
    "fig12": _fig12_workloads(7, ((2, 2), (2, 3), (3, 3), (3, 4)), ("QFT", "QAOA")),
    "full": _fig12_workloads(
        7, ((2, 2), (2, 3), (3, 3), (3, 4)), ("QFT", "QAOA", "VQE", "BV")
    ),
}


def resolve_suite(suite: str) -> tuple[BenchWorkload, ...]:
    """The pinned workloads of ``suite``, or a loud error naming the choices."""
    try:
        return SUITES[suite]
    except KeyError:
        raise ValueError(
            f"unknown bench suite {suite!r}; choose from {sorted(SUITES)}"
        ) from None


def measure_calibration(repeats: int = 5) -> float:
    """Wall-clock seconds of a fixed CPU workload (machine-speed probe).

    A mix of interpreter-bound and numpy-bound work, roughly mirroring the
    compiler's own profile.  One untimed warm-up pass settles the adaptive
    interpreter and CPU boost state, then the minimum over ``repeats``
    ~30 ms runs rejects scheduling noise — short probes swing by tens of
    percent on an otherwise idle machine, which would manufacture phantom
    regressions.  Comparisons divide timings by the calibration ratio so
    documents recorded on different machines stay comparable.
    """

    def probe() -> float:
        start = time.perf_counter()
        acc = 0
        for i in range(400_000):
            acc += i * i
        values = np.arange(100_000, dtype=np.float64)
        for _ in range(50):
            values = np.sqrt(values * 1.0000001 + 1.0)
        del acc, values
        return time.perf_counter() - start

    probe()  # warm-up, untimed
    return min(probe() for _ in range(max(1, repeats)))


def run_bench(
    suite: str = "quick",
    *,
    compilers: Sequence[str] | None = None,
    repeat: int = 1,
    progress: Callable[[str], None] | None = None,
    verify: bool = False,
) -> dict[str, object]:
    """Compile every workload of ``suite`` with every backend; return the doc.

    ``repeat`` re-compiles each workload N times and keeps the fastest
    wall-clock per backend (metrics are identical across repeats — the
    compilers are deterministic at fixed seeds).

    Unlike an experiment comparison, a bench sweep has no reference backend,
    so ``compilers`` may be a single name (or the whole registry — the CLI's
    ``--backends all``); ``None`` keeps the default pair.

    ``verify=True`` runs the static verifier (:mod:`repro.analysis`) over
    every compiled result; rows gain ``verified``/``violations`` columns and
    the document records ``"verify": true`` so consumers know the rows carry
    verification columns.
    """
    from ..backends import DEFAULT_COMPILERS
    from .workloads import compile_workload

    workloads = resolve_suite(suite)
    if repeat < 1:
        raise ValueError("repeat must be at least 1")
    if compilers is None:
        names: tuple[str, ...] = DEFAULT_COMPILERS
    else:
        names = tuple(str(name).strip().lower() for name in compilers)
        if not names:
            raise ValueError("compilers must name at least one backend")
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise ValueError(f"duplicate compiler(s) {duplicates} in {list(names)}")
    rows: list[dict[str, object]] = []
    for workload in workloads:
        if progress is not None:
            progress(f"bench {workload.name} [{', '.join(names)}]")
        best: dict[str, dict[str, object]] | None = None
        for _ in range(repeat):
            measured = compile_workload(workload, names, verify=verify)
            if best is None:
                best = measured
            else:
                for backend, row in measured.items():
                    if row["seconds"] < best[backend]["seconds"]:
                        best[backend] = row
        assert best is not None
        for backend in names:
            rows.append(best[backend])
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "suite": suite,
        "seed": BENCH_SEED,
        "created_at": time.strftime("%Y-%m-%d %H:%M:%S"),
        "created_unix": time.time(),
        "compilers": list(names),
        "repeat": repeat,
        "verify": bool(verify),
        "calibration_seconds": measure_calibration(),
        "rows": rows,
    }


def write_document(
    document: Mapping[str, object], out_dir: str | Path, prefix: str
) -> Path:
    """Write ``document`` as ``<prefix>_<timestamp>-p<pid>[.N].json``, never
    clobbering an existing file.

    The timestamp alone is second-granular, so two runs starting in the same
    second used to race each other onto the same name; the pid separates
    concurrent processes and the counter separates same-process rewrites.
    Creation is atomic (``open(..., "x")``), so even a pid collision across
    reboots degrades to a counter bump instead of an overwrite.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    stamp = f"{time.strftime('%Y%m%d-%H%M%S')}-p{os.getpid()}"
    counter = 0
    while True:
        suffix = f".{counter}" if counter else ""
        path = out / f"{prefix}_{stamp}{suffix}.json"
        try:
            with open(path, "x", encoding="utf-8") as handle:
                json.dump(document, handle, indent=1, sort_keys=True)
                handle.write("\n")
            return path
        except FileExistsError:
            counter += 1


def write_bench(document: Mapping[str, object], out_dir: str | Path) -> Path:
    """Write ``document`` as a unique ``BENCH_*.json`` under ``out_dir``."""
    return write_document(document, out_dir, "BENCH")


def load_bench(path: str | Path) -> dict[str, object]:
    """Load and shape-check a BENCH document."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "rows" not in document:
        raise ValueError(f"{path} is not a repro bench document")
    if document.get("schema_version") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path} has bench schema {document.get('schema_version')!r};"
            f" this build reads version {BENCH_SCHEMA_VERSION}"
        )
    return document


def compare_bench(
    old: Mapping[str, object],
    new: Mapping[str, object],
    *,
    max_regression: float = 0.25,
) -> dict[str, object]:
    """Compare two bench documents row by row.

    Speedup per matched ``(workload, backend)`` row is
    ``old_seconds * calibration_ratio / new_seconds`` where
    ``calibration_ratio = new_calibration / old_calibration`` normalises
    machine speed.  The run *regresses* when the geometric-mean speedup drops
    below ``1 / (1 + max_regression)`` (i.e. wall-clock grew by more than the
    threshold).
    """
    if max_regression < 0:
        raise ValueError("max_regression must be >= 0")
    old_rows = {(r["workload"], r["backend"]): r for r in old["rows"]}
    new_rows = {(r["workload"], r["backend"]): r for r in new["rows"]}
    old_cal = float(old.get("calibration_seconds") or 0.0)
    new_cal = float(new.get("calibration_seconds") or 0.0)
    ratio = (new_cal / old_cal) if old_cal > 0 and new_cal > 0 else 1.0

    rows: list[dict[str, object]] = []
    speedups: list[float] = []
    for key in sorted(new_rows):
        if key not in old_rows:
            continue
        old_seconds = float(old_rows[key]["seconds"]) * ratio
        new_seconds = float(new_rows[key]["seconds"])
        speedup = old_seconds / new_seconds if new_seconds > 0 else float("inf")
        speedups.append(speedup)
        rows.append(
            {
                "workload": key[0],
                "backend": key[1],
                "old_seconds": old_seconds,
                "new_seconds": new_seconds,
                "speedup": speedup,
            }
        )
    geomean = geometric_mean(s for s in speedups if np.isfinite(s)) if speedups else 0.0
    floor = 1.0 / (1.0 + max_regression)
    return {
        "matched": len(rows),
        "missing": sorted(
            f"{w}::{b}" for w, b in set(new_rows) ^ set(old_rows)
        ),
        "calibration_ratio": ratio,
        "geomean_speedup": geomean,
        "max_regression": max_regression,
        "speedup_floor": floor,
        "regressed": bool(rows) and geomean < floor,
        "rows": rows,
    }


# --------------------------------------------------------------------------
# text rendering


def format_bench(document: Mapping[str, object]) -> str:
    """Fixed-width table of one bench document."""
    lines = [
        f"repro bench suite={document['suite']} seed={document['seed']}"
        f" compilers={','.join(document['compilers'])}"
        f" calibration={float(document['calibration_seconds']):.4f}s"
    ]
    header = (
        f"{'workload':<24} {'backend':<12} {'seconds':>9} {'swaps':>8} "
        f"{'depth':>9} {'eff CNOTs':>10}  phases"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in document["rows"]:
        phases = row.get("phases") or {}
        phase_text = " ".join(
            f"{name}={seconds:.3f}" for name, seconds in sorted(phases.items())
        )
        lines.append(
            f"{row['workload']:<24} {row['backend']:<12} {row['seconds']:>9.3f} "
            f"{row['swaps']:>8.0f} {row['depth']:>9.0f} {row['eff_cnots']:>10.0f}"
            f"  {phase_text}"
        )
    return "\n".join(lines)


def format_comparison(comparison: Mapping[str, object]) -> str:
    """Fixed-width table of a ``--against`` comparison."""
    lines = [
        f"comparison vs previous run (calibration ratio"
        f" {comparison['calibration_ratio']:.3f}, old timings rescaled):"
    ]
    header = f"{'workload':<24} {'backend':<12} {'old s':>9} {'new s':>9} {'speedup':>8}"
    lines.append(header)
    lines.append("-" * len(header))
    for row in comparison["rows"]:
        lines.append(
            f"{row['workload']:<24} {row['backend']:<12} "
            f"{row['old_seconds']:>9.3f} {row['new_seconds']:>9.3f} "
            f"{row['speedup']:>7.2f}x"
        )
    if comparison["missing"]:
        count = len(comparison["missing"])
        lines.append(
            f"({count} unmatched row{'s' if count != 1 else ''} not compared:"
            f" {', '.join(comparison['missing'][:4])}"
            f"{'...' if count > 4 else ''})"
        )
    lines.append(
        f"geometric-mean speedup: {comparison['geomean_speedup']:.2f}x"
        f" over {comparison['matched']} workloads"
        f" (regression floor {comparison['speedup_floor']:.2f}x)"
    )
    if comparison["regressed"]:
        lines.append(
            f"REGRESSION: wall-clock grew beyond the"
            f" {comparison['max_regression']:.0%} threshold"
        )
    return "\n".join(lines)
