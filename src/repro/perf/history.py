"""``repro bench --history`` — longitudinal analytics over BENCH documents.

PR 5 made every bench run emit a schema-versioned ``BENCH_*.json`` document
and gave the CLI a one-shot ``--against`` comparison; this module turns the
accumulated pile of documents into a first-class, CI-gated artifact.  It
ingests every document of a history directory (schema-validated, sorted by
recording time), rescales all wall-clock figures onto one machine-speed scale
via the documents' calibration probes, computes per-backend trend series —
wall-clock, swaps, depth, effective CNOTs, and the per-phase breakdown — and
summarises each backend's trajectory as geometric-mean deltas of the newest
document vs. the *oldest* (the whole-history trend) and vs. the *previous*
one (the per-PR drift the CI job gates on with ``--max-drift``).

The machine report is a ``TREND_*.json`` document (same collision-proof
naming as the bench documents); :func:`format_history` renders the human
table.
"""

from __future__ import annotations

from pathlib import Path
from collections.abc import Mapping, Sequence

import numpy as np

from ..metrics import geometric_mean
from .bench import load_bench, write_document

__all__ = [
    "TREND_SCHEMA_VERSION",
    "HistoryError",
    "load_history",
    "compute_history",
    "history_report",
    "format_history",
    "write_trend",
]

#: Version stamp of the TREND_*.json report schema.
TREND_SCHEMA_VERSION = 1

#: Default drift gate: fail when a backend's geomean wall-clock grew by more
#: than this fraction since the previous document (calibration-rescaled).
DEFAULT_MAX_DRIFT = 0.5


class HistoryError(ValueError):
    """A history directory that cannot be analysed (missing, empty, ...)."""


def _sort_stamp(document: Mapping[str, object], path: Path) -> tuple[float, str]:
    created = document.get("created_unix")
    if isinstance(created, (int, float)) and np.isfinite(created):
        return (float(created), path.name)
    # pre-timestamp or doctored documents sort by filename (itself a stamp)
    return (0.0, path.name)


def load_history(
    directory: str | Path,
) -> tuple[list[tuple[Path, dict[str, object]]], list[dict[str, str]]]:
    """Load every ``BENCH_*.json`` under ``directory``, oldest first.

    Returns ``(documents, skipped)`` where ``documents`` is a list of
    ``(path, document)`` pairs sorted by recording time and ``skipped``
    records the files that failed schema validation (they are reported, not
    silently dropped — but they must not brick a long-lived history
    directory either).  A missing directory or one with no loadable
    documents raises :class:`HistoryError`.
    """
    root = Path(directory)
    if not root.is_dir():
        raise HistoryError(f"history directory {root} does not exist")
    paths = sorted(root.glob("BENCH_*.json"))
    if not paths:
        raise HistoryError(f"no BENCH_*.json documents under {root}")
    documents: list[tuple[Path, dict[str, object]]] = []
    skipped: list[dict[str, str]] = []
    for path in paths:
        try:
            documents.append((path, load_bench(path)))
        except (OSError, ValueError) as exc:
            skipped.append({"file": path.name, "error": str(exc)})
    if not documents:
        raise HistoryError(
            f"none of the {len(paths)} BENCH_*.json documents under {root}"
            f" passed schema validation"
        )
    documents.sort(key=lambda pair: _sort_stamp(pair[1], pair[0]))
    return documents, skipped


# --------------------------------------------------------------------------
# trend computation


def _rescale(document: Mapping[str, object], reference_calibration: float) -> float:
    """Factor that maps this document's seconds onto the reference machine.

    Mirrors ``compare_bench``: seconds recorded on a machine whose
    calibration probe took ``c`` correspond to ``seconds * (ref / c)`` on the
    reference machine (a *faster* machine has a smaller probe time, so its
    timings are scaled up).
    """
    calibration = float(document.get("calibration_seconds") or 0.0)
    if calibration > 0 and reference_calibration > 0:
        return reference_calibration / calibration
    return 1.0


def _backend_rows(document: Mapping[str, object]) -> dict[str, dict[str, dict]]:
    """``backend -> workload -> row`` for one document."""
    out: dict[str, dict[str, dict]] = {}
    for row in document["rows"]:
        out.setdefault(str(row["backend"]), {})[str(row["workload"])] = row
    return out


def _geomean_over(values: Sequence[float]) -> float | None:
    finite = [v for v in values if v > 0 and np.isfinite(v)]
    if not finite:
        return None
    return float(geometric_mean(finite))


def _delta(
    old_rows: Mapping[str, dict] | None,
    new_rows: Mapping[str, dict],
    scale_old: float,
    scale_new: float,
) -> dict[str, object] | None:
    """Per-backend geomean deltas between two documents' matched workloads.

    ``wallclock_speedup`` follows the ``--against`` convention (old/new, so
    >1 means the newer document is faster); the metric ratios are new/old
    (so >1 means the newer document inserts more swaps / is deeper).
    """
    if old_rows is None:
        return None
    matched = sorted(set(old_rows) & set(new_rows))
    if not matched:
        return None
    speedups = []
    ratios: dict[str, list[float]] = {"swaps": [], "depth": [], "eff_cnots": []}
    for workload in matched:
        old_seconds = float(old_rows[workload]["seconds"]) * scale_old
        new_seconds = float(new_rows[workload]["seconds"]) * scale_new
        if old_seconds > 0 and new_seconds > 0:
            speedups.append(old_seconds / new_seconds)
        for metric in ratios:
            old_value = float(old_rows[workload].get(metric, 0.0))
            new_value = float(new_rows[workload].get(metric, 0.0))
            if old_value > 0 and new_value > 0:
                ratios[metric].append(new_value / old_value)
    return {
        "matched": len(matched),
        "wallclock_speedup": _geomean_over(speedups),
        "swaps_ratio": _geomean_over(ratios["swaps"]),
        "depth_ratio": _geomean_over(ratios["depth"]),
        "eff_cnots_ratio": _geomean_over(ratios["eff_cnots"]),
    }


def compute_history(
    documents: Sequence[tuple[Path, Mapping[str, object]]],
    *,
    max_drift: float = DEFAULT_MAX_DRIFT,
    skipped: Sequence[Mapping[str, str]] | None = None,
) -> dict[str, object]:
    """The TREND report over ``documents`` (oldest first, as from
    :func:`load_history`).

    Per backend, the report carries one trend point per document the backend
    appears in — geomean rescaled wall-clock, geomean swaps/depth/eff-CNOTs,
    and summed per-phase seconds — plus deltas of the newest document vs. the
    oldest and vs. the previous one.  A backend *drifts* when its vs-previous
    geomean wall-clock speedup falls below ``1 / (1 + max_drift)``, i.e. its
    compile time grew by more than the threshold since the last document;
    ``regressed`` is the OR over backends and is what the CLI exits 1 on.
    """
    if not documents:
        raise HistoryError("history must contain at least one document")
    if not (max_drift >= 0):  # inverted so NaN fails too
        raise ValueError("max_drift must be >= 0")
    reference_calibration = float(
        documents[-1][1].get("calibration_seconds") or 0.0
    )
    scales = [_rescale(doc, reference_calibration) for _, doc in documents]
    per_doc_rows = [_backend_rows(doc) for _, doc in documents]

    document_meta = [
        {
            "file": path.name,
            "suite": doc.get("suite"),
            "created_at": doc.get("created_at"),
            "created_unix": doc.get("created_unix"),
            "calibration_seconds": doc.get("calibration_seconds"),
            "calibration_scale": scale,
            "compilers": list(doc.get("compilers") or []),
            "rows": len(doc["rows"]),
        }
        for (path, doc), scale in zip(documents, scales, strict=True)
    ]

    backends = sorted({name for rows in per_doc_rows for name in rows})
    floor = 1.0 / (1.0 + max_drift)
    report_backends: dict[str, object] = {}
    for backend in backends:
        points: list[dict[str, object] | None] = []
        present: list[int] = []
        for index, rows in enumerate(per_doc_rows):
            backend_rows = rows.get(backend)
            if backend_rows is None:
                points.append(None)
                continue
            present.append(index)
            phases: dict[str, float] = {}
            for row in backend_rows.values():
                for phase, seconds in (row.get("phases") or {}).items():
                    phases[phase] = phases.get(phase, 0.0) + (
                        float(seconds) * scales[index]
                    )
            points.append(
                {
                    "wallclock_geomean": _geomean_over(
                        [float(r["seconds"]) * scales[index] for r in backend_rows.values()]
                    ),
                    "swaps_geomean": _geomean_over(
                        [float(r.get("swaps", 0.0)) for r in backend_rows.values()]
                    ),
                    "depth_geomean": _geomean_over(
                        [float(r.get("depth", 0.0)) for r in backend_rows.values()]
                    ),
                    "eff_cnots_geomean": _geomean_over(
                        [float(r.get("eff_cnots", 0.0)) for r in backend_rows.values()]
                    ),
                    "phase_seconds": dict(sorted(phases.items())),
                    "workloads": len(backend_rows),
                }
            )
        latest = present[-1]
        latest_rows = per_doc_rows[latest][backend]
        oldest = present[0]
        previous = present[-2] if len(present) > 1 else None
        vs_oldest = (
            _delta(per_doc_rows[oldest][backend], latest_rows, scales[oldest], scales[latest])
            if oldest != latest
            else None
        )
        vs_previous = (
            _delta(
                per_doc_rows[previous][backend],
                latest_rows,
                scales[previous],
                scales[latest],
            )
            if previous is not None
            else None
        )
        drift_speedup = (vs_previous or {}).get("wallclock_speedup")
        drifted = drift_speedup is not None and drift_speedup < floor
        report_backends[backend] = {
            "documents": present,
            "points": points,
            "vs_oldest": vs_oldest,
            "vs_previous": vs_previous,
            "drifted": drifted,
        }

    regressed = any(entry["drifted"] for entry in report_backends.values())
    return {
        "schema_version": TREND_SCHEMA_VERSION,
        "documents": document_meta,
        "reference_calibration_seconds": reference_calibration,
        "max_drift": max_drift,
        "drift_floor": floor,
        "backends": report_backends,
        "regressed": regressed,
        "skipped": [dict(entry) for entry in (skipped or [])],
    }


def history_report(
    directory: str | Path, *, max_drift: float = DEFAULT_MAX_DRIFT
) -> dict[str, object]:
    """Load a history directory and compute its TREND report in one call."""
    documents, skipped = load_history(directory)
    return compute_history(documents, max_drift=max_drift, skipped=skipped)


def write_trend(report: Mapping[str, object], out_dir: str | Path) -> Path:
    """Write ``report`` as a unique ``TREND_*.json`` under ``out_dir``."""
    return write_document(report, out_dir, "TREND")


# --------------------------------------------------------------------------
# text rendering


def _format_ratio(value: float | None) -> str:
    return f"{value:.2f}x" if value is not None else "-"


def _spark(values: Sequence[float | None]) -> str:
    """A compact numeric trajectory, newest last (``-`` for absent docs)."""
    return " ".join("-" if v is None else f"{v:.3f}" for v in values)


def format_history(report: Mapping[str, object]) -> str:
    """Fixed-width rendering of a TREND report."""
    documents = report["documents"]
    first, last = documents[0], documents[-1]
    lines = [
        f"repro bench history: {len(documents)} documents"
        f" ({first['file']} .. {last['file']})",
        f"wall-clock rescaled to the newest document's machine"
        f" (calibration {float(report['reference_calibration_seconds']):.4f}s;"
        f" drift gate {float(report['max_drift']):.0%} vs previous)",
    ]
    header = (
        f"{'backend':<17} {'docs':>4} {'vs oldest':>10} {'vs prev':>8} "
        f"{'depth':>7} {'effCNOT':>8}  wall-clock geomean trend (s, oldest -> newest)"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for backend, entry in report["backends"].items():
        vs_oldest = entry["vs_oldest"] or {}
        vs_previous = entry["vs_previous"] or {}
        trajectory = _spark(
            [
                point["wallclock_geomean"] if point is not None else None
                for point in entry["points"]
            ]
        )
        lines.append(
            f"{backend:<17} {len(entry['documents']):>4} "
            f"{_format_ratio(vs_oldest.get('wallclock_speedup')):>10} "
            f"{_format_ratio(vs_previous.get('wallclock_speedup')):>8} "
            f"{_format_ratio(vs_oldest.get('depth_ratio')):>7} "
            f"{_format_ratio(vs_oldest.get('eff_cnots_ratio')):>8}"
            f"  {trajectory}"
        )
    drifted = [name for name, entry in report["backends"].items() if entry["drifted"]]
    if report["skipped"]:
        names = ", ".join(entry["file"] for entry in report["skipped"][:4])
        more = "..." if len(report["skipped"]) > 4 else ""
        lines.append(
            f"({len(report['skipped'])} unreadable document"
            f"{'s' if len(report['skipped']) != 1 else ''} skipped: {names}{more})"
        )
    if drifted:
        lines.append(
            f"DRIFT: {', '.join(drifted)} grew beyond the"
            f" {float(report['max_drift']):.0%} wall-clock threshold since the"
            f" previous document"
        )
    else:
        lines.append("no backend drifted beyond the threshold")
    return "\n".join(lines)
