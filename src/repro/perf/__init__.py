"""Performance-tracking subsystem (PR 5).

Two pieces keep the compiler hot paths honest:

* :mod:`repro.perf.timers` — lightweight phase timers threaded through
  ``CompilationResult.stats`` (``phase_<name>_seconds`` keys for the
  layout/route/schedule/simulate phases), so every compiled circuit carries
  its own wall-clock breakdown;
* :mod:`repro.perf.bench` — the ``repro bench`` machinery: pinned compile
  workload suites per registered backend, ``BENCH_<timestamp>.json``
  emission, and the ``--against`` comparison mode that reports speedups and
  regressions (machine-speed differences are normalised by a calibration
  scalar recorded in every document).
"""

from .bench import (
    BENCH_SCHEMA_VERSION,
    SUITES,
    BenchWorkload,
    compare_bench,
    format_bench,
    format_comparison,
    load_bench,
    measure_calibration,
    run_bench,
    write_bench,
)
from .timers import PHASE_PREFIX, PhaseTimer, phase_breakdown

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "SUITES",
    "BenchWorkload",
    "PHASE_PREFIX",
    "PhaseTimer",
    "compare_bench",
    "format_bench",
    "format_comparison",
    "load_bench",
    "measure_calibration",
    "phase_breakdown",
    "run_bench",
    "write_bench",
]
