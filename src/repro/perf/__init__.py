"""Performance-tracking subsystem (PR 5).

Two pieces keep the compiler hot paths honest:

* :mod:`repro.perf.timers` — lightweight phase timers threaded through
  ``CompilationResult.stats`` (``phase_<name>_seconds`` keys for the
  layout/route/schedule/simulate phases), so every compiled circuit carries
  its own wall-clock breakdown;
* :mod:`repro.perf.bench` — the ``repro bench`` machinery: pinned compile
  workload suites per registered backend, ``BENCH_<timestamp>.json``
  emission, and the ``--against`` comparison mode that reports speedups and
  regressions (machine-speed differences are normalised by a calibration
  scalar recorded in every document);
* :mod:`repro.perf.history` — longitudinal analytics over an accumulated
  directory of bench documents: calibration-rescaled per-backend trend
  series, geomean deltas vs. the oldest and the previous document, a
  ``TREND_<timestamp>.json`` report, and the ``--max-drift`` gate the CI
  bench-history job fails on;
* :mod:`repro.perf.latency` — the ``repro bench --latency`` serve-path
  suite: cold one-shot-process requests vs warm requests against a running
  :class:`~repro.serve.server.CompileServer`, p50/p99 under concurrent
  load, a byte-identity check between the served and batch paths, and the
  ``LATENCY_<timestamp>.json`` document the CI serve gate reads.
"""

from .bench import (
    BENCH_SCHEMA_VERSION,
    SUITES,
    BenchWorkload,
    compare_bench,
    format_bench,
    format_comparison,
    load_bench,
    measure_calibration,
    run_bench,
    write_bench,
    write_document,
)
from .history import (
    TREND_SCHEMA_VERSION,
    HistoryError,
    compute_history,
    format_history,
    history_report,
    load_history,
    write_trend,
)
from .latency import (
    LATENCY_SCHEMA_VERSION,
    format_latency,
    latency_regressed,
    load_latency,
    run_latency,
    strip_timing,
    workload_job,
    write_latency,
)
from .timers import PHASE_PREFIX, PhaseTimer, percentile, phase_breakdown

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "LATENCY_SCHEMA_VERSION",
    "TREND_SCHEMA_VERSION",
    "SUITES",
    "BenchWorkload",
    "HistoryError",
    "PHASE_PREFIX",
    "PhaseTimer",
    "compare_bench",
    "compute_history",
    "format_bench",
    "format_comparison",
    "format_history",
    "format_latency",
    "history_report",
    "latency_regressed",
    "load_bench",
    "load_history",
    "load_latency",
    "measure_calibration",
    "percentile",
    "phase_breakdown",
    "run_bench",
    "run_latency",
    "strip_timing",
    "workload_job",
    "write_bench",
    "write_document",
    "write_latency",
    "write_trend",
]
