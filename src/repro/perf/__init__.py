"""Performance-tracking subsystem (PR 5).

Two pieces keep the compiler hot paths honest:

* :mod:`repro.perf.timers` — lightweight phase timers threaded through
  ``CompilationResult.stats`` (``phase_<name>_seconds`` keys for the
  layout/route/schedule/simulate phases), so every compiled circuit carries
  its own wall-clock breakdown;
* :mod:`repro.perf.bench` — the ``repro bench`` machinery: pinned compile
  workload suites per registered backend, ``BENCH_<timestamp>.json``
  emission, and the ``--against`` comparison mode that reports speedups and
  regressions (machine-speed differences are normalised by a calibration
  scalar recorded in every document);
* :mod:`repro.perf.history` — longitudinal analytics over an accumulated
  directory of bench documents: calibration-rescaled per-backend trend
  series, geomean deltas vs. the oldest and the previous document, a
  ``TREND_<timestamp>.json`` report, and the ``--max-drift`` gate the CI
  bench-history job fails on.
"""

from .bench import (
    BENCH_SCHEMA_VERSION,
    SUITES,
    BenchWorkload,
    compare_bench,
    format_bench,
    format_comparison,
    load_bench,
    measure_calibration,
    run_bench,
    write_bench,
    write_document,
)
from .history import (
    TREND_SCHEMA_VERSION,
    HistoryError,
    compute_history,
    format_history,
    history_report,
    load_history,
    write_trend,
)
from .timers import PHASE_PREFIX, PhaseTimer, phase_breakdown

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "TREND_SCHEMA_VERSION",
    "SUITES",
    "BenchWorkload",
    "HistoryError",
    "PHASE_PREFIX",
    "PhaseTimer",
    "compare_bench",
    "compute_history",
    "format_bench",
    "format_comparison",
    "format_history",
    "history_report",
    "load_bench",
    "load_history",
    "measure_calibration",
    "phase_breakdown",
    "run_bench",
    "write_bench",
    "write_document",
    "write_trend",
]
