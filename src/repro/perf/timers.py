"""Phase timers for the compilation pipeline.

A :class:`PhaseTimer` accumulates wall-clock seconds per named phase
(``layout``, ``route``, ``schedule``, ``simulate``, ...) and writes them into
a ``CompilationResult.stats`` dict as ``phase_<name>_seconds`` float entries —
the schema every stats consumer already accepts (plain ``int``/``float``
values).  Multi-trial compilers re-enter the same phase; durations add up.

The timings are diagnostics: they never influence routing decisions, and the
golden equivalence suite ignores ``phase_*`` keys entirely.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from collections.abc import Iterator, Mapping, Sequence

__all__ = ["PHASE_PREFIX", "PhaseTimer", "percentile", "phase_breakdown"]

#: Stats-key prefix marking per-phase wall-clock entries.
PHASE_PREFIX = "phase_"

_SUFFIX = "_seconds"


class PhaseTimer:
    """Accumulates wall-clock seconds per named compilation phase."""

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under ``name`` (re-entries accumulate)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float) -> None:
        """Accumulate an externally measured duration under ``name``."""
        self.seconds[name] = self.seconds.get(name, 0.0) + float(seconds)

    def write_stats(self, stats: dict[str, float]) -> dict[str, float]:
        """Record every phase as a ``phase_<name>_seconds`` stats entry."""
        for name, seconds in self.seconds.items():
            stats[f"{PHASE_PREFIX}{name}{_SUFFIX}"] = float(seconds)
        return stats


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100]).

    Nearest-rank (not interpolated) so a reported p99 is always a latency
    that actually occurred — the convention latency SLOs use.
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(float(v) for v in values)
    if q == 0.0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]


def phase_breakdown(stats: Mapping[str, object]) -> dict[str, float]:
    """Extract ``{phase: seconds}`` from a stats dict written by a timer."""
    out: dict[str, float] = {}
    for key, value in stats.items():
        if key.startswith(PHASE_PREFIX) and key.endswith(_SUFFIX):
            name = key[len(PHASE_PREFIX) : -len(_SUFFIX)]
            if name and isinstance(value, (int, float)):
                out[name] = float(value)
    return out
