"""Compile one bench workload with a set of registered backends.

Separated from :mod:`repro.perf.bench` so the document/compare machinery stays
importable without touching compiler modules (the CLI loads it for
``--against`` comparisons of existing files too).
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from ..backends import get_backend
from ..hardware.array import ChipletArray
from ..highway.layout import HighwayLayout
from ..programs import build_benchmark
from .timers import phase_breakdown

__all__ = ["compile_workload"]

#: Benchmark builders that take a randomness seed (mirrors the runner).
_SEEDED_BENCHMARKS = ("QAOA", "VQE", "BV")


def compile_workload(
    workload, compilers: Sequence[str], *, verify: bool = False
) -> dict[str, dict[str, object]]:
    """Compile ``workload`` with every backend; one bench row per backend.

    Mirrors the runner's conventions (:func:`repro.experiments.runner.
    compile_many`): the circuit is sized to the highway layout's data-qubit
    count, seeded builders get the workload seed, and every backend is
    configured with the shared read-only layout.  ``seconds`` times
    ``backend.compile`` alone; the metrics evaluation is timed separately and
    reported as the ``simulate`` phase next to the phases the compiler itself
    recorded.

    ``verify=True`` additionally runs the static verifier
    (:func:`repro.analysis.verify_compilation`) over every result — checking
    the recorded depth/eff-CNOT values against the IR too — and extends each
    row with ``verified`` (bool), ``violations`` (count) and ``verify`` (the
    full report dict); the wall-clock cost lands in the ``verify`` phase.
    """
    array = ChipletArray(
        workload.structure, workload.chiplet_width, workload.rows, workload.cols
    )
    layout = HighwayLayout(array, density=1)
    width = layout.num_data_qubits
    kwargs = {"seed": workload.seed} if workload.benchmark.upper() in _SEEDED_BENCHMARKS else {}
    circuit = build_benchmark(workload.benchmark, width, **kwargs)

    rows: dict[str, dict[str, object]] = {}
    for name in compilers:
        backend = get_backend(name).configure(array, seed=workload.seed, layout=layout)
        start = time.perf_counter()
        result = backend.compile(circuit)
        seconds = time.perf_counter() - start
        sim_start = time.perf_counter()
        metrics = result.metrics()
        phases = phase_breakdown(result.stats)
        # accumulate onto any simulate time the compiler itself recorded
        # (multi-trial baselines evaluate metrics to pick their best trial)
        phases["simulate"] = phases.get("simulate", 0.0) + (
            time.perf_counter() - sim_start
        )
        row: dict[str, object] = {
            "workload": workload.name,
            "benchmark": workload.benchmark,
            "architecture": array.topology.name,
            "num_data_qubits": width,
            "backend": name,
            "seconds": seconds,
            "swaps": float(result.stats.get("swaps_inserted", 0.0)),
            "depth": metrics.depth,
            "eff_cnots": metrics.eff_cnots,
            "phases": phases,
        }
        if verify:
            from ..analysis import verify_compilation

            verify_start = time.perf_counter()
            report = verify_compilation(
                circuit,
                result,
                expected_depth=metrics.depth,
                expected_eff_cnots=metrics.eff_cnots,
            )
            phases["verify"] = time.perf_counter() - verify_start
            row["verified"] = report.ok
            row["violations"] = len(report.violations)
            row["verify"] = report.as_dict()
        rows[name] = row
    return rows
