"""``repro bench --latency`` — serve-path latency suite with a p50/p99 gate.

The suite prices the thing the compile server exists for: the gap between a
*cold* compile request (a fresh process — interpreter spawn, imports, device
state, compile) and a *warm* one (a request against an already-running
server whose per-device state is resident).  Three measurement phases per
pinned workload:

``cold``
    Each request launches a one-shot subprocess that imports the engine and
    runs :func:`~repro.experiments.engine._execute_keyed`; the parent times
    the whole process end to end.  This is what ``repro run`` costs per
    invocation, and the document marks it explicitly
    (``cold_includes_process_startup``).
``warm``
    Sequential requests against an in-process :class:`CompileServer` with
    caching disabled — every request genuinely compiles; only the device
    state is reused.
``warm_concurrent``
    The same requests fired from ``concurrency`` client threads at once,
    measuring per-request latency under contention (the p99 the CI gate
    watches).

Before timing, one payload per workload is compared between the cold
subprocess path and the warm served path — stripped of wall-clock keys they
must be byte-identical, and ``results_identical`` in the document records
that the warm path changes nothing but latency.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import TYPE_CHECKING
from collections.abc import Callable, Mapping, Sequence

from .bench import BENCH_SEED, BenchWorkload, resolve_suite, write_document
from .timers import percentile

if TYPE_CHECKING:  # imported lazily at runtime: engine -> backends -> compiler
    from ..experiments.engine import Job  # pragma: no cover - typing only

__all__ = [
    "LATENCY_SCHEMA_VERSION",
    "format_latency",
    "latency_regressed",
    "load_latency",
    "run_latency",
    "strip_timing",
    "workload_job",
    "write_latency",
]

#: Version stamp of the LATENCY_*.json document schema.
LATENCY_SCHEMA_VERSION = 1

#: One-shot cold-request driver: reads {"job": ...} JSON on stdin, executes
#: it through the engine's worker entry point, prints the payload as JSON.
_COLD_DRIVER = """\
import json, sys
from repro.experiments.engine import _execute_keyed
item = json.load(sys.stdin)
key, payload = _execute_keyed((item["key"], item["job"], None))
print(json.dumps({"key": key, "payload": payload}))
"""


def workload_job(workload: BenchWorkload, compilers: Sequence[str]) -> "Job":
    """The engine job that compiles ``workload`` with ``compilers``."""
    from ..experiments.engine import Job

    return Job(
        benchmark=workload.benchmark,
        structure=workload.structure,
        chiplet_width=workload.chiplet_width,
        rows=workload.rows,
        cols=workload.cols,
        seed=workload.seed,
        compilers=tuple(compilers),
    )


def strip_timing(payload: Mapping[str, object]) -> dict[str, object]:
    """``payload`` without wall-clock keys — the deterministic canonical form.

    Record payloads carry compile wall-clock under ``seconds`` (multi-compiler
    records) or ``<name>_seconds`` (pair records); everything else is a pure
    function of the job, so equality of the stripped forms is the byte-identity
    check between the served and the batch path.
    """
    return {
        k: v
        for k, v in payload.items()
        if k != "seconds" and not k.endswith("_seconds")
    }


def _canonical(payload: Mapping[str, object]) -> str:
    return json.dumps(strip_timing(payload), sort_keys=True)


def _cold_request(job: "Job", key: str) -> tuple[float, dict[str, object]]:
    """One cold request: full subprocess wall-clock plus its record payload."""
    from ..experiments.engine import job_to_dict

    src_root = Path(__file__).resolve().parents[2]
    stdin = json.dumps({"key": key, "job": job_to_dict(job)})
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-c", _COLD_DRIVER],
        input=stdin,
        capture_output=True,
        text=True,
        env={**_inherit_env(), "PYTHONPATH": str(src_root)},
    )
    elapsed = time.perf_counter() - start
    if proc.returncode != 0:
        raise RuntimeError(
            f"cold request subprocess failed (rc={proc.returncode}):\n{proc.stderr}"
        )
    out = json.loads(proc.stdout)
    payload = out["payload"]
    if "job_error" in payload:
        raise RuntimeError(f"cold request job failed: {payload['job_error']}")
    return elapsed, payload


def _inherit_env() -> dict[str, str]:
    import os

    return dict(os.environ)


def run_latency(
    suite: str = "quick",
    *,
    compilers: Sequence[str] | None = None,
    requests: int = 8,
    concurrency: int = 4,
    cold_requests: int = 2,
    limit: int | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, object]:
    """Measure cold vs warm serve-path latency over ``suite``; return the doc.

    ``requests`` warm requests per workload are measured twice — serially and
    from ``concurrency`` threads at once; ``cold_requests`` one-shot
    subprocesses per workload price the cold path.  ``limit`` truncates the
    suite (CI smoke uses 1-2 workloads).
    """
    from ..backends import DEFAULT_COMPILERS
    from ..experiments.engine import config_key
    from ..serve.server import CompileServer

    if requests < 1:
        raise ValueError("requests must be at least 1")
    if cold_requests < 1:
        raise ValueError("cold_requests must be at least 1")
    if concurrency < 1:
        raise ValueError("concurrency must be at least 1")
    names = tuple(compilers) if compilers else DEFAULT_COMPILERS
    workloads = resolve_suite(suite)
    if limit is not None:
        if limit < 1:
            raise ValueError("limit must be at least 1")
        workloads = workloads[:limit]

    jobs = [(w, workload_job(w, names)) for w in workloads]
    rows: list[dict[str, object]] = []
    identical = True

    with CompileServer(workers=concurrency, cache=None) as server:
        from ..serve.client import ServeClient

        for workload, job in jobs:
            key = config_key(job)
            if progress is not None:
                progress(f"latency {workload.name}: {cold_requests} cold requests")
            cold_times: list[float] = []
            cold_payload: dict[str, object] | None = None
            for _ in range(cold_requests):
                elapsed, payload = _cold_request(job, key)
                cold_times.append(elapsed)
                if cold_payload is None:
                    cold_payload = payload

            # warm-up request: builds the device state and yields the served
            # payload for the identity check (not counted in warm timings)
            with ServeClient(server.host, server.port) as client:
                warmup = client.compile_job(job)
                if not warmup.ok:
                    raise RuntimeError(f"served compile failed: {warmup.error}")
                served_payload = warmup.payload["result"]
                assert cold_payload is not None
                workload_identical = _canonical(served_payload) == _canonical(
                    cold_payload
                )
                identical = identical and workload_identical

                if progress is not None:
                    progress(f"latency {workload.name}: {requests} warm requests")
                warm_times: list[float] = []
                for _ in range(requests):
                    start = time.perf_counter()
                    response = client.compile_job(job)
                    warm_times.append(time.perf_counter() - start)
                    if not response.ok:
                        raise RuntimeError(f"served compile failed: {response.error}")

            if progress is not None:
                progress(
                    f"latency {workload.name}: {requests} concurrent warm requests"
                    f" (x{concurrency})"
                )
            concurrent_times = _measure_concurrent(
                server.host, server.port, job, requests, concurrency
            )

            rows.append(
                {
                    "workload": workload.name,
                    "benchmark": workload.benchmark,
                    "architecture": f"{workload.structure}-{workload.chiplet_width}"
                    f"-{workload.rows}x{workload.cols}",
                    "key": key,
                    "results_identical": workload_identical,
                    "cold_p50": percentile(cold_times, 50),
                    "cold_p99": percentile(cold_times, 99),
                    "warm_p50": percentile(warm_times, 50),
                    "warm_p99": percentile(warm_times, 99),
                    "warm_concurrent_p50": percentile(concurrent_times, 50),
                    "warm_concurrent_p99": percentile(concurrent_times, 99),
                    "cold_seconds": cold_times,
                    "warm_seconds": warm_times,
                    "warm_concurrent_seconds": concurrent_times,
                }
            )
        server_stats = server.stats()

    all_cold = [t for row in rows for t in row["cold_seconds"]]
    all_warm = [t for row in rows for t in row["warm_seconds"]]
    all_concurrent = [t for row in rows for t in row["warm_concurrent_seconds"]]
    warm_p50 = percentile(all_warm, 50)
    cold_p50 = percentile(all_cold, 50)
    total_concurrent = sum(all_concurrent)
    aggregate = {
        "cold_p50": cold_p50,
        "cold_p99": percentile(all_cold, 99),
        "warm_p50": warm_p50,
        "warm_p99": percentile(all_warm, 99),
        "warm_concurrent_p50": percentile(all_concurrent, 50),
        "warm_concurrent_p99": percentile(all_concurrent, 99),
        "warm_cold_ratio": warm_p50 / cold_p50 if cold_p50 > 0 else float("inf"),
        "throughput_rps": (
            len(all_concurrent) * concurrency / total_concurrent
            if total_concurrent > 0
            else 0.0
        ),
    }
    return {
        "schema_version": LATENCY_SCHEMA_VERSION,
        "suite": suite,
        "seed": BENCH_SEED,
        "created_at": time.strftime("%Y-%m-%d %H:%M:%S"),
        "created_unix": time.time(),
        "compilers": list(names),
        "requests": requests,
        "concurrency": concurrency,
        "cold_requests": cold_requests,
        "cold_includes_process_startup": True,
        "results_identical": identical,
        "warm_state": server_stats["warm_state"],
        "aggregate": aggregate,
        "rows": rows,
    }


def _measure_concurrent(
    host: str, port: int, job: "Job", requests: int, concurrency: int
) -> list[float]:
    """Per-request latencies with ``concurrency`` clients firing at once."""
    from ..serve.client import ServeClient

    def one_client(count: int) -> list[float]:
        times: list[float] = []
        with ServeClient(host, port) as client:
            for _ in range(count):
                start = time.perf_counter()
                response = client.compile_job(job)
                times.append(time.perf_counter() - start)
                if not response.ok:
                    raise RuntimeError(f"served compile failed: {response.error}")
        return times

    # spread `requests` across the clients, first clients take the remainder
    base, extra = divmod(requests, concurrency)
    counts = [base + (1 if i < extra else 0) for i in range(concurrency)]
    counts = [c for c in counts if c]
    with ThreadPoolExecutor(
        max_workers=len(counts), thread_name_prefix="repro-latency"
    ) as pool:
        return [t for times in pool.map(one_client, counts) for t in times]


def write_latency(document: Mapping[str, object], out_dir: str | Path) -> Path:
    """Write ``document`` as a unique ``LATENCY_*.json`` under ``out_dir``."""
    return write_document(document, out_dir, "LATENCY")


def load_latency(path: str | Path) -> dict[str, object]:
    """Load and shape-check a LATENCY document."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "aggregate" not in document:
        raise ValueError(f"{path} is not a repro latency document")
    if document.get("schema_version") != LATENCY_SCHEMA_VERSION:
        raise ValueError(
            f"{path} has latency schema {document.get('schema_version')!r};"
            f" this build reads version {LATENCY_SCHEMA_VERSION}"
        )
    return document


def latency_regressed(
    document: Mapping[str, object],
    *,
    max_warm_ratio: float = 0.75,
    max_p99: float | None = None,
) -> list[str]:
    """Gate reasons for ``document``; an empty list means the gate passes.

    ``max_warm_ratio`` bounds warm-p50 / cold-p50 (the whole point of the
    server is that this is well under 1); ``max_p99`` optionally bounds the
    concurrent warm p99 in seconds.  A failed identity check always gates —
    a fast server that returns different results is not an optimisation.
    """
    reasons: list[str] = []
    if not document.get("results_identical", False):
        reasons.append(
            "served results are not byte-identical to the batch path"
            " (see per-row results_identical)"
        )
    aggregate = document.get("aggregate")
    if not isinstance(aggregate, Mapping):
        return reasons + ["document has no aggregate section"]
    ratio = float(aggregate.get("warm_cold_ratio", float("inf")))
    if ratio > max_warm_ratio:
        reasons.append(
            f"warm/cold p50 ratio {ratio:.3f} exceeds the {max_warm_ratio:.2f} gate"
        )
    if max_p99 is not None:
        p99 = float(aggregate.get("warm_concurrent_p99", float("inf")))
        if p99 > max_p99:
            reasons.append(
                f"concurrent warm p99 {p99:.3f}s exceeds the {max_p99:.3f}s gate"
            )
    return reasons


def format_latency(document: Mapping[str, object]) -> str:
    """Fixed-width table of one latency document."""
    aggregate = document["aggregate"]
    lines = [
        f"repro bench --latency suite={document['suite']}"
        f" compilers={','.join(document['compilers'])}"
        f" requests={document['requests']} concurrency={document['concurrency']}"
        f" (cold includes process startup)"
    ]
    header = (
        f"{'workload':<24} {'cold p50':>9} {'warm p50':>9} {'warm p99':>9} "
        f"{'conc p50':>9} {'conc p99':>9}  identical"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in document["rows"]:
        lines.append(
            f"{row['workload']:<24} {row['cold_p50']:>8.3f}s {row['warm_p50']:>8.3f}s "
            f"{row['warm_p99']:>8.3f}s {row['warm_concurrent_p50']:>8.3f}s "
            f"{row['warm_concurrent_p99']:>8.3f}s  {'yes' if row['results_identical'] else 'NO'}"
        )
    lines.append(
        f"aggregate: cold p50 {aggregate['cold_p50']:.3f}s"
        f" | warm p50 {aggregate['warm_p50']:.3f}s"
        f" p99 {aggregate['warm_p99']:.3f}s"
        f" | concurrent p99 {aggregate['warm_concurrent_p99']:.3f}s"
        f" | warm/cold {aggregate['warm_cold_ratio']:.3f}"
        f" | {aggregate['throughput_rps']:.1f} req/s"
    )
    return "\n".join(lines)
