"""Deterministic, seedable fault injection for the serve & farm layers.

The subsystem has three pieces:

* :mod:`repro.chaos.plan` — the scenario-spec grammar.  A spec string such
  as ``conn-drop:after=3;garble:rate=0.1;enospc:op=put;torn-tail:journal``
  parses into a schema-versioned :class:`ChaosPlan` of fault clauses.
* :mod:`repro.chaos.inject` — the runtime.  A :class:`ChaosController`
  built from a plan exposes the hook points the transport and storage
  layers call (``on_frame`` around socket send/recv, ``on_fs_op`` around
  cache/checkpoint writes, ``journal_line`` around journal appends) and
  counts every injected fault per site.
* the process-level singleton — ``controller()`` lazily parses the
  ``REPRO_CHAOS`` environment variable once per process, so worker
  subprocesses inherit the scenario for free.  When the variable is unset
  every hook is a no-op costing one ``is None`` check.

Faults are deterministic: probabilistic clauses draw from a
``random.Random`` seeded by the plan's ``seed`` clause (default 0), and
counter-based clauses (``after=N``, ``times=K``) tick per site.  The same
spec against the same workload injects the same faults.
"""

from repro.chaos.plan import (
    CHAOS_ENV,
    CHAOS_PLAN_VERSION,
    CHAOS_REPORT_ENV,
    ChaosPlan,
    ChaosSpecError,
    FaultClause,
    parse_chaos_spec,
)
from repro.chaos.inject import (
    ChaosController,
    ChaosDrop,
    chaos_controller,
    reset_chaos,
    set_chaos,
)

__all__ = [
    "CHAOS_ENV",
    "CHAOS_PLAN_VERSION",
    "CHAOS_REPORT_ENV",
    "ChaosController",
    "ChaosDrop",
    "ChaosPlan",
    "ChaosSpecError",
    "FaultClause",
    "chaos_controller",
    "parse_chaos_spec",
    "reset_chaos",
    "set_chaos",
]
