"""Scenario-spec grammar for the chaos subsystem.

A spec is a ``;``-separated list of clauses.  Each clause is
``kind[:item[,item...]]`` where an item is either ``param=value`` or a
bare token interpreted as the fault kind's *default parameter*::

    conn-drop:after=3;garble:rate=0.1;enospc:op=put;torn-tail:journal
    seed=7;slow:seconds=0.2,site=worker

Recognised fault kinds and their parameters (defaults in parens):

``conn-drop``
    Drop the connection after ``after`` (3) frames at a matching site,
    ``times`` (1) times total, on ``on`` = ``send``/``recv``/``any``
    (any).  Bare token → ``site``.
``garble``
    Corrupt a frame with probability ``rate`` (0.1) at a matching site,
    ``mode`` = ``flip``/``truncate`` (flip), at most ``times`` (1) times.
    Bare token → ``site``.
``slow``
    Sleep ``seconds`` (0.05) before a matching frame with probability
    ``rate`` (1.0), at most ``times`` (1) times.  Bare token → ``site``.
``enospc``
    Raise ``OSError(ENOSPC)`` from a matching filesystem op
    (``op`` = ``put``/``checkpoint``/``journal``/``any``, default
    ``any``) after ``after`` (0) successful ops, ``times`` (1) times —
    or forever when ``sticky=1``.  Bare token → ``op``.
``readonly``
    Same knobs as ``enospc`` but raises ``OSError(EROFS)``.
``torn-tail``
    Truncate a journal append (or checkpoint write) mid-line, leaving a
    torn tail on disk: ``target`` = ``journal``/``checkpoint``
    (journal), ``times`` (1).  Bare token → ``target``.
``seed``
    Not a fault: seeds the plan's RNG.  ``seed=7`` or ``seed:7``.

Site parameters match by prefix against the hook-point names the
transport layer passes in (``client.send``, ``client.recv``,
``server.send``, ``server.recv``, ``worker.send``, ``worker.recv``,
``coordinator.send``, ``coordinator.recv``), so ``site=worker`` matches
both directions of the farm worker's socket and an empty site matches
everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

CHAOS_ENV = "REPRO_CHAOS"
CHAOS_REPORT_ENV = "REPRO_CHAOS_REPORT"
CHAOS_PLAN_VERSION = 1

# kind -> (default-parameter name, {param: coercion})
_FAULT_KINDS: dict[str, tuple[str, dict[str, type]]] = {
    "conn-drop": ("site", {"after": int, "times": int, "site": str, "on": str}),
    "garble": ("site", {"rate": float, "times": int, "site": str, "mode": str}),
    "slow": ("site", {"seconds": float, "rate": float, "times": int, "site": str}),
    "enospc": ("op", {"op": str, "after": int, "times": int, "sticky": int}),
    "readonly": ("op", {"op": str, "after": int, "times": int, "sticky": int}),
    "torn-tail": ("target", {"target": str, "times": int}),
}

_DEFAULTS: dict[str, dict[str, object]] = {
    "conn-drop": {"after": 3, "times": 1, "site": "", "on": "any"},
    "garble": {"rate": 0.1, "times": 1, "site": "", "mode": "flip"},
    "slow": {"seconds": 0.05, "rate": 1.0, "times": 1, "site": ""},
    "enospc": {"op": "any", "after": 0, "times": 1, "sticky": 0},
    "readonly": {"op": "any", "after": 0, "times": 1, "sticky": 0},
    "torn-tail": {"target": "journal", "times": 1},
}

_ENUM_PARAMS: dict[tuple[str, str], tuple[str, ...]] = {
    ("conn-drop", "on"): ("send", "recv", "any"),
    ("garble", "mode"): ("flip", "truncate"),
    ("enospc", "op"): ("put", "checkpoint", "journal", "any"),
    ("readonly", "op"): ("put", "checkpoint", "journal", "any"),
    ("torn-tail", "target"): ("journal", "checkpoint"),
}


class ChaosSpecError(ValueError):
    """A scenario spec string failed to parse or validate."""


@dataclass
class FaultClause:
    """One parsed fault clause: a kind plus its fully-defaulted params."""

    kind: str
    params: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, doc: dict[str, object]) -> "FaultClause":
        kind = doc.get("kind")
        if kind not in _FAULT_KINDS:
            raise ChaosSpecError(f"unknown fault kind in plan document: {kind!r}")
        params = dict(_DEFAULTS[kind])
        raw = doc.get("params")
        if isinstance(raw, dict):
            params.update(raw)
        return cls(kind=str(kind), params=params)


@dataclass
class ChaosPlan:
    """A schema-versioned, fully-validated chaos scenario."""

    clauses: list[FaultClause] = field(default_factory=list)
    seed: int = 0
    spec: str = ""
    version: int = CHAOS_PLAN_VERSION

    def to_dict(self) -> dict[str, object]:
        return {
            "chaos_plan_version": self.version,
            "seed": self.seed,
            "spec": self.spec,
            "clauses": [clause.to_dict() for clause in self.clauses],
        }

    @classmethod
    def from_dict(cls, doc: dict[str, object]) -> "ChaosPlan":
        version = doc.get("chaos_plan_version")
        if version != CHAOS_PLAN_VERSION:
            raise ChaosSpecError(
                f"unsupported chaos plan version {version!r}"
                f" (this build reads version {CHAOS_PLAN_VERSION})"
            )
        clauses_doc = doc.get("clauses")
        if not isinstance(clauses_doc, list):
            raise ChaosSpecError("chaos plan document has no clause list")
        return cls(
            clauses=[FaultClause.from_dict(c) for c in clauses_doc],
            seed=int(doc.get("seed", 0)),
            spec=str(doc.get("spec", "")),
            version=CHAOS_PLAN_VERSION,
        )


def _coerce(kind: str, name: str, raw: str) -> object:
    _, schema = _FAULT_KINDS[kind]
    if name not in schema:
        known = ", ".join(sorted(schema))
        raise ChaosSpecError(
            f"unknown parameter {name!r} for fault {kind!r} (known: {known})"
        )
    target = schema[name]
    try:
        value: object = target(raw)
    except ValueError as exc:
        raise ChaosSpecError(
            f"bad value {raw!r} for {kind}:{name} (expected {target.__name__})"
        ) from exc
    allowed = _ENUM_PARAMS.get((kind, name))
    if allowed is not None and value not in allowed:
        raise ChaosSpecError(
            f"bad value {raw!r} for {kind}:{name} (one of: {', '.join(allowed)})"
        )
    return value


def parse_chaos_spec(spec: str) -> ChaosPlan:
    """Parse a scenario spec string into a :class:`ChaosPlan`.

    Raises :class:`ChaosSpecError` with a pointed message on any
    malformed clause — a chaos run with a silently-dropped fault would
    "pass" without testing anything.
    """

    plan = ChaosPlan(spec=spec.strip())
    for chunk in spec.split(";"):
        clause_text = chunk.strip()
        if not clause_text:
            continue
        head, _, rest = clause_text.partition(":")
        head = head.strip()
        if head.startswith("seed") and (head == "seed" or head.startswith("seed=")):
            raw_seed = head.partition("=")[2] or rest.strip()
            try:
                plan.seed = int(raw_seed)
            except ValueError as exc:
                raise ChaosSpecError(f"bad seed value {raw_seed!r}") from exc
            continue
        if head not in _FAULT_KINDS:
            known = ", ".join(sorted(_FAULT_KINDS))
            raise ChaosSpecError(
                f"unknown fault kind {head!r} in clause {clause_text!r}"
                f" (known kinds: {known}, plus seed=N)"
            )
        default_param, _ = _FAULT_KINDS[head]
        params = dict(_DEFAULTS[head])
        if rest.strip():
            for item in rest.split(","):
                item = item.strip()
                if not item:
                    continue
                if "=" in item:
                    name, _, raw = item.partition("=")
                    params[name.strip()] = _coerce(head, name.strip(), raw.strip())
                else:
                    # bare token -> the kind's default parameter
                    params[default_param] = _coerce(head, default_param, item)
        plan.clauses.append(FaultClause(kind=head, params=params))
    return plan
