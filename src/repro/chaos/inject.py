"""The chaos runtime: a controller with injectable hook points.

The transport and storage layers call three hooks:

* ``on_frame(site, data)`` — around every socket send/recv.  May raise
  :class:`ChaosDrop` (connection drop), return garbled bytes, or sleep.
* ``on_fs_op(op, path)`` — before cache/checkpoint filesystem writes.
  May raise ``OSError`` with ``ENOSPC`` or ``EROFS``.
* ``journal_line(path, line)`` — around a journal append.  May return a
  torn prefix of the line, simulating a crash mid-``write(2)``.

All hooks are thread-safe (the serve layers are threaded) and count
every injected fault per (kind, site) pair; ``report()`` snapshots the
counters into a schema-versioned document and ``flush_report()`` appends
it to the ``REPRO_CHAOS_REPORT`` path, one JSON line per process, so a
farm run's workers each contribute a record.
"""

from __future__ import annotations

import atexit
import errno
import json
import os
import random
import threading
import time
from typing import Optional

from repro.chaos.plan import (
    CHAOS_ENV,
    CHAOS_PLAN_VERSION,
    CHAOS_REPORT_ENV,
    ChaosPlan,
    parse_chaos_spec,
)

CHAOS_REPORT_VERSION = 1


class ChaosDrop(ConnectionError):
    """An injected connection drop (subclass of ``ConnectionError`` so
    existing ``OSError`` handling paths treat it like a real peer reset)."""


class _ClauseState:
    """Mutable per-clause bookkeeping: per-site tick counts and fire budget."""

    __slots__ = ("clause", "fired", "ticks")

    def __init__(self, clause):
        self.clause = clause
        self.fired = 0
        self.ticks: dict[str, int] = {}

    def budget_left(self) -> bool:
        if int(self.clause.params.get("sticky", 0)):
            return True
        return self.fired < int(self.clause.params.get("times", 1))


class ChaosController:
    """Deterministic fault injector driven by a :class:`ChaosPlan`."""

    def __init__(self, plan: ChaosPlan):
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()
        self._states = [_ClauseState(clause) for clause in plan.clauses]
        self.injected: dict[str, int] = {}

    # -- bookkeeping ---------------------------------------------------

    def _count(self, kind: str, site: str) -> None:
        key = f"{kind}@{site}" if site else kind
        self.injected[key] = self.injected.get(key, 0) + 1

    def counters(self) -> dict[str, int]:
        with self._lock:
            return dict(self.injected)

    # -- transport hook ------------------------------------------------

    def on_frame(self, site: str, data: bytes) -> bytes:
        """Called around a socket frame at ``site`` (e.g. ``client.send``).

        Returns the (possibly garbled) bytes to use, sleeps for ``slow``
        clauses, or raises :class:`ChaosDrop`.
        """

        sleep_for = 0.0
        with self._lock:
            for state in self._states:
                clause = state.clause
                params = clause.params
                if clause.kind not in ("conn-drop", "garble", "slow"):
                    continue
                site_prefix = str(params.get("site", ""))
                if site_prefix and not site.startswith(site_prefix):
                    continue
                if not state.budget_left():
                    continue
                if clause.kind == "conn-drop":
                    direction = str(params.get("on", "any"))
                    if direction != "any" and not site.endswith("." + direction):
                        continue
                    ticks = state.ticks.get(site, 0) + 1
                    state.ticks[site] = ticks
                    if ticks > int(params.get("after", 3)):
                        state.fired += 1
                        state.ticks[site] = 0
                        self._count("conn-drop", site)
                        raise ChaosDrop(f"chaos: injected connection drop at {site}")
                elif clause.kind == "garble":
                    if self._rng.random() < float(params.get("rate", 0.1)):
                        state.fired += 1
                        self._count("garble", site)
                        data = self._garble(data, str(params.get("mode", "flip")))
                elif clause.kind == "slow":
                    if self._rng.random() < float(params.get("rate", 1.0)):
                        state.fired += 1
                        self._count("slow", site)
                        sleep_for = max(sleep_for, float(params.get("seconds", 0.05)))
        if sleep_for > 0.0:
            time.sleep(sleep_for)
        return data

    def _garble(self, data: bytes, mode: str) -> bytes:
        if not data:
            return data
        if mode == "truncate":
            # cut mid-frame but keep the newline so the peer parses a
            # torn JSON document rather than blocking forever
            keep = max(1, self._rng.randrange(1, max(2, len(data))))
            return data[:keep].rstrip(b"\n") + b"\n"
        corrupted = bytearray(data)
        # flip a byte in the JSON body, never the trailing newline
        span = len(corrupted) - 1 if corrupted.endswith(b"\n") else len(corrupted)
        if span <= 0:
            return data
        index = self._rng.randrange(span)
        corrupted[index] ^= 0xFF
        if corrupted[index] in (0x0A, 0x0D):  # don't fabricate a frame boundary
            corrupted[index] ^= 0x01
        return bytes(corrupted)

    # -- storage hooks -------------------------------------------------

    def on_fs_op(self, op: str, path: str = "") -> None:
        """Called before a filesystem write (``op`` in put/checkpoint/journal).

        Raises ``OSError(ENOSPC)`` / ``OSError(EROFS)`` when a matching
        clause fires.
        """

        with self._lock:
            for state in self._states:
                clause = state.clause
                if clause.kind not in ("enospc", "readonly"):
                    continue
                params = clause.params
                target = str(params.get("op", "any"))
                if target != "any" and target != op:
                    continue
                if not state.budget_left():
                    continue
                ticks = state.ticks.get(op, 0) + 1
                state.ticks[op] = ticks
                if ticks > int(params.get("after", 0)):
                    state.fired += 1
                    self._count(clause.kind, op)
                    if clause.kind == "enospc":
                        raise OSError(
                            errno.ENOSPC, f"chaos: injected ENOSPC on {op} {path}"
                        )
                    raise OSError(
                        errno.EROFS, f"chaos: injected read-only fs on {op} {path}"
                    )

    def journal_line(self, path: str, line: bytes) -> bytes:
        """Called with the encoded journal line about to be appended.

        Returns the bytes to actually write — a torn prefix (no trailing
        newline) when a ``torn-tail:journal`` clause fires.
        """

        return self._torn("journal", path, line)

    def checkpoint_payload(self, path: str, payload: bytes) -> bytes:
        """Same as :meth:`journal_line` for whole checkpoint documents."""

        return self._torn("checkpoint", path, payload)

    def _torn(self, target: str, path: str, data: bytes) -> bytes:
        if len(data) < 2:
            return data
        with self._lock:
            for state in self._states:
                clause = state.clause
                if clause.kind != "torn-tail":
                    continue
                if str(clause.params.get("target", "journal")) != target:
                    continue
                if not state.budget_left():
                    continue
                state.fired += 1
                self._count("torn-tail", target)
                # keep at least one byte, lose at least the newline
                keep = max(1, len(data) // 2)
                return data[:keep]
        return data

    # -- reporting -----------------------------------------------------

    def report(self) -> dict[str, object]:
        with self._lock:
            return {
                "chaos_report_version": CHAOS_REPORT_VERSION,
                "chaos_plan_version": CHAOS_PLAN_VERSION,
                "pid": os.getpid(),
                "spec": self.plan.spec,
                "seed": self.plan.seed,
                "injected": dict(self.injected),
                "total_injected": sum(self.injected.values()),
            }

    def flush_report(self, path: Optional[str] = None) -> None:
        """Append this process's report as one JSON line (O_APPEND, so
        concurrent worker processes interleave whole lines, never bytes)."""

        destination = path or os.environ.get(CHAOS_REPORT_ENV)
        if not destination:
            return
        line = (json.dumps(self.report(), sort_keys=True) + "\n").encode("utf-8")
        try:
            fd = os.open(destination, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(fd, line)
            finally:
                os.close(fd)
        except OSError:
            pass  # reporting must never take the run down


# -- process-level singleton -------------------------------------------

_controller: Optional[ChaosController] = None
_resolved = False
_singleton_lock = threading.Lock()


def chaos_controller() -> Optional[ChaosController]:
    """The process's controller, lazily parsed from ``REPRO_CHAOS``.

    Returns ``None`` (after one env lookup, cached) when chaos is off —
    the hot-path cost of a disabled chaos build.
    """

    global _controller, _resolved
    if _resolved:
        return _controller
    with _singleton_lock:
        if not _resolved:
            spec = os.environ.get(CHAOS_ENV, "").strip()
            if spec:
                _controller = ChaosController(parse_chaos_spec(spec))
                atexit.register(_controller.flush_report)
            _resolved = True
    return _controller


def set_chaos(plan: Optional[ChaosPlan]) -> Optional[ChaosController]:
    """Install a controller explicitly (tests). Returns it."""

    global _controller, _resolved
    with _singleton_lock:
        _controller = ChaosController(plan) if plan is not None else None
        _resolved = True
    return _controller


def reset_chaos() -> None:
    """Forget the cached controller so the next call re-reads the env."""

    global _controller, _resolved
    with _singleton_lock:
        _controller = None
        _resolved = False
