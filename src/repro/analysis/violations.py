"""Structured violation records produced by the static circuit-IR verifier.

Every check in :mod:`repro.analysis` reports its findings as
:class:`Violation` records instead of raising, so a single verification pass
can surface *all* problems of a compiled circuit at once, each with a
gate-level counterexample.  Violations are grouped into four rule families
(the ``rule`` field), mirroring the paper's statically checkable claims:

``hardware``
    Every emitted 2-qubit gate acts on a coupled physical pair.
``semantics``
    The routed circuit, movement elided, is a dependency-preserving
    reordering of the input DAG modulo commutation, and the tracked final
    layout matches the reported one.
``highway``
    GHZ chains are established before use, occupancy windows of consecutive
    shuttles never overlap, and aggregated units commute.
``metrics``
    Recomputed depth / eff-CNOT / swap counts equal what the compiler
    reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

__all__ = [
    "ALL_RULES",
    "RULE_HARDWARE",
    "RULE_HIGHWAY",
    "RULE_METRICS",
    "RULE_SEMANTICS",
    "VerificationError",
    "VerificationReport",
    "Violation",
    "format_report",
    "report_from_dict",
]

RULE_HARDWARE = "hardware"
RULE_SEMANTICS = "semantics"
RULE_HIGHWAY = "highway"
RULE_METRICS = "metrics"

#: All rule families, in the order the verifier runs them.
ALL_RULES = (RULE_HARDWARE, RULE_SEMANTICS, RULE_HIGHWAY, RULE_METRICS)


@dataclass(frozen=True, eq=False)
class Violation:
    """One verifier finding.

    Attributes
    ----------
    rule:
        Rule family (one of :data:`ALL_RULES`).
    code:
        Specific check within the family (``"uncoupled-2q"``,
        ``"dependency-order"``, ...).
    message:
        Human-readable one-liner.
    gate_index:
        Index into the *compiled* circuit's operation list, when the finding
        anchors to a specific emitted operation.
    qubits:
        Offending physical qubits, when applicable.
    counterexample:
        Free-form structured evidence: mapping snapshots, the logical gate a
        physical operation was interpreted as, unmet DAG predecessors, the
        mismatching metric values, ...
    """

    rule: str
    code: str
    message: str
    gate_index: int | None = None
    qubits: tuple[int, ...] = ()
    counterexample: Mapping[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "code": self.code,
            "message": self.message,
            "gate_index": self.gate_index,
            "qubits": list(self.qubits),
            "counterexample": dict(self.counterexample),
        }

    def __str__(self) -> str:
        where = f" @op[{self.gate_index}]" if self.gate_index is not None else ""
        qubits = f" qubits={list(self.qubits)}" if self.qubits else ""
        return f"[{self.rule}/{self.code}]{where}{qubits} {self.message}"


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of one :func:`repro.analysis.verify_compilation` pass."""

    compiler: str
    rules_checked: tuple[str, ...]
    violations: tuple[Violation, ...]
    ops_checked: int = 0
    protocol_instances: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_rule(self) -> dict[str, list[Violation]]:
        grouped: dict[str, list[Violation]] = {rule: [] for rule in self.rules_checked}
        for violation in self.violations:
            grouped.setdefault(violation.rule, []).append(violation)
        return grouped

    def as_dict(self) -> dict[str, object]:
        return {
            "compiler": self.compiler,
            "ok": self.ok,
            "rules_checked": list(self.rules_checked),
            "ops_checked": self.ops_checked,
            "protocol_instances": self.protocol_instances,
            "violations": [violation.as_dict() for violation in self.violations],
        }


def report_from_dict(data: Mapping[str, object]) -> VerificationReport:
    """Inverse of :meth:`VerificationReport.as_dict` (JSON round-trip)."""
    return VerificationReport(
        compiler=str(data["compiler"]),
        rules_checked=tuple(data.get("rules_checked") or ()),
        violations=tuple(
            Violation(
                rule=str(v["rule"]),
                code=str(v["code"]),
                message=str(v["message"]),
                gate_index=v.get("gate_index"),
                qubits=tuple(v.get("qubits") or ()),
                counterexample=dict(v.get("counterexample") or {}),
            )
            for v in (data.get("violations") or ())
        ),
        ops_checked=int(data.get("ops_checked") or 0),
        protocol_instances=int(data.get("protocol_instances") or 0),
    )


def format_report(report: VerificationReport, *, limit: int = 25) -> str:
    """Render a report as the text block the CLI and test failures print."""
    head = (
        f"verify[{report.compiler}]: "
        f"{'clean' if report.ok else f'{len(report.violations)} violation(s)'} "
        f"({report.ops_checked} ops, {report.protocol_instances} highway protocol instance(s), "
        f"rules: {', '.join(report.rules_checked)})"
    )
    lines = [head]
    for violation in report.violations[:limit]:
        lines.append(f"  - {violation}")
        if violation.counterexample:
            lines.append(f"    counterexample: {dict(violation.counterexample)!r}")
    if len(report.violations) > limit:
        lines.append(f"  ... and {len(report.violations) - limit} more")
    return "\n".join(lines)


class VerificationError(RuntimeError):
    """Raised by the fail-fast wrappers when a report has violations."""

    def __init__(self, report: VerificationReport, context: str = "") -> None:
        self.report = report
        self.context = context
        prefix = f"{context}: " if context else ""
        super().__init__(prefix + format_report(report))
