"""Rule 4 — consistency of the compiler's reported statistics and metrics.

The compilers report bookkeeping alongside the circuit: ``swaps_inserted``,
``ghz_preparations``, and (cached on the result) the depth / eff-CNOT
metrics.  Each is independently recomputable from the emitted IR, so a
mismatch means the stats cannot be trusted — exactly the kind of silent drift
a refactor of the scheduler or a new backend could introduce.
"""

from __future__ import annotations

import math

from ..compiler.result import CompilationResult
from ..hardware.noise import DEFAULT_NOISE, NoiseModel
from ..metrics import circuit_metrics
from .replay import ReplayOutcome
from .violations import RULE_METRICS, Violation

__all__ = ["check_consistency"]

#: Absolute tolerance for float metric comparisons (values are sums of small
#: integer-weighted terms, so exact agreement is expected; the slack only
#: covers accumulation order).
_ATOL = 1e-6


def check_consistency(
    result: CompilationResult,
    *,
    noise: NoiseModel = DEFAULT_NOISE,
    replay: ReplayOutcome | None = None,
    expected_depth: float | None = None,
    expected_eff_cnots: float | None = None,
) -> list[Violation]:
    """Cross-check reported stats/metrics against recomputed values.

    ``expected_depth`` / ``expected_eff_cnots`` let callers verify values they
    recorded elsewhere (a bench row, an experiment record) against the IR.
    When the result carries a cached metrics object (the value every consumer
    has already read), it is compared against a fresh recomputation too.
    """
    violations: list[Violation] = []
    stats = result.stats

    swap_count = sum(1 for op in result.circuit.operations if op.name == "swap")
    reported_swaps = stats.get("swaps_inserted")
    if reported_swaps is not None and int(reported_swaps) != swap_count:
        violations.append(
            Violation(
                rule=RULE_METRICS,
                code="swap-count-mismatch",
                message=(
                    f"stats report {int(reported_swaps)} inserted SWAPs but the circuit "
                    f"contains {swap_count}"
                ),
                counterexample={"reported": reported_swaps, "recomputed": swap_count},
            )
        )

    reported_ghz = stats.get("ghz_preparations")
    if replay is not None and reported_ghz is not None:
        recomputed_ghz = replay.protocol_instances
        if int(reported_ghz) != recomputed_ghz:
            violations.append(
                Violation(
                    rule=RULE_METRICS,
                    code="ghz-count-mismatch",
                    message=(
                        f"stats report {int(reported_ghz)} GHZ preparations but the replay "
                        f"found {recomputed_ghz} highway protocol instance(s)"
                    ),
                    counterexample={"reported": reported_ghz, "recomputed": recomputed_ghz},
                )
            )

    recomputed = circuit_metrics(result.circuit, result.topology, noise, strict=False)
    comparisons = [
        ("depth", expected_depth, recomputed.depth, "depth-mismatch"),
        ("eff_cnots", expected_eff_cnots, recomputed.eff_cnots, "eff-cnots-mismatch"),
    ]
    cached = result._metrics_cache
    if cached is not None and result._metrics_noise == noise:
        comparisons.append(("depth", cached.depth, recomputed.depth, "depth-mismatch"))
        comparisons.append(
            ("eff_cnots", cached.eff_cnots, recomputed.eff_cnots, "eff-cnots-mismatch")
        )
    seen: set[tuple[str, float]] = set()
    for label, reported, fresh, code in comparisons:
        if reported is None:
            continue
        if math.isclose(reported, fresh, rel_tol=0.0, abs_tol=_ATOL):
            continue
        dedup = (code, float(reported))
        if dedup in seen:
            continue
        seen.add(dedup)
        violations.append(
            Violation(
                rule=RULE_METRICS,
                code=code,
                message=(
                    f"reported {label} {reported} disagrees with the value {fresh} "
                    f"recomputed from the emitted circuit"
                ),
                counterexample={"reported": reported, "recomputed": fresh},
            )
        )
    return violations
