"""`verify_compilation` — the one-call entry point of the static verifier.

Composes the four rule families over a ``(source circuit, CompilationResult)``
pair and returns a :class:`~repro.analysis.violations.VerificationReport`.
``assert_verified`` is the fail-fast wrapper the engine's ``--verify`` hook
and the bench runner use.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..circuits.circuit import Circuit
from ..compiler.result import CompilationResult
from ..hardware.noise import DEFAULT_NOISE, NoiseModel
from .consistency import check_consistency
from .hardware import check_hardware_legality
from .replay import check_replay
from .violations import (
    ALL_RULES,
    RULE_HARDWARE,
    RULE_HIGHWAY,
    RULE_METRICS,
    RULE_SEMANTICS,
    VerificationError,
    VerificationReport,
    Violation,
)

__all__ = ["assert_verified", "verify_compilation"]


def verify_compilation(
    source: Circuit,
    result: CompilationResult,
    *,
    noise: NoiseModel = DEFAULT_NOISE,
    rules: Sequence[str] = ALL_RULES,
    expected_depth: float | None = None,
    expected_eff_cnots: float | None = None,
) -> VerificationReport:
    """Statically verify a compilation against its input circuit.

    Parameters
    ----------
    source:
        The logical circuit that was handed to the compiler.
    result:
        The compiler's output.
    noise:
        Noise model used for the depth recomputation (must match the one the
        metrics being checked were computed with).
    rules:
        Subset of :data:`~repro.analysis.violations.ALL_RULES` to run.
    expected_depth / expected_eff_cnots:
        Externally recorded metric values to cross-check against the IR
        (e.g. the numbers written into a bench row).
    """
    selected = tuple(rule for rule in ALL_RULES if rule in set(rules))
    unknown = set(rules) - set(ALL_RULES)
    if unknown:
        raise ValueError(f"unknown verifier rule(s) {sorted(unknown)}; choose from {ALL_RULES}")

    violations: list[Violation] = []
    ops_checked = len(result.circuit.operations)
    protocol_instances = 0

    if RULE_HARDWARE in selected:
        violations.extend(check_hardware_legality(result))

    replay = None
    if RULE_SEMANTICS in selected or RULE_HIGHWAY in selected:
        replay = check_replay(source, result, noise=noise)
        protocol_instances = replay.protocol_instances
        if RULE_SEMANTICS in selected:
            violations.extend(replay.semantic_violations)
        if RULE_HIGHWAY in selected:
            violations.extend(replay.highway_violations)

    if RULE_METRICS in selected:
        violations.extend(
            check_consistency(
                result,
                noise=noise,
                replay=replay,
                expected_depth=expected_depth,
                expected_eff_cnots=expected_eff_cnots,
            )
        )

    return VerificationReport(
        compiler=result.compiler,
        rules_checked=selected,
        violations=tuple(violations),
        ops_checked=ops_checked,
        protocol_instances=protocol_instances,
    )


def assert_verified(
    source: Circuit,
    result: CompilationResult,
    *,
    noise: NoiseModel = DEFAULT_NOISE,
    rules: Sequence[str] = ALL_RULES,
    context: str = "",
) -> VerificationReport:
    """Run :func:`verify_compilation` and raise ``VerificationError`` if dirty."""
    report = verify_compilation(source, result, noise=noise, rules=rules)
    if not report.ok:
        raise VerificationError(report, context)
    return report
