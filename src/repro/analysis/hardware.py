"""Rule 1 — hardware legality of the emitted circuit.

Every 2-qubit operation of a compiled circuit must act on a coupled physical
pair of the device :class:`~repro.hardware.topology.Topology`.  SWAPs and the
multi-target macros are expanded to their CNOT-level realisations first (the
same expansion the metric accounting uses), so a ``swap`` on an uncoupled pair
is flagged exactly like the three illegal CNOTs it would execute as.
"""

from __future__ import annotations

from ..circuits.gates import Gate
from ..circuits.library import swap_to_cnots
from ..compiler.result import CompilationResult
from .violations import RULE_HARDWARE, Violation

__all__ = ["check_hardware_legality"]


def check_hardware_legality(result: CompilationResult) -> list[Violation]:
    """Return one violation per emitted operation that is physically illegal."""
    topology = result.topology
    num_qubits = topology.num_qubits
    violations: list[Violation] = []
    for index, op in enumerate(result.circuit.operations):
        out_of_range = tuple(q for q in op.qubits if not 0 <= q < num_qubits)
        if out_of_range:
            violations.append(
                Violation(
                    rule=RULE_HARDWARE,
                    code="unknown-qubit",
                    message=(
                        f"{op.name} references qubit(s) {list(out_of_range)} outside the "
                        f"{num_qubits}-qubit device"
                    ),
                    gate_index=index,
                    qubits=op.qubits,
                )
            )
            continue
        expansion: list[Gate] | tuple[Gate, ...]
        if op.name == "swap":
            expansion = swap_to_cnots(op.qubits[0], op.qubits[1])
        elif op.is_multi_target:
            expansion = op.components()
        else:
            expansion = [op]
        for sub in expansion:
            if len(sub.qubits) != 2 or sub.is_measurement or sub.is_barrier:
                continue
            a, b = sub.qubits
            if not topology.is_coupled(a, b):
                violations.append(
                    Violation(
                        rule=RULE_HARDWARE,
                        code="uncoupled-2q",
                        message=(
                            f"{op.name} acts on physical pair ({a}, {b}) which is not an "
                            f"edge of {topology.name}"
                        ),
                        gate_index=index,
                        qubits=(a, b),
                        counterexample={"operation": op.name, "pair": (a, b)},
                    )
                )
                break
    return violations
