"""Rules 2 and 3 — semantic preservation and highway-protocol invariants.

The replayer walks a compiled (physical) circuit in emission order while
tracking the logical-to-physical mapping.  It elides pure *movement* (routing
SWAPs, the four-CNOT bridge identity) and the highway protocol's scaffolding
(GHZ preparation, cat-entangler, cat-disentangler, measurement corrections),
reconstructs the logical gate every remaining operation implements, and
consumes matching nodes of the input circuit's commutation-aware dependency
DAG (:class:`repro.circuits.dag.DependencyDag`).

A clean replay therefore proves the routed circuit is a dependency-preserving
reordering of the input modulo the commutation relations in
:mod:`repro.circuits.commutation`, with the tracked final layout equal to the
reported one.  Along the way the same walk checks the paper's protocol
invariants: fan-out gates only fire from an *established* (carrier-entangled)
GHZ member, a highway qubit is never re-initialised while it is still
entangled in an open shuttle (occupancy windows never overlap), and the
components aggregated into one protocol instance pairwise commute.

Known, deliberate limits (documented in the README rule catalogue):

* An input ``swap`` gate that falls back to the highway is decomposed into
  three CNOTs by the scheduler; the replayer matches those CNOTs only if the
  input itself contains them.  No repository workload emits this path.
* Operations on *unmapped* qubits that are not part of a recognised protocol
  shape are ignored rather than flagged — they cannot change the state of any
  logical qubit that has been mapped, so semantics is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuits.circuit import Circuit
from ..circuits.commutation import commutes
from ..circuits.dag import DependencyDag
from ..circuits.gates import Gate
from ..compiler.result import CompilationResult
from ..compiler.rewrite import fuse_zz_ladders
from ..hardware.noise import DEFAULT_NOISE, NoiseModel
from .violations import RULE_HIGHWAY, RULE_SEMANTICS, Violation

__all__ = ["ReplayOutcome", "check_replay", "replay_result"]

#: 2-qubit gates whose qubit order is semantically irrelevant.
_SYMMETRIC_2Q = frozenset({"cz", "cp", "swap"})

#: Depth-weight of a SWAP, mirroring the scheduler's ``_SWAP_WEIGHT``.
_SWAP_WEIGHT = 3.0


def _canonical_qubits(name: str, qubits: tuple[int, ...]) -> tuple[int, ...]:
    if name in _SYMMETRIC_2Q and len(qubits) == 2 and qubits[0] > qubits[1]:
        return (qubits[1], qubits[0])
    if name == "barrier":
        return tuple(sorted(qubits))
    return qubits


def _node_key(op: Gate) -> tuple:
    cbit = op.cbit if op.is_measurement else None
    return (op.name, _canonical_qubits(op.name, op.qubits), op.params, op.condition, cbit)


def _logical_key(
    name: str,
    qubits: tuple[int, ...],
    params: tuple[float, ...] = (),
    condition: tuple | None = None,
    cbit: int | None = None,
) -> tuple:
    return (name, _canonical_qubits(name, qubits), params, condition, cbit)


class _DagMatcher:
    """Incremental matcher over the input circuit's dependency DAG."""

    def __init__(self, circuit: Circuit) -> None:
        dag = DependencyDag(circuit, commutation_aware=True)
        self.ops: list[Gate] = list(circuit.operations)
        self.keys: list[tuple] = [_node_key(op) for op in self.ops]
        self.successors: list[list[int]] = dag.successor_lists()
        self.predecessors: list[list[int]] = [sorted(node.predecessors) for node in dag.nodes]
        self.indegree: list[int] = dag.in_degrees()
        self.matched: list[bool] = [False] * len(self.ops)
        self.num_matched = 0
        # key -> FIFO of ready (all predecessors matched), unmatched node ids
        self.ready: dict[tuple, list[int]] = {}
        # key -> all node ids, for diagnosing ordering violations
        self.by_key: dict[tuple, list[int]] = {}
        for index, key in enumerate(self.keys):
            self.by_key.setdefault(key, []).append(index)
            if self.indegree[index] == 0:
                self.ready.setdefault(key, []).append(index)

    def match(self, key: tuple) -> int | None:
        """Consume and return a ready node with ``key``, or ``None``."""
        bucket = self.ready.get(key)
        if not bucket:
            return None
        node = bucket.pop(0)
        self.matched[node] = True
        self.num_matched += 1
        for succ in self.successors[node]:
            self.indegree[succ] -= 1
            if self.indegree[succ] == 0 and not self.matched[succ]:
                self.ready.setdefault(self.keys[succ], []).append(succ)
        return node

    def blocked_node(self, key: tuple) -> int | None:
        """An unmatched input node with ``key`` whose dependencies are unmet."""
        for index in self.by_key.get(key, ()):
            if not self.matched[index] and self.indegree[index] > 0:
                return index
        return None

    def unmet_predecessors(self, node: int) -> list[int]:
        return [p for p in self.predecessors[node] if not self.matched[p]]

    def unmatched_nodes(self) -> list[int]:
        return [i for i, done in enumerate(self.matched) if not done]


@dataclass
class _Group:
    """A connected cluster of entangled highway/ancilla qubits (one shuttle)."""

    members: set[int] = field(default_factory=set)  # every qubit that ever joined
    active: set[int] = field(default_factory=set)  # currently entangled
    carrier: int | None = None  # logical hub whose value the members carry
    carrier_index: int | None = None  # emitted index of the cat-entangler CX
    start_index: int = 0
    start_clock: float = 0.0
    gates: list[Gate] = field(default_factory=list)  # reconstructed logical fan-out gates
    closed: bool = False
    release_clock: float = 0.0


@dataclass
class ReplayOutcome:
    """What one replay pass over a compiled circuit established."""

    semantic_violations: list[Violation] = field(default_factory=list)
    highway_violations: list[Violation] = field(default_factory=list)
    protocol_instances: int = 0
    swap_count: int = 0
    ops_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.semantic_violations and not self.highway_violations


class _Replayer:
    def __init__(self, source: Circuit, result: CompilationResult, noise: NoiseModel) -> None:
        self.result = result
        self.noise = noise
        self.matcher = _DagMatcher(source)
        self.l2p: dict[int, int] = dict(result.initial_layout)
        self.p2l: dict[int, int] = {}
        self.outcome = ReplayOutcome()
        for logical, physical in result.initial_layout.items():
            if physical in self.p2l:
                self._semantic(
                    "initial-layout-invalid",
                    f"initial layout maps logicals {self.p2l[physical]} and {logical} "
                    f"to the same physical qubit {physical}",
                    qubits=(physical,),
                )
            self.p2l[physical] = logical
        # parity-tracked unmatched Hadamards per *logical* qubit (the target-kind
        # protocol conjugates its hub with an H pair wrapping the instance)
        self.pending_h: dict[int, list[int]] = {}
        self.group_of: dict[int, _Group] = {}
        self.groups: list[_Group] = []
        self.clock: dict[int, float] = {}
        self.entangler_events = 0

    # ------------------------------------------------------------------ #
    # violation helpers
    # ------------------------------------------------------------------ #
    def _semantic(self, code: str, message: str, *, gate_index: int | None = None,
                  qubits: tuple[int, ...] = (), counterexample: dict | None = None) -> None:
        self.outcome.semantic_violations.append(
            Violation(RULE_SEMANTICS, code, message, gate_index=gate_index,
                      qubits=qubits, counterexample=counterexample or {})
        )

    def _highway(self, code: str, message: str, *, gate_index: int | None = None,
                 qubits: tuple[int, ...] = (), counterexample: dict | None = None) -> None:
        self.outcome.highway_violations.append(
            Violation(RULE_HIGHWAY, code, message, gate_index=gate_index,
                      qubits=qubits, counterexample=counterexample or {})
        )

    # ------------------------------------------------------------------ #
    # clock (mirrors the scheduler's `_emit` weights)
    # ------------------------------------------------------------------ #
    def _advance(self, op: Gate) -> float:
        clock = self.clock
        qubits = op.qubits
        if op.is_barrier:
            sync = max((clock.get(q, 0.0) for q in qubits), default=0.0)
            for q in qubits:
                clock[q] = sync
            return sync
        if op.is_measurement:
            weight = self.noise.meas_latency
        elif op.name == "swap":
            weight = _SWAP_WEIGHT
        elif len(qubits) == 2:
            weight = 1.0
        else:
            weight = 0.0
        start = max((clock.get(q, 0.0) for q in qubits), default=0.0)
        for q in qubits:
            clock[q] = start + weight
        return start

    # ------------------------------------------------------------------ #
    # highway group bookkeeping
    # ------------------------------------------------------------------ #
    def _group_join(self, qubit: int, index: int, start: float) -> _Group:
        group = self.group_of.get(qubit)
        if group is None:
            group = _Group(members={qubit}, active={qubit},
                           start_index=index, start_clock=start)
            self.groups.append(group)
            self.group_of[qubit] = group
        else:
            group.members.add(qubit)
            group.active.add(qubit)
        return group

    def _group_merge(self, a: int, b: int, index: int, start: float) -> _Group:
        ga = self._group_join(a, index, start)
        gb = self._group_join(b, index, start)
        if ga is gb:
            return ga
        if ga.carrier is not None and gb.carrier is not None:
            self._highway(
                "occupancy-overlap",
                f"entangling CX merges two carrier-established shuttles at qubits ({a}, {b})",
                gate_index=index,
                qubits=(a, b),
                counterexample={"carriers": (ga.carrier, gb.carrier)},
            )
        keep, fold = (ga, gb) if len(ga.members) >= len(gb.members) else (gb, ga)
        keep.members |= fold.members
        keep.active |= fold.active
        keep.carrier = keep.carrier if keep.carrier is not None else fold.carrier
        keep.carrier_index = (
            keep.carrier_index if keep.carrier_index is not None else fold.carrier_index
        )
        keep.start_index = min(keep.start_index, fold.start_index)
        keep.start_clock = min(keep.start_clock, fold.start_clock)
        keep.gates.extend(fold.gates)
        for q in fold.members:
            if self.group_of.get(q) is fold:
                self.group_of[q] = keep
        self.groups.remove(fold)
        return keep

    def _group_leave(self, qubit: int, index: int) -> None:
        group = self.group_of.pop(qubit, None)
        if group is None:
            return
        group.active.discard(qubit)
        if not group.active and not group.closed:
            self._close_group(group, index)

    def _close_group(self, group: _Group, index: int) -> None:
        group.closed = True
        group.release_clock = max(
            (self.clock.get(q, 0.0) for q in group.members), default=0.0
        )
        if group.carrier is not None:
            self.outcome.protocol_instances += 1
            self._check_unit_commutes(group, index)

    def _check_unit_commutes(self, group: _Group, index: int) -> None:
        gates = group.gates
        for i in range(len(gates)):
            for j in range(i + 1, len(gates)):
                if not commutes(gates[i], gates[j]):
                    self._highway(
                        "noncommuting-unit",
                        f"aggregated unit executes non-commuting logical gates "
                        f"{gates[i].name}{gates[i].qubits} and {gates[j].name}{gates[j].qubits} "
                        f"in one shuttle",
                        gate_index=index,
                        counterexample={
                            "gate_a": (gates[i].name, gates[i].qubits, gates[i].params),
                            "gate_b": (gates[j].name, gates[j].qubits, gates[j].params),
                        },
                    )
                    return

    # ------------------------------------------------------------------ #
    # matching helpers
    # ------------------------------------------------------------------ #
    def _conjugated(self, logical: int) -> bool:
        return len(self.pending_h.get(logical, ())) % 2 == 1

    def _try_match(self, key: tuple, index: int) -> int | None:
        """Match ``key`` unless one of its logicals sits inside an open H pair."""
        name, qubits = key[0], key[1]
        if name != "barrier" and any(self._conjugated(q) for q in qubits):
            return None
        return self.matcher.match(key)

    def _diagnose(self, key: tuple, index: int, op: Gate, logical_qubits: tuple[int, ...]) -> None:
        """Emit the right semantics violation for an unmatchable operation."""
        blocked = self.matcher.blocked_node(key)
        if blocked is not None:
            unmet = self.matcher.unmet_predecessors(blocked)
            self._semantic(
                "dependency-order",
                f"{op.name} on physical {op.qubits} (logical {logical_qubits}) matches input "
                f"op[{blocked}] but {len(unmet)} of its dependencies are still unexecuted",
                gate_index=index,
                qubits=op.qubits,
                counterexample={
                    "input_index": blocked,
                    "unmet_predecessors": unmet[:8],
                    "logical_gate": (key[0], logical_qubits),
                },
            )
            return
        self._semantic(
            "unexpected-op",
            f"{op.name} on physical {op.qubits} implements logical "
            f"{key[0]}{logical_qubits} which is not pending in the input circuit",
            gate_index=index,
            qubits=op.qubits,
            counterexample={
                "logical_gate": (key[0], logical_qubits, key[2]),
                "mapping": {q: self.p2l.get(q) for q in op.qubits},
            },
        )

    # ------------------------------------------------------------------ #
    # movement
    # ------------------------------------------------------------------ #
    def _movement_swap(self, op: Gate, index: int) -> None:
        a, b = op.qubits
        for q in (a, b):
            group = self.group_of.get(q)
            if group is not None and not group.closed:
                self._highway(
                    "occupancy-overlap",
                    f"routing SWAP touches highway qubit {q} while it is still entangled "
                    f"in an open shuttle",
                    gate_index=index,
                    qubits=(a, b),
                    counterexample={"entangled_qubit": q,
                                    "shuttle_started_at": group.start_index},
                )
        la = self.p2l.get(a)
        lb = self.p2l.get(b)
        if la is not None:
            self.l2p[la] = b
            self.p2l[b] = la
        elif b in self.p2l:
            del self.p2l[b]
        if lb is not None:
            self.l2p[lb] = a
            self.p2l[a] = lb
        elif a in self.p2l:
            del self.p2l[a]

    def _is_bridge(self, ops: list[Gate], i: int) -> bool:
        """Four contiguous CNOTs realising the bridge identity CX(c, t) via m."""
        if i + 3 >= len(ops):
            return False
        a, b, c, d = ops[i : i + 4]
        for op in (a, b, c, d):
            if op.name != "cx" or op.condition is not None:
                return False
        if a.qubits != c.qubits or b.qubits != d.qubits:
            return False
        ctrl, mid = a.qubits
        mid2, tgt = b.qubits
        if mid2 != mid or tgt == ctrl:
            return False
        # both ends must be unmapped (highway) qubits; the middle may be a
        # data qubit the bridge borrows (its state is restored by the identity)
        return ctrl not in self.p2l and tgt not in self.p2l

    # ------------------------------------------------------------------ #
    # main walk
    # ------------------------------------------------------------------ #
    def run(self) -> ReplayOutcome:
        ops = list(self.result.circuit.operations)
        self.outcome.ops_checked = len(ops)
        i = 0
        while i < len(ops):
            if self._is_bridge(ops, i):
                ctrl, mid = ops[i].qubits
                tgt = ops[i + 1].qubits[1]
                start = min(self._advance(ops[i + j]) for j in range(4))
                self._group_merge(ctrl, tgt, i, start)
                i += 4
                continue
            op = ops[i]
            start = self._advance(op)
            self._step(op, i, start)
            i += 1
        self._finish()
        return self.outcome

    def _step(self, op: Gate, index: int, start: float) -> None:
        p2l = self.p2l
        if op.name == "swap":
            self.outcome.swap_count += 1
            a, b = op.qubits
            if a in p2l and b in p2l:
                key = _logical_key("swap", (p2l[a], p2l[b]))
                if self._try_match(key, index) is not None:
                    return  # a logical SWAP gate: values swap, the mapping does not
            self._movement_swap(op, index)
            return

        if op.is_barrier:
            mapped = [q for q in op.qubits if q in p2l]
            if len(mapped) == len(op.qubits):
                key = _logical_key("barrier", tuple(p2l[q] for q in op.qubits))
                self._try_match(key, index)
            # protocol barriers (and any mixed ones) synchronise scheduling
            # only; they cannot change logical semantics
            return

        if op.is_measurement:
            q = op.qubits[0]
            if q in p2l:
                lq = p2l[q]
                key = _logical_key("measure", (lq,), cbit=op.cbit)
                if self._try_match(key, index) is None:
                    self._diagnose(key, index, op, (lq,))
                return
            self._group_leave(q, index)
            return

        if op.condition is not None:
            mapped = [q in p2l for q in op.qubits]
            if all(mapped):
                logical = tuple(p2l[q] for q in op.qubits)
                key = _logical_key(op.name, logical, op.params, op.condition)
                if self._try_match(key, index) is not None:
                    return
                if op.name == "z" and len(op.qubits) == 1:
                    return  # cat-disentangler parity correction on the hub
                self._diagnose(key, index, op, logical)
                return
            # measurement corrections / resets on highway qubits
            return

        num_qubits = len(op.qubits)
        if num_qubits == 1:
            q = op.qubits[0]
            if q in p2l:
                self._data_1q(op, index, q)
            else:
                self._ancilla_1q(op, index, q, start)
            return

        if num_qubits == 2:
            a, b = op.qubits
            a_mapped, b_mapped = a in p2l, b in p2l
            if a_mapped and b_mapped:
                logical = (p2l[a], p2l[b])
                key = _logical_key(op.name, logical, op.params)
                if self._try_match(key, index) is None:
                    self._diagnose(key, index, op, logical)
            elif a_mapped:
                self._entangler(op, index, start)
            elif b_mapped:
                self._fan_out(op, index)
            else:
                self._ancilla_2q(op, index, start)
            return

        # multi-qubit macros never appear in emitted circuits; interpret the
        # logical gate directly if the mapping covers it
        if all(q in p2l for q in op.qubits):
            logical = tuple(p2l[q] for q in op.qubits)
            key = _logical_key(op.name, logical, op.params)
            if self._try_match(key, index) is None:
                self._diagnose(key, index, op, logical)

    # ------------------------------------------------------------------ #
    # per-shape handlers
    # ------------------------------------------------------------------ #
    def _data_1q(self, op: Gate, index: int, q: int) -> None:
        lq = self.p2l[q]
        key = _logical_key(op.name, (lq,), op.params)
        if self._try_match(key, index) is not None:
            return
        if op.name == "h" and not op.params:
            # potential half of a target-kind conjugation pair; judged at the end
            self.pending_h.setdefault(lq, []).append(index)
            return
        self._diagnose(key, index, op, (lq,))

    def _ancilla_1q(self, op: Gate, index: int, q: int, start: float) -> None:
        if op.name != "h":
            return  # conditioned resets are handled above; others are inert here
        group = self.group_of.get(q)
        if group is None:
            self._group_join(q, index, start)  # GHZ preparation |+>
            return
        if group.carrier is not None:
            return  # cat-disentangler X-basis rotation; the measure follows
        self._highway(
            "occupancy-overlap",
            f"highway qubit {q} re-initialised by H while still entangled in the "
            f"shuttle opened at op[{group.start_index}]",
            gate_index=index,
            qubits=(q,),
            counterexample={"shuttle_started_at": group.start_index},
        )

    def _ancilla_2q(self, op: Gate, index: int, start: float) -> None:
        if op.name == "cx":
            a, b = op.qubits
            self._group_merge(a, b, index, start)
        # cz between highway qubits does not occur in any emission path; it is
        # diagonal and carrier-free, so it cannot affect data semantics

    def _entangler(self, op: Gate, index: int, start: float) -> None:
        data, entrance = op.qubits
        if op.name != "cx":
            logical = (self.p2l[data],)
            key = _logical_key(op.name, (self.p2l[data], entrance), op.params)
            self._semantic(
                "unexpected-op",
                f"{op.name} couples data qubit {data} to unmapped qubit {entrance} outside "
                f"any recognised protocol shape",
                gate_index=index,
                qubits=op.qubits,
                counterexample={"logical_control": logical[0], "key": key[:2]},
            )
            return
        group = self.group_of.get(entrance)
        if group is None or entrance not in group.active:
            carrier = self.p2l[data]
            revived = next(
                (grp for grp in self.groups if not grp.closed and grp.carrier == carrier),
                None,
            )
            if revived is not None:
                # cat-state re-extension: the hub re-entangles a member the
                # entangler measured out (dead hub-entrance revival) — the same
                # shuttle instance continues, no new carrier is established
                revived.members.add(entrance)
                revived.active.add(entrance)
                self.group_of[entrance] = revived
                return
            self._highway(
                "entangler-unestablished",
                f"cat-entangler CX targets highway qubit {entrance} with no established "
                f"GHZ chain",
                gate_index=index,
                qubits=op.qubits,
            )
            group = self._group_join(entrance, index, start)
        if group.carrier is not None:
            self._highway(
                "occupancy-overlap",
                f"cat-entangler CX re-entangles shuttle at entrance {entrance} which already "
                f"carries logical {group.carrier} (no disentangle in between)",
                gate_index=index,
                qubits=op.qubits,
                counterexample={"previous_carrier": group.carrier,
                                "previous_entangler": group.carrier_index},
            )
        group.carrier = self.p2l[data]
        group.carrier_index = index
        self.entangler_events += 1

    def _fan_out(self, op: Gate, index: int) -> None:
        member, spoke = op.qubits
        lt = self.p2l[spoke]
        group = self.group_of.get(member)
        if group is None or member not in group.active or group.carrier is None:
            self._highway(
                "fanout-unestablished",
                f"fan-out {op.name} fires from highway qubit {member} which is not an "
                f"established member of any carrier-entangled GHZ chain",
                gate_index=index,
                qubits=op.qubits,
                counterexample={"spoke_logical": lt},
            )
            return
        carrier = group.carrier
        if self._conjugated(carrier) and op.name == "cz" and not op.params:
            # target-shared CX group: the hub's H conjugation turns each
            # component into a CZ; undo it for matching
            logical_gate = Gate.trusted("cx", (lt, carrier))
        else:
            logical_gate = Gate.trusted(op.name, (carrier, lt), op.params)
        key = _logical_key(logical_gate.name, logical_gate.qubits, logical_gate.params)
        node = self.matcher.match(key)
        if node is None:
            self._diagnose(key, index, op, logical_gate.qubits)
            return
        group.gates.append(logical_gate)

    # ------------------------------------------------------------------ #
    # end-of-circuit checks
    # ------------------------------------------------------------------ #
    def _finish(self) -> None:
        for logical, indices in sorted(self.pending_h.items()):
            if len(indices) % 2 == 1:
                self._semantic(
                    "unexpected-op",
                    f"unbalanced H on logical qubit {logical}: {len(indices)} emitted "
                    f"Hadamard(s) match neither the input nor a conjugation pair",
                    gate_index=indices[-1],
                    counterexample={"logical": logical, "emitted_at": indices[:8]},
                )
        unmatched = self.matcher.unmatched_nodes()
        for node in unmatched[:50]:
            op = self.matcher.ops[node]
            self._semantic(
                "dropped-op",
                f"input op[{node}] {op.name}{op.qubits} was never executed by the "
                f"compiled circuit",
                counterexample={"input_index": node,
                                "unmet_predecessors": self.matcher.unmet_predecessors(node)[:8]},
            )
        if len(unmatched) > 50:
            self._semantic(
                "dropped-op",
                f"... and {len(unmatched) - 50} further input operations were never executed",
                counterexample={"total_dropped": len(unmatched)},
            )
        reported = self.result.final_layout
        mismatches = {
            logical: (tracked, reported.get(logical))
            for logical, tracked in sorted(self.l2p.items())
            if reported.get(logical) != tracked
        }
        extra = {
            logical: (None, physical)
            for logical, physical in sorted(reported.items())
            if logical not in self.l2p
        }
        mismatches.update(extra)
        if mismatches:
            self._semantic(
                "final-layout-mismatch",
                f"tracked final layout disagrees with the reported one on "
                f"{len(mismatches)} logical qubit(s)",
                counterexample={"logical -> (tracked, reported)": dict(
                    list(mismatches.items())[:10]
                )},
            )
        for group in self.groups:
            if not group.closed and group.carrier is not None:
                self._highway(
                    "unreleased-shuttle",
                    f"shuttle opened at op[{group.start_index}] (carrier logical "
                    f"{group.carrier}) is never disentangled",
                    gate_index=group.carrier_index,
                    counterexample={"active_qubits": sorted(group.active)[:10]},
                )


def replay_result(
    source: Circuit, result: CompilationResult, *, noise: NoiseModel = DEFAULT_NOISE
) -> ReplayOutcome:
    """Replay ``result`` against ``source`` once (no rewrite candidates)."""
    return _Replayer(source, result, noise).run()


def check_replay(
    source: Circuit, result: CompilationResult, *, noise: NoiseModel = DEFAULT_NOISE
) -> ReplayOutcome:
    """Replay with rewrite awareness: accept the input *or* its ZZ-fused form.

    The MECH pipeline optionally rewrites CX·RZ·CX ladders into the
    RZ/RZ/CP form before routing (:func:`repro.compiler.rewrite.
    fuse_zz_ladders`); a compiled circuit is semantically faithful if it
    replays cleanly against either the raw input or that rewrite.
    """
    outcome = replay_result(source, result, noise=noise)
    if outcome.clean:
        return outcome
    rewritten = fuse_zz_ladders(source)
    if list(rewritten.operations) != list(source.operations):
        alternative = replay_result(rewritten, result, noise=noise)
        if alternative.clean:
            return alternative
        # report whichever candidate got further
        if len(alternative.semantic_violations) < len(outcome.semantic_violations):
            return alternative
    return outcome
