"""Static analysis of compiled circuit IR.

``repro.analysis`` certifies that a :class:`~repro.compiler.result.
CompilationResult` is *correct*, not merely unchanged: hardware legality of
every emitted 2-qubit gate, semantic preservation of the input circuit under
movement elision, the highway protocol's occupancy/establishment invariants,
and consistency of the reported statistics.  See
:func:`~repro.analysis.verifier.verify_compilation`.
"""

from .consistency import check_consistency
from .hardware import check_hardware_legality
from .replay import ReplayOutcome, check_replay, replay_result
from .verifier import assert_verified, verify_compilation
from .violations import (
    ALL_RULES,
    RULE_HARDWARE,
    RULE_HIGHWAY,
    RULE_METRICS,
    RULE_SEMANTICS,
    VerificationError,
    VerificationReport,
    Violation,
    format_report,
    report_from_dict,
)

__all__ = [
    "ALL_RULES",
    "RULE_HARDWARE",
    "RULE_HIGHWAY",
    "RULE_METRICS",
    "RULE_SEMANTICS",
    "ReplayOutcome",
    "VerificationError",
    "VerificationReport",
    "Violation",
    "assert_verified",
    "check_consistency",
    "check_hardware_legality",
    "check_replay",
    "format_report",
    "replay_result",
    "report_from_dict",
    "verify_compilation",
]
