"""Capped exponential backoff with jitter and a total-deadline budget.

Shared by every reconnect loop in the serve & farm layers: the
``ServeClient`` connect path, the farm worker's coordinator reconnects,
and ``repro submit``'s readiness wait.  One policy object answers both
"how long do I sleep before attempt N?" and "have I blown my budget?",
so callers can't drift apart on semantics.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class BackoffPolicy:
    """Delay schedule: ``initial * multiplier**n`` capped at ``cap``, each
    delay jittered uniformly in ``[delay * (1 - jitter), delay]``, bounded
    by ``max_attempts`` tries and ``max_total_seconds`` of wall clock."""

    initial: float = 0.1
    cap: float = 5.0
    multiplier: float = 2.0
    jitter: float = 0.5
    max_attempts: int = 20
    max_total_seconds: float = 60.0

    def delays(self, rng: Optional[random.Random] = None) -> Iterator[float]:
        """Yield the jittered sleep before each retry (attempt 2, 3, ...)."""

        draw = (rng or random).random
        delay = self.initial
        while True:
            capped = min(delay, self.cap)
            yield capped * (1.0 - self.jitter * draw())
            delay = min(delay * self.multiplier, self.cap)


def retry_call(
    operation: Callable[[], T],
    *,
    policy: BackoffPolicy,
    retry_on: tuple[type[BaseException], ...] = (OSError,),
    rng: Optional[random.Random] = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
) -> T:
    """Call ``operation`` under the policy's attempt and deadline budget.

    Retries on ``retry_on`` exceptions with capped-exponential-jittered
    sleeps; raises the last exception once either budget is exhausted.
    ``on_retry(attempt, exc, delay)`` is invoked before each sleep.
    """

    deadline = clock() + policy.max_total_seconds
    delays = policy.delays(rng)
    attempt = 0
    while True:
        attempt += 1
        try:
            return operation()
        except retry_on as exc:
            if attempt >= policy.max_attempts:
                raise
            delay = next(delays)
            if clock() + delay > deadline:
                raise
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            sleep(delay)
