"""Warm per-device compile state shared across served requests.

Building the chiplet array, the highway layout, and the local router's
all-pairs distance tables is pure — a deterministic function of the static
device configuration (structure, chiplet footprint, cross-links, highway
density).  The registry therefore caches one :class:`DeviceState` per device
configuration and hands the *same* objects to every compile of that device:
reuse cannot change any output, it only removes the rebuild from the latency
path.

Thread-safety: a single lock guards the LRU map.  State construction happens
outside the lock (two threads may race to build the same device once; the
first insert wins and the loser's copy is dropped), so a slow build never
stalls unrelated requests.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from ..compiler.local_router import LocalRouter
from ..experiments.engine import Job
from ..hardware.array import ChipletArray
from ..highway.layout import HighwayLayout

__all__ = ["DeviceKey", "DeviceState", "WarmStateRegistry", "device_key"]

#: Hashable identity of everything the warm state depends on.
DeviceKey = tuple[str, int, int, int, Any, int]


def device_key(job: Job) -> DeviceKey:
    """The device-configuration fields of ``job`` that determine warm state.

    Benchmark, seed, noise, and compiler knobs are deliberately excluded:
    they change *what* is compiled, not the device tables being reused.
    """
    return (
        job.structure,
        job.chiplet_width,
        job.rows,
        job.cols,
        job.cross_links_per_edge,
        job.highway_density,
    )


@dataclass(frozen=True)
class DeviceState:
    """Resident compile state for one device configuration."""

    key: DeviceKey
    array: ChipletArray
    layout: HighwayLayout
    router: LocalRouter

    @classmethod
    def build(cls, job: Job) -> "DeviceState":
        """Construct and pre-warm the state for ``job``'s device."""
        array = job.build_array()
        # identical to the cold path inside compile_many(): density from the
        # job, interleave at its default
        layout = HighwayLayout(array, density=job.highway_density)
        router = LocalRouter(array.topology, layout.highway_qubits)
        # force the expensive pure tables now, off the request's critical path
        array.topology.distance_matrix()
        return cls(key=device_key(job), array=array, layout=layout, router=router)


class WarmStateRegistry:
    """LRU cache of :class:`DeviceState`, keyed by device configuration.

    ``get`` is the engine's warm-state provider
    (:func:`repro.experiments.engine.set_warm_state_provider` accepts it
    directly): given a job it returns resident state, building and caching
    it on first sight of a device.
    """

    def __init__(self, max_devices: int = 8) -> None:
        if max_devices < 1:
            raise ValueError("max_devices must be at least 1")
        self.max_devices = max_devices
        self._states: OrderedDict[DeviceKey, DeviceState] = OrderedDict()
        self._lock = threading.Lock()
        self._warm_hits = 0
        self._cold_builds = 0

    def __contains__(self, job: Job) -> bool:
        with self._lock:
            return device_key(job) in self._states

    def __len__(self) -> int:
        with self._lock:
            return len(self._states)

    def get(self, job: Job) -> DeviceState:
        """Resident state for ``job``'s device, building it if absent."""
        key = device_key(job)
        with self._lock:
            state = self._states.get(key)
            if state is not None:
                self._states.move_to_end(key)
                self._warm_hits += 1
                return state
        built = DeviceState.build(job)
        with self._lock:
            state = self._states.get(key)
            if state is not None:
                # another thread built the same device first; keep its copy
                # so every request for one device shares identical objects
                self._states.move_to_end(key)
                self._warm_hits += 1
                return state
            self._cold_builds += 1
            self._states[key] = built
            while len(self._states) > self.max_devices:
                self._states.popitem(last=False)
            return built

    def stats(self) -> dict[str, Any]:
        """Registry counters for the ``stats`` op and the latency report."""
        with self._lock:
            return {
                "devices_resident": len(self._states),
                "max_devices": self.max_devices,
                "warm_hits": self._warm_hits,
                "cold_builds": self._cold_builds,
                "device_keys": [list(key) for key in self._states],
            }

    def clear(self) -> None:
        with self._lock:
            self._states.clear()
