"""Wire schema for the warm-state compile server.

The protocol is deliberately small: newline-delimited JSON objects over a
local TCP socket, one request object per line, one response object per line,
matched by a client-chosen ``request_id``.  Versioning is explicit — every
request and response carries ``protocol`` so a client talking to a newer or
older server fails loudly instead of mis-parsing.

Request operations:

``compile``
    Execute one engine job.  The payload embeds the job exactly as the
    on-disk run manifests do (:func:`repro.experiments.engine.job_to_dict`)
    plus an optional execution-policy dict, so a served compile and a batch
    ``repro run`` compile are the *same* code path — same cache keys, same
    record payloads.
``ping``
    Liveness check; the response echoes the server's protocol version.
``stats``
    Warm-state registry and worker-pool counters.
``shutdown``
    Graceful stop: in-flight jobs finish, then the listener closes.

Protocol **v2** reuses the same framing for the compile farm's lease-based
work queue (:mod:`repro.farm`).  A v2 request carries ``protocol: 2`` and an
op-specific ``body`` object instead of ``job``/``policy``:

``claim``
    A worker asks the coordinator for up to ``max_jobs`` leases.
``complete`` / ``fail``
    A worker reports one finished lease (its record payload, or the
    structured ``job_error`` of a job that exhausted its single attempt).
``heartbeat``
    A worker extends the lease deadlines of its in-flight jobs.
``progress``
    Coordinator run progress; its payload embeds the same
    :func:`work_stats` block ``CompileServer.stats()`` reports, so both
    services expose one queue-depth/in-flight schema.

The control ops (``ping``/``stats``/``shutdown``) are valid under either
version, and the v1 wire format is byte-identical to what it always was —
old clients and servers interoperate unchanged.
"""

from __future__ import annotations

import json
import os
import secrets
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "FARM_PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "SERVE_PROTOCOL_VERSION",
    "WORK_STATS_VERSION",
    "FrameTooLargeError",
    "ServeProtocolError",
    "ServeRequest",
    "ServeResponse",
    "decode_line",
    "encode_message",
    "protocol_error_response",
    "read_frame",
    "request_token",
    "work_stats",
]

_TOKEN_PID: int | None = None
_TOKEN = ""


def request_token() -> str:
    """A per-process random token every request-id generator embeds.

    Request ids must be globally unique across every process that ever
    talks to one server: the server's dedup layer replays a recorded
    response for a repeated id, so two processes both counting ``claim-1``,
    ``claim-2``, ... would silently receive each other's answers.  The
    token is re-derived after ``fork`` (the pid check) so forked children
    never share their parent's id space.
    """
    global _TOKEN_PID, _TOKEN
    pid = os.getpid()
    if pid != _TOKEN_PID:
        _TOKEN = f"{pid:x}{secrets.token_hex(3)}"
        _TOKEN_PID = pid
    return _TOKEN

#: Bumped whenever the wire format changes incompatibly.
SERVE_PROTOCOL_VERSION = 1

#: Hard cap on one newline-JSON frame.  Generous (the largest compile
#: request — a full job manifest — is a few KiB), but bounded: a peer
#: streaming garbage without a newline can never grow server memory past
#: this.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: The farm work-queue extension (claim/complete/fail/heartbeat/progress).
FARM_PROTOCOL_VERSION = 2

#: Ops valid under any protocol version.
_CONTROL_OPS = ("ping", "stats", "shutdown")

_OPS_BY_PROTOCOL: dict[int, tuple[str, ...]] = {
    SERVE_PROTOCOL_VERSION: ("compile", *_CONTROL_OPS),
    FARM_PROTOCOL_VERSION: (
        "claim",
        "complete",
        "fail",
        "heartbeat",
        "progress",
        *_CONTROL_OPS,
    ),
}

#: Kept for backward compatibility: the v1 op tuple under its historic name.
_OPS = _OPS_BY_PROTOCOL[SERVE_PROTOCOL_VERSION]

#: Version stamp of the shared queue-stats block (see :func:`work_stats`).
WORK_STATS_VERSION = 1


def work_stats(
    *, total: int, queue_depth: int, in_flight: int, completed: int, failed: int
) -> dict[str, int]:
    """The one queue-progress schema both services report.

    ``CompileServer.stats()`` embeds it under ``"queue"`` (request-level
    counts) and the farm coordinator's ``progress``/``stats`` replies embed
    it under ``"queue"`` too (unique-job counts) — so dashboards and the CLI
    parse a single shape instead of two ad-hoc ones.
    """
    counts = {
        "total": total,
        "queue_depth": queue_depth,
        "in_flight": in_flight,
        "completed": completed,
        "failed": failed,
    }
    for name, value in counts.items():
        if not isinstance(value, int) or value < 0:
            raise ValueError(f"work_stats {name} must be a non-negative int, got {value!r}")
    return {"work_stats_version": WORK_STATS_VERSION, **counts}


class ServeProtocolError(ValueError):
    """A request or response line that violates the wire schema."""


class FrameTooLargeError(ServeProtocolError):
    """A frame exceeded :data:`MAX_FRAME_BYTES`; the connection cannot be
    resynchronised and must be closed."""


def read_frame(reader: Any, limit: int = MAX_FRAME_BYTES) -> bytes | None:
    """Read one newline-terminated frame from a buffered binary reader.

    Returns ``None`` at EOF.  Raises :class:`FrameTooLargeError` when a
    line exceeds ``limit`` bytes — ``readline`` is called with a bound,
    so the oversized frame is *detected* after buffering at most
    ``limit + 1`` bytes rather than after swallowing the whole stream.
    """
    line = reader.readline(limit + 1)
    if not line:
        return None
    if len(line) > limit:
        raise FrameTooLargeError(
            f"frame exceeds the {limit}-byte protocol cap; closing the connection"
        )
    return line


@dataclass(frozen=True)
class ServeRequest:
    """One client request line.

    ``job`` and ``policy`` are plain dicts in the engine's manifest encoding;
    they are only required (and only consulted) when ``op == "compile"``.
    Farm (v2) work-queue requests instead carry their op-specific fields in
    ``body``; control ops need neither.
    """

    op: str
    request_id: str
    job: dict[str, Any] | None = None
    policy: dict[str, Any] | None = None
    protocol: int = SERVE_PROTOCOL_VERSION
    body: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        ops = _OPS_BY_PROTOCOL.get(self.protocol)
        if ops is None:
            raise ServeProtocolError(
                f"unknown protocol version {self.protocol!r};"
                f" this build speaks {sorted(_OPS_BY_PROTOCOL)}"
            )
        if self.op not in ops:
            raise ServeProtocolError(
                f"unknown op {self.op!r} for protocol {self.protocol};"
                f" expected one of {', '.join(ops)}"
            )
        if not self.request_id:
            raise ServeProtocolError("request_id must be a non-empty string")
        if self.op == "compile" and not isinstance(self.job, dict):
            raise ServeProtocolError("compile requests must carry a job dict")
        if (
            self.protocol == FARM_PROTOCOL_VERSION
            and self.op not in _CONTROL_OPS
            and not isinstance(self.body, dict)
        ):
            raise ServeProtocolError(f"farm {self.op!r} requests must carry a body object")

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "protocol": self.protocol,
            "op": self.op,
            "request_id": self.request_id,
        }
        if self.job is not None:
            out["job"] = self.job
        if self.policy is not None:
            out["policy"] = self.policy
        if self.body is not None:
            out["body"] = self.body
        return out

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ServeRequest":
        version = _check_protocol(payload)
        op = payload.get("op")
        if not isinstance(op, str):
            raise ServeProtocolError("request is missing a string 'op'")
        request_id = payload.get("request_id")
        if not isinstance(request_id, str):
            raise ServeProtocolError("request is missing a string 'request_id'")
        job = payload.get("job")
        if job is not None and not isinstance(job, dict):
            raise ServeProtocolError("'job' must be an object when present")
        policy = payload.get("policy")
        if policy is not None and not isinstance(policy, dict):
            raise ServeProtocolError("'policy' must be an object when present")
        body = payload.get("body")
        if body is not None and not isinstance(body, dict):
            raise ServeProtocolError("'body' must be an object when present")
        return cls(
            op=op,
            request_id=request_id,
            job=job,
            policy=policy,
            protocol=version,
            body=body,
        )


@dataclass(frozen=True)
class ServeResponse:
    """One server response line, matched to its request by ``request_id``.

    ``ok`` is the single success discriminator: on success ``payload`` holds
    the op-specific result (for ``compile``: the record payload plus the
    engine cache key and a ``warm`` flag); on failure ``error`` holds a
    human-readable message and ``payload`` may carry structured detail (a
    ``job_error`` dict for failed jobs, or a ``code`` string for protocol
    errors).

    ``request_id`` is ``None`` only on the server's structured reply to a
    frame it could not parse at all — there is no request id to echo, so
    the error is addressed to the connection rather than a request.
    """

    request_id: str | None
    ok: bool
    payload: dict[str, Any] = field(default_factory=dict)
    error: str | None = None
    protocol: int = SERVE_PROTOCOL_VERSION

    def __post_init__(self) -> None:
        if self.protocol not in _OPS_BY_PROTOCOL:
            raise ServeProtocolError(
                f"unknown protocol version {self.protocol!r};"
                f" this build speaks {sorted(_OPS_BY_PROTOCOL)}"
            )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "protocol": self.protocol,
            "request_id": self.request_id,
            "ok": self.ok,
            "payload": self.payload,
        }
        if self.error is not None:
            out["error"] = self.error
        return out

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ServeResponse":
        version = _check_protocol(payload)
        request_id = payload.get("request_id")
        if request_id is not None and not isinstance(request_id, str):
            raise ServeProtocolError("response 'request_id' must be a string or null")
        ok = payload.get("ok")
        if not isinstance(ok, bool):
            raise ServeProtocolError("response is missing a boolean 'ok'")
        body = payload.get("payload")
        if not isinstance(body, dict):
            raise ServeProtocolError("response is missing an object 'payload'")
        error = payload.get("error")
        if error is not None and not isinstance(error, str):
            raise ServeProtocolError("'error' must be a string when present")
        return cls(request_id=request_id, ok=ok, payload=body, error=error, protocol=version)


def _check_protocol(payload: dict[str, Any]) -> int:
    version = payload.get("protocol")
    if version not in _OPS_BY_PROTOCOL:
        raise ServeProtocolError(
            f"protocol version mismatch: got {version!r}, "
            f"this build speaks {sorted(_OPS_BY_PROTOCOL)}"
        )
    return version


def encode_message(message: ServeRequest | ServeResponse) -> bytes:
    """One wire line for ``message``: compact JSON plus the terminating newline."""
    return json.dumps(message.to_dict(), separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes | str, kind: type) -> Any:
    """Parse one wire line into ``kind`` (ServeRequest or ServeResponse)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    text = line.strip()
    if not text:
        raise ServeProtocolError("empty protocol line")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ServeProtocolError(f"malformed JSON line: {exc}") from exc
    if not isinstance(payload, dict):
        raise ServeProtocolError("protocol line must be a JSON object")
    return kind.from_dict(payload)


def _salvage_request_id(line: bytes | str) -> str | None:
    """Best-effort request_id recovery from a frame that failed to decode,
    so the structured error reply can still be matched by the client."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        payload = json.loads(line.strip())
    except json.JSONDecodeError:
        return None
    if isinstance(payload, dict):
        request_id = payload.get("request_id")
        if isinstance(request_id, str) and request_id:
            return request_id
    return None


def protocol_error_response(line: bytes | str, exc: ServeProtocolError) -> ServeResponse:
    """The structured ``error`` reply a server sends for an illegal frame.

    Instead of silently dropping the connection, the peer gets a normal
    response line: ``ok=false``, a ``code`` in the payload classifying the
    failure (``oversized-frame`` / ``protocol-mismatch`` /
    ``malformed-frame`` / ``protocol-error``), and the offending frame's
    ``request_id`` echoed when it could be salvaged — ``null`` otherwise.
    """
    message = str(exc)
    request_id = _salvage_request_id(line)
    if isinstance(exc, FrameTooLargeError):
        code = "oversized-frame"
    elif "protocol version mismatch" in message:
        code = "protocol-mismatch"
    elif request_id is None:
        code = "malformed-frame"
    else:
        code = "protocol-error"
    return ServeResponse(
        request_id=request_id,
        ok=False,
        payload={"code": code},
        error=f"protocol error: {message}",
    )
