"""Wire schema for the warm-state compile server.

The protocol is deliberately small: newline-delimited JSON objects over a
local TCP socket, one request object per line, one response object per line,
matched by a client-chosen ``request_id``.  Versioning is explicit — every
request and response carries ``protocol`` so a client talking to a newer or
older server fails loudly instead of mis-parsing.

Request operations:

``compile``
    Execute one engine job.  The payload embeds the job exactly as the
    on-disk run manifests do (:func:`repro.experiments.engine.job_to_dict`)
    plus an optional execution-policy dict, so a served compile and a batch
    ``repro run`` compile are the *same* code path — same cache keys, same
    record payloads.
``ping``
    Liveness check; the response echoes the server's protocol version.
``stats``
    Warm-state registry and worker-pool counters.
``shutdown``
    Graceful stop: in-flight jobs finish, then the listener closes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "SERVE_PROTOCOL_VERSION",
    "ServeProtocolError",
    "ServeRequest",
    "ServeResponse",
    "decode_line",
    "encode_message",
]

#: Bumped whenever the wire format changes incompatibly.
SERVE_PROTOCOL_VERSION = 1

_OPS = ("compile", "ping", "stats", "shutdown")


class ServeProtocolError(ValueError):
    """A request or response line that violates the wire schema."""


@dataclass(frozen=True)
class ServeRequest:
    """One client request line.

    ``job`` and ``policy`` are plain dicts in the engine's manifest encoding;
    they are only required (and only consulted) when ``op == "compile"``.
    """

    op: str
    request_id: str
    job: dict[str, Any] | None = None
    policy: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ServeProtocolError(
                f"unknown op {self.op!r}; expected one of {', '.join(_OPS)}"
            )
        if not self.request_id:
            raise ServeProtocolError("request_id must be a non-empty string")
        if self.op == "compile" and not isinstance(self.job, dict):
            raise ServeProtocolError("compile requests must carry a job dict")

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "protocol": SERVE_PROTOCOL_VERSION,
            "op": self.op,
            "request_id": self.request_id,
        }
        if self.job is not None:
            out["job"] = self.job
        if self.policy is not None:
            out["policy"] = self.policy
        return out

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ServeRequest":
        _check_protocol(payload)
        op = payload.get("op")
        if not isinstance(op, str):
            raise ServeProtocolError("request is missing a string 'op'")
        request_id = payload.get("request_id")
        if not isinstance(request_id, str):
            raise ServeProtocolError("request is missing a string 'request_id'")
        job = payload.get("job")
        if job is not None and not isinstance(job, dict):
            raise ServeProtocolError("'job' must be an object when present")
        policy = payload.get("policy")
        if policy is not None and not isinstance(policy, dict):
            raise ServeProtocolError("'policy' must be an object when present")
        return cls(op=op, request_id=request_id, job=job, policy=policy)


@dataclass(frozen=True)
class ServeResponse:
    """One server response line, matched to its request by ``request_id``.

    ``ok`` is the single success discriminator: on success ``payload`` holds
    the op-specific result (for ``compile``: the record payload plus the
    engine cache key and a ``warm`` flag); on failure ``error`` holds a
    human-readable message and ``payload`` may carry structured detail (a
    ``job_error`` dict for failed jobs).
    """

    request_id: str
    ok: bool
    payload: dict[str, Any] = field(default_factory=dict)
    error: str | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "protocol": SERVE_PROTOCOL_VERSION,
            "request_id": self.request_id,
            "ok": self.ok,
            "payload": self.payload,
        }
        if self.error is not None:
            out["error"] = self.error
        return out

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ServeResponse":
        _check_protocol(payload)
        request_id = payload.get("request_id")
        if not isinstance(request_id, str):
            raise ServeProtocolError("response is missing a string 'request_id'")
        ok = payload.get("ok")
        if not isinstance(ok, bool):
            raise ServeProtocolError("response is missing a boolean 'ok'")
        body = payload.get("payload")
        if not isinstance(body, dict):
            raise ServeProtocolError("response is missing an object 'payload'")
        error = payload.get("error")
        if error is not None and not isinstance(error, str):
            raise ServeProtocolError("'error' must be a string when present")
        return cls(request_id=request_id, ok=ok, payload=body, error=error)


def _check_protocol(payload: dict[str, Any]) -> None:
    version = payload.get("protocol")
    if version != SERVE_PROTOCOL_VERSION:
        raise ServeProtocolError(
            f"protocol version mismatch: got {version!r}, "
            f"this build speaks {SERVE_PROTOCOL_VERSION}"
        )


def encode_message(message: ServeRequest | ServeResponse) -> bytes:
    """One wire line for ``message``: compact JSON plus the terminating newline."""
    return json.dumps(message.to_dict(), separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes | str, kind: type) -> Any:
    """Parse one wire line into ``kind`` (ServeRequest or ServeResponse)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    text = line.strip()
    if not text:
        raise ServeProtocolError("empty protocol line")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ServeProtocolError(f"malformed JSON line: {exc}") from exc
    if not isinstance(payload, dict):
        raise ServeProtocolError("protocol line must be a JSON object")
    return kind.from_dict(payload)
