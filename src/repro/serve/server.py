"""The warm-state compile server behind ``repro serve``.

A :class:`CompileServer` owns three things:

* a listening TCP socket speaking the newline-JSON protocol of
  :mod:`repro.serve.schema` (one reader thread per connection);
* a :class:`~concurrent.futures.ThreadPoolExecutor` whose workers run
  :func:`repro.experiments.engine._execute_keyed` — the *same* entry point
  the batch engine's process pool uses, so a served compile produces the
  byte-identical record payload and cache key a ``repro run`` would;
* a :class:`~repro.serve.state.WarmStateRegistry` installed as the engine's
  warm-state provider while the server runs, so repeat compiles against one
  device configuration skip array/layout/router construction entirely.

Responses may arrive out of request order (workers finish when they finish);
clients match them by ``request_id``.  A per-connection write lock keeps
concurrently-finishing responses from interleaving on the socket.
"""

from __future__ import annotations

import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from ..chaos import ChaosDrop, chaos_controller
from ..experiments.engine import (
    JobPolicy,
    ResultCache,
    _execute_keyed,
    config_key,
    job_from_dict,
    set_warm_state_provider,
)
from .dedup import ResponseLog
from .schema import (
    SERVE_PROTOCOL_VERSION,
    FrameTooLargeError,
    ServeProtocolError,
    ServeRequest,
    ServeResponse,
    decode_line,
    encode_message,
    protocol_error_response,
    read_frame,
    work_stats,
)
from .state import WarmStateRegistry

__all__ = ["CompileServer"]


class CompileServer:
    """Persistent compile server with warm per-device routing state.

    Parameters
    ----------
    host, port:
        Listen address; ``port=0`` binds an ephemeral port (read the chosen
        one from :attr:`port` after :meth:`start`).
    workers:
        Compile worker threads.  Compilation is pure Python and GIL-bound, so
        this sizes *concurrency* (how many requests make progress at once),
        not parallel speedup.
    cache:
        Optional :class:`ResultCache` shared with batch runs — served repeat
        requests then return memoised payloads without recompiling.
    policy:
        Default execution policy for requests that do not send one.
    max_devices:
        Warm-state LRU capacity (distinct device configurations resident).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 2,
        cache: ResultCache | None = None,
        policy: JobPolicy | None = None,
        max_devices: int = 8,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.host = host
        self.port = port
        self.workers = workers
        self.cache = cache
        self.policy = policy if policy is not None else JobPolicy()
        self.registry = WarmStateRegistry(max_devices=max_devices)
        self._sock: socket.socket | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._accept_thread: threading.Thread | None = None
        self._connection_threads: list[threading.Thread] = []
        self._connections: set[socket.socket] = set()
        self._previous_provider: Any = None
        self.dedup = ResponseLog()
        self._shutdown = threading.Event()
        self._state_lock = threading.Lock()
        self._requests_served = 0
        self._compiles = 0
        self._cache_hits = 0
        self._errors = 0
        # work_stats() counters: compile requests waiting for a pool slot,
        # executing right now, and finished (ok / not ok)
        self._queued = 0
        self._running = 0
        self._completed_jobs = 0
        self._failed_jobs = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "CompileServer":
        """Bind, install the warm-state provider, and begin accepting."""
        if self._sock is not None:
            raise RuntimeError("server is already running")
        self._shutdown.clear()
        self._sock = socket.create_server((self.host, self.port))
        self.port = self._sock.getsockname()[1]
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve-worker"
        )
        self._previous_provider = set_warm_state_provider(self.registry.get)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def shutdown(self) -> None:
        """Stop accepting, drain in-flight work, restore the engine hook."""
        if self._shutdown.is_set() and self._sock is None:
            return
        self._shutdown.set()
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        if self._pool is not None:
            # drain in-flight compiles first so their responses still reach
            # clients, then sever idle connections to unblock reader threads
            self._pool.shutdown(wait=True)
            self._pool = None
        with self._state_lock:
            open_conns = list(self._connections)
        for conn in open_conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for thread in list(self._connection_threads):
            thread.join(timeout=5.0)
        self._connection_threads.clear()
        set_warm_state_provider(self._previous_provider)
        self._previous_provider = None

    def serve_forever(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`shutdown`) stops us."""
        if self._sock is None:
            self.start()
        try:
            while not self._shutdown.wait(0.2):
                pass
        except KeyboardInterrupt:
            pass
        finally:
            self.shutdown()

    def __enter__(self) -> "CompileServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        sock = self._sock
        if sock is None:
            return
        try:
            sock.settimeout(0.2)
        except OSError:  # shutdown() closed the socket before we got here
            return
        while not self._shutdown.is_set():
            try:
                conn, _addr = sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="repro-serve-conn",
                daemon=True,
            )
            # only this thread mutates the list, so prune-then-append is safe
            self._connection_threads = [
                t for t in self._connection_threads if t.is_alive()
            ]
            self._connection_threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with self._state_lock:
            self._connections.add(conn)
        write_lock = threading.Lock()

        def respond(response: ServeResponse) -> None:
            # record before the first write: a reply lost to a connection
            # drop must be replayable when the client retries its request
            self.dedup.record(response)
            data = encode_message(response)
            chaos = chaos_controller()
            if chaos is not None:
                try:
                    data = chaos.on_frame("server.send", data)
                except ChaosDrop:
                    try:
                        conn.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
                    return
            with write_lock:
                try:
                    conn.sendall(data)
                except OSError:
                    pass

        try:
            reader = conn.makefile("rb")
            while True:
                try:
                    line = read_frame(reader)
                except FrameTooLargeError as exc:
                    # unrecoverable: framing is lost, so answer and sever
                    with self._state_lock:
                        self._errors += 1
                    respond(protocol_error_response(b"", exc))
                    break
                if line is None:
                    break
                if not line.strip():
                    continue
                chaos = chaos_controller()
                if chaos is not None:
                    line = chaos.on_frame("server.recv", line)
                try:
                    request = decode_line(line, ServeRequest)
                except ServeProtocolError as exc:
                    with self._state_lock:
                        self._errors += 1
                    respond(protocol_error_response(line, exc))
                    continue
                replayed = self.dedup.replay(request.request_id)
                if replayed is not None:
                    respond(replayed)
                    continue
                with self._state_lock:
                    self._requests_served += 1
                if request.op == "ping":
                    respond(
                        ServeResponse(
                            request_id=request.request_id,
                            ok=True,
                            payload={"protocol": SERVE_PROTOCOL_VERSION},
                        )
                    )
                elif request.op == "stats":
                    respond(
                        ServeResponse(
                            request_id=request.request_id, ok=True, payload=self.stats()
                        )
                    )
                elif request.op == "shutdown":
                    respond(ServeResponse(request_id=request.request_id, ok=True))
                    self._shutdown.set()
                    break
                else:  # compile — run on the worker pool, respond when done
                    pool = self._pool
                    if pool is None or self._shutdown.is_set():
                        respond(
                            ServeResponse(
                                request_id=request.request_id,
                                ok=False,
                                error="server is shutting down",
                            )
                        )
                        continue
                    with self._state_lock:
                        self._queued += 1
                    pool.submit(self._run_compile, request, respond)
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass
            with self._state_lock:
                self._connections.discard(conn)

    # ------------------------------------------------------------------ #
    # compile execution
    # ------------------------------------------------------------------ #
    def _run_compile(self, request: ServeRequest, respond: Any) -> None:
        with self._state_lock:
            self._queued -= 1
            self._running += 1
        try:
            response = self._compile_response(request)
        except Exception as exc:  # defensive: a worker must never die silently
            with self._state_lock:
                self._errors += 1
            response = ServeResponse(
                request_id=request.request_id,
                ok=False,
                error=f"{type(exc).__name__}: {exc}",
            )
        finally:
            with self._state_lock:
                self._running -= 1
        with self._state_lock:
            if response.ok:
                self._completed_jobs += 1
            else:
                self._failed_jobs += 1
        respond(response)

    def _compile_response(self, request: ServeRequest) -> ServeResponse:
        assert request.job is not None  # enforced by ServeRequest.__post_init__
        try:
            job = job_from_dict(request.job)
        except Exception as exc:
            with self._state_lock:
                self._errors += 1
            return ServeResponse(
                request_id=request.request_id,
                ok=False,
                error=f"invalid job: {type(exc).__name__}: {exc}",
            )
        policy = self.policy
        if request.policy is not None:
            try:
                policy = JobPolicy(**request.policy)
            except Exception as exc:
                with self._state_lock:
                    self._errors += 1
                return ServeResponse(
                    request_id=request.request_id,
                    ok=False,
                    error=f"invalid policy: {type(exc).__name__}: {exc}",
                )
        key = config_key(job)
        warm = job in self.registry
        cached = False
        payload: dict[str, Any] | None = None
        if self.cache is not None:
            hit = self.cache.get(key)
            if hit is not None:
                payload = dict(hit)
                cached = True
                with self._state_lock:
                    self._cache_hits += 1
        if payload is None:
            _, payload = _execute_keyed((key, dict(request.job), policy.to_dict()))
            if self.cache is not None and "job_error" not in payload:
                self.cache.put(key, job, payload)
        with self._state_lock:
            self._compiles += 1
        if "job_error" in payload:
            with self._state_lock:
                self._errors += 1
            job_error = payload["job_error"]
            message = (
                job_error.get("message", "") if isinstance(job_error, dict) else str(job_error)
            )
            return ServeResponse(
                request_id=request.request_id,
                ok=False,
                payload={"key": key, "warm": warm, "job_error": job_error},
                error=f"job failed: {message}",
            )
        return ServeResponse(
            request_id=request.request_id,
            ok=True,
            payload={"key": key, "warm": warm, "cached": cached, "result": payload},
        )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        """Server and warm-registry counters (the ``stats`` op's payload)."""
        with self._state_lock:
            counters = {
                "requests_served": self._requests_served,
                "compiles": self._compiles,
                "cache_hits": self._cache_hits,
                "errors": self._errors,
            }
            queue = work_stats(
                total=self._queued + self._running + self._completed_jobs + self._failed_jobs,
                queue_depth=self._queued,
                in_flight=self._running,
                completed=self._completed_jobs,
                failed=self._failed_jobs,
            )
        return {
            "protocol": SERVE_PROTOCOL_VERSION,
            "host": self.host,
            "port": self.port,
            "workers": self.workers,
            "caching": self.cache is not None,
            **counters,
            "queue": queue,
            "dedup": {"recorded": len(self.dedup), "replayed": self.dedup.replayed},
            "warm_state": self.registry.stats(),
        }
