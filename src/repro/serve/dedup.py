"""Server-side request-id deduplication.

A client that loses its connection after sending a request cannot know
whether the server processed it, so the hardened :class:`ServeClient`
retries the request on a fresh connection **with the same request_id**.
The server keeps a bounded LRU of recently-answered request ids mapped to
their full responses; a replayed id gets the recorded response back
verbatim instead of a second execution.  The response is recorded
*before* the first reply is written to the socket, so a reply lost to a
connection drop is always replayable — there is no window in which the
op executed but the dedup log missed it.

Capacity is bounded (default 512 entries) because the log only has to
cover the client's retry horizon — a few seconds — not the run's whole
history; request ids carry a per-process random token so ids never
recur across submitting processes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from .schema import ServeResponse

__all__ = ["ResponseLog"]


class ResponseLog:
    """Thread-safe bounded LRU of ``request_id -> ServeResponse``."""

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = max(1, capacity)
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, ServeResponse] = OrderedDict()
        self.replayed = 0

    def record(self, response: ServeResponse) -> None:
        """Remember ``response`` for replay; ignores null-id error replies."""
        request_id = response.request_id
        if request_id is None:
            return
        with self._lock:
            self._entries[request_id] = response
            self._entries.move_to_end(request_id)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def replay(self, request_id: str) -> ServeResponse | None:
        """The recorded response for ``request_id``, or ``None`` if unseen."""
        with self._lock:
            response = self._entries.get(request_id)
            if response is not None:
                self._entries.move_to_end(request_id)
                self.replayed += 1
            return response

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
