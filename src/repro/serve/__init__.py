"""Warm-state compile server: ``repro serve`` / ``repro submit``.

The batch engine pays device-state construction (chiplet array, highway
layout, router distance tables) once per job *process*.  The serve path
keeps that state resident in a long-lived server so interactive and
repeated compiles pay it once per *device configuration*:

* :mod:`~repro.serve.schema` — newline-JSON wire protocol, versioned;
* :mod:`~repro.serve.state` — per-device warm state and its LRU registry;
* :mod:`~repro.serve.server` — threaded socket server running the engine's
  own ``_execute_keyed`` entry point (same cache keys, same payloads);
* :mod:`~repro.serve.client` — blocking client plus concurrent submission
  helpers used by ``repro submit`` and the latency bench.
"""

from .client import ServeClient, submit_jobs, wait_until_ready
from .schema import (
    SERVE_PROTOCOL_VERSION,
    ServeProtocolError,
    ServeRequest,
    ServeResponse,
    decode_line,
    encode_message,
)
from .server import CompileServer
from .state import DeviceState, WarmStateRegistry, device_key

__all__ = [
    "SERVE_PROTOCOL_VERSION",
    "CompileServer",
    "DeviceState",
    "ServeClient",
    "ServeProtocolError",
    "ServeRequest",
    "ServeResponse",
    "WarmStateRegistry",
    "decode_line",
    "device_key",
    "encode_message",
    "submit_jobs",
    "wait_until_ready",
]
