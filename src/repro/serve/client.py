"""Synchronous client for the warm-state compile server.

One :class:`ServeClient` wraps one TCP connection.  Requests are written as
newline-JSON lines and responses matched back by ``request_id`` — the server
may answer out of order, so the client parks early arrivals until their
caller asks for them.  A single client instance is **not** a concurrency
primitive: for parallel submission open one client per thread (that is what
:func:`submit_jobs` does).

Transport robustness: connects run under a capped-exponential-backoff
policy with a total-deadline budget, and a failed request (peer reset,
garbled frame, injected chaos drop) is retried on a fresh connection with
the **same** ``request_id`` — the server's request-id dedup layer
guarantees the retried op is not executed twice, so retrying is safe for
every op the protocol defines.  Request ids carry a per-process random
token, making them globally unique across concurrently-submitting
processes (a plain counter would collide, poisoning the server's dedup).
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from ..chaos import ChaosDrop, chaos_controller
from ..experiments.engine import Job, JobPolicy, job_to_dict
from .retry import BackoffPolicy, retry_call
from .schema import (
    MAX_FRAME_BYTES,
    ServeProtocolError,
    ServeRequest,
    ServeResponse,
    decode_line,
    encode_message,
    request_token,
)

__all__ = ["ServeClient", "submit_jobs", "wait_until_ready"]

_REQUEST_COUNTER = itertools.count(1)

#: Default connect budget: ~20 attempts, capped at 5 s apiece, 60 s total.
DEFAULT_CONNECT_POLICY = BackoffPolicy()


class ServeClient:
    """Blocking single-connection client; use as a context manager.

    ``site`` labels this client's chaos hook points (``<site>.send`` /
    ``<site>.recv``) so scenario specs can target e.g. only the farm
    workers' sockets.  ``request_retries`` bounds how many times one
    request is retried on a fresh connection after a transport failure.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 60.0,
        connect_timeout: float | None = None,
        site: str = "client",
        connect_policy: BackoffPolicy | None = None,
        request_retries: int = 2,
    ) -> None:
        if port <= 0:
            raise ValueError("port must be a bound server port")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.site = site
        self.connect_policy = connect_policy
        self.request_retries = max(0, request_retries)
        self._sock: socket.socket | None = None
        self._reader: Any = None
        self._pending: dict[str, ServeResponse] = {}

    # ------------------------------------------------------------------ #
    # connection lifecycle
    # ------------------------------------------------------------------ #
    def connect(self) -> "ServeClient":
        if self._sock is None:
            def dial() -> socket.socket:
                return socket.create_connection(
                    (self.host, self.port),
                    timeout=self.connect_timeout or self.timeout,
                )

            if self.connect_policy is not None:
                sock = retry_call(dial, policy=self.connect_policy)
            else:
                sock = dial()
            sock.settimeout(self.timeout)
            self._sock = sock
            self._reader = sock.makefile("rb")
        return self

    def close(self) -> None:
        sock, self._sock = self._sock, None
        self._reader = None
        self._pending.clear()
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # request/response plumbing
    # ------------------------------------------------------------------ #
    def _send(self, request: ServeRequest) -> None:
        self.connect()
        assert self._sock is not None
        data = encode_message(request)
        chaos = chaos_controller()
        if chaos is not None:
            data = chaos.on_frame(f"{self.site}.send", data)
        self._sock.sendall(data)

    def _receive(self, request_id: str) -> ServeResponse:
        if request_id in self._pending:
            return self._pending.pop(request_id)
        reader = self._reader
        assert reader is not None
        while True:
            line = reader.readline(MAX_FRAME_BYTES + 1)
            if not line:
                break
            chaos = chaos_controller()
            if chaos is not None:
                line = chaos.on_frame(f"{self.site}.recv", line)
            response = decode_line(line, ServeResponse)
            if response.request_id is None:
                # the server could not parse something we sent; the frame
                # is unrecoverable, so surface it as a transport failure
                raise ServeProtocolError(
                    response.error or "server rejected an unparseable frame"
                )
            if response.request_id == request_id:
                return response
            self._pending[response.request_id] = response
        raise ServeProtocolError(
            f"connection closed before a response to request {request_id!r} arrived"
        )

    def request(self, request: ServeRequest) -> ServeResponse:
        """Send one request and block for its response.

        Transport failures (peer reset, closed connection, garbled frame)
        are retried on a fresh connection with the same ``request_id`` —
        the server's dedup layer makes the retry safe.  A protocol-version
        mismatch is never retried: it cannot heal.
        """
        delays = (self.connect_policy or DEFAULT_CONNECT_POLICY).delays()
        attempt = 0
        while True:
            attempt += 1
            try:
                self._send(request)
                return self._receive(request.request_id)
            except (ChaosDrop, OSError, ServeProtocolError) as exc:
                self.close()
                if isinstance(exc, ServeProtocolError) and "protocol version mismatch" in str(
                    exc
                ):
                    raise
                if attempt > self.request_retries:
                    raise
                time.sleep(next(delays))

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #
    @staticmethod
    def _next_id(prefix: str) -> str:
        return f"{prefix}-{request_token()}-{next(_REQUEST_COUNTER)}"

    def ping(self) -> ServeResponse:
        return self.request(ServeRequest(op="ping", request_id=self._next_id("ping")))

    def stats(self) -> dict[str, Any]:
        response = self.request(ServeRequest(op="stats", request_id=self._next_id("stats")))
        if not response.ok:
            raise ServeProtocolError(response.error or "stats request failed")
        return response.payload

    def shutdown_server(self) -> ServeResponse:
        return self.request(
            ServeRequest(op="shutdown", request_id=self._next_id("shutdown"))
        )

    def compile_job(self, job: Job, *, policy: JobPolicy | None = None) -> ServeResponse:
        """Submit one engine job and block for its compile response."""
        request = ServeRequest(
            op="compile",
            request_id=self._next_id("compile"),
            job=job_to_dict(job),
            policy=policy.to_dict() if policy is not None else None,
        )
        return self.request(request)


def wait_until_ready(
    host: str, port: int, *, attempts: int = 50, delay: float = 0.1
) -> bool:
    """Poll ``ping`` until the server answers; True once it does."""
    for _ in range(attempts):
        try:
            with ServeClient(host, port, timeout=5.0, request_retries=0) as client:
                if client.ping().ok:
                    return True
        except (OSError, ServeProtocolError):
            pass
        time.sleep(delay)
    return False


def submit_jobs(
    jobs: list[Job],
    host: str,
    port: int,
    *,
    concurrency: int = 4,
    policy: JobPolicy | None = None,
    timeout: float = 120.0,
    connect_timeout: float | None = None,
    connect_policy: BackoffPolicy | None = None,
) -> list[ServeResponse]:
    """Submit ``jobs`` concurrently (one connection per worker thread).

    Responses come back in ``jobs`` order regardless of completion order.
    """
    if not jobs:
        return []
    concurrency = max(1, min(concurrency, len(jobs)))
    clients: dict[int, ServeClient] = {}
    clients_lock = threading.Lock()

    def run(job: Job) -> ServeResponse:
        ident = threading.get_ident()
        with clients_lock:
            client = clients.get(ident)
            if client is None:
                client = ServeClient(
                    host,
                    port,
                    timeout=timeout,
                    connect_timeout=connect_timeout,
                    connect_policy=connect_policy,
                ).connect()
                clients[ident] = client
        return client.compile_job(job, policy=policy)

    try:
        with ThreadPoolExecutor(
            max_workers=concurrency, thread_name_prefix="repro-submit"
        ) as pool:
            return list(pool.map(run, jobs))
    finally:
        for client in clients.values():
            client.close()
