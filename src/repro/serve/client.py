"""Synchronous client for the warm-state compile server.

One :class:`ServeClient` wraps one TCP connection.  Requests are written as
newline-JSON lines and responses matched back by ``request_id`` — the server
may answer out of order, so the client parks early arrivals until their
caller asks for them.  A single client instance is **not** a concurrency
primitive: for parallel submission open one client per thread (that is what
:func:`submit_jobs` does).
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from ..experiments.engine import Job, JobPolicy, job_to_dict
from .schema import (
    ServeProtocolError,
    ServeRequest,
    ServeResponse,
    decode_line,
    encode_message,
)

__all__ = ["ServeClient", "submit_jobs", "wait_until_ready"]

_REQUEST_COUNTER = itertools.count(1)


class ServeClient:
    """Blocking single-connection client; use as a context manager."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *, timeout: float = 60.0) -> None:
        if port <= 0:
            raise ValueError("port must be a bound server port")
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._reader: Any = None
        self._pending: dict[str, ServeResponse] = {}

    # ------------------------------------------------------------------ #
    # connection lifecycle
    # ------------------------------------------------------------------ #
    def connect(self) -> "ServeClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._reader = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        sock, self._sock = self._sock, None
        self._reader = None
        self._pending.clear()
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # request/response plumbing
    # ------------------------------------------------------------------ #
    def _send(self, request: ServeRequest) -> None:
        self.connect()
        assert self._sock is not None
        self._sock.sendall(encode_message(request))

    def _receive(self, request_id: str) -> ServeResponse:
        if request_id in self._pending:
            return self._pending.pop(request_id)
        assert self._reader is not None
        for line in self._reader:
            response = decode_line(line, ServeResponse)
            if response.request_id == request_id:
                return response
            self._pending[response.request_id] = response
        raise ServeProtocolError(
            f"connection closed before a response to request {request_id!r} arrived"
        )

    def request(self, request: ServeRequest) -> ServeResponse:
        """Send one request and block for its response."""
        self._send(request)
        return self._receive(request.request_id)

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #
    @staticmethod
    def _next_id(prefix: str) -> str:
        return f"{prefix}-{next(_REQUEST_COUNTER)}"

    def ping(self) -> ServeResponse:
        return self.request(ServeRequest(op="ping", request_id=self._next_id("ping")))

    def stats(self) -> dict[str, Any]:
        response = self.request(ServeRequest(op="stats", request_id=self._next_id("stats")))
        if not response.ok:
            raise ServeProtocolError(response.error or "stats request failed")
        return response.payload

    def shutdown_server(self) -> ServeResponse:
        return self.request(
            ServeRequest(op="shutdown", request_id=self._next_id("shutdown"))
        )

    def compile_job(self, job: Job, *, policy: JobPolicy | None = None) -> ServeResponse:
        """Submit one engine job and block for its compile response."""
        request = ServeRequest(
            op="compile",
            request_id=self._next_id("compile"),
            job=job_to_dict(job),
            policy=policy.to_dict() if policy is not None else None,
        )
        return self.request(request)


def wait_until_ready(
    host: str, port: int, *, attempts: int = 50, delay: float = 0.1
) -> bool:
    """Poll ``ping`` until the server answers; True once it does."""
    for _ in range(attempts):
        try:
            with ServeClient(host, port, timeout=5.0) as client:
                if client.ping().ok:
                    return True
        except (OSError, ServeProtocolError):
            pass
        time.sleep(delay)
    return False


def submit_jobs(
    jobs: list[Job],
    host: str,
    port: int,
    *,
    concurrency: int = 4,
    policy: JobPolicy | None = None,
    timeout: float = 120.0,
) -> list[ServeResponse]:
    """Submit ``jobs`` concurrently (one connection per worker thread).

    Responses come back in ``jobs`` order regardless of completion order.
    """
    if not jobs:
        return []
    concurrency = max(1, min(concurrency, len(jobs)))
    clients: dict[int, ServeClient] = {}
    clients_lock = threading.Lock()

    def run(job: Job) -> ServeResponse:
        ident = threading.get_ident()
        with clients_lock:
            client = clients.get(ident)
            if client is None:
                client = ServeClient(host, port, timeout=timeout).connect()
                clients[ident] = client
        return client.compile_job(job, policy=policy)

    try:
        with ThreadPoolExecutor(
            max_workers=concurrency, thread_name_prefix="repro-submit"
        ) as pool:
            return list(pool.map(run, jobs))
    finally:
        for client in clients.values():
            client.close()
