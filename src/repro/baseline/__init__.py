"""Baseline SWAP-insertion compiler (stand-in for Qiskit optimisation level 3)."""

from .layout import compact_layout, initial_layout, trivial_layout
from .sabre import SabreRouter
from .transpiler import BaselineCompiler

__all__ = [
    "BaselineCompiler",
    "SabreRouter",
    "initial_layout",
    "trivial_layout",
    "compact_layout",
]
