"""Baseline compiler pipeline: layout selection followed by SABRE routing.

This is the reproduction's stand-in for "Qiskit, optimisation level 3" (see
DESIGN.md §4): the routing stage of that flow *is* SABRE, and the relative
comparison the paper draws — SWAP-chain communication vs. highway-mediated
communication — depends on the router's distance behaviour rather than on
Qiskit's peephole optimisations.  The pipeline optionally tries a handful of
layout seeds and keeps the best result by effective CNOT count, mirroring the
multi-trial behaviour of level 3.
"""

from __future__ import annotations


from ..circuits.circuit import Circuit
from ..compiler.result import CompilationResult
from ..hardware.noise import DEFAULT_NOISE, NoiseModel
from ..hardware.topology import Topology
from ..perf.timers import PhaseTimer
from .layout import initial_layout
from .sabre import SabreRouter

__all__ = ["BaselineCompiler"]


class BaselineCompiler:
    """SWAP-insertion baseline compiler for chiplet devices.

    Parameters
    ----------
    topology:
        Device coupling graph (on-chip and cross-chip links together).
    noise:
        Error model used only to pick the best trial (metrics are recomputed
        by the caller for whatever model it wants).
    trials:
        Number of routing trials with different tie-breaking seeds; the best
        result by eff_CNOTs is returned (1 keeps runtime minimal).
    layout_strategy:
        Initial placement strategy (``"compact"`` or ``"trivial"``).
    """

    def __init__(
        self,
        topology: Topology,
        *,
        noise: NoiseModel = DEFAULT_NOISE,
        trials: int = 1,
        layout_strategy: str = "compact",
        extended_set_size: int = 20,
        cross_chip_weight: float = 1.0,
        respect_commutation: bool = False,
        seed: int = 0,
    ) -> None:
        if trials < 1:
            raise ValueError("trials must be at least 1")
        self.topology = topology
        self.noise = noise
        self.trials = trials
        self.layout_strategy = layout_strategy
        self.extended_set_size = extended_set_size
        self.cross_chip_weight = cross_chip_weight
        self.respect_commutation = respect_commutation
        self.seed = seed

    def compile(
        self, circuit: Circuit, *, layout: dict[int, int] | None = None
    ) -> CompilationResult:
        """Compile ``circuit`` onto the device and return the best trial.

        The returned stats carry a per-phase wall-clock breakdown accumulated
        over every trial: ``layout`` (initial placement), ``route`` (SABRE
        SWAP insertion) and ``simulate`` (metric evaluation for trial
        selection).
        """
        timer = PhaseTimer()
        best: CompilationResult | None = None
        best_score = float("inf")
        for trial in range(self.trials):
            router = SabreRouter(
                self.topology,
                extended_set_size=self.extended_set_size,
                cross_chip_weight=self.cross_chip_weight,
                respect_commutation=self.respect_commutation,
                seed=self.seed + trial,
            )
            chosen_layout = layout
            if chosen_layout is None:
                with timer.phase("layout"):
                    chosen_layout = initial_layout(
                        circuit.num_qubits,
                        self.topology,
                        self.layout_strategy,
                        noise=self.noise,
                    )
            with timer.phase("route"):
                result = router.run(circuit, layout=chosen_layout)
            with timer.phase("simulate"):
                score = result.metrics(self.noise).eff_cnots
            if score < best_score:
                best_score = score
                best = result
        assert best is not None
        best.stats["trials"] = float(self.trials)
        timer.write_stats(best.stats)
        return best
