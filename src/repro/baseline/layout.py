"""Initial layout (logical-to-physical placement) strategies for the baseline.

The baseline compiler mimics a mainstream SWAP-insertion transpiler.  Its
initial placement matters mostly through the total routing distance, so two
simple strategies are provided:

* ``trivial`` — logical qubit ``i`` on physical qubit ``i`` (row-major over
  the device); this is what Qiskit uses before its layout passes refine it.
* ``compact`` — logical qubits packed chiplet by chiplet in a breadth-first
  order from a corner, which keeps interacting qubits of shallow circuits on
  nearby chiplets and is a reasonable stand-in for a density-aware layout
  pass.
* ``noise`` — a noise-adaptive packing: each physical qubit is scored by the
  summed relative error of its incident couplers (a cross-chip link costs
  ``cross_on_ratio``, an on-chip link 1), and logical qubits are packed into
  a connected region grown lowest-score-first, so shallow circuits sit away
  from the error-prone chiplet boundaries.
"""

from __future__ import annotations

import heapq
from collections import deque

from ..hardware.noise import DEFAULT_NOISE, NoiseModel
from ..hardware.topology import Topology

__all__ = ["trivial_layout", "compact_layout", "noise_adaptive_layout", "initial_layout"]


def trivial_layout(num_logical: int, topology: Topology) -> dict[int, int]:
    """Place logical qubit ``i`` on physical qubit ``i``."""
    _check_size(num_logical, topology)
    return {i: i for i in range(num_logical)}


def compact_layout(num_logical: int, topology: Topology) -> dict[int, int]:
    """Pack logical qubits in BFS order from physical qubit 0.

    A breadth-first ordering keeps the used region of the device connected and
    compact, which reduces worst-case routing distances for the baseline.
    """
    _check_size(num_logical, topology)
    order: list[int] = []
    seen = {0}
    queue = deque([0])
    while queue:
        q = queue.popleft()
        order.append(q)
        for nb in topology.neighbors(q):
            if nb not in seen:
                seen.add(nb)
                queue.append(nb)
    # devices are connected, but guard against isolated qubits anyway
    for q in topology.qubits():
        if q not in seen:
            order.append(q)
    return {i: order[i] for i in range(num_logical)}


def noise_adaptive_layout(
    num_logical: int, topology: Topology, noise: NoiseModel | None = None
) -> dict[int, int]:
    """Pack logical qubits into the lowest-noise connected region.

    Every physical qubit is scored by the summed relative error rate of its
    incident couplers under ``noise`` (cross-chip links weigh
    ``cross_on_ratio``, on-chip links 1).  The region is grown greedily from
    the best-scored qubit, always extending by the lowest-scored frontier
    qubit (ties broken by index, so the layout is deterministic): the result
    stays connected like ``compact`` but hugs the chip interior instead of
    radiating from a fixed corner across chiplet boundaries.
    """
    noise = DEFAULT_NOISE if noise is None else noise
    _check_size(num_logical, topology)
    score: dict[int, float] = {
        q: sum(
            noise.cross_on_ratio if topology.is_cross_chip(q, nb) else 1.0
            for nb in topology.neighbors(q)
        )
        for q in topology.qubits()
    }
    start = min(topology.qubits(), key=lambda q: (score[q], q))
    order: list[int] = []
    seen = {start}
    frontier = [(score[start], start)]
    while frontier:
        _, q = heapq.heappop(frontier)
        order.append(q)
        for nb in topology.neighbors(q):
            if nb not in seen:
                seen.add(nb)
                heapq.heappush(frontier, (score[nb], nb))
    # devices are connected, but guard against isolated qubits anyway
    for q in sorted(topology.qubits(), key=lambda q: (score[q], q)):
        if q not in seen:
            order.append(q)
    return {i: order[i] for i in range(num_logical)}


def initial_layout(
    num_logical: int,
    topology: Topology,
    strategy: str = "compact",
    *,
    noise: NoiseModel | None = None,
) -> dict[int, int]:
    """Dispatch on the layout ``strategy`` name."""
    if strategy == "trivial":
        return trivial_layout(num_logical, topology)
    if strategy == "compact":
        return compact_layout(num_logical, topology)
    if strategy == "noise":
        return noise_adaptive_layout(num_logical, topology, noise)
    raise ValueError(f"unknown layout strategy {strategy!r}")


def _check_size(num_logical: int, topology: Topology) -> None:
    if num_logical > topology.num_qubits:
        raise ValueError(
            f"circuit needs {num_logical} qubits but the device has only "
            f"{topology.num_qubits}"
        )
