"""SABRE-style SWAP-insertion router (the baseline compiler's core).

The paper's baseline is Qiskit at optimisation level 3, whose routing stage is
SABRE (Li, Ding, Xie; ASPLOS 2019).  This module implements the same
algorithm from scratch so the reproduction runs offline:

* maintain the *front layer* of the commutation-aware dependency DAG,
* execute every front-layer gate whose two logical qubits sit on coupled
  physical qubits,
* otherwise score every candidate SWAP (an edge touching a front-layer qubit)
  by the change in total distance of the front layer plus a discounted
  *extended set* lookahead, with a decay factor discouraging ping-pong swaps,
  and apply the best one.

SWAPs are emitted as ``swap`` macros; metric accounting later expands them to
three CNOTs, exactly as the paper counts them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.dag import DependencyDag
from ..circuits.gates import Gate
from ..hardware.topology import Topology
from ..compiler.result import CompilationResult
from .layout import initial_layout

__all__ = ["SabreRouter"]


class SabreRouter:
    """Route a logical circuit onto a topology by inserting SWAP gates.

    Parameters
    ----------
    topology:
        Device coupling graph (on-chip and cross-chip links alike, as the
        paper passes both to the baseline).
    extended_set_size:
        Number of lookahead 2-qubit gates in the extended set.
    extended_set_weight:
        Discount applied to the extended-set term of the heuristic.
    decay_factor / decay_reset_interval:
        SABRE's decay on recently swapped physical qubits, discouraging the
        router from moving the same qubit repeatedly.
    cross_chip_weight:
        Distance weight of cross-chip edges; 1.0 treats them like on-chip
        edges (Qiskit's behaviour when given a flat coupling map).
    respect_commutation:
        Whether the routing DAG may reorder commuting gates.  Mainstream
        transpilers route in strict program order, so the baseline defaults to
        ``False``; set ``True`` to study a commutation-aware baseline.
    seed:
        Tie-breaking randomisation seed.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        extended_set_size: int = 20,
        extended_set_weight: float = 0.5,
        decay_factor: float = 0.001,
        decay_reset_interval: int = 5,
        cross_chip_weight: float = 1.0,
        respect_commutation: bool = False,
        seed: int = 0,
    ) -> None:
        self.topology = topology
        self.extended_set_size = extended_set_size
        self.extended_set_weight = extended_set_weight
        self.decay_factor = decay_factor
        self.decay_reset_interval = decay_reset_interval
        self.cross_chip_weight = cross_chip_weight
        self.respect_commutation = respect_commutation
        self._rng = np.random.default_rng(seed)
        self._distance = topology.distance_matrix(cross_chip_weight=cross_chip_weight)

    # ------------------------------------------------------------------ #
    # public entry point
    # ------------------------------------------------------------------ #
    def run(
        self,
        circuit: Circuit,
        *,
        layout: Optional[Dict[int, int]] = None,
        layout_strategy: str = "compact",
    ) -> CompilationResult:
        """Compile ``circuit`` and return the routed physical circuit."""
        if layout is None:
            layout = initial_layout(circuit.num_qubits, self.topology, layout_strategy)
        logical_to_physical = dict(layout)
        physical_to_logical = {p: l for l, p in logical_to_physical.items()}
        if len(physical_to_logical) != len(logical_to_physical):
            raise ValueError("initial layout maps two logical qubits to one physical qubit")

        dag = DependencyDag(circuit, commutation_aware=self.respect_commutation)
        in_degree = {node.index: len(node.predecessors) for node in dag}
        front: Set[int] = {node.index for node in dag if in_degree[node.index] == 0}
        executed: Set[int] = set()

        out = Circuit(self.topology.num_qubits, name=f"{circuit.name}@{self.topology.name}")
        decay = np.ones(self.topology.num_qubits)
        swaps_inserted = 0
        steps_since_progress = 0

        def physical(op: Gate) -> Tuple[int, ...]:
            return tuple(logical_to_physical[q] for q in op.qubits)

        def execute(index: int) -> None:
            node = dag.node(index)
            mapped = node.op
            out.append(_remap_gate(mapped, logical_to_physical))
            executed.add(index)
            front.discard(index)
            for succ in node.successors:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    front.add(succ)

        while len(executed) < len(dag):
            # 1. execute everything currently executable
            progressed = True
            while progressed:
                progressed = False
                for index in sorted(front):
                    op = dag.node(index).op
                    if op.num_qubits <= 1 or op.is_barrier or op.is_measurement:
                        execute(index)
                        progressed = True
                    elif op.num_qubits == 2:
                        a, b = physical(op)
                        if self.topology.is_coupled(a, b):
                            execute(index)
                            progressed = True
                    else:
                        raise ValueError(
                            "baseline router only handles 1- and 2-qubit operations; "
                            f"got {op}"
                        )
            if len(executed) == len(dag):
                break

            # 2. pick the best SWAP for the blocked front layer
            blocked = [
                dag.node(i).op
                for i in front
                if dag.node(i).op.num_qubits == 2
            ]
            if not blocked:  # pragma: no cover - defensive; should not happen
                raise RuntimeError("router made no progress but no 2-qubit gate is blocked")
            extended = self._extended_set(dag, front, in_degree)
            candidates = self._candidate_swaps(blocked, logical_to_physical)
            best_swap = self._select_swap(
                candidates, blocked, extended, logical_to_physical, decay
            )
            a, b = best_swap
            out.swap(a, b)
            swaps_inserted += 1
            self._apply_swap(a, b, logical_to_physical, physical_to_logical)
            decay[a] += self.decay_factor
            decay[b] += self.decay_factor
            steps_since_progress += 1
            if steps_since_progress % self.decay_reset_interval == 0:
                decay[:] = 1.0

        final_layout = dict(logical_to_physical)
        return CompilationResult(
            circuit=out,
            topology=self.topology,
            initial_layout=dict(layout),
            final_layout=final_layout,
            compiler="baseline",
            stats={"swaps_inserted": float(swaps_inserted)},
        )

    # ------------------------------------------------------------------ #
    # heuristic machinery
    # ------------------------------------------------------------------ #
    def _extended_set(
        self, dag: DependencyDag, front: Set[int], in_degree: Dict[int, int]
    ) -> List[Gate]:
        """Upcoming 2-qubit gates reachable from the front layer (lookahead)."""
        extended: List[Gate] = []
        seen: Set[int] = set()
        frontier = list(front)
        while frontier and len(extended) < self.extended_set_size:
            next_frontier: List[int] = []
            for index in frontier:
                for succ in dag.node(index).successors:
                    if succ in seen:
                        continue
                    seen.add(succ)
                    op = dag.node(succ).op
                    if op.num_qubits == 2:
                        extended.append(op)
                        if len(extended) >= self.extended_set_size:
                            break
                    next_frontier.append(succ)
                if len(extended) >= self.extended_set_size:
                    break
            frontier = next_frontier
        return extended

    def _candidate_swaps(
        self, blocked: Sequence[Gate], logical_to_physical: Dict[int, int]
    ) -> List[Tuple[int, int]]:
        """Edges touching any physical qubit involved in a blocked gate."""
        involved: Set[int] = set()
        for op in blocked:
            involved.update(logical_to_physical[q] for q in op.qubits)
        candidates: Set[Tuple[int, int]] = set()
        for phys in involved:
            for nb in self.topology.neighbors(phys):
                candidates.add((min(phys, nb), max(phys, nb)))
        return sorted(candidates)

    def _select_swap(
        self,
        candidates: Sequence[Tuple[int, int]],
        blocked: Sequence[Gate],
        extended: Sequence[Gate],
        logical_to_physical: Dict[int, int],
        decay: np.ndarray,
    ) -> Tuple[int, int]:
        """Score candidate SWAPs with the SABRE heuristic and pick the best.

        Scoring is incremental: a SWAP of physical qubits ``(a, b)`` only
        changes the distance of gates whose endpoints sit on ``a`` or ``b``, so
        only those deltas are recomputed per candidate.
        """
        dist = self._distance
        blocked_phys = [
            (logical_to_physical[op.qubits[0]], logical_to_physical[op.qubits[1]])
            for op in blocked
        ]
        ext_phys = [
            (logical_to_physical[op.qubits[0]], logical_to_physical[op.qubits[1]])
            for op in extended
        ]
        n_front = max(len(blocked_phys), 1)
        n_ext = max(len(ext_phys), 1)
        base_front = sum(dist[p, q] for p, q in blocked_phys)
        base_ext = sum(dist[p, q] for p, q in ext_phys)

        touching_front: Dict[int, List[Tuple[int, int]]] = {}
        touching_ext: Dict[int, List[Tuple[int, int]]] = {}
        for pair in blocked_phys:
            touching_front.setdefault(pair[0], []).append(pair)
            touching_front.setdefault(pair[1], []).append(pair)
        for pair in ext_phys:
            touching_ext.setdefault(pair[0], []).append(pair)
            touching_ext.setdefault(pair[1], []).append(pair)

        def delta(pairs_by_qubit: Dict[int, List[Tuple[int, int]]], a: int, b: int) -> float:
            affected = {
                pair
                for pair in pairs_by_qubit.get(a, []) + pairs_by_qubit.get(b, [])
            }
            change = 0.0
            for p, q in affected:
                np_ = b if p == a else (a if p == b else p)
                nq = b if q == a else (a if q == b else q)
                change += dist[np_, nq] - dist[p, q]
            return change

        best_score = float("inf")
        best: List[Tuple[int, int]] = []
        for a, b in candidates:
            front_cost = (base_front + delta(touching_front, a, b)) / n_front
            ext_cost = (base_ext + delta(touching_ext, a, b)) / n_ext
            score = max(decay[a], decay[b]) * (
                front_cost + self.extended_set_weight * ext_cost
            )
            if score < best_score - 1e-12:
                best_score = score
                best = [(a, b)]
            elif abs(score - best_score) <= 1e-12:
                best.append((a, b))
        index = int(self._rng.integers(len(best))) if len(best) > 1 else 0
        return best[index]

    @staticmethod
    def _apply_swap(
        a: int,
        b: int,
        logical_to_physical: Dict[int, int],
        physical_to_logical: Dict[int, int],
    ) -> None:
        la = physical_to_logical.get(a)
        lb = physical_to_logical.get(b)
        if la is not None:
            logical_to_physical[la] = b
        if lb is not None:
            logical_to_physical[lb] = a
        if la is not None:
            physical_to_logical[b] = la
        elif b in physical_to_logical:
            del physical_to_logical[b]
        if lb is not None:
            physical_to_logical[a] = lb
        elif a in physical_to_logical:
            del physical_to_logical[a]


def _remap_gate(op: Gate, logical_to_physical: Dict[int, int]) -> Gate:
    """Rebuild ``op`` acting on physical qubits."""
    from ..circuits.circuit import _rebuild  # local import to avoid cycle at module load

    return _rebuild(op, tuple(logical_to_physical[q] for q in op.qubits))
