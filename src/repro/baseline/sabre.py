"""SABRE-style SWAP-insertion router (the baseline compiler's core).

The paper's baseline is Qiskit at optimisation level 3, whose routing stage is
SABRE (Li, Ding, Xie; ASPLOS 2019).  This module implements the same
algorithm from scratch so the reproduction runs offline:

* maintain the *front layer* of the commutation-aware dependency DAG,
* execute every front-layer gate whose two logical qubits sit on coupled
  physical qubits,
* otherwise score every candidate SWAP (an edge touching a front-layer qubit)
  by the change in total distance of the front layer plus a discounted
  *extended set* lookahead, with a decay factor discouraging ping-pong swaps,
  and apply the best one.

SWAPs are emitted as ``swap`` macros; metric accounting later expands them to
three CNOTs, exactly as the paper counts them.

The hot path is vectorized (PR 5) while staying **output-identical** to the
original gate-by-gate implementation (the golden suite in
``tests/test_routing_equivalence.py`` pins this):

* the logical<->physical mapping lives in numpy index arrays instead of dicts;
* all candidate SWAPs are scored in one batched distance-matrix gather
  instead of a per-candidate Python loop (a scalar fallback reproduces the
  historic float-accumulation order for the rare non-integer distance
  matrices, where summation order could flip a tie at the 1e-12 threshold);
* the executable front is drained generation by generation through a ready
  queue — after a SWAP only the blocked gates touching the swapped qubits are
  re-examined — instead of re-scanning ``sorted(front)`` until a full pass
  makes no progress;
* the extended set is only re-derived when a gate actually executed since the
  previous SWAP (its membership depends on the front layer alone, not on the
  mapping), and its BFS walks the DAG's cached successor lists.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..circuits.circuit import Circuit, _rebuild_trusted
from ..circuits.dag import DependencyDag
from ..circuits.gates import Gate
from ..hardware.topology import Topology
from ..compiler.result import CompilationResult
from .layout import initial_layout

__all__ = ["SabreRouter"]

#: Absolute score slack under which two candidate SWAPs count as tied.
_TIE_EPS = 1e-12


class SabreRouter:
    """Route a logical circuit onto a topology by inserting SWAP gates.

    Parameters
    ----------
    topology:
        Device coupling graph (on-chip and cross-chip links alike, as the
        paper passes both to the baseline).
    extended_set_size:
        Number of lookahead 2-qubit gates in the extended set.
    extended_set_weight:
        Discount applied to the extended-set term of the heuristic.
    decay_factor / decay_reset_interval:
        SABRE's decay on recently swapped physical qubits, discouraging the
        router from moving the same qubit repeatedly.
    cross_chip_weight:
        Distance weight of cross-chip edges; 1.0 treats them like on-chip
        edges (Qiskit's behaviour when given a flat coupling map).
    respect_commutation:
        Whether the routing DAG may reorder commuting gates.  Mainstream
        transpilers route in strict program order, so the baseline defaults to
        ``False``; set ``True`` to study a commutation-aware baseline.
    seed:
        Tie-breaking randomisation seed.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        extended_set_size: int = 20,
        extended_set_weight: float = 0.5,
        decay_factor: float = 0.001,
        decay_reset_interval: int = 5,
        cross_chip_weight: float = 1.0,
        respect_commutation: bool = False,
        seed: int = 0,
    ) -> None:
        self.topology = topology
        self.extended_set_size = extended_set_size
        self.extended_set_weight = extended_set_weight
        self.decay_factor = decay_factor
        self.decay_reset_interval = decay_reset_interval
        self.cross_chip_weight = cross_chip_weight
        self.respect_commutation = respect_commutation
        self._rng = np.random.default_rng(seed)
        self._distance = topology.distance_matrix(cross_chip_weight=cross_chip_weight)
        self._coupled = topology.adjacency_matrix()
        # Batched scoring sums distance deltas in a different order than the
        # historic per-candidate loop.  When every distance is an exactly
        # representable integer (the ubiquitous case: hop counts, possibly
        # with integer cross-chip weights) float addition is exact in any
        # order, so the batched scores are bit-identical; otherwise fall back
        # to the scalar loop to preserve the historic rounding near ties.
        self._exact_distances = bool(
            np.all(np.isfinite(self._distance))
            and np.all(self._distance == np.floor(self._distance))
        )
        # Candidate generation tables: every normalized edge once, ascending
        # lexicographically (the historic sorted-set-of-tuples order), plus
        # per-qubit arrays of indices into that list.  A SWAP's candidate set
        # is then a boolean scatter over edge ids — no per-swap sorting.
        n = topology.num_qubits
        edges = sorted(topology.edges())
        self._edge_list = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        edge_ids_of: dict[int, list[int]] = {q: [] for q in range(n)}
        for index, (u, v) in enumerate(edges):
            edge_ids_of[u].append(index)
            edge_ids_of[v].append(index)
        self._edge_ids: list[np.ndarray] = [
            np.asarray(edge_ids_of[q], dtype=np.int64) for q in range(n)
        ]

    # ------------------------------------------------------------------ #
    # public entry point
    # ------------------------------------------------------------------ #
    def run(
        self,
        circuit: Circuit,
        *,
        layout: dict[int, int] | None = None,
        layout_strategy: str = "compact",
    ) -> CompilationResult:
        """Compile ``circuit`` and return the routed physical circuit."""
        if layout is None:
            layout = initial_layout(circuit.num_qubits, self.topology, layout_strategy)
        num_physical = self.topology.num_qubits
        l2p = np.full(circuit.num_qubits, -1, dtype=np.int64)
        p2l = np.full(num_physical, -1, dtype=np.int64)
        for logical, physical in layout.items():
            if not 0 <= logical < circuit.num_qubits:
                raise ValueError(
                    f"layout maps logical qubit {logical}, which is outside"
                    f" the circuit's 0..{circuit.num_qubits - 1} register"
                )
            l2p[logical] = physical
            if p2l[physical] >= 0:
                raise ValueError(
                    "initial layout maps two logical qubits to one physical qubit"
                )
            p2l[physical] = logical

        if len(layout) < circuit.num_qubits:
            # the historic dict-based mapping failed loudly (KeyError) when a
            # gate touched a logical qubit the explicit layout did not map;
            # -1 sentinels in the index array would route silently instead,
            # so reject partial layouts up front (idle unmapped qubits are
            # fine, as before)
            for op in circuit.operations:
                for qubit in op.qubits:
                    if l2p[qubit] < 0:
                        raise ValueError(
                            f"layout does not map logical qubit {qubit},"
                            f" which is used by {op}"
                        )

        dag = DependencyDag(circuit, commutation_aware=self.respect_commutation)
        ops: list[Gate] = [node.op for node in dag]
        successors = dag.successor_lists()
        in_degree = dag.in_degrees()
        num_nodes = len(dag)
        # NOTE: ``front`` must stay a plain set with the same add/discard
        # history as the historic implementation — the extended-set BFS seeds
        # from ``list(front)``, whose iteration order decides which lookahead
        # gates make the size cut.
        front: set[int] = {i for i in range(num_nodes) if in_degree[i] == 0}
        executed = 0

        out = Circuit(num_physical, name=f"{circuit.name}@{self.topology.name}")
        # direct op-list append: every emitted qubit index is an l2p value or
        # a topology edge endpoint, both < num_physical by construction
        out_append = out.operations.append
        decay = np.ones(num_physical)
        swaps_inserted = 0
        steps_since_progress = 0

        # Lazily rebuilt whenever a gate executes (the front layer changed).
        # Pairs live in LOGICAL space (stable between SWAPs): the *unique*
        # logical pairs feed the delta term as per-qubit partner CSR tables
        # (the historic scorer dedups affected physical pairs, and an
        # injective layout makes logical dedup equivalent), and the involved
        # physical qubits / base distance sums are maintained incrementally
        # across SWAPs — a SWAP exchanges two occupancies and shifts each base
        # by exactly its own scored delta.
        front_pairs: np.ndarray | None = None  # logical (F, 2)
        ext_pairs: np.ndarray | None = None  # logical (E, 2)
        merged_csr = None
        involved = np.zeros(num_physical, dtype=bool)
        base_front = 0.0
        base_ext = 0.0
        front_dirty = True
        num_logical = circuit.num_qubits
        edge_u = self._edge_list[:, 0]
        edge_v = self._edge_list[:, 1]
        dist = self._distance

        # blocked 2-qubit front gates bucketed by their *current* physical
        # endpoints: after a SWAP of (a, b) only bucket[a] | bucket[b] can
        # have become executable, so nothing else is re-examined.  The
        # parallel ``blocked_pairs`` map keeps their logical pairs at hand so
        # dirty rebuilds need not re-scan the whole front (batched path only
        # — the scalar fallback replays the historic front-set scan order).
        buckets: list[set[int]] = [set() for _ in range(num_physical)]
        blocked_pairs: dict[int, tuple[int, ...]] = {}

        def drain(generation: list[int]) -> None:
            """Execute every executable gate, generation by generation.

            ``generation`` is an ascending-index snapshot of candidate nodes;
            successors readied by an execution form the next generation (again
            ascending), which reproduces the emission order of the historic
            rescan-``sorted(front)``-until-stuck loop without re-examining
            blocked gates whose mapping did not change.
            """
            nonlocal executed, front_dirty
            while generation:
                ready: list[int] = []
                for index in generation:
                    op = ops[index]
                    qubits = op.qubits
                    if len(qubits) == 2 and not (op.is_barrier or op.is_measurement):
                        a, b = l2p[qubits[0]], l2p[qubits[1]]
                        if not self._coupled[a, b]:
                            # stays blocked: only a SWAP can free it
                            buckets[a].add(index)
                            buckets[b].add(index)
                            blocked_pairs[index] = qubits
                            continue
                        buckets[a].discard(index)
                        buckets[b].discard(index)
                        blocked_pairs.pop(index, None)
                    elif len(qubits) > 2 and not (op.is_barrier or op.is_measurement):
                        raise ValueError(
                            "baseline router only handles 1- and 2-qubit "
                            f"operations; got {op}"
                        )
                    if len(qubits) == 2:
                        mapped = (int(l2p[qubits[0]]), int(l2p[qubits[1]]))
                    elif len(qubits) == 1:
                        mapped = (int(l2p[qubits[0]]),)
                    else:
                        mapped = tuple(int(l2p[q]) for q in qubits)
                    out_append(_rebuild_trusted(op, mapped))
                    executed += 1
                    front_dirty = True
                    front.discard(index)
                    for succ in successors[index]:
                        in_degree[succ] -= 1
                        if in_degree[succ] == 0:
                            front.add(succ)
                            ready.append(succ)
                generation = sorted(ready)

        drain(sorted(front))
        while executed < num_nodes:
            if front_dirty:
                if self._exact_distances:
                    # the batched scorer is order-insensitive (exact sums),
                    # so the maintained blocked map replaces the front scan
                    front_list = list(blocked_pairs.values())
                else:
                    front_list = self._front_pairs(ops, front)
                ext_list = self._extended_pairs(ops, successors, front)
                front_pairs = _pair_array(front_list)
                ext_pairs = _pair_array(ext_list)
                merged_csr = _partner_csr(
                    dict.fromkeys(front_list), dict.fromkeys(ext_list), num_logical
                )
                involved[:] = False
                if len(front_pairs):
                    involved[l2p[front_pairs].ravel()] = True
                base_front = _base_sum(dist, l2p, front_pairs)
                base_ext = _base_sum(dist, l2p, ext_pairs)
                front_dirty = False
            if front_pairs is None or not len(front_pairs):  # pragma: no cover
                raise RuntimeError(
                    "router made no progress but no 2-qubit gate is blocked"
                )

            # candidate SWAPs: every edge with an involved endpoint, in the
            # pre-sorted edge list's (historic sorted-set) order
            candidates = self._edge_list[involved[edge_u] | involved[edge_v]]
            if self._exact_distances:
                scores, delta_front, delta_ext = self._score_swaps_batched(
                    candidates,
                    front_pairs,
                    ext_pairs,
                    merged_csr,
                    base_front,
                    base_ext,
                    l2p,
                    p2l,
                    decay,
                )
            else:
                delta_front = delta_ext = None
                scores = self._score_swaps_scalar(
                    candidates, front_pairs, ext_pairs, l2p, decay
                )
            chosen, (a, b) = self._pick_swap(candidates, scores)
            out_append(Gate.trusted("swap", (a, b)))
            swaps_inserted += 1
            la, lb = p2l[a], p2l[b]
            if la >= 0:
                l2p[la] = b
            if lb >= 0:
                l2p[lb] = a
            p2l[a], p2l[b] = lb, la
            decay[a] += self.decay_factor
            decay[b] += self.decay_factor
            steps_since_progress += 1
            if steps_since_progress % self.decay_reset_interval == 0:
                decay[:] = 1.0

            # the SWAP exchanged the two qubits' blocked-gate populations;
            # only those gates can have become executable
            buckets[a], buckets[b] = buckets[b], buckets[a]
            drain(sorted(buckets[a] | buckets[b]))
            if not front_dirty:
                # nothing executed: the front is unchanged, so the involved
                # set just exchanged the two occupancies and each base moved
                # by exactly the chosen SWAP's (exact-integer) delta
                involved[a], involved[b] = bool(involved[b]), bool(involved[a])
                if delta_front is not None:
                    base_front = base_front + float(delta_front[chosen])
                    base_ext = base_ext + float(delta_ext[chosen])

        final_layout = {
            int(logical): int(physical)
            for logical, physical in enumerate(l2p)
            if physical >= 0
        }
        return CompilationResult(
            circuit=out,
            topology=self.topology,
            initial_layout=dict(layout),
            final_layout=final_layout,
            compiler="baseline",
            stats={"swaps_inserted": float(swaps_inserted)},
        )

    # ------------------------------------------------------------------ #
    # heuristic machinery
    # ------------------------------------------------------------------ #
    @staticmethod
    def _front_pairs(ops: Sequence[Gate], front: set[int]) -> list[tuple[int, ...]]:
        """Logical qubit pairs of the blocked 2-qubit front gates.

        Iterates ``front`` in set order like the historic list comprehension;
        the order is irrelevant to the batched scorer (exact sums) but keeps
        the scalar fallback's accumulation sequence identical.
        """
        return [
            ops[i].qubits
            for i in front
            if len(ops[i].qubits) == 2
            and not (ops[i].is_barrier or ops[i].is_measurement)
        ]

    def _extended_pairs(
        self,
        ops: Sequence[Gate],
        successors: Sequence[Sequence[int]],
        front: set[int],
    ) -> list[tuple[int, ...]]:
        """Logical pairs of upcoming 2-qubit gates (the lookahead window).

        Breadth-first over the dependency DAG from the front layer, truncated
        at ``extended_set_size`` — the exact traversal (and therefore the
        exact membership at the truncation boundary) of the historic
        implementation, seeded from ``list(front)`` and walking the cached
        successor lists in their sets' iteration order.
        """
        limit = self.extended_set_size
        extended: list[tuple[int, ...]] = []
        seen: set[int] = set()
        frontier = list(front)
        while frontier and len(extended) < limit:
            next_frontier: list[int] = []
            for index in frontier:
                for succ in successors[index]:
                    if succ in seen:
                        continue
                    seen.add(succ)
                    op = ops[succ]
                    if op.num_qubits == 2:
                        extended.append(op.qubits)
                        if len(extended) >= limit:
                            break
                    next_frontier.append(succ)
                if len(extended) >= limit:
                    break
            frontier = next_frontier
        return extended

    def _candidate_swaps(self, front_pairs: np.ndarray, l2p: np.ndarray) -> np.ndarray:
        """Edges touching any physical qubit involved in a blocked gate, (K, 2).

        Rows ascend lexicographically with ``row[0] < row[1]``, matching the
        historic ``sorted(set(...))`` of normalized edge tuples: the edge list
        is pre-sorted, so masking it by involved endpoints reads back in that
        same order.  (The run loop maintains the involved mask incrementally;
        this method recomputes it from scratch.)
        """
        involved = np.zeros(self.topology.num_qubits, dtype=bool)
        if len(front_pairs):
            involved[l2p[front_pairs].ravel()] = True
        return self._edge_list[
            involved[self._edge_list[:, 0]] | involved[self._edge_list[:, 1]]
        ]

    def _score_swaps_batched(
        self,
        candidates: np.ndarray,
        front_pairs: np.ndarray,
        ext_pairs: np.ndarray,
        merged_csr: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        base_front: float,
        base_ext: float,
        l2p: np.ndarray,
        p2l: np.ndarray,
        decay: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Score all candidate SWAPs in one batched distance-matrix gather.

        For a SWAP ``(a, b)`` only gates with an endpoint on ``a`` or ``b``
        change distance, and (matching the historic set-based accumulation)
        duplicated physical pairs contribute their delta once — the per-qubit
        partner CSR tables over the *unique logical* pairs are that dedup,
        built once per front change.  The delta is assembled adjacency-list
        style over both candidate endpoints at once, so the work is
        proportional to the affected pairs — the historic algorithm's
        complexity — rather than candidates x pairs.  All distances are
        exactly representable integers here, so the vector sums equal the
        historic per-candidate accumulation bit for bit.

        Returns ``(scores, delta_front, delta_ext)``; the caller advances the
        cached base sums by the chosen candidate's deltas.
        """
        dist = self._distance
        a = candidates[:, 0]
        b = candidates[:, 1]
        num_candidates = len(candidates)
        # both endpoints of every candidate in one flat batch: rows 0..K-1
        # twice, owning qubit a then b, partner-facing qubit b then a; the
        # front and extended groups ride the same batch (group-tagged CSR),
        # so each SWAP pays for one gather pipeline, not two
        own_phys = np.concatenate((a, b))
        other_phys = np.concatenate((b, a))
        own_log = p2l[own_phys]
        occupied = own_log >= 0
        safe_log = np.where(occupied, own_log, 0)
        counts, starts, partners, groups = merged_csr

        delta_front = np.zeros(num_candidates)
        delta_ext = np.zeros(num_candidates)
        if len(partners):
            cnt = np.where(occupied, counts[safe_log], 0)
            total = int(cnt.sum())
            if total:
                row_of = np.concatenate(
                    (np.arange(num_candidates), np.arange(num_candidates))
                )
                rows = np.repeat(row_of, cnt)
                prefix = np.zeros(len(cnt), dtype=np.int64)
                np.cumsum(cnt[:-1], out=prefix[1:])
                within = np.arange(total) - np.repeat(prefix, cnt)
                flat = np.repeat(starts[safe_log], cnt) + within
                partner_phys = l2p[partners[flat]]
                other_r = np.repeat(other_phys, cnt)
                # a pair whose endpoints are *both* swapped keeps its distance
                # (the matrix is symmetric) — the historic np_/nq remap
                terms = dist[other_r, partner_phys] - dist[
                    np.repeat(own_phys, cnt), partner_phys
                ]
                terms[partner_phys == other_r] = 0.0
                # one histogram over (row, group): first K bins = front, next
                # K bins = extended
                merged = np.bincount(
                    rows + groups[flat] * num_candidates,
                    weights=terms,
                    minlength=2 * num_candidates,
                )
                delta_front = merged[:num_candidates]
                delta_ext = merged[num_candidates:]

        n_front = max(len(front_pairs), 1)
        n_ext = max(len(ext_pairs), 1)
        front_cost = (base_front + delta_front) / n_front
        ext_cost = (base_ext + delta_ext) / n_ext
        decay_max = np.maximum(decay[a], decay[b])
        scores = decay_max * (front_cost + self.extended_set_weight * ext_cost)
        return scores, delta_front, delta_ext

    def _score_swaps_scalar(
        self,
        candidates: Sequence[tuple[int, int]],
        front_pairs: np.ndarray,
        ext_pairs: np.ndarray,
        l2p: np.ndarray,
        decay: np.ndarray,
    ) -> np.ndarray:
        """The historic per-candidate scoring loop (non-integer distances).

        Kept verbatim so float accumulation order — and therefore tie
        membership at the 1e-12 threshold — matches the original router when
        distance sums are not exact.
        """
        dist = self._distance
        candidates = [(int(a), int(b)) for a, b in candidates]
        blocked_phys = [(int(p), int(q)) for p, q in l2p[front_pairs]]
        ext_phys = [(int(p), int(q)) for p, q in l2p[ext_pairs]] if len(ext_pairs) else []
        n_front = max(len(blocked_phys), 1)
        n_ext = max(len(ext_phys), 1)
        base_front = sum(dist[p, q] for p, q in blocked_phys)
        base_ext = sum(dist[p, q] for p, q in ext_phys)

        touching_front: dict[int, list[tuple[int, int]]] = {}
        touching_ext: dict[int, list[tuple[int, int]]] = {}
        for pair in blocked_phys:
            touching_front.setdefault(pair[0], []).append(pair)
            touching_front.setdefault(pair[1], []).append(pair)
        for pair in ext_phys:
            touching_ext.setdefault(pair[0], []).append(pair)
            touching_ext.setdefault(pair[1], []).append(pair)

        def delta(pairs_by_qubit: dict[int, list[tuple[int, int]]], a: int, b: int) -> float:
            affected = {
                pair
                for pair in pairs_by_qubit.get(a, []) + pairs_by_qubit.get(b, [])
            }
            change = 0.0
            for p, q in affected:
                np_ = b if p == a else (a if p == b else p)
                nq = b if q == a else (a if q == b else q)
                change += dist[np_, nq] - dist[p, q]
            return change

        scores = np.empty(len(candidates))
        for i, (a, b) in enumerate(candidates):
            front_cost = (base_front + delta(touching_front, a, b)) / n_front
            ext_cost = (base_ext + delta(touching_ext, a, b)) / n_ext
            scores[i] = max(decay[a], decay[b]) * (
                front_cost + self.extended_set_weight * ext_cost
            )
        return scores

    def _pick_swap(
        self, candidates: np.ndarray, scores: np.ndarray
    ) -> tuple[int, tuple[int, int]]:
        """The historic sequential tie-break over ascending candidates.

        The running-best chain (a candidate within ``1e-12`` of the current
        best joins the tie *without* lowering the bar) is order-sensitive, so
        it is replayed candidate by candidate over the precomputed scores;
        ties consume one draw from the router's RNG exactly as before.
        """
        # Fast paths.  (1) When no other score lands within 2*eps of the
        # minimum, the chain provably ends as [argmin] — no tie, no RNG draw.
        # (2) Otherwise, scores above smin + 4*eps cannot influence the final
        # tie set: the first score <= smin + 2*eps strictly resets whatever
        # best they produced (gap > eps), and afterwards they are ignored
        # (gap > eps again), so the chain restricted to the <= smin + 2*eps
        # subsequence is exact — unless the (2*eps, 4*eps] band is occupied,
        # where a bridge through a band score could alter an append/reset
        # decision; then the full replay runs.
        smin = scores.min()
        near_mask = scores <= smin + 2 * _TIE_EPS
        near = int(near_mask.sum())
        if near == 1:
            chosen = int(np.argmin(scores))
            return chosen, (int(candidates[chosen, 0]), int(candidates[chosen, 1]))
        if int((scores <= smin + 4 * _TIE_EPS).sum()) == near:
            indices = np.flatnonzero(near_mask)
            replay = zip(indices.tolist(), scores[indices].tolist(), strict=True)
        else:
            replay = enumerate(scores.tolist())
        best_score = float("inf")
        best: list[int] = []
        for i, score in replay:
            if score < best_score - _TIE_EPS:
                best_score = score
                best = [i]
            elif abs(score - best_score) <= _TIE_EPS:
                best.append(i)
        chosen = best[int(self._rng.integers(len(best)))] if len(best) > 1 else best[0]
        return chosen, (int(candidates[chosen, 0]), int(candidates[chosen, 1]))


def _pair_array(pairs: list[tuple[int, ...]]) -> np.ndarray:
    """Qubit-pair tuples as an (N, 2) int64 array (empty-safe)."""
    if not pairs:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(pairs, dtype=np.int64)


def _partner_csr(
    front_unique, ext_unique, num_logical: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-logical-qubit partner lists of both unique-pair groups, CSR layout.

    ``(counts, starts, partners, groups)`` where the partners of logical
    qubit ``q`` are ``partners[starts[q] : starts[q] + counts[q]]`` and
    ``groups`` tags each slot 0 (front) or 1 (extended).  Built once per
    front change; the scorer gathers through the current layout to land in
    physical space and splits its histogram by the group tag.
    """
    f = _pair_array(list(front_unique))
    e = _pair_array(list(ext_unique))
    u = np.concatenate((f, e)) if len(e) else f
    if not len(u):
        empty = np.zeros(num_logical, dtype=np.int64)
        return empty, np.zeros(num_logical + 1, dtype=np.int64), u[:, :1].ravel(), u[:, :1].ravel()
    tag = np.concatenate(
        (np.zeros(len(f), dtype=np.int64), np.ones(len(e), dtype=np.int64))
    )
    ends = np.concatenate((u[:, 0], u[:, 1]))
    partners = np.concatenate((u[:, 1], u[:, 0]))
    group = np.concatenate((tag, tag))
    order = np.argsort(ends, kind="stable")
    counts = np.bincount(ends, minlength=num_logical)
    starts = np.zeros(num_logical + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    return counts, starts, partners[order], group[order]


def _base_sum(dist: np.ndarray, l2p: np.ndarray, pairs: np.ndarray) -> float:
    """Total current distance of a pair group (float, exact for hop counts)."""
    if not len(pairs):
        return 0.0
    phys = l2p[pairs]
    return float(dist[phys[:, 0], phys[:, 1]].sum())
