"""Evaluation metrics from the paper's Section 7.1.

Two quantities are reported for every compiled circuit:

* the **weighted depth** — only 2-qubit gates and measurements count, with a
  measurement weighted by its latency relative to a 2-qubit gate (default 2);
* the **effective CNOT count** —
  ``#on_chip + (p_cross/p_on) * #cross_chip + (p_meas/p_on) * #measurements``,
  which folds the error-rate disparity between operation types into a single
  error-proportional number.

Improvements are reported as the paper does: ``1 - ours / baseline`` (positive
is better), and summaries across benchmarks use the geometric mean of the
ratio, matching the "average (geomean)" language in Section 7.2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable

from .circuits.circuit import Circuit
from .circuits.library import expand_macros
from .hardware.noise import DEFAULT_NOISE, NoiseModel
from .hardware.topology import Topology

__all__ = [
    "OperationCounts",
    "CircuitMetrics",
    "count_operations",
    "circuit_metrics",
    "improvement",
    "normalized_ratio",
    "geometric_mean",
]

#: 2-qubit gate names counted as "CNOT-equivalent" operations.
_TWO_QUBIT_NAMES = frozenset({"cx", "cz", "cp", "crz"})


@dataclass(frozen=True)
class OperationCounts:
    """Counts of the error-prone operations in a physical circuit."""

    on_chip_cnots: int = 0
    cross_chip_cnots: int = 0
    measurements: int = 0
    one_qubit_gates: int = 0

    @property
    def total_cnots(self) -> int:
        return self.on_chip_cnots + self.cross_chip_cnots

    def effective_cnots(self, noise: NoiseModel = DEFAULT_NOISE) -> float:
        """The paper's #eff_CNOTs metric under ``noise``."""
        return noise.effective_cnots(
            self.on_chip_cnots, self.cross_chip_cnots, self.measurements
        )

    def __add__(self, other: "OperationCounts") -> "OperationCounts":
        return OperationCounts(
            self.on_chip_cnots + other.on_chip_cnots,
            self.cross_chip_cnots + other.cross_chip_cnots,
            self.measurements + other.measurements,
            self.one_qubit_gates + other.one_qubit_gates,
        )


@dataclass(frozen=True)
class CircuitMetrics:
    """Depth and operation counts of one compiled circuit."""

    depth: float
    counts: OperationCounts
    eff_cnots: float
    num_physical_qubits: int
    num_operations: int

    def as_dict(self) -> dict[str, float]:
        return {
            "depth": self.depth,
            "on_chip_cnots": self.counts.on_chip_cnots,
            "cross_chip_cnots": self.counts.cross_chip_cnots,
            "measurements": self.counts.measurements,
            "eff_cnots": self.eff_cnots,
            "num_physical_qubits": self.num_physical_qubits,
            "num_operations": self.num_operations,
        }


def count_operations(
    circuit: Circuit,
    topology: Topology | None = None,
    *,
    strict: bool = True,
) -> OperationCounts:
    """Count on-chip CNOTs, cross-chip CNOTs and measurements.

    ``circuit`` should be a *physical* circuit (SWAPs and multi-target gates
    are expanded to CNOT-level operations first).  When ``topology`` is given,
    each 2-qubit operation is classified as on-chip or cross-chip by the edge
    it uses; with ``strict=True`` an operation on an uncoupled pair raises,
    which doubles as a routing-correctness check.
    """
    return _count_expanded(expand_macros(circuit), topology, strict=strict)


def _count_expanded(
    expanded: Circuit, topology: Topology | None, *, strict: bool
) -> OperationCounts:
    """Count operations of an already macro-expanded circuit."""
    on_chip = 0
    cross_chip = 0
    measurements = 0
    one_qubit = 0
    # set-based coupling lookups: routed circuits classify hundreds of
    # thousands of CNOTs, and the cached edge tuples make both membership
    # tests O(1) without touching the networkx graph per operation
    if topology is not None:
        coupled_edges = frozenset(topology.edges())
        cross_edges = frozenset(topology.cross_chip_edges())
    for op in expanded:
        if op.is_barrier:
            continue
        if op.is_measurement:
            measurements += 1
        elif op.name in _TWO_QUBIT_NAMES:
            if topology is None:
                on_chip += 1
            else:
                a, b = op.qubits
                edge = (a, b) if a < b else (b, a)
                if edge in coupled_edges:
                    if edge in cross_edges:
                        cross_chip += 1
                    else:
                        on_chip += 1
                elif strict:
                    raise ValueError(
                        f"2-qubit operation {op} acts on uncoupled qubits {op.qubits}"
                    )
                else:
                    on_chip += 1
        elif op.num_qubits == 1:
            one_qubit += 1
        else:
            raise ValueError(f"unexpected operation {op} in physical circuit")
    return OperationCounts(on_chip, cross_chip, measurements, one_qubit)


def circuit_metrics(
    circuit: Circuit,
    topology: Topology | None = None,
    noise: NoiseModel = DEFAULT_NOISE,
    *,
    strict: bool = True,
) -> CircuitMetrics:
    """Compute the paper's depth and eff_CNOT metrics for a physical circuit."""
    expanded = expand_macros(circuit)
    counts = _count_expanded(expanded, topology, strict=strict)
    depth = expanded.depth(meas_latency=noise.meas_latency)
    return CircuitMetrics(
        depth=depth,
        counts=counts,
        eff_cnots=counts.effective_cnots(noise),
        num_physical_qubits=circuit.num_qubits,
        num_operations=len(expanded),
    )


def improvement(baseline: float, ours: float) -> float:
    """Relative improvement ``1 - ours/baseline`` (the paper's percentages)."""
    if baseline <= 0:
        raise ValueError("baseline metric must be positive")
    return 1.0 - ours / baseline


def normalized_ratio(baseline: float, ours: float) -> float:
    """``ours / baseline`` — the normalised values plotted in Figs. 14-16."""
    if baseline <= 0:
        raise ValueError("baseline metric must be positive")
    return ours / baseline


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (the paper's summary statistic)."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
