"""The multi-entry communication highway: layout, GHZ machinery, occupancy."""

from .ghz import GhzPrepPlan, chain_ghz, extend_ghz, measurement_based_ghz, tree_ghz
from .layout import HighwayLayout, HighwaySegment
from .occupancy import HighwayManager, HighwayRoute
from .protocol import (
    ProtocolPlan,
    cat_disentangler,
    cat_entangler,
    fan_out,
    highway_multi_target,
)

__all__ = [
    "HighwayLayout",
    "HighwaySegment",
    "HighwayManager",
    "HighwayRoute",
    "GhzPrepPlan",
    "measurement_based_ghz",
    "tree_ghz",
    "chain_ghz",
    "extend_ghz",
    "ProtocolPlan",
    "cat_entangler",
    "fan_out",
    "cat_disentangler",
    "highway_multi_target",
]
