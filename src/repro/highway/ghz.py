"""Measurement-based GHZ state preparation on highway paths (paper Figs. 5-8).

The naive GHZ preparation chains CNOTs along the path and therefore costs
depth linear in the path length.  The paper replaces it with a constant-depth
scheme: put every *even* position of the path in ``|+>``, entangle each *odd*
position with both of its neighbours using CNOTs, measure all odd positions,
and apply outcome-conditioned X corrections to the even positions.  The even
positions are then left in a GHZ state.  When two consecutive highway qubits
are separated by an interval (data) qubit — the sparse, interleaved sections
of the highway — the entangling CNOT becomes a *bridge* gate (four CNOTs
through the interval qubit, which is returned to its original state).

A measured (odd-position) qubit that is needed as a highway entrance can be
re-entangled afterwards with a single CNOT from a neighbouring GHZ member
(paper Fig. 6): a CNOT from a GHZ member onto a ``|0>`` qubit extends the GHZ
state by one qubit.

All functions here return plain lists of :class:`~repro.circuits.gates.Gate`
operations so they can be embedded both into verification circuits (run on the
statevector simulator) and into the MECH compiler's physical output circuit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

from ..circuits import gates as g
from ..circuits.gates import Gate
from ..circuits.library import bridge_cnot

__all__ = ["GhzPrepPlan", "measurement_based_ghz", "tree_ghz", "chain_ghz", "extend_ghz"]

#: Lookup giving the interval qubit between two consecutive highway qubits
#: (``None`` when they are directly coupled).
ViaLookup = Callable[[int, int], int | None]


@dataclass
class GhzPrepPlan:
    """Operations and bookkeeping of one measurement-based GHZ preparation.

    Attributes
    ----------
    operations:
        Gate/measurement list implementing the preparation.
    members:
        Highway qubits that end up in the GHZ state (even path positions plus
        any re-entangled entrances).
    measured:
        Highway qubits measured during the preparation (odd path positions).
    measurement_cbits:
        Classical bits holding the preparation outcomes, keyed by qubit.
    next_cbit:
        First unused classical bit index after the preparation.
    """

    operations: list[Gate] = field(default_factory=list)
    members: list[int] = field(default_factory=list)
    measured: list[int] = field(default_factory=list)
    measurement_cbits: dict[int, int] = field(default_factory=dict)
    next_cbit: int = 0


def _entangling_cnot(control: int, target: int, via: int | None) -> list[Gate]:
    """CNOT between neighbouring highway qubits, bridging an interval qubit if needed."""
    if via is None:
        # highway positions are validated distinct ints; skip re-validation
        return [Gate.trusted("cx", (control, target))]
    return bridge_cnot(control, via, target)


def measurement_based_ghz(
    path: Sequence[int],
    *,
    via_lookup: ViaLookup | None = None,
    cbit_base: int = 0,
    reentangle: Sequence[int] = (),
) -> GhzPrepPlan:
    """Constant-depth GHZ preparation over the highway qubits in ``path``.

    Parameters
    ----------
    path:
        Consecutive highway qubits along the highway (length >= 1).
    via_lookup:
        Function returning the interval qubit between two consecutive path
        qubits (``None`` for a direct coupler).  Defaults to "always direct".
    cbit_base:
        First classical bit index to use for the preparation measurements.
    reentangle:
        Measured (odd-position) qubits that must re-join the GHZ state because
        a gate component uses them as its highway entrance.

    Returns
    -------
    GhzPrepPlan
        The operations plus which qubits are GHZ members afterwards.
    """
    path = list(path)
    if not path:
        raise ValueError("GHZ preparation needs a non-empty path")
    if len(set(path)) != len(path):
        raise ValueError("GHZ path must not repeat qubits")
    lookup: ViaLookup = via_lookup if via_lookup is not None else (lambda a, b: None)

    # An even-length path would leave its last qubit at an odd (measured)
    # position with only one neighbour; measuring it would collapse the state
    # (this is the paper's "even case").  Instead the main preparation runs on
    # the odd-length prefix and the trailing qubit is absorbed afterwards by a
    # single extension CNOT from the last member.
    trailing: int | None = None
    if len(path) % 2 == 0 and len(path) > 1:
        trailing = path[-1]
        path = path[:-1]

    plan = GhzPrepPlan(next_cbit=cbit_base)
    members = [path[i] for i in range(0, len(path), 2)]
    measured = [path[i] for i in range(1, len(path), 2)]

    # Step 1: every even position goes to |+>; odd positions stay |0>.
    for qubit in members:
        plan.operations.append(Gate.trusted("h", (qubit,)))

    # Step 2: entangle each odd position with both neighbours.  The CNOTs are
    # emitted in two sweeps — first every "left" CNOT, then every "right" CNOT
    # — so that gates of the same sweep act on disjoint qubits and the whole
    # stage schedules in two time steps regardless of the path length (this is
    # what makes the preparation constant-depth).
    for i in range(1, len(path), 2):
        left, mid = path[i - 1], path[i]
        plan.operations.extend(_entangling_cnot(left, mid, lookup(left, mid)))
    for i in range(1, len(path), 2):
        if i + 1 < len(path):
            right, mid = path[i + 1], path[i]
            plan.operations.extend(_entangling_cnot(right, mid, lookup(right, mid)))

    # Step 3: measure the odd positions.
    cbit = cbit_base
    for qubit in measured:
        plan.operations.append(g.measure(qubit, cbit))
        plan.measurement_cbits[qubit] = cbit
        cbit += 1
    if measured:
        # the corrections below are classically conditioned on these outcomes;
        # a barrier makes that timing dependency visible to the depth metric.
        plan.operations.append(g.barrier(path))

    # Step 4: parity-conditioned X corrections on the even positions.  The
    # member at path position 2j needs an X exactly when the XOR of the
    # outcomes at odd positions < 2j is 1.
    for j, qubit in enumerate(members):
        if j == 0:
            continue
        controlling = [plan.measurement_cbits[path[i]] for i in range(1, 2 * j, 2)]
        plan.operations.append(g.x(qubit).with_condition(controlling, 1))

    # Step 5: absorb the trailing qubit of an even-length path (still in |0>)
    # with a single extension CNOT from the last member.
    if trailing is not None:
        plan.operations.extend(
            _entangling_cnot(members[-1], trailing, lookup(members[-1], trailing))
        )
        members.append(trailing)

    # Step 6: re-entangle measured qubits that must serve as entrances.  The
    # qubit is first restored to |0> (outcome-conditioned X) and then absorbed
    # into the GHZ state by a CNOT from an adjacent member.
    member_set = set(members)
    for qubit in reentangle:
        if qubit in member_set:
            continue
        if qubit not in plan.measurement_cbits:
            raise ValueError(f"cannot re-entangle {qubit}: not part of the path")
        position = path.index(qubit)
        neighbour = path[position - 1] if position > 0 else path[position + 1]
        plan.operations.append(
            g.x(qubit).with_condition([plan.measurement_cbits[qubit]], 1)
        )
        plan.operations.extend(
            _entangling_cnot(neighbour, qubit, lookup(neighbour, qubit))
        )
        members.append(qubit)
        member_set.add(qubit)

    # Step 7: reset the measured helper qubits that did not re-join the GHZ
    # state.  Later shuttles re-use the same highway qubits and the scheme
    # assumes they start from |0>, so each collapsed qubit gets an
    # outcome-conditioned X (a "measure + reset" as on dynamic-circuit
    # hardware).  This is a free 1-qubit operation under the paper's metrics.
    member_set = set(members)
    for qubit in measured:
        if qubit in member_set:
            continue
        plan.operations.append(
            g.x(qubit).with_condition([plan.measurement_cbits[qubit]], 1)
        )

    plan.members = members
    plan.measured = measured
    plan.next_cbit = cbit
    return plan


def tree_ghz(
    adjacency: dict[int, list[int]],
    root: int,
    *,
    via_lookup: ViaLookup | None = None,
    cbit_base: int = 0,
    required_members: Sequence[int] = (),
) -> GhzPrepPlan:
    """GHZ preparation over a *tree* of highway qubits (paper Fig. 7).

    Highway routes that pass through crossroads are trees rather than simple
    paths.  The tree is decomposed into vertical paths: a DFS from ``root``
    extends the current path through the first child and starts a new path at
    every additional child, anchored at the branching node.  Each path is then
    prepared with the linear measurement-based scheme; a path whose anchor is
    already a GHZ member merges its fresh entanglement into the existing state
    (paper Fig. 6's GHZ-merge), so the whole preparation still has depth
    independent of the number of qubits up to a small factor for nested
    branches.

    ``required_members`` lists qubits (highway entrances of gate components)
    that must end up in the GHZ state; if the alternation would measure them,
    they are re-entangled.

    Parameters mirror :func:`measurement_based_ghz`; the ``adjacency`` mapping
    must describe a connected tree containing ``root``.
    """
    if root not in adjacency:
        raise ValueError("root must be a node of the tree")
    required = set(required_members)

    # ---- decompose the tree into paths via iterative DFS ---------------- #
    paths: list[list[int]] = []
    visited = {root}
    # each stack entry: (node, path_index, position_in_path)
    stack: list[tuple[int, int]] = [(root, -1)]
    node_path: dict[int, tuple[int, int]] = {}

    def new_path(anchor: int) -> int:
        paths.append([anchor])
        return len(paths) - 1

    root_path = new_path(root)
    node_path[root] = (root_path, 0)
    order: list[int] = [root]
    stack = [root]
    while stack:
        node = stack.pop()
        children = [n for n in adjacency.get(node, []) if n not in visited]
        first = True
        for child in children:
            visited.add(child)
            order.append(child)
            if first and node_path[node][1] == len(paths[node_path[node][0]]) - 1:
                # extend the node's own path only if the node is its current tail
                path_idx = node_path[node][0]
                paths[path_idx].append(child)
                node_path[child] = (path_idx, len(paths[path_idx]) - 1)
                first = False
            else:
                path_idx = new_path(node)
                paths[path_idx].append(child)
                node_path[child] = (path_idx, 1)
            stack.append(child)

    # A branching node ("anchor") must be a GHZ member before the paths that
    # hang off it are merged in; if its own path would measure it, it is
    # re-entangled there first.
    anchors = {path[0] for path in paths[1:]}

    # ---- prepare each path, merging into the growing GHZ ---------------- #
    plan = GhzPrepPlan(next_cbit=cbit_base)
    lookup: ViaLookup = via_lookup if via_lookup is not None else (lambda a, b: None)
    members: list[int] = []
    member_set: set[int] = set()
    cbit = cbit_base

    for index, path in enumerate(paths):
        anchored = index > 0  # anchor already belongs to the GHZ state
        if anchored and len(path) == 1:
            continue
        wants = [q for q in path if q in required or q in anchors]
        sub = measurement_based_ghz(
            path,
            via_lookup=lookup,
            cbit_base=cbit,
            reentangle=wants,
        )
        ops = sub.operations
        if anchored:
            # the anchor is already entangled; drop the Hadamard that would
            # have initialised it as a fresh |+> qubit.
            ops = _drop_first_h(ops, path[0])
        plan.operations.extend(ops)
        plan.measurement_cbits.update(sub.measurement_cbits)
        plan.measured.extend(sub.measured)
        cbit = sub.next_cbit
        for member in sub.members:
            if member not in member_set:
                member_set.add(member)
                members.append(member)

    plan.members = members
    plan.next_cbit = cbit
    return plan


def _drop_first_h(ops: list[Gate], qubit: int) -> list[Gate]:
    """Remove the first unconditioned Hadamard acting on ``qubit``."""
    result: list[Gate] = []
    dropped = False
    for op in ops:
        if (
            not dropped
            and op.name == "h"
            and op.qubits == (qubit,)
            and op.condition is None
        ):
            dropped = True
            continue
        result.append(op)
    return result


def chain_ghz(path: Sequence[int]) -> list[Gate]:
    """Linear-depth GHZ preparation by a CNOT chain (paper Fig. 1a baseline)."""
    path = list(path)
    if not path:
        raise ValueError("GHZ preparation needs a non-empty path")
    ops: list[Gate] = [g.h(path[0])]
    for a, b in zip(path, path[1:], strict=False):
        ops.append(g.cx(a, b))
    return ops


def extend_ghz(member: int, new_qubit: int, via: int | None = None) -> list[Gate]:
    """Extend an existing GHZ state onto ``new_qubit`` (assumed in ``|0>``).

    A single CNOT from any GHZ member onto a fresh ``|0>`` qubit produces a
    GHZ state with one more qubit (paper Fig. 6 with the measurement elided).
    """
    return _entangling_cnot(member, new_qubit, via)
