"""Highway occupancy management: routes, entrances and temporal sharing.

This module is the reproduction of the paper's ``HighwayOccupancy.py``: it
decides *which* highway qubits a highway gate occupies (its *highway path*,
here generalised to a route tree through crossroads), keeps track of *when*
each highway qubit is released by the previous shuttle, and exposes the
interval-qubit information that the GHZ preparation needs for bridged
segments.

Two of the paper's optimisations live here:

* **spatial sharing** (Section 6.1) — the route of a highway gate is built by
  attaching every target entrance to the partial route with a shortest path in
  the highway graph, so edges already used by the same gate are reused for
  free and the number of occupied highway qubits is minimised;
* **temporal sharing** (Section 6.2) — highway qubits are claimed with a
  release time rather than a global lock; a later highway gate whose route
  overlaps a claimed region simply starts after the previous shuttle's
  teardown, which is exactly the "new shuttle" of the paper, while gates with
  disjoint routes proceed concurrently within the same shuttle window.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from .layout import HighwayLayout

__all__ = ["HighwayRoute", "HighwayManager"]


@dataclass
class HighwayRoute:
    """The set of highway qubits a highway gate occupies, as a tree.

    Attributes
    ----------
    root:
        The control entrance (the tree is rooted there for GHZ preparation).
    nodes:
        Every highway qubit in the route.
    adjacency:
        Tree adjacency over ``nodes``.
    entrances:
        Highway entrance chosen for each gate component, keyed by the
        component's target entrance request.
    """

    root: int
    nodes: list[int] = field(default_factory=list)
    adjacency: dict[int, list[int]] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.nodes)

    def contains(self, qubit: int) -> bool:
        return qubit in self.adjacency


class HighwayManager:
    """Books highway qubits for highway gates and answers entrance queries."""

    def __init__(self, layout: HighwayLayout) -> None:
        self.layout = layout
        self.graph = layout.highway_graph
        self.topology = layout.topology
        #: time at which each highway qubit becomes free again
        self.release_time: dict[int, float] = {q: 0.0 for q in layout.highway_qubits}
        #: number of highway claims performed (a proxy for the shuttle count)
        self.num_claims: int = 0
        #: total highway qubits claimed over the whole compilation
        self.total_claimed: int = 0
        # the highway graph is frozen once the layout is built, so its
        # adjacency is snapshotted for the per-gate route searches (the lists
        # keep networkx's own adjacency iteration order)
        self._adjacency: dict[int, list[int]] = {
            node: list(self.graph[node]) for node in self.graph
        }

    # ------------------------------------------------------------------ #
    # entrances
    # ------------------------------------------------------------------ #
    def entrance_candidates(self, physical_qubit: int, *, limit: int = 6) -> list[int]:
        """Highway qubits a data qubit could use as its entrance, closest first."""
        return self.layout.entrances_near(physical_qubit, limit=limit)

    def entrance_parking(self, entrance: int) -> list[int]:
        """Non-highway neighbours of an entrance where a data qubit can sit."""
        return [
            q
            for q in self.topology.neighbors(entrance)
            if not self.layout.is_highway(q)
        ]

    def next_free(self, qubit: int) -> float:
        """Time at which a highway qubit is released by the previous shuttle."""
        return self.release_time[qubit]

    # ------------------------------------------------------------------ #
    # route construction (spatial sharing)
    # ------------------------------------------------------------------ #
    def build_route(self, control_entrance: int, target_entrances: Sequence[int]) -> HighwayRoute:
        """Grow a route tree from the control entrance to every target entrance.

        Each target entrance is attached through a shortest path in the highway
        graph starting from the *current* route, so highway qubits already
        occupied by this gate are reused at no extra cost (edge weight 0 within
        the route).  Targets are attached nearest-first, which empirically
        keeps the tree small.
        """
        if control_entrance not in self.graph:
            raise ValueError(f"control entrance {control_entrance} is not a highway qubit")
        route = HighwayRoute(root=control_entrance, nodes=[control_entrance])
        route.adjacency = {control_entrance: []}
        pending = [t for t in dict.fromkeys(target_entrances) if t != control_entrance]
        missing = [t for t in pending if t not in self.graph]
        if missing:
            raise ValueError(f"target entrances {missing} are not highway qubits")

        while pending:
            lengths, pred = self._bfs_from(set(route.adjacency), targets=pending)
            reachable = [t for t in pending if t in lengths]
            if not reachable:  # pragma: no cover - highway graph is connected
                raise ValueError("highway graph is disconnected; cannot route gate")
            best = min(reachable, key=lambda t: lengths[t])
            path = [best]
            while pred[path[-1]] is not None:
                path.append(pred[path[-1]])
            path.reverse()
            for a, b in zip(path, path[1:], strict=False):
                self._attach(route, a, b)
            pending.remove(best)
        return route

    def _bfs_from(
        self, sources: set[int], *, targets: Sequence[int] | None = None
    ) -> tuple[dict[int, int], dict[int, int | None]]:
        """Multi-source BFS over the highway graph: distances and predecessors.

        All highway edges weigh 1, so this reproduces the
        ``nx.multi_source_dijkstra`` search it replaced *including* its
        equal-length tie-breaking: the dijkstra heap pops equal distances in
        push (= discovery) order, which is exactly BFS FIFO order, and both
        keep the first discovered predecessor.  Seeding iterates the same
        ``set`` of route nodes and expansion walks the snapshotted adjacency
        lists, so discovery order — and therefore every chosen path — is
        unchanged.  When ``targets`` is given the search stops once every
        target is discovered; distances and paths found up to that point are
        the same prefix the full search would record.
        """
        lengths: dict[int, int] = {s: 0 for s in sources}
        pred: dict[int, int | None] = {s: None for s in sources}
        remaining = (
            sum(1 for t in targets if t not in lengths) if targets is not None else -1
        )
        queue = deque(sources)
        adjacency = self._adjacency
        target_set = set(targets) if targets is not None else ()
        while queue and remaining != 0:
            u = queue.popleft()
            d = lengths[u] + 1
            for v in adjacency[u]:
                if v not in lengths:
                    lengths[v] = d
                    pred[v] = u
                    queue.append(v)
                    if v in target_set:
                        remaining -= 1
        return lengths, pred

    def _attach(self, route: HighwayRoute, parent: int, child: int) -> None:
        if child in route.adjacency:
            return
        route.adjacency.setdefault(parent, [])
        route.adjacency[child] = []
        route.adjacency[parent].append(child)
        route.adjacency[child].append(parent)
        route.nodes.append(child)

    # ------------------------------------------------------------------ #
    # temporal sharing
    # ------------------------------------------------------------------ #
    def earliest_start(self, nodes: Iterable[int], ready_time: float = 0.0) -> float:
        """Earliest time a route over ``nodes`` may start its GHZ preparation."""
        latest_release = max((self.release_time[n] for n in nodes), default=0.0)
        return max(ready_time, latest_release)

    def claim(self, nodes: Iterable[int], release_at: float) -> None:
        """Mark ``nodes`` as occupied until ``release_at`` (the shuttle teardown)."""
        nodes = list(nodes)
        for node in nodes:
            if node not in self.release_time:
                raise ValueError(f"qubit {node} is not a highway qubit")
            self.release_time[node] = max(self.release_time[node], release_at)
        self.num_claims += 1
        self.total_claimed += len(nodes)

    # ------------------------------------------------------------------ #
    # segment details
    # ------------------------------------------------------------------ #
    def via(self, a: int, b: int) -> int | None:
        """Interval qubit bridged by the segment between highway qubits a and b."""
        if not self.graph.has_edge(a, b):
            return None
        return self.graph.edges[a, b].get("via")

    def via_lookup(self):
        """A ``(a, b) -> via`` callable suitable for the GHZ preparation planner."""
        return self.via

    def average_occupancy(self) -> float:
        """Mean number of highway qubits claimed per highway gate (diagnostic)."""
        if self.num_claims == 0:
            return 0.0
        return self.total_claimed / self.num_claims
