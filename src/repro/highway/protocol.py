"""The highway communication protocol (paper Fig. 3).

Given a GHZ state over a set of highway qubits, a multi-target controlled gate
whose control (data) qubit sits next to one GHZ member and whose target (data)
qubits sit next to other GHZ members is executed in three stages:

1. **cat-entangler** — a CNOT from the control data qubit onto its entrance
   GHZ member, a Z-basis measurement of that member, and outcome-conditioned X
   corrections on the remaining members.  Afterwards the remaining members all
   carry the control's computational-basis value.
2. **fan-out** — one CNOT from each used member onto its adjacent target data
   qubit.  These CNOTs act on disjoint qubit pairs, so they execute
   concurrently regardless of how far apart the targets are.
3. **cat-disentangler** — an X-basis measurement (H + measure) of every
   remaining member and a parity-conditioned Z correction on the control data
   qubit, which destroys the entanglement and frees the highway qubits for the
   next shuttle.

For a multi-target C-phase gate (aggregated ``mcp``) the fan-out CNOT is
replaced by a controlled-phase from the member onto the target, with the same
structure otherwise.  Target-shared groups (CNOTs sharing a *target*) are
handled by the compiler by conjugating the shared qubit with Hadamards, which
turns them into a control-shared group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from ..circuits import gates as g
from ..circuits.gates import Gate

__all__ = ["ProtocolPlan", "cat_entangler", "fan_out", "cat_disentangler", "highway_multi_target"]


@dataclass
class ProtocolPlan:
    """Operations and classical-bit bookkeeping of one protocol execution."""

    operations: list[Gate] = field(default_factory=list)
    entangle_cbit: int = -1
    disentangle_cbits: list[int] = field(default_factory=list)
    next_cbit: int = 0


def cat_entangler(
    control_data: int,
    control_entrance: int,
    other_members: Sequence[int],
    *,
    cbit: int,
) -> list[Gate]:
    """Stage 1: share the control's value with every remaining GHZ member."""
    ops: list[Gate] = [g.cx(control_data, control_entrance)]
    ops.append(g.measure(control_entrance, cbit))
    if other_members:
        # the X corrections are conditioned on the measurement outcome; the
        # barrier exposes that classical dependency to the depth metric.
        ops.append(g.barrier([control_entrance, *other_members]))
    for member in other_members:
        ops.append(g.x(member).with_condition([cbit], 1))
    # measure + reset: the consumed entrance must be back in |0> before the
    # next shuttle re-uses it for a fresh GHZ preparation
    ops.append(g.x(control_entrance).with_condition([cbit], 1))
    return ops


def fan_out(
    member_target_pairs: Sequence[tuple[int, int]],
    *,
    gate_name: str = "cx",
    params: tuple[float, ...] = (),
) -> list[Gate]:
    """Stage 2: apply the controlled operation from each member to its target.

    Members are highway qubits and targets are data qubits (always distinct,
    already validated ints), so the gates take the trusted construction path
    — fan-outs are emitted once per spoke of every highway gate.
    """
    if gate_name not in ("cx", "cz", "cp", "crz"):
        raise ValueError(f"unsupported fan-out gate {gate_name!r}")
    gate_params = (float(params[0]),) if gate_name in ("cp", "crz") else ()
    return [
        Gate.trusted(gate_name, (member, target), gate_params)
        for member, target in member_target_pairs
    ]


def cat_disentangler(
    control_data: int,
    members: Sequence[int],
    *,
    cbit_base: int,
) -> tuple[list[Gate], list[int]]:
    """Stage 3: X-basis measurements of the members, parity Z on the control."""
    ops: list[Gate] = []
    cbits: list[int] = []
    cbit = cbit_base
    for member in members:
        ops.append(g.h(member))
        ops.append(g.measure(member, cbit))
        # measure + reset so the next shuttle finds this highway qubit in |0>
        ops.append(g.x(member).with_condition([cbit], 1))
        cbits.append(cbit)
        cbit += 1
    if cbits:
        ops.append(g.z(control_data).with_condition(cbits, 1))
    return ops, cbits


def highway_multi_target(
    control_data: int,
    control_entrance: int,
    member_target_pairs: Sequence[tuple[int, int]],
    *,
    all_members: Sequence[int],
    cbit_base: int,
    gate_name: str = "cx",
    params: tuple[float, ...] = (),
) -> ProtocolPlan:
    """Full protocol for one highway gate on an already-prepared GHZ state.

    Parameters
    ----------
    control_data:
        Physical data qubit holding the control value (adjacent to
        ``control_entrance``).
    control_entrance:
        GHZ member adjacent to the control data qubit; it is consumed by the
        cat-entangler measurement.
    member_target_pairs:
        ``(member, target_data)`` pairs for the fan-out stage; each member must
        be a GHZ member different from ``control_entrance`` and adjacent to its
        target data qubit.
    all_members:
        Every GHZ member of this gate's highway path (used by the
        disentangler); must contain ``control_entrance`` and all fan-out
        members.
    cbit_base:
        First classical bit index available for this protocol instance.
    gate_name, params:
        The 2-qubit controlled operation applied at each target.
    """
    members = [m for m in all_members if m != control_entrance]
    missing = {m for m, _ in member_target_pairs} - set(members)
    if missing:
        raise ValueError(f"fan-out members {sorted(missing)} are not GHZ members")

    plan = ProtocolPlan(next_cbit=cbit_base)
    plan.entangle_cbit = cbit_base
    plan.operations.extend(
        cat_entangler(control_data, control_entrance, members, cbit=cbit_base)
    )
    plan.operations.extend(
        fan_out(member_target_pairs, gate_name=gate_name, params=params)
    )
    disentangle_ops, cbits = cat_disentangler(
        control_data, members, cbit_base=cbit_base + 1
    )
    plan.operations.extend(disentangle_ops)
    plan.disentangle_cbits = cbits
    plan.next_cbit = cbit_base + 1 + len(cbits)
    return plan
