"""Highway layout generation (paper Sections 5 and Fig. 9).

The highway is a set of ancillary ("highway") qubits arranged along mesh-like
paths that span every chiplet, so that every data qubit is close to an
entrance.  The layout generator implements the paper's three allocation rules:

* **proximity** — highway qubits form consecutive paths so that the GHZ
  preparation only needs nearest-neighbour gates (possibly bridge gates);
* **sparsity** — away from critical positions the highway is *interleaved*:
  every other qubit along a path stays a data ("interval") qubit and the GHZ
  preparation bridges across it, halving the qubit overhead (Fig. 8);
* **heterogeneity awareness** — around path crossroads and at chiplet
  boundaries (where cross-chip links are) the highway stays dense so that
  cross-chip entanglement uses a single direct CNOT rather than a bridge.

Paths are not forced to be perfectly straight: they are computed as shortest
paths in the coupling graph that "hug" a desired global row/column, which makes
the same generator work for square, hexagon, heavy-square and heavy-hexagon
chiplets (whose columns are not always connected straight lines).  The number
of mesh lines per chiplet is the ``density`` parameter (1 = the paper's single
highway, 2/3 = the doubled/tripled highways of Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..hardware.array import ChipletArray

__all__ = ["HighwaySegment", "HighwayLayout"]


@dataclass(frozen=True)
class HighwaySegment:
    """A link between two consecutive highway qubits along a highway line.

    ``via`` is the interval (data) qubit bridged across when the two highway
    qubits are not directly coupled; ``cross_chip`` records whether any coupler
    used by the segment is a cross-chip link.
    """

    a: int
    b: int
    via: int | None = None
    cross_chip: bool = False

    @property
    def is_bridged(self) -> bool:
        return self.via is not None

    def endpoints(self) -> tuple[int, int]:
        return (self.a, self.b)


class HighwayLayout:
    """Placement of highway qubits on a chiplet array.

    Parameters
    ----------
    array:
        The chiplet array to build the highway on.
    density:
        Number of horizontal and vertical highway lines per chiplet
        (1 = single, 2 = double, 3 = triple — Fig. 15).
    interleave:
        Whether to thin non-critical path sections by keeping every other
        qubit as a data qubit (the paper's qubit-overhead optimisation).
    """

    def __init__(
        self,
        array: ChipletArray,
        *,
        density: int = 1,
        interleave: bool = True,
    ) -> None:
        if density < 1:
            raise ValueError("density must be at least 1")
        self.array = array
        self.topology = array.topology
        self.density = density
        self.interleave = interleave

        self._lines: list[list[int]] = []
        self._highway_qubits: set[int] = set()
        self._crossroads: set[int] = set()
        self._segments: list[HighwaySegment] = []
        self._highway_graph = nx.Graph()
        # per-qubit entrance rankings and the distance-to-highway vector are
        # pure functions of the finished layout; both are cached lazily
        # because the schedulers query them once per gate component
        self._entrance_rank: dict[int, list[int]] = {}
        self._entrance_within: dict[int, list[int]] = {}
        self._dist_to_highway = None

        self._build()

    # ------------------------------------------------------------------ #
    # public queries
    # ------------------------------------------------------------------ #
    @property
    def highway_qubits(self) -> frozenset[int]:
        """Physical indices of the ancillary qubits forming the highway."""
        return frozenset(self._highway_qubits)

    @property
    def data_qubits(self) -> list[int]:
        """Physical indices usable as data qubits (everything off the highway)."""
        return [q for q in self.topology.qubits() if q not in self._highway_qubits]

    @property
    def num_data_qubits(self) -> int:
        return self.topology.num_qubits - len(self._highway_qubits)

    @property
    def crossroads(self) -> frozenset[int]:
        """Highway qubits where two or more highway lines intersect."""
        return frozenset(self._crossroads)

    @property
    def lines(self) -> list[list[int]]:
        """The raw mesh lines (sequences of physical qubits, highway and interval)."""
        return [list(line) for line in self._lines]

    @property
    def segments(self) -> list[HighwaySegment]:
        """All links between consecutive highway qubits."""
        return list(self._segments)

    @property
    def highway_graph(self) -> nx.Graph:
        """Graph over highway qubits; edges carry ``via`` and ``cross_chip``."""
        return self._highway_graph

    def qubit_overhead(self) -> float:
        """Fraction of physical qubits reserved for the highway."""
        return len(self._highway_qubits) / self.topology.num_qubits

    def is_highway(self, qubit: int) -> bool:
        return qubit in self._highway_qubits

    def entrances_near(self, qubit: int, *, radius: int = 2, limit: int = 6) -> list[int]:
        """Candidate highway entrances for a data qubit, closest first.

        An entrance is a highway qubit; the data qubit needs to be routed to
        one of the entrance's non-highway neighbours before the protocol can
        consume it.  ``radius`` bounds the search distance, growing as needed
        so at least one candidate is always returned.  The full ranking (and
        the default-radius prefix) is cached per qubit — the scheduler asks
        for entrances once per gate component, with varying ``limit``s.
        """
        distances = self.topology.distance_matrix()
        ranked = self._entrance_rank.get(qubit)
        if ranked is None:
            highway = sorted(self._highway_qubits)
            ranked = sorted(highway, key=lambda h: (distances[qubit, h], h))
            self._entrance_rank[qubit] = ranked
        if radius == 2:
            within = self._entrance_within.get(qubit)
            if within is None:
                within = [h for h in ranked if distances[qubit, h] <= radius]
                self._entrance_within[qubit] = within
        else:
            within = [h for h in ranked if distances[qubit, h] <= radius]
        if not within:
            within = ranked[:limit]
        return within[:limit]

    def distance_to_highway(self, qubit: int) -> float:
        """Hop distance from ``qubit`` to the nearest highway qubit."""
        if self._dist_to_highway is None:
            distances = self.topology.distance_matrix()
            highway = sorted(self._highway_qubits)
            self._dist_to_highway = distances[:, highway].min(axis=1)
        return float(self._dist_to_highway[qubit])

    def segment_between(self, a: int, b: int) -> HighwaySegment | None:
        """The segment joining highway qubits ``a`` and ``b``, if any."""
        if not self._highway_graph.has_edge(a, b):
            return None
        data = self._highway_graph.edges[a, b]
        return HighwaySegment(a, b, via=data.get("via"), cross_chip=data.get("cross_chip", False))

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        lines = self._route_mesh_lines()
        self._lines = lines
        on_lines: dict[int, int] = {}
        for line in lines:
            for q in line:
                on_lines[q] = on_lines.get(q, 0) + 1
        self._crossroads = {q for q, count in on_lines.items() if count >= 2}

        for line in lines:
            self._mark_line(line)
        self._ensure_connected()

    def _desired_offsets(self) -> list[int]:
        """Local row/column offsets of the highway lines inside one chiplet."""
        width = self.array.chiplet_width
        if self.density == 1:
            return [width // 2]
        offsets = [
            int(round((k + 1) * width / (self.density + 1))) for k in range(self.density)
        ]
        unique = sorted({min(max(o, 1), width - 2) for o in offsets})
        return unique

    def _route_mesh_lines(self) -> list[list[int]]:
        """Compute the mesh lines as coupling-graph paths hugging target rows/cols."""
        lines: list[list[int]] = []
        offsets = self._desired_offsets()
        claimed: set[int] = set()

        for ci in range(self.array.rows):
            for offset in offsets:
                target_row = ci * self.array.chiplet_width + offset
                line = self._hug_path(axis="row", index=target_row, claimed=claimed)
                if line:
                    lines.append(line)
                    claimed.update(line)
        for cj in range(self.array.cols):
            for offset in offsets:
                target_col = cj * self.array.chiplet_width + offset
                line = self._hug_path(axis="col", index=target_col, claimed=claimed)
                if line:
                    lines.append(line)
                    claimed.update(line)
        return lines

    def _hug_path(self, *, axis: str, index: int, claimed: set[int]) -> list[int]:
        """Shortest path across the device staying close to a row or column.

        The edge weight penalises deviation from the target row/column and
        slightly rewards reusing qubits already claimed by previous lines so
        that perpendicular lines actually intersect (forming crossroads).
        """
        topo = self.topology
        coordinate = self.array.coordinate_of
        axis_id = 0 if axis == "row" else 1
        span_id = 1 - axis_id

        def deviation(q: int) -> int:
            return abs(coordinate(q)[axis_id] - index)

        candidates = [q for q in topo.qubits() if deviation(q) <= self.array.chiplet_width // 2]
        if not candidates:
            return []
        start = min(candidates, key=lambda q: (coordinate(q)[span_id], deviation(q), q))
        end = max(candidates, key=lambda q: (coordinate(q)[span_id], -deviation(q), -q))
        if start == end:
            return [start]

        def weight(u: int, v: int, data: dict) -> float:
            penalty = 1.0 + 0.5 * (deviation(u) + deviation(v))
            reward = -0.2 if (u in claimed or v in claimed) else 0.0
            return max(penalty + reward, 0.1)

        try:
            path = nx.shortest_path(topo.graph, start, end, weight=weight)
        except nx.NetworkXNoPath:  # pragma: no cover - arrays are connected by construction
            return []
        return list(path)

    def _mark_line(self, line: list[int]) -> None:
        """Decide which qubits along a line are highway qubits and add segments."""
        if not line:
            return
        if len(line) == 1:
            self._add_highway_node(line[0])
            return

        forced = self._forced_positions(line)
        marked: list[int] = []
        last_marked_pos: int | None = None
        for pos, _qubit in enumerate(line):
            take = False
            if pos in forced or not self.interleave:
                take = True
            elif last_marked_pos is None:
                take = True
            elif pos - last_marked_pos >= 2:
                take = True
            if take:
                marked.append(pos)
                last_marked_pos = pos
        if (len(line) - 1) not in marked:
            marked.append(len(line) - 1)
            marked = sorted(set(marked))

        for pos in marked:
            self._add_highway_node(line[pos])
        for prev_pos, next_pos in zip(marked, marked[1:], strict=False):
            self._add_segment(line, prev_pos, next_pos)

    def _forced_positions(self, line: list[int]) -> set[int]:
        """Positions that must stay dense: crossroads (plus their neighbours on
        sufficiently large chiplets) and the endpoints of cross-chip couplers
        along the line.

        On small chiplets (width < 6) forcing the crossroad neighbours as well
        would make entire rows dense, cutting the data-qubit subgraph into
        islands; the crossroad itself is enough to keep the mesh connected
        there.
        """
        forced: set[int] = set()
        dense_neighbours = self.array.chiplet_width >= 6
        for pos, qubit in enumerate(line):
            if qubit in self._crossroads:
                forced.add(pos)
                if dense_neighbours:
                    if pos > 0:
                        forced.add(pos - 1)
                    if pos < len(line) - 1:
                        forced.add(pos + 1)
        for pos in range(len(line) - 1):
            a, b = line[pos], line[pos + 1]
            if self.topology.is_coupled(a, b) and self.topology.is_cross_chip(a, b):
                forced.add(pos)
                forced.add(pos + 1)
        return forced

    def _add_highway_node(self, qubit: int) -> None:
        self._highway_qubits.add(qubit)
        if not self._highway_graph.has_node(qubit):
            self._highway_graph.add_node(qubit)

    def _add_segment(self, line: list[int], pos_a: int, pos_b: int) -> None:
        a, b = line[pos_a], line[pos_b]
        if a == b:
            return
        intermediate = line[pos_a + 1 : pos_b]
        via = intermediate[0] if intermediate else None
        hops = line[pos_a : pos_b + 1]
        cross = any(
            self.topology.is_coupled(u, v) and self.topology.is_cross_chip(u, v)
            for u, v in zip(hops, hops[1:], strict=False)
        )
        segment = HighwaySegment(a, b, via=via, cross_chip=cross)
        self._segments.append(segment)
        self._highway_graph.add_edge(a, b, via=via, cross_chip=cross)

    def _ensure_connected(self) -> None:
        """Join disconnected highway components with extra dense path sections.

        With unusual coupling structures the mesh lines may fail to intersect;
        the compiler requires a single connected highway, so we stitch the
        components together along shortest coupling-graph paths, promoting the
        qubits along the way to (dense) highway qubits.
        """
        if not self._highway_qubits:
            raise ValueError("highway layout produced no highway qubits")
        graph = self._highway_graph
        components = [sorted(c) for c in nx.connected_components(graph)]
        while len(components) > 1:
            base = components[0]
            other = components[1]
            best: list[int] | None = None
            for source in base[:: max(1, len(base) // 8)]:
                for sink in other[:: max(1, len(other) // 8)]:
                    path = self.topology.shortest_path(source, sink)
                    if best is None or len(path) < len(best):
                        best = path
            assert best is not None
            for u, v in zip(best, best[1:], strict=False):
                self._add_highway_node(u)
                self._add_highway_node(v)
                cross = self.topology.is_cross_chip(u, v)
                self._segments.append(HighwaySegment(u, v, via=None, cross_chip=cross))
                graph.add_edge(u, v, via=None, cross_chip=cross)
            components = [sorted(c) for c in nx.connected_components(graph)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HighwayLayout(density={self.density}, highway_qubits={len(self._highway_qubits)}, "
            f"data_qubits={self.num_data_qubits}, overhead={self.qubit_overhead():.1%})"
        )
