"""Quantum Fourier Transform benchmark circuit (paper Section 7.1).

The textbook QFT on ``n`` qubits: for each qubit ``i`` a Hadamard followed by
controlled-phase rotations ``CP(pi / 2^(j-i))`` from every later qubit ``j``.
All controlled-phase gates that share the qubit ``i`` commute with each other,
which is exactly the structure the MECH aggregation pass exploits.

The optional final SWAP-reversal layer is omitted by default (as is common
when benchmarking routing, since the reversal can be absorbed into qubit
relabelling); pass ``reverse=True`` to include it.
"""

from __future__ import annotations

import math

from ..circuits.circuit import Circuit

__all__ = ["qft_circuit"]


def qft_circuit(
    num_qubits: int,
    *,
    reverse: bool = False,
    measure: bool = True,
    approximation_degree: int = 0,
) -> Circuit:
    """Build an ``num_qubits``-qubit QFT circuit.

    Parameters
    ----------
    num_qubits:
        Number of data qubits.
    reverse:
        Include the final qubit-reversal SWAP network.
    measure:
        Append a final measurement of every qubit.
    approximation_degree:
        Drop controlled-phase rotations with angle smaller than
        ``pi / 2^(num_qubits - approximation_degree)``; 0 keeps every rotation
        (the exact QFT used in the paper's benchmarks).
    """
    if num_qubits < 1:
        raise ValueError("QFT needs at least one qubit")
    circuit = Circuit(num_qubits, name=f"qft-{num_qubits}")
    cutoff = num_qubits - approximation_degree
    for i in range(num_qubits):
        circuit.h(i)
        for j in range(i + 1, num_qubits):
            distance = j - i
            if approximation_degree and distance >= cutoff:
                continue
            angle = math.pi / (2**distance)
            circuit.cp(angle, j, i)
    if reverse:
        for i in range(num_qubits // 2):
            circuit.swap(i, num_qubits - 1 - i)
    if measure:
        circuit.measure_all()
    return circuit
