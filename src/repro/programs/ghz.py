"""GHZ state preparation program (used by examples and tests)."""

from __future__ import annotations

from ..circuits.circuit import Circuit

__all__ = ["ghz_circuit"]


def ghz_circuit(num_qubits: int, *, measure: bool = False) -> Circuit:
    """Prepare an ``num_qubits``-qubit GHZ state with a Hadamard + CNOT chain."""
    if num_qubits < 1:
        raise ValueError("GHZ needs at least one qubit")
    circuit = Circuit(num_qubits, name=f"ghz-{num_qubits}")
    circuit.h(0)
    for q in range(num_qubits - 1):
        circuit.cx(q, q + 1)
    if measure:
        circuit.measure_all()
    return circuit
