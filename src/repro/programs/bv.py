"""Bernstein-Vazirani benchmark circuit (paper Section 7.1).

The BV circuit recovers a secret bit-string with one oracle query: Hadamards
on every qubit, an oracle consisting of a CNOT from every data qubit whose
secret bit is 1 onto a shared ancilla prepared in ``|->``, and final
Hadamards plus measurement.  All oracle CNOTs share the same *target* qubit,
so under the MECH framework they collapse into a single highway gate — which
is why the paper reports >90% depth improvements on BV.

Following the paper, the secret string has "approximately half of the digits
being 0 and half being 1", drawn uniformly at random per seed.
"""

from __future__ import annotations


import numpy as np

from ..circuits.circuit import Circuit

__all__ = ["random_secret", "bernstein_vazirani_circuit"]


def random_secret(num_bits: int, *, seed: int = 0) -> str:
    """Secret string with (approximately) half ones, shuffled uniformly."""
    if num_bits < 1:
        raise ValueError("the secret must have at least one bit")
    rng = np.random.default_rng(seed)
    ones = num_bits // 2
    bits = np.array([1] * ones + [0] * (num_bits - ones))
    rng.shuffle(bits)
    return "".join(str(int(b)) for b in bits)


def bernstein_vazirani_circuit(
    num_data_qubits: int,
    *,
    secret: str | None = None,
    seed: int = 0,
    measure: bool = True,
) -> Circuit:
    """Build a Bernstein-Vazirani circuit over ``num_data_qubits`` + 1 qubits.

    Parameters
    ----------
    num_data_qubits:
        Number of secret bits (the circuit uses one extra ancilla qubit).
    secret:
        Explicit secret bit-string; a balanced random one is drawn otherwise.
    seed:
        Seed for the random secret.
    measure:
        Append the final measurement of the data qubits.
    """
    if secret is None:
        secret = random_secret(num_data_qubits, seed=seed)
    if len(secret) != num_data_qubits or any(c not in "01" for c in secret):
        raise ValueError("secret must be a bit-string of length num_data_qubits")

    total = num_data_qubits + 1
    ancilla = num_data_qubits
    circuit = Circuit(total, name=f"bv-{num_data_qubits}")
    for q in range(num_data_qubits):
        circuit.h(q)
    circuit.x(ancilla)
    circuit.h(ancilla)
    for q, bit in enumerate(secret):
        if bit == "1":
            circuit.cx(q, ancilla)
    for q in range(num_data_qubits):
        circuit.h(q)
    if measure:
        for q in range(num_data_qubits):
            circuit.measure(q)
    return circuit
