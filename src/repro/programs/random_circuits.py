"""Random circuit generators for stress tests and property-based testing."""

from __future__ import annotations


import numpy as np

from ..circuits.circuit import Circuit

__all__ = ["random_two_qubit_circuit", "random_commuting_layer_circuit"]


def random_two_qubit_circuit(
    num_qubits: int,
    num_gates: int,
    *,
    seed: int = 0,
    one_qubit_fraction: float = 0.3,
    measure: bool = False,
) -> Circuit:
    """Random circuit of CNOT/CZ/CP gates interspersed with 1-qubit rotations."""
    if num_qubits < 2:
        raise ValueError("need at least two qubits")
    if num_gates < 0:
        raise ValueError("num_gates must be non-negative")
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits, name=f"random-{num_qubits}x{num_gates}")
    for _ in range(num_gates):
        if rng.random() < one_qubit_fraction:
            q = int(rng.integers(num_qubits))
            choice = rng.random()
            if choice < 0.4:
                circuit.h(q)
            elif choice < 0.7:
                circuit.rz(float(rng.uniform(0, 2 * np.pi)), q)
            else:
                circuit.rx(float(rng.uniform(0, 2 * np.pi)), q)
        else:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            choice = rng.random()
            if choice < 0.5:
                circuit.cx(int(a), int(b))
            elif choice < 0.8:
                circuit.cz(int(a), int(b))
            else:
                circuit.cp(float(rng.uniform(0, np.pi)), int(a), int(b))
    if measure:
        circuit.measure_all()
    return circuit


def random_commuting_layer_circuit(
    num_qubits: int,
    num_layers: int,
    *,
    fanout: int = 4,
    seed: int = 0,
) -> Circuit:
    """Layers of CNOTs fanning out from random control qubits.

    Each layer picks a control qubit and applies CNOTs to ``fanout`` random
    targets — the ideal aggregation pattern for the highway protocol, used by
    tests that check the MECH scheduler actually forms multi-target gates.
    """
    if num_qubits < 2:
        raise ValueError("need at least two qubits")
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits, name=f"fanout-{num_qubits}x{num_layers}")
    for _ in range(num_layers):
        control = int(rng.integers(num_qubits))
        others = [q for q in range(num_qubits) if q != control]
        size = min(fanout, len(others))
        targets = rng.choice(others, size=size, replace=False)
        for t in targets:
            circuit.cx(control, int(t))
    return circuit
