"""QAOA MaxCut benchmark circuit (paper Section 7.1).

The paper evaluates QAOA on MaxCut over random graphs in which "half of all
possible edges" are present.  One QAOA layer applies, for every edge
``(i, j)``, the phase-separation unitary ``exp(-i * gamma * Z_i Z_j)`` followed
by the transverse-field mixer ``RX`` on every qubit.

By default each ZZ phase term is emitted as the textbook CX-RZ-CX ladder —
the form mainstream transpilers (and the paper's Qiskit baseline) receive.
Passing ``use_cx_ladder=False`` emits the mathematically equivalent *diagonal*
form instead (``exp(-i g ZZ) ∝ CP(-4g) · RZ(2g) ⊗ RZ(2g)``), which costs one
2-qubit operation instead of two; the MECH compiler performs that rewrite
itself (see :mod:`repro.compiler.rewrite`), so both compilers can be fed the
same ladder-form circuit as in the paper's evaluation.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..circuits.circuit import Circuit

__all__ = ["random_maxcut_graph", "qaoa_maxcut_circuit"]


def random_maxcut_graph(
    num_qubits: int, *, edge_fraction: float = 0.5, seed: int = 0
) -> list[tuple[int, int]]:
    """Random graph with ``edge_fraction`` of all possible edges (paper setup)."""
    if num_qubits < 2:
        raise ValueError("MaxCut needs at least two vertices")
    if not 0.0 < edge_fraction <= 1.0:
        raise ValueError("edge_fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    all_edges = [(i, j) for i in range(num_qubits) for j in range(i + 1, num_qubits)]
    count = max(1, int(round(edge_fraction * len(all_edges))))
    chosen = rng.choice(len(all_edges), size=count, replace=False)
    return [all_edges[int(k)] for k in sorted(chosen)]


def qaoa_maxcut_circuit(
    num_qubits: int,
    *,
    layers: int = 1,
    edge_fraction: float = 0.5,
    edges: Sequence[tuple[int, int]] | None = None,
    gammas: Sequence[float] | None = None,
    betas: Sequence[float] | None = None,
    seed: int = 0,
    measure: bool = True,
    use_cx_ladder: bool = True,
) -> Circuit:
    """Build a QAOA MaxCut circuit.

    Parameters
    ----------
    num_qubits:
        Number of graph vertices / data qubits.
    layers:
        Number of QAOA layers ``p``.
    edge_fraction:
        Fraction of all possible edges in the random problem graph (the paper
        uses one half).
    edges:
        Explicit edge list; overrides the random graph when given.
    gammas, betas:
        Per-layer phase and mixer angles (defaults spread over ``(0, pi)``).
    seed:
        Random-graph seed.
    measure:
        Append a final measurement of every qubit.
    use_cx_ladder:
        Emit the textbook CX-RZ-CX decomposition of each ZZ term (default);
        ``False`` emits the equivalent controlled-phase form directly.
    """
    if layers < 1:
        raise ValueError("QAOA needs at least one layer")
    problem_edges = list(edges) if edges is not None else random_maxcut_graph(
        num_qubits, edge_fraction=edge_fraction, seed=seed
    )
    for a, b in problem_edges:
        if not (0 <= a < num_qubits and 0 <= b < num_qubits) or a == b:
            raise ValueError(f"invalid edge ({a}, {b})")
    gammas = list(gammas) if gammas is not None else [
        0.3 + 0.4 * (k + 1) / layers for k in range(layers)
    ]
    betas = list(betas) if betas is not None else [
        0.2 + 0.5 * (k + 1) / layers for k in range(layers)
    ]
    if len(gammas) != layers or len(betas) != layers:
        raise ValueError("need one gamma and one beta per layer")

    circuit = Circuit(num_qubits, name=f"qaoa-{num_qubits}")
    for q in range(num_qubits):
        circuit.h(q)
    for layer in range(layers):
        gamma = gammas[layer]
        for a, b in problem_edges:
            if use_cx_ladder:
                circuit.cx(a, b)
                circuit.rz(2.0 * gamma, b)
                circuit.cx(a, b)
            else:
                circuit.rz(2.0 * gamma, a)
                circuit.rz(2.0 * gamma, b)
                circuit.cp(-4.0 * gamma, a, b)
        beta = betas[layer]
        for q in range(num_qubits):
            circuit.rx(2.0 * beta, q)
    if measure:
        circuit.measure_all()
    return circuit
