"""Benchmark circuit generators used in the paper's evaluation."""

from .bv import bernstein_vazirani_circuit, random_secret
from .ghz import ghz_circuit
from .qaoa import qaoa_maxcut_circuit, random_maxcut_graph
from .qft import qft_circuit
from .random_circuits import random_commuting_layer_circuit, random_two_qubit_circuit
from .vqe import vqe_full_entanglement_circuit

__all__ = [
    "qft_circuit",
    "qaoa_maxcut_circuit",
    "random_maxcut_graph",
    "vqe_full_entanglement_circuit",
    "bernstein_vazirani_circuit",
    "random_secret",
    "ghz_circuit",
    "random_two_qubit_circuit",
    "random_commuting_layer_circuit",
]

#: Mapping from benchmark name (as used in the paper's tables) to a builder
#: taking the number of data qubits.
BENCHMARKS = {
    "QFT": lambda n, **kw: qft_circuit(n, **kw),
    "QAOA": lambda n, **kw: qaoa_maxcut_circuit(n, **kw),
    "VQE": lambda n, **kw: vqe_full_entanglement_circuit(n, **kw),
    "BV": lambda n, **kw: bernstein_vazirani_circuit(n - 1, **kw),
}


def build_benchmark(name: str, num_data_qubits: int, **kwargs):
    """Build one of the paper's benchmark programs by name.

    For BV the paper counts the ancilla among the data qubits, so
    ``num_data_qubits`` is the total number of qubits in every case.
    """
    try:
        builder = BENCHMARKS[name.upper()]
    except KeyError as exc:
        raise ValueError(f"unknown benchmark {name!r}; choose from {sorted(BENCHMARKS)}") from exc
    return builder(num_data_qubits, **kwargs)
