"""VQE full-entanglement ansatz benchmark circuit (paper Section 7.1).

The paper uses "the commonly used full-entanglement ansatz": alternating
layers of single-qubit rotations and an entangling block containing a CNOT
from every qubit to every later qubit.  The CNOTs that share a control qubit
commute with each other, so a full-entanglement block is an ideal consumer of
the highway protocol.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..circuits.circuit import Circuit

__all__ = ["vqe_full_entanglement_circuit"]


def vqe_full_entanglement_circuit(
    num_qubits: int,
    *,
    layers: int = 1,
    parameters: Sequence[float] | None = None,
    seed: int = 0,
    measure: bool = True,
) -> Circuit:
    """Build a hardware-efficient VQE ansatz with full entanglement.

    Each layer applies ``RY`` and ``RZ`` rotations on every qubit followed by
    CNOT(i, j) for all ``i < j``; a final rotation layer closes the ansatz.

    Parameters
    ----------
    num_qubits:
        Number of data qubits.
    layers:
        Number of entangling layers.
    parameters:
        Optional flat list of rotation angles, length
        ``2 * num_qubits * (layers + 1)``; random angles are drawn otherwise.
    seed:
        Seed for the random rotation angles.
    measure:
        Append a final measurement of every qubit.
    """
    if num_qubits < 2:
        raise ValueError("the full-entanglement ansatz needs at least two qubits")
    if layers < 1:
        raise ValueError("the ansatz needs at least one layer")
    needed = 2 * num_qubits * (layers + 1)
    if parameters is not None:
        params = list(parameters)
        if len(params) != needed:
            raise ValueError(f"expected {needed} parameters, got {len(params)}")
    else:
        rng = np.random.default_rng(seed)
        params = list(rng.uniform(0.0, 2.0 * np.pi, size=needed))

    circuit = Circuit(num_qubits, name=f"vqe-{num_qubits}")
    index = 0

    def rotation_layer() -> None:
        nonlocal index
        for q in range(num_qubits):
            circuit.ry(params[index], q)
            circuit.rz(params[index + 1], q)
            index += 2

    rotation_layer()
    for _ in range(layers):
        for control in range(num_qubits):
            for target in range(control + 1, num_qubits):
                circuit.cx(control, target)
        rotation_layer()
    if measure:
        circuit.measure_all()
    return circuit
