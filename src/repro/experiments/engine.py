"""Parallel experiment-orchestration engine with on-disk result caching.

Every cell of the paper's tables and figures is modelled as a hashable
:class:`Job`: the benchmark name, the device (structure, chiplet footprint,
array shape, link density, highway density), the compiler knobs and the seed.
The engine fans jobs out over a :mod:`multiprocessing` pool, memoizes each
:class:`~repro.experiments.runner.ComparisonRecord` in an on-disk JSON cache
keyed by the job's config hash, and emits JSON/CSV artifacts per experiment.

The design splits each experiment into three deterministic phases:

1. a *jobs builder* (``jobs_for_fig12`` and friends) expands the experiment's
   scale preset into a flat list of jobs — pure configuration, no compilation;
2. :func:`run_jobs` executes the jobs — first consulting the cache, then
   deduplicating identical jobs within the run, then dispatching the misses
   either serially or over a worker pool (results are reassembled in job
   order, so parallel and serial runs return identical records);
3. :func:`write_artifacts` serialises the records as JSON and CSV so figures
   can be regenerated and diffed without recompiling anything.

Job *tags* (e.g. the swept parameter value a record corresponds to) are
deliberately excluded from the config hash and re-applied after cache
retrieval: two jobs that perform the same computation share one cache entry
no matter how the experiment labels them.
"""

from __future__ import annotations

import csv
import hashlib
import json
import multiprocessing
import os
import time
from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..hardware.array import ChipletArray
from ..hardware.noise import DEFAULT_NOISE, NoiseModel
from ..metrics import improvement
from .runner import ComparisonRecord, compare, compile_pair

__all__ = [
    "CACHE_VERSION",
    "SCALE_TIERS",
    "Job",
    "ResultCache",
    "RunReport",
    "config_key",
    "job_from_dict",
    "job_to_dict",
    "noise_from_items",
    "noise_to_items",
    "record_from_payload",
    "record_to_payload",
    "record_row",
    "run_jobs",
    "run_jobs_report",
    "write_artifacts",
]

#: Bump when the cache payload layout or the compilers' semantics change in a
#: way that invalidates memoized records.
CACHE_VERSION = 1

#: The scale tiers shared by every experiment's presets (and by the benchmark
#: harness's ``--repro-scale`` option).
SCALE_TIERS: Tuple[str, ...] = ("small", "medium", "paper")

Primitive = Union[str, int, float, bool, None]
Items = Tuple[Tuple[str, Primitive], ...]


def noise_to_items(noise: NoiseModel) -> Items:
    """Serialise a noise model as a hashable, order-stable tuple of pairs."""
    return tuple(sorted(asdict(noise).items()))


def noise_from_items(items: Items) -> NoiseModel:
    """Inverse of :func:`noise_to_items`."""
    return NoiseModel(**dict(items))


#: Default-noise items, precomputed so ``Job`` can use them as a default.
DEFAULT_NOISE_ITEMS: Items = noise_to_items(DEFAULT_NOISE)


@dataclass(frozen=True)
class Job:
    """One hashable cell of a figure/table: benchmark x device x knobs.

    ``kind`` selects the executor: ``"compare"`` runs both compilers once and
    records the paper's headline metrics; ``"sensitivity"`` compiles once and
    re-scores the fixed circuits under the noise sweeps carried in ``params``
    (Fig. 13's protocol).  ``tags`` annotate the resulting record's ``extra``
    dict but do not enter the config hash.
    """

    benchmark: str
    kind: str = "compare"
    structure: str = "square"
    chiplet_width: int = 4
    rows: int = 1
    cols: int = 2
    cross_links_per_edge: Optional[int] = None
    highway_density: int = 1
    num_data_qubits: Optional[int] = None
    min_components: int = 2
    baseline_trials: int = 1
    seed: int = 0
    noise: Items = DEFAULT_NOISE_ITEMS
    benchmark_kwargs: Items = ()
    params: Tuple[Tuple[str, Tuple[float, ...]], ...] = ()
    tags: Items = ()

    def build_array(self) -> ChipletArray:
        return ChipletArray(
            self.structure,
            self.chiplet_width,
            self.rows,
            self.cols,
            cross_links_per_edge=self.cross_links_per_edge,
        )

    def noise_model(self) -> NoiseModel:
        return noise_from_items(self.noise)

    def with_(self, **changes) -> "Job":
        return replace(self, **changes)


#: Tuple-typed Job fields that JSON round-trips as (nested) lists.
_TUPLE_FIELDS = ("noise", "benchmark_kwargs", "params", "tags")


def _listify(value):
    if isinstance(value, tuple):
        return [_listify(v) for v in value]
    return value


def _tuplify(value):
    if isinstance(value, list):
        return tuple(_tuplify(v) for v in value)
    return value


def job_to_dict(job: Job) -> Dict[str, object]:
    """JSON-serialisable dict representation of a job."""
    out: Dict[str, object] = {}
    for f in fields(Job):
        value = getattr(job, f.name)
        out[f.name] = _listify(value) if f.name in _TUPLE_FIELDS else value
    return out


def job_from_dict(data: Mapping[str, object]) -> Job:
    """Inverse of :func:`job_to_dict`."""
    kwargs: Dict[str, object] = {}
    for f in fields(Job):
        value = data[f.name]
        kwargs[f.name] = _tuplify(value) if f.name in _TUPLE_FIELDS else value
    return Job(**kwargs)  # type: ignore[arg-type]


def config_key(job: Job) -> str:
    """Deterministic hash of everything that affects the job's result.

    ``tags`` are excluded: they label the record but do not change the
    computation.  The hash is stable across processes and Python versions
    (canonical JSON, sorted keys).
    """
    config = job_to_dict(job)
    del config["tags"]
    config["cache_version"] = CACHE_VERSION
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------
# record (de)serialisation


def record_to_payload(record: ComparisonRecord) -> Dict[str, object]:
    """All dataclass fields of a record as a JSON-serialisable dict."""
    return {
        "benchmark": record.benchmark,
        "architecture": record.architecture,
        "num_data_qubits": record.num_data_qubits,
        "num_physical_qubits": record.num_physical_qubits,
        "baseline_depth": record.baseline_depth,
        "mech_depth": record.mech_depth,
        "baseline_eff_cnots": record.baseline_eff_cnots,
        "mech_eff_cnots": record.mech_eff_cnots,
        "highway_qubit_fraction": record.highway_qubit_fraction,
        "baseline_seconds": record.baseline_seconds,
        "mech_seconds": record.mech_seconds,
        "extra": dict(record.extra),
    }


def record_from_payload(payload: Mapping[str, object]) -> ComparisonRecord:
    """Inverse of :func:`record_to_payload` (always returns a fresh record)."""
    data = dict(payload)
    data["extra"] = dict(data.get("extra") or {})
    return ComparisonRecord(**data)  # type: ignore[arg-type]


def record_row(record: ComparisonRecord) -> Dict[str, object]:
    """Flat artifact row: stored fields plus the derived paper metrics."""
    row = record_to_payload(record)
    extra = row.pop("extra")
    row["depth_improvement"] = record.depth_improvement
    row["eff_cnots_improvement"] = record.eff_cnots_improvement
    row["normalized_depth"] = record.normalized_depth
    row["normalized_eff_cnots"] = record.normalized_eff_cnots
    for key in sorted(extra):
        row[key] = extra[key]
    return row


# --------------------------------------------------------------------------
# executors


def _run_compare_job(job: Job) -> ComparisonRecord:
    """Execute a ``kind="compare"`` job (one baseline-vs-MECH compilation)."""
    return compare(
        job.benchmark,
        job.build_array(),
        noise=job.noise_model(),
        highway_density=job.highway_density,
        num_data_qubits=job.num_data_qubits,
        min_components=job.min_components,
        baseline_trials=job.baseline_trials,
        seed=job.seed,
        benchmark_kwargs=dict(job.benchmark_kwargs) or None,
    )


def _run_sensitivity_job(job: Job) -> ComparisonRecord:
    """Execute a ``kind="sensitivity"`` job (Fig. 13's compile-once protocol).

    Both compilers run once under the job's base noise model; the emitted
    circuits are then re-scored under each swept noise model.  The sweep
    series land in the record's ``extra`` dict under ``<series>@<value>``
    keys so they survive the JSON cache and the CSV artifacts.
    """
    params = dict(job.params)
    base_noise = job.noise_model()
    pair = compile_pair(
        job.benchmark,
        job.build_array(),
        noise=base_noise,
        highway_density=job.highway_density,
        num_data_qubits=job.num_data_qubits,
        min_components=job.min_components,
        baseline_trials=job.baseline_trials,
        seed=job.seed,
        benchmark_kwargs=dict(job.benchmark_kwargs) or None,
    )

    extra: Dict[str, float] = {}
    for latency in params.get("meas_latencies", ()):
        noise = base_noise.with_ratios(meas_latency=float(latency))
        extra[f"depth_vs_latency@{float(latency):g}"] = improvement(
            pair.baseline_result.metrics(noise).depth, pair.mech_result.metrics(noise).depth
        )
    for ratio in params.get("meas_error_ratios", ()):
        noise = base_noise.with_ratios(meas_on_ratio=float(ratio))
        extra[f"eff_vs_meas_error@{float(ratio):g}"] = improvement(
            pair.baseline_result.metrics(noise).eff_cnots,
            pair.mech_result.metrics(noise).eff_cnots,
        )
    for ratio in params.get("cross_error_ratios", ()):
        noise = base_noise.with_ratios(cross_on_ratio=float(ratio))
        extra[f"eff_vs_cross_error@{float(ratio):g}"] = improvement(
            pair.baseline_result.metrics(noise).eff_cnots,
            pair.mech_result.metrics(noise).eff_cnots,
        )
    return pair.record(base_noise, extra=extra)


#: Executor registry, keyed by ``Job.kind``.  Both executors live in this
#: module so worker processes only ever need to import the engine.
EXECUTORS: Dict[str, Callable[[Job], ComparisonRecord]] = {
    "compare": _run_compare_job,
    "sensitivity": _run_sensitivity_job,
}


def _execute_job(job: Job) -> ComparisonRecord:
    try:
        executor = EXECUTORS[job.kind]
    except KeyError as exc:
        raise ValueError(f"unknown job kind {job.kind!r}; choose from {sorted(EXECUTORS)}") from exc
    return executor(job)


def _execute_keyed(item: Tuple[str, Dict[str, object]]) -> Tuple[str, Dict[str, object]]:
    """Worker entry point: (config key, job dict) -> (config key, record payload)."""
    key, job_dict = item
    record = _execute_job(job_from_dict(job_dict))
    return key, record_to_payload(record)


# --------------------------------------------------------------------------
# on-disk cache


class ResultCache:
    """On-disk JSON memo of comparison records, one file per config hash.

    Entries are written atomically (temp file + rename) so concurrent runs
    sharing a cache directory never observe torn files.  Payloads carry the
    full job config alongside the record, which makes a cache directory
    self-describing and debuggable with plain ``jq``.
    """

    def __init__(self, cache_dir: Union[str, Path]):
        self.cache_dir = Path(cache_dir)

    def path_for(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached record payload for ``key``, or None on a miss."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        if not isinstance(entry, dict) or entry.get("cache_version") != CACHE_VERSION:
            return None
        record = entry.get("record")
        return dict(record) if isinstance(record, dict) else None

    def put(self, key: str, job: Job, record_payload: Mapping[str, object]) -> Path:
        """Store one record payload under ``key`` (atomic write)."""
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        entry = {
            "cache_version": CACHE_VERSION,
            "key": key,
            "job": {k: v for k, v in job_to_dict(job).items() if k != "tags"},
            "record": dict(record_payload),
        }
        path = self.path_for(key)
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(entry, handle, indent=1, sort_keys=True)
        os.replace(tmp, path)
        return path

    def entries(self) -> List[Path]:
        if not self.cache_dir.is_dir():
            return []
        return sorted(self.cache_dir.glob("*.json"))

    def __len__(self) -> int:
        return len(self.entries())

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            path.unlink()
            removed += 1
        return removed


def _coerce_cache(cache: Union[None, str, Path, ResultCache]) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


# --------------------------------------------------------------------------
# execution


@dataclass
class RunReport:
    """What one :func:`run_jobs_report` call did."""

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    deduplicated: int = 0
    workers: int = 1
    seconds: float = 0.0

    def summary(self) -> str:
        return (
            f"{self.total} jobs: {self.cache_hits} cached, {self.executed} executed"
            f" ({self.workers} worker{'s' if self.workers != 1 else ''},"
            f" {self.seconds:.1f}s)"
        )


def run_jobs_report(
    jobs: Sequence[Job],
    *,
    workers: int = 1,
    cache: Union[None, str, Path, ResultCache] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Tuple[List[ComparisonRecord], RunReport]:
    """Execute jobs (cache -> dedupe -> pool) and report what happened.

    Records come back in job order regardless of the completion order of the
    pool, so a parallel run is record-for-record identical to a serial one.
    ``workers <= 1`` stays in-process; ``workers > 1`` dispatches cache misses
    over a ``multiprocessing`` pool.  ``cache`` may be a directory path or a
    :class:`ResultCache`; ``None`` disables memoization (identical jobs are
    still computed only once per call).
    """
    store = _coerce_cache(cache)
    workers = max(1, int(workers))
    report = RunReport(total=len(jobs), workers=workers)
    start = time.perf_counter()

    keys = [config_key(job) for job in jobs]
    payloads: Dict[str, Dict[str, object]] = {}
    pending: Dict[str, Job] = {}
    for job, key in zip(jobs, keys):
        if key in payloads or key in pending:
            continue
        hit = store.get(key) if store is not None else None
        if hit is not None:
            payloads[key] = hit
            report.cache_hits += 1
        else:
            pending[key] = job
    report.deduplicated = len(jobs) - report.cache_hits - len(pending)
    report.executed = len(pending)

    items = [(key, job_to_dict(job)) for key, job in pending.items()]
    done = 0

    def collect(key: str, payload: Dict[str, object]) -> None:
        # persist each result as it lands, so an interrupted or partially
        # failed sweep keeps everything that already compiled
        payloads[key] = payload
        if store is not None:
            store.put(key, pending[key], payload)
        nonlocal done
        done += 1
        if progress is not None:
            progress(f"{done}/{len(items)} jobs executed")

    if len(items) > 1 and workers > 1:
        with multiprocessing.get_context().Pool(processes=min(workers, len(items))) as pool:
            for key, payload in pool.imap_unordered(_execute_keyed, items, chunksize=1):
                collect(key, payload)
    else:
        for item in items:
            collect(*_execute_keyed(item))

    records: List[ComparisonRecord] = []
    for job, key in zip(jobs, keys):
        record = record_from_payload(payloads[key])
        for tag, value in job.tags:
            record.extra[tag] = value
        records.append(record)
    report.seconds = time.perf_counter() - start
    return records, report


def run_jobs(
    jobs: Sequence[Job],
    *,
    workers: int = 1,
    cache: Union[None, str, Path, ResultCache] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[ComparisonRecord]:
    """Like :func:`run_jobs_report`, returning only the records."""
    records, _ = run_jobs_report(jobs, workers=workers, cache=cache, progress=progress)
    return records


# --------------------------------------------------------------------------
# artifacts


def write_artifacts(
    name: str,
    records: Sequence[ComparisonRecord],
    out_dir: Union[str, Path],
    *,
    text: Optional[str] = None,
    metadata: Optional[Mapping[str, object]] = None,
) -> Dict[str, Path]:
    """Write ``<out_dir>/<name>.json`` and ``.csv`` (and ``.txt`` if given).

    The JSON artifact holds one flat row per record (stored fields plus the
    derived paper metrics) under a small metadata header; the CSV holds the
    same rows with a stable column order (core fields first, then the union
    of extra keys, sorted).
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    rows = [record_row(record) for record in records]

    json_path = out / f"{name}.json"
    document = {
        "experiment": name,
        "cache_version": CACHE_VERSION,
        **(dict(metadata) if metadata else {}),
        "records": rows,
    }
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=False)
        handle.write("\n")

    core = [
        "benchmark",
        "architecture",
        "num_data_qubits",
        "num_physical_qubits",
        "baseline_depth",
        "mech_depth",
        "depth_improvement",
        "baseline_eff_cnots",
        "mech_eff_cnots",
        "eff_cnots_improvement",
        "normalized_depth",
        "normalized_eff_cnots",
        "highway_qubit_fraction",
        "baseline_seconds",
        "mech_seconds",
    ]
    extra_columns = sorted({key for row in rows for key in row} - set(core))
    columns = core + extra_columns
    csv_path = out / f"{name}.csv"
    with open(csv_path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)

    paths = {"json": json_path, "csv": csv_path}
    if text is not None:
        txt_path = out / f"{name}.txt"
        txt_path.write_text(text + ("\n" if not text.endswith("\n") else ""), encoding="utf-8")
        paths["txt"] = txt_path
    return paths
