"""Parallel experiment-orchestration engine with on-disk result caching.

Every cell of the paper's tables and figures is modelled as a hashable
:class:`Job`: the benchmark name, the device (structure, chiplet footprint,
array shape, link density, highway density), the compiler list (registered
backend names, reference first — see :mod:`repro.backends`), the compiler
knobs and the seed.  The engine fans jobs out over a :mod:`multiprocessing`
pool, memoizes each record in an on-disk JSON cache keyed by the job's config
hash (the compiler list is part of the hash), and emits JSON/CSV artifacts
per experiment.  The default ``("baseline", "mech")`` pair produces the
historic two-column :class:`~repro.experiments.runner.ComparisonRecord`; any
other compiler list produces an N-way
:class:`~repro.experiments.runner.MultiComparisonRecord` with per-backend
columns.

The design splits each experiment into three deterministic phases:

1. a *jobs builder* (``jobs_for_fig12`` and friends) expands the experiment's
   scale preset into a flat list of jobs — pure configuration, no compilation;
2. :func:`run_jobs` executes the jobs — first consulting the cache, then
   deduplicating identical jobs within the run, then dispatching the misses
   either serially or over a worker pool (results are reassembled in job
   order, so parallel and serial runs return identical records);
3. :func:`write_artifacts` serialises the records as JSON and CSV so figures
   can be regenerated and diffed without recompiling anything.

Job *tags* (e.g. the swept parameter value a record corresponds to) are
deliberately excluded from the config hash and re-applied after cache
retrieval: two jobs that perform the same computation share one cache entry
no matter how the experiment labels them.

Execution is fault tolerant: a :class:`JobPolicy` attaches a per-job
wall-clock timeout, a retry budget and an ``on_error`` disposition to every
dispatch, worker processes capture exceptions as structured :class:`JobError`
records instead of poisoning the pool, and an optional checkpoint file tracks
exactly which jobs are cached, completed, failed and still pending — so an
interrupted or partially failed sweep loses nothing that already compiled and
a rerun against the same cache executes only what remains.

Execution is also *incremental*: :func:`run_jobs_report` is split into a pure
:func:`plan_jobs` phase (keys, cache consultation, deduplication — no
compilation) and an execute phase that consumes the resulting
:class:`ExecutionPlan`.  Dry runs reuse the exact plan a real run would
execute (:func:`plan_summary` renders it as stable counts), checkpoints
serialise the *full* job list under a versioned schema so
:func:`load_checkpoint` can re-hydrate an interrupted sweep without
re-expanding the experiment spec, and :meth:`ResultCache.sweep_older_than`
adds an age-based (TTL) garbage collector next to the LRU size cap.
"""

from __future__ import annotations

import builtins
import contextlib
import csv
import hashlib
import json
import math
import multiprocessing
import os
import signal
import threading
import time
import traceback
from dataclasses import asdict, dataclass, field, fields, replace
from pathlib import Path
from collections.abc import Callable, Mapping, Sequence
from typing import Any

try:  # POSIX only; the access log degrades to best-effort appends without it
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from ..backends import DEFAULT_COMPILERS, available_backends
from ..chaos import chaos_controller
from ..hardware.array import ChipletArray
from ..hardware.noise import DEFAULT_NOISE, NoiseModel
from ..metrics import improvement
from .runner import (
    AnyRecord,
    ComparisonRecord,
    MultiComparisonRecord,
    backend_stat_extras,
    compile_many,
)

__all__ = [
    "CACHE_VERSION",
    "CHECKPOINT_VERSION",
    "FAULT_INJECT_ENV",
    "SCALE_TIERS",
    "STALL_ENV",
    "VERIFY_ENV",
    "Checkpoint",
    "CheckpointError",
    "ExecutionPlan",
    "Job",
    "JobError",
    "JobExecutionError",
    "JobPolicy",
    "JobTimeoutError",
    "ResultCache",
    "RunReport",
    "append_journal",
    "checkpoint_document",
    "config_key",
    "error_row",
    "experiment_checkpoint_meta",
    "job_from_dict",
    "job_to_dict",
    "journal_path_for",
    "load_checkpoint",
    "noise_from_items",
    "noise_to_items",
    "plan_jobs",
    "plan_summary",
    "quarantine_checkpoint",
    "quarantine_path_for",
    "read_journal",
    "repair_journal",
    "record_from_payload",
    "record_to_payload",
    "record_row",
    "run_jobs",
    "run_jobs_report",
    "set_warm_state_provider",
    "write_artifacts",
]

#: Bump when the cache payload layout or the compilers' semantics change in a
#: way that invalidates memoized records.  Version 2: the pluggable-backend
#: redesign — jobs carry an explicit compiler list (part of the config hash)
#: and N-way payloads store per-backend columns.
CACHE_VERSION = 2

#: The scale tiers shared by every experiment's presets (and by the benchmark
#: harness's ``--repro-scale`` option).
SCALE_TIERS: tuple[str, ...] = ("small", "medium", "paper")

Primitive = str | int | float | bool | None
Items = tuple[tuple[str, Primitive], ...]


def noise_to_items(noise: NoiseModel) -> Items:
    """Serialise a noise model as a hashable, order-stable tuple of pairs."""
    return tuple(sorted(asdict(noise).items()))


def noise_from_items(items: Items) -> NoiseModel:
    """Inverse of :func:`noise_to_items`."""
    return NoiseModel(**dict(items))


#: Default-noise items, precomputed so ``Job`` can use them as a default.
DEFAULT_NOISE_ITEMS: Items = noise_to_items(DEFAULT_NOISE)


@dataclass(frozen=True)
class Job:
    """One hashable cell of a figure/table: benchmark x device x knobs.

    ``kind`` selects the executor: ``"compare"`` runs every listed compiler
    once and records the paper's headline metrics; ``"sensitivity"`` compiles
    once and re-scores the fixed circuits under the noise sweeps carried in
    ``params`` (Fig. 13's protocol).  ``compilers`` names the registered
    backends to compare, reference first; it is part of the config hash, so
    the same cell swept with different compiler sets caches separately.
    ``tags`` annotate the resulting record's ``extra`` dict but do not enter
    the config hash.
    """

    benchmark: str
    kind: str = "compare"
    structure: str = "square"
    chiplet_width: int = 4
    rows: int = 1
    cols: int = 2
    cross_links_per_edge: int | None = None
    highway_density: int = 1
    num_data_qubits: int | None = None
    min_components: int = 2
    baseline_trials: int = 1
    seed: int = 0
    noise: Items = DEFAULT_NOISE_ITEMS
    benchmark_kwargs: Items = ()
    params: tuple[tuple[str, tuple[float, ...]], ...] = ()
    tags: Items = ()
    compilers: tuple[str, ...] = DEFAULT_COMPILERS

    def build_array(self) -> ChipletArray:
        return ChipletArray(
            self.structure,
            self.chiplet_width,
            self.rows,
            self.cols,
            cross_links_per_edge=self.cross_links_per_edge,
        )

    def noise_model(self) -> NoiseModel:
        return noise_from_items(self.noise)

    def with_(self, **changes) -> "Job":
        return replace(self, **changes)


#: Tuple-typed Job fields that JSON round-trips as (nested) lists.
_TUPLE_FIELDS = ("noise", "benchmark_kwargs", "params", "tags", "compilers")


def _listify(value):
    if isinstance(value, tuple):
        return [_listify(v) for v in value]
    return value


def _tuplify(value):
    if isinstance(value, list):
        return tuple(_tuplify(v) for v in value)
    return value


def job_to_dict(job: Job) -> dict[str, object]:
    """JSON-serialisable dict representation of a job."""
    out: dict[str, object] = {}
    for f in fields(Job):
        value = getattr(job, f.name)
        out[f.name] = _listify(value) if f.name in _TUPLE_FIELDS else value
    return out


def job_from_dict(data: Mapping[str, object]) -> Job:
    """Inverse of :func:`job_to_dict`.

    Fields absent from ``data`` fall back to the dataclass defaults, so
    checkpoints serialised before a field existed (e.g. ``compilers``) keep
    re-hydrating — an old job and its re-hydrated twin hash identically
    because :func:`job_to_dict` re-adds the default before hashing.
    """
    kwargs: dict[str, object] = {}
    for f in fields(Job):
        if f.name not in data:
            continue
        value = data[f.name]
        kwargs[f.name] = _tuplify(value) if f.name in _TUPLE_FIELDS else value
    return Job(**kwargs)  # type: ignore[arg-type]


def config_key(job: Job) -> str:
    """Deterministic hash of everything that affects the job's result.

    ``tags`` are excluded: they label the record but do not change the
    computation.  The hash is stable across processes and Python versions
    (canonical JSON, sorted keys).
    """
    config = job_to_dict(job)
    del config["tags"]
    config["cache_version"] = CACHE_VERSION
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------
# record (de)serialisation


def record_to_payload(record: AnyRecord) -> dict[str, object]:
    """All dataclass fields of a record as a JSON-serialisable dict.

    Two-backend :class:`ComparisonRecord` payloads keep the historic flat
    field layout; :class:`MultiComparisonRecord` payloads carry a
    ``compilers`` list plus per-backend ``depths``/``eff_cnots``/``seconds``
    maps — the marker :func:`record_from_payload` dispatches on.
    """
    if isinstance(record, MultiComparisonRecord):
        return {
            "compilers": list(record.compilers),
            "benchmark": record.benchmark,
            "architecture": record.architecture,
            "num_data_qubits": record.num_data_qubits,
            "num_physical_qubits": record.num_physical_qubits,
            "depths": dict(record.depths),
            "eff_cnots": dict(record.eff_cnots),
            "highway_qubit_fraction": record.highway_qubit_fraction,
            "seconds": dict(record.seconds),
            "extra": dict(record.extra),
        }
    return {
        "benchmark": record.benchmark,
        "architecture": record.architecture,
        "num_data_qubits": record.num_data_qubits,
        "num_physical_qubits": record.num_physical_qubits,
        "baseline_depth": record.baseline_depth,
        "mech_depth": record.mech_depth,
        "baseline_eff_cnots": record.baseline_eff_cnots,
        "mech_eff_cnots": record.mech_eff_cnots,
        "highway_qubit_fraction": record.highway_qubit_fraction,
        "baseline_seconds": record.baseline_seconds,
        "mech_seconds": record.mech_seconds,
        "extra": dict(record.extra),
    }


def record_from_payload(payload: Mapping[str, object]) -> AnyRecord:
    """Inverse of :func:`record_to_payload` (always returns a fresh record)."""
    data = dict(payload)
    data["extra"] = dict(data.get("extra") or {})
    if "compilers" in data:
        data["compilers"] = tuple(data["compilers"])
        data["depths"] = dict(data.get("depths") or {})
        data["eff_cnots"] = dict(data.get("eff_cnots") or {})
        data["seconds"] = dict(data.get("seconds") or {})
        return MultiComparisonRecord(**data)  # type: ignore[arg-type]
    return ComparisonRecord(**data)  # type: ignore[arg-type]


def record_row(record: AnyRecord) -> dict[str, object]:
    """Flat artifact row: stored fields plus the derived paper metrics.

    N-way records flatten to per-backend columns (``<name>_depth``,
    ``<name>_eff_cnots``, ``<name>_seconds``, improvement/normalised ratios
    against the reference backend) instead of the two-backend core columns.
    """
    if isinstance(record, MultiComparisonRecord):
        row = record.as_dict()
        extra_keys = sorted(record.extra)
        for name in record.compilers:
            if name != record.reference:
                row[f"{name}_normalized_depth"] = record.normalized_depth_for(name)
                row[f"{name}_normalized_eff_cnots"] = record.normalized_eff_cnots_for(name)
            row[f"{name}_seconds"] = record.seconds.get(name, 0.0)
        # re-append extras after the derived columns, sorted and stable
        for key in extra_keys:
            row[key] = row.pop(key)
        return row
    row = record_to_payload(record)
    extra = row.pop("extra")
    row["depth_improvement"] = record.depth_improvement
    row["eff_cnots_improvement"] = record.eff_cnots_improvement
    row["normalized_depth"] = record.normalized_depth
    row["normalized_eff_cnots"] = record.normalized_eff_cnots
    for key in sorted(extra):
        row[key] = extra[key]
    return row


# --------------------------------------------------------------------------
# executors


#: Environment variable that, when set truthy, makes every compile job run
#: the static verifier (:mod:`repro.analysis`) over each backend's output and
#: fail the job on any violation.  It is deliberately *not* part of the job
#: config hash: verification only gates fresh compilations (cache hits were
#: verified when first computed, or predate the flag), so cached sweeps stay
#: cache-compatible whether or not ``--verify`` is on.
VERIFY_ENV = "REPRO_VERIFY"


def _verify_enabled() -> bool:
    value = os.environ.get(VERIFY_ENV, "")
    return value.strip().lower() not in ("", "0", "false", "no", "off")


#: Optional provider of resident per-device state, installed by a compile
#: server's worker pool (:mod:`repro.serve`).  Maps a :class:`Job` to an
#: object with ``array``/``layout``/``router`` attributes matching the job's
#: device configuration, or ``None`` for the cold path.  Process-global: the
#: engine's own worker *processes* never inherit an installed provider
#: (spawn) or install one (fork happens before any server exists).
_WARM_STATE_PROVIDER: Callable[[Job], Any] | None = None


def set_warm_state_provider(
    provider: Callable[[Job], Any] | None,
) -> Callable[[Job], Any] | None:
    """Install (or clear, with ``None``) the warm device-state provider.

    Returns the previously installed provider so embedders can restore it.
    The provider must return state whose device configuration matches the
    job's — the warm path trusts it; results stay byte-identical because the
    resident state is a pure function of that configuration.
    """
    global _WARM_STATE_PROVIDER
    previous = _WARM_STATE_PROVIDER
    _WARM_STATE_PROVIDER = provider
    return previous


def _compile_job(job: Job):
    """Compile a job's benchmark with every backend it lists.

    With :data:`VERIFY_ENV` set (the CLI's ``repro run --verify``), every
    backend's output is statically verified against the input circuit before
    the job may produce a record; a ``VerificationError`` propagates through
    the engine's normal :class:`JobError` fault path.

    When a warm-state provider is installed (:func:`set_warm_state_provider`)
    the resident array/layout/router replace the cold per-job rebuild — the
    serve path's whole point; with no provider every job builds its own.
    """
    provider = _WARM_STATE_PROVIDER
    state = provider(job) if provider is not None else None
    if state is not None:
        array = state.array
        layout = state.layout
        router = state.router
    else:
        array = job.build_array()
        layout = None
        router = None
    compiled = compile_many(
        job.benchmark,
        array,
        layout=layout,
        router=router,
        compilers=job.compilers,
        noise=job.noise_model(),
        highway_density=job.highway_density,
        num_data_qubits=job.num_data_qubits,
        min_components=job.min_components,
        baseline_trials=job.baseline_trials,
        seed=job.seed,
        benchmark_kwargs=dict(job.benchmark_kwargs) or None,
    )
    if _verify_enabled():
        compiled.verify_all(job.noise_model())
    return compiled


def _run_compare_job(job: Job) -> AnyRecord:
    """Execute a ``kind="compare"`` job (one N-way compilation).

    Every backend named in ``job.compilers`` is resolved through
    :func:`repro.backends.get_backend` and run once.  The default
    ``("baseline", "mech")`` pair yields the historic two-column record —
    metrics identical to the pre-registry engine; any other compiler list
    yields a :class:`MultiComparisonRecord` with per-backend columns.
    """
    compiled = _compile_job(job)
    extra = backend_stat_extras(compiled)
    noise = job.noise_model()
    if job.compilers == DEFAULT_COMPILERS:
        return compiled.comparison_record(noise, extra=extra)
    return compiled.record(noise, extra=extra)


def _run_sensitivity_job(job: Job) -> AnyRecord:
    """Execute a ``kind="sensitivity"`` job (Fig. 13's compile-once protocol).

    Every backend runs once under the job's base noise model; the emitted
    circuits are then re-scored under each swept noise model, against the
    reference backend.  The sweep series land in the record's ``extra`` dict
    under ``<series>@<value>`` keys (the primary backend) and
    ``<backend>:<series>@<value>`` keys (any further non-reference backends)
    so they survive the JSON cache and the CSV artifacts.
    """
    params = dict(job.params)
    base_noise = job.noise_model()
    compiled = _compile_job(job)
    reference_result = compiled.results[compiled.reference]

    extra: dict[str, float] = {}
    for name in compiled.compilers:
        if name == compiled.reference:
            continue
        result = compiled.results[name]
        prefix = "" if name == compiled.primary else f"{name}:"
        for latency in params.get("meas_latencies", ()):
            noise = base_noise.with_ratios(meas_latency=float(latency))
            extra[f"{prefix}depth_vs_latency@{float(latency):g}"] = improvement(
                reference_result.metrics(noise).depth, result.metrics(noise).depth
            )
        for ratio in params.get("meas_error_ratios", ()):
            noise = base_noise.with_ratios(meas_on_ratio=float(ratio))
            extra[f"{prefix}eff_vs_meas_error@{float(ratio):g}"] = improvement(
                reference_result.metrics(noise).eff_cnots, result.metrics(noise).eff_cnots
            )
        for ratio in params.get("cross_error_ratios", ()):
            noise = base_noise.with_ratios(cross_on_ratio=float(ratio))
            extra[f"{prefix}eff_vs_cross_error@{float(ratio):g}"] = improvement(
                reference_result.metrics(noise).eff_cnots, result.metrics(noise).eff_cnots
            )
    if job.compilers == DEFAULT_COMPILERS:
        return compiled.comparison_record(base_noise, extra=extra)
    return compiled.record(base_noise, extra=extra)


#: Executor registry, keyed by ``Job.kind``.  Both executors live in this
#: module so worker processes only ever need to import the engine.
EXECUTORS: dict[str, Callable[[Job], AnyRecord]] = {
    "compare": _run_compare_job,
    "sensitivity": _run_sensitivity_job,
}


#: Environment variable naming a benchmark whose jobs fail on purpose.  Used
#: by the fault-injection tests and the CI smoke job to exercise the error
#: path through a real CLI run without patching any code.
FAULT_INJECT_ENV = "REPRO_FAULT_BENCHMARK"

#: Environment variable of the form ``NAME:SECONDS`` that makes every job of
#: benchmark NAME sleep before compiling.  The stall is what lets the farm
#: fault-tolerance tests (and the CI farm-smoke job) deterministically catch
#: a worker mid-job to SIGKILL it — same spirit as :data:`FAULT_INJECT_ENV`,
#: no code patched.
STALL_ENV = "REPRO_STALL_BENCHMARK"

#: Upper bound on an injected stall, so a typo cannot wedge a run for hours.
_STALL_MAX_SECONDS = 60.0


def _injected_stall(job: Job) -> float:
    spec = os.environ.get(STALL_ENV)
    if not spec:
        return 0.0
    name, _, seconds = spec.partition(":")
    if name.strip().upper() != job.benchmark.upper():
        return 0.0
    try:
        return min(max(float(seconds), 0.0), _STALL_MAX_SECONDS)
    except ValueError:
        return 0.0


def _execute_job(job: Job) -> AnyRecord:
    stall = _injected_stall(job)
    if stall:
        time.sleep(stall)
    injected = os.environ.get(FAULT_INJECT_ENV)
    if injected and job.benchmark.upper() == injected.upper():
        raise RuntimeError(
            f"injected fault for benchmark {job.benchmark!r} ({FAULT_INJECT_ENV} is set)"
        )
    try:
        executor = EXECUTORS[job.kind]
    except KeyError as exc:
        raise ValueError(f"unknown job kind {job.kind!r}; choose from {sorted(EXECUTORS)}") from exc
    return executor(job)


# --------------------------------------------------------------------------
# fault tolerance


class JobTimeoutError(Exception):
    """A job exceeded its :attr:`JobPolicy.timeout` wall-clock budget."""


@dataclass(frozen=True)
class JobPolicy:
    """Fault-tolerance policy applied to every job of a sweep.

    ``timeout`` is a per-*attempt* wall-clock budget in seconds (None
    disables it); ``retries`` re-runs a failed job up to that many extra
    times, bumping the seed on each attempt when ``reseed_on_retry`` is set
    (the result is still stored under the original job's config key).
    ``on_error`` decides what happens once the attempts are exhausted:

    * ``"raise"`` — re-raise the failure in the caller (the engine's historic
      behaviour; everything that already finished stays cached);
    * ``"skip"`` — drop the job from the returned records, count it in
      :attr:`RunReport.failed` and keep sweeping;
    * ``"record"`` — like ``"skip"``, but the :class:`JobError` additionally
      flows into the artifacts as an error row.

    Failed jobs are never cached, so a rerun against the same cache executes
    only the jobs that failed.
    """

    timeout: float | None = None
    retries: int = 0
    reseed_on_retry: bool = False
    on_error: str = "raise"

    ON_ERROR_CHOICES = ("raise", "skip", "record")

    def __post_init__(self):
        if self.on_error not in self.ON_ERROR_CHOICES:
            raise ValueError(
                f"on_error must be one of {self.ON_ERROR_CHOICES}, got {self.on_error!r}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive or None, got {self.timeout}")

    def to_dict(self) -> dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(JobPolicy)}


@dataclass
class JobError:
    """Structured account of one job that failed every attempt."""

    key: str
    benchmark: str
    kind: str
    error_type: str
    message: str
    traceback_tail: str
    attempts: int
    seconds: float


class JobExecutionError(RuntimeError):
    """Raised by ``on_error="raise"`` when the original exception type cannot
    be reconstructed in the parent process."""

    def __init__(self, error: JobError):
        super().__init__(
            f"job {error.benchmark} ({error.key[:12]}…) failed after "
            f"{error.attempts} attempt(s): {error.error_type}: {error.message}"
        )
        self.error = error


def _raise_job_error(error: JobError) -> None:
    """Re-raise a captured failure, preserving the original type if builtin."""
    exc_cls = getattr(builtins, error.error_type, None)
    if isinstance(exc_cls, type) and issubclass(exc_cls, Exception):
        try:
            exc = exc_cls(error.message)
        except Exception:
            exc = None
        if isinstance(exc, Exception):
            raise exc
    raise JobExecutionError(error)


def _async_raise(thread_id: int, exc_type: type[BaseException]) -> bool:
    """Schedule ``exc_type`` to be raised in the thread with ``thread_id``.

    CPython-only (``PyThreadState_SetAsyncExc``); the exception surfaces at
    the target thread's next bytecode boundary, so a thread blocked inside a
    single long C call is interrupted only once that call returns.  Returns
    whether the exception was actually scheduled.
    """
    try:
        import ctypes

        set_async_exc = ctypes.pythonapi.PyThreadState_SetAsyncExc
    except (ImportError, AttributeError):  # pragma: no cover - non-CPython
        return False
    set_async_exc.argtypes = (ctypes.c_ulong, ctypes.py_object)
    set_async_exc.restype = ctypes.c_int
    affected = set_async_exc(ctypes.c_ulong(thread_id), ctypes.py_object(exc_type))
    if affected > 1:  # pragma: no cover - stale thread id; undo the damage
        set_async_exc(ctypes.c_ulong(thread_id), ctypes.py_object())
        return False
    return affected == 1


@contextlib.contextmanager
def _deadline(seconds: float | None):
    """Raise :class:`JobTimeoutError` in the body after ``seconds`` of wall
    clock.

    On the main thread (worker *processes* always run jobs there) the timer
    is SIGALRM-based, exactly as it always was.  Off the main thread — serve
    workers, or any embedding that dispatches jobs from a thread pool — a
    monotonic-deadline watchdog thread schedules the timeout asynchronously
    instead: SIGALRM cannot be armed there, and the historic behaviour was to
    silently run the body un-timed.  The watchdog raise lands at the next
    bytecode boundary of the timed thread, which for compile jobs (bytecode-
    rich, short native calls) tracks the deadline closely.
    """
    if seconds is None or seconds <= 0:
        yield
        return
    sigalrm_ok = (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not sigalrm_ok:
        target = threading.get_ident()
        finished = threading.Event()

        def _watchdog() -> None:
            if finished.wait(float(seconds)):
                return
            # double-check after the wait: the body may have completed in
            # the window between the timeout and this raise
            if not finished.is_set():
                _async_raise(target, JobTimeoutError)

        watchdog = threading.Thread(
            target=_watchdog, name="repro-deadline", daemon=True
        )
        watchdog.start()
        try:
            yield
        finally:
            finished.set()
        return

    def _on_alarm(signum, frame):
        raise JobTimeoutError(f"exceeded {seconds:g}s wall-clock timeout")

    previous_handler = signal.signal(signal.SIGALRM, _on_alarm)
    armed_at = time.monotonic()
    previous_timer = signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous_handler)
        if previous_timer[0]:
            # re-arm whatever the embedding process had running, less the
            # time we consumed (a tiny epsilon if it already expired)
            remaining = previous_timer[0] - (time.monotonic() - armed_at)
            signal.setitimer(signal.ITIMER_REAL, max(remaining, 1e-6), previous_timer[1])


#: How many trailing traceback lines a JobError keeps.
_TRACEBACK_TAIL_LINES = 12

WorkItem = tuple[str, dict[str, object], dict[str, object] | None]


def _execute_keyed(item: WorkItem) -> tuple[str, dict[str, object]]:
    """Worker entry point: (key, job dict, policy dict) -> (key, payload).

    The payload is either a record payload or ``{"job_error": {...}}`` — the
    worker never lets an exception (other than ``KeyboardInterrupt``) escape,
    so one poisoned job cannot kill the pool or discard in-flight results.
    """
    key, job_dict, policy_dict = item
    policy = JobPolicy(**policy_dict) if policy_dict else JobPolicy()
    job = job_from_dict(job_dict)
    start = time.perf_counter()
    error: JobError | None = None
    for attempt in range(policy.retries + 1):
        attempt_job = job
        if policy.reseed_on_retry and attempt:
            attempt_job = job.with_(seed=job.seed + attempt)
        try:
            with _deadline(policy.timeout):
                record = _execute_job(attempt_job)
        except Exception as exc:
            tail = "\n".join(traceback.format_exc().splitlines()[-_TRACEBACK_TAIL_LINES:])
            message = str(exc)
            if not message and isinstance(exc, JobTimeoutError) and policy.timeout:
                # the watchdog path raises the bare class (async raises
                # cannot carry arguments), so reconstruct the message
                message = f"exceeded {policy.timeout:g}s wall-clock timeout"
            error = JobError(
                key=key,
                benchmark=job.benchmark,
                kind=job.kind,
                error_type=type(exc).__name__,
                message=message,
                traceback_tail=tail,
                attempts=attempt + 1,
                seconds=time.perf_counter() - start,
            )
        else:
            return key, record_to_payload(record)
    assert error is not None
    return key, {"job_error": asdict(error)}


# --------------------------------------------------------------------------
# on-disk cache


#: Shard directories are the first two hex chars of the config hash.
_SHARD_CHARS = 2
_SHARD_GLOB = "[0-9a-f]" * _SHARD_CHARS
#: Append-only hit/miss log backing ``repro cache-stats`` telemetry.
_ACCESS_LOG = "access.log"
#: Compact the log into aggregated counts once it grows past this size.
_ACCESS_LOG_MAX_BYTES = 4 * 1024 * 1024
#: How many appends between log-size checks (keeps the hot path stat-free).
_ACCESS_COMPACT_EVERY = 1024
#: Temp files older than this are considered litter from a crashed writer.
_STALE_TMP_SECONDS = 3600.0


class ResultCache:
    """On-disk JSON memo of comparison records, one file per config hash.

    Entries are sharded by hash prefix (``ab/abcd….json``) so paper-scale
    sweeps never pile millions of files into one directory; flat entries from
    the pre-shard layout are migrated transparently on first access (or in
    bulk via :meth:`migrate`).  Writes are atomic (temp file + rename) so
    concurrent runs sharing a cache directory never observe torn files, and
    temp litter left by crashed writers is swept on :meth:`put`/:meth:`clear`.
    Payloads carry the full job config alongside the record, which makes a
    cache directory self-describing and debuggable with plain ``jq``.

    ``max_bytes`` caps the cache size: after every write, least-recently-used
    entries (by mtime — :meth:`get` touches entries it serves) are evicted
    until the total drops under the cap.  Corrupt entries are deleted on
    discovery and counted in :attr:`corrupt_seen` so cache rot surfaces in
    :class:`RunReport` instead of silently recomputing forever.
    """

    def __init__(
        self,
        cache_dir: str | Path,
        *,
        max_bytes: int | None = None,
        record_access: bool = True,
    ):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive or None, got {max_bytes}")
        self.cache_dir = Path(cache_dir)
        self.max_bytes = max_bytes
        #: Whether get() appends hit/miss lines to the access log.
        self.record_access = record_access
        #: Corrupt entries discovered (and removed) by this instance.
        self.corrupt_seen = 0
        #: Entries evicted by the LRU cap by this instance.
        self.evicted = 0
        #: put() calls that failed at the filesystem (ENOSPC, read-only
        #: mount, permissions) and degraded to pass-through instead.
        self.write_errors = 0
        #: Latched once any put() degrades: results are flowing through
        #: this cache without being persisted.
        self.degraded = False
        #: Running size total; None until the first capped put() scans once.
        self._total_bytes: int | None = None
        #: Appends by this instance, for periodic compaction checks.
        self._accesses_logged = 0
        #: Guards the instance counters above when one cache object is shared
        #: by server worker threads; on-disk state needs no instance lock
        #: (atomic renames, O_APPEND log writes, O_EXCL compaction claim).
        self._lock = threading.Lock()

    @property
    def access_log_path(self) -> Path:
        return self.cache_dir / _ACCESS_LOG

    def _log_access(self, kind: str, key: str) -> None:
        """Append one ``H``/``M``/``P`` ``<key> <unix-time>`` line to the log.

        Single short appends are atomic on POSIX, so concurrent runs sharing
        a cache directory interleave whole lines.  A cache directory that does
        not exist yet (a read against a never-written cache) is left alone —
        pure reads must not create state on disk.  Every
        ``_ACCESS_COMPACT_EVERY`` appends the log size is checked and, past
        ``_ACCESS_LOG_MAX_BYTES``, the line-per-access history is compacted
        into aggregated ``A``/``T`` records so a long-lived farm cache never
        grows an unbounded log.

        The timestamp doubles as mtime-independent recency: eviction and TTL
        sweeps rank entries by ``max(st_mtime, last logged use)``, so a cache
        restored by tooling that resets mtimes (CI ``actions/cache``) keeps
        its true LRU order.  ``P`` lines record puts for exactly that reason
        and never count as hits or misses.

        Appends coordinate with compaction through a shared ``flock`` plus an
        inode check: a compactor renames the live log aside and takes an
        exclusive lock on it before parsing, so an append either lands before
        the parse (holding the shared lock on the same inode) or notices the
        rename and retries against the fresh log — no line can slip into the
        aside file after it was aggregated.
        """
        if not self.record_access or not self.cache_dir.is_dir():
            return
        line = f"{kind} {key} {time.time():.6f}\n".encode("utf-8")
        with contextlib.suppress(OSError):
            self._append_log_line(line)
            with self._lock:
                self._accesses_logged += 1
                check_size = self._accesses_logged % _ACCESS_COMPACT_EVERY == 0
            if check_size and self.access_log_path.stat().st_size > _ACCESS_LOG_MAX_BYTES:
                self._compact_access_log()

    def _append_log_line(self, line: bytes) -> None:
        """One atomic O_APPEND write, rename-aware (see :meth:`_log_access`)."""
        for _ in range(8):  # bounded retries if compactors keep renaming
            fd = os.open(
                str(self.access_log_path),
                os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                0o644,
            )
            try:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_SH)
                    try:
                        current = os.stat(self.access_log_path)
                    except FileNotFoundError:
                        continue  # renamed aside mid-open; write to the new log
                    if os.fstat(fd).st_ino != current.st_ino:
                        continue
                os.write(fd, line)
                return
            finally:
                os.close(fd)  # also releases the shared flock

    def _parse_access_log(
        self, path: Path | None = None
    ) -> tuple[int, int, dict[str, int], dict[str, float]]:
        """Totals, per-key hit counts and last-use times from the log.

        Line kinds: ``H <key> [<ts>]`` / ``M <key> [<ts>]`` raw accesses,
        ``P <key> <ts>`` put markers (recency only, no hit/miss), and the
        compacted forms ``A <key> <hits> [<ts>]`` (aggregated per-entry hits)
        and ``T <hits> <misses>`` (carried-over totals).  Timestamp-less
        lines written by earlier versions parse fine and simply contribute no
        recency.
        """
        hits = 0
        misses = 0
        per_key: dict[str, int] = {}
        last_used: dict[str, float] = {}

        def note_use(key: str, parts: list[str], index: int) -> None:
            if len(parts) > index:
                with contextlib.suppress(ValueError):
                    stamp = float(parts[index])
                    if stamp > last_used.get(key, 0.0):
                        last_used[key] = stamp

        with open(path or self.access_log_path, "r", encoding="utf-8") as handle:
            for line in handle:
                parts = line.split()
                if len(parts) < 2:
                    continue
                kind = parts[0]
                if kind == "H":
                    hits += 1
                    per_key[parts[1]] = per_key.get(parts[1], 0) + 1
                    note_use(parts[1], parts, 2)
                elif kind == "M":
                    misses += 1
                elif kind == "P":
                    note_use(parts[1], parts, 2)
                elif kind == "A" and len(parts) in (3, 4):
                    with contextlib.suppress(ValueError):
                        count = int(parts[2])
                        hits += count
                        per_key[parts[1]] = per_key.get(parts[1], 0) + count
                        note_use(parts[1], parts, 3)
                elif kind == "T" and len(parts) == 3:
                    with contextlib.suppress(ValueError):
                        hits += int(parts[1])
                        misses += int(parts[2])
        return hits, misses, per_key, last_used

    def _log_recency(self) -> dict[str, float]:
        """Newest logged use (hit or put) per key, for mtime-proof ranking."""
        try:
            _, _, _, last_used = self._parse_access_log()
        except OSError:
            return {}
        return last_used

    def _compact_access_log(self) -> None:
        """Aggregate the access log in place without dropping any tally.

        Compactions are serialised by an ``O_EXCL`` lock file: the loser of
        the claim simply skips (the winner is doing the work; a lock older
        than the stale-litter horizon is removed as debris from a crashed
        compactor).  The historic read→aggregate→``os.replace`` cycle raced
        concurrent *appenders* too — lines appended between the read and the
        replace vanished.  Instead the live log is renamed aside first, so
        appenders immediately start a fresh log, the aside file (now frozen)
        is aggregated, and the aggregate is appended back with one atomic
        ``O_APPEND`` write.  Every line lands in exactly one of the two
        files, so nothing is lost in any interleaving.

        One hole remains after the rename: an appender that opened the log
        *just before* the rename still holds a descriptor to the renamed
        inode and may write its line after we parsed it.  Appenders therefore
        hold a shared ``flock`` across their write (and re-open on inode
        mismatch, see :meth:`_append_log_line`); taking an *exclusive* lock
        on the aside file before parsing blocks until every such in-flight
        append has landed, closing the window.
        """
        lock = self.access_log_path.with_name(f".{_ACCESS_LOG}.lock")
        try:
            lock_fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            with contextlib.suppress(OSError):
                if time.time() - lock.stat().st_mtime > _STALE_TMP_SECONDS:
                    lock.unlink()
            return
        except OSError:
            return
        try:
            aside = self.access_log_path.with_name(
                f".{_ACCESS_LOG}.compacting-{os.getpid()}"
            )
            with contextlib.suppress(OSError):
                os.replace(self.access_log_path, aside)
                if fcntl is not None:
                    # wait out in-flight appenders holding the shared lock on
                    # the renamed inode; anyone arriving later sees the inode
                    # mismatch and diverts to the fresh log
                    aside_fd = os.open(str(aside), os.O_RDONLY)
                    try:
                        fcntl.flock(aside_fd, fcntl.LOCK_EX)
                    finally:
                        os.close(aside_fd)
                hits, misses, per_key, last_used = self._parse_access_log(aside)
                lines = [f"T {hits - sum(per_key.values())} {misses}"]
                for key in sorted(set(per_key) | set(last_used)):
                    entry = f"A {key} {per_key.get(key, 0)}"
                    if key in last_used:
                        entry += f" {last_used[key]:.6f}"
                    lines.append(entry)
                blob = ("\n".join(lines) + "\n").encode("utf-8")
                out = os.open(
                    str(self.access_log_path),
                    os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                    0o644,
                )
                try:
                    os.write(out, blob)
                finally:
                    os.close(out)
                os.unlink(aside)
        finally:
            os.close(lock_fd)
            with contextlib.suppress(OSError):
                lock.unlink()

    def access_stats(self, *, top: int = 10) -> dict[str, object]:
        """Hit/miss tallies and per-entry access counts from the access log.

        The groundwork for the ROADMAP's GC daemon: a shared farm cache can
        rank entries by how often they are actually served (``top_entries``)
        instead of only by recency.  ``top_entries`` only lists entries that
        still exist on disk (history survives TTL sweeps and LRU eviction,
        which would otherwise let long-gone entries crowd the ranking);
        ``tracked_entries`` counts every key ever served.  Returns zero
        counts when no log exists (or access recording is off).
        """
        try:
            hits, misses, per_key, _ = self._parse_access_log()
        except OSError:
            hits = misses = 0
            per_key = {}
        total = hits + misses
        # compaction keeps zero-hit keys for their recency stamp; they are
        # not "top" anything
        per_key = {key: count for key, count in per_key.items() if count > 0}
        ranked = sorted(per_key.items(), key=lambda item: (-item[1], item[0]))
        top_entries = []
        for key, count in ranked:
            if len(top_entries) >= max(top, 0):
                break
            if self.path_for(key).exists() or self._legacy_path_for(key).exists():
                top_entries.append({"key": key, "hits": count})
        return {
            "recorded": total,
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / total) if total else None,
            "tracked_entries": len(per_key),
            "top_entries": top_entries,
        }

    def path_for(self, key: str) -> Path:
        return self.cache_dir / key[:_SHARD_CHARS] / f"{key}.json"

    def _legacy_path_for(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def _drop_corrupt(self, path: Path) -> None:
        self.corrupt_seen += 1
        try:
            path.unlink()
        except OSError:
            pass

    def get(self, key: str) -> dict[str, object] | None:
        """The cached record payload for ``key``, or None on a miss.

        A hit refreshes the entry's mtime (its LRU rank) and appends to the
        access log (see :meth:`access_stats`); a flat legacy entry is moved
        into its shard; a corrupt entry is deleted and counted.
        """
        record = self._get(key)
        self._log_access("H" if record is not None else "M", key)
        return record

    def _get(self, key: str) -> dict[str, object] | None:
        path = self.path_for(key)
        if not path.exists():
            legacy = self._legacy_path_for(key)
            if not legacy.is_file():
                return None
            path.parent.mkdir(parents=True, exist_ok=True)
            # a concurrent run may migrate the same entry first; losing the
            # race is fine — the sharded copy is already in place
            with contextlib.suppress(OSError):
                os.replace(legacy, path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError:
            self._drop_corrupt(path)
            return None
        if not isinstance(entry, dict):
            self._drop_corrupt(path)
            return None
        if entry.get("cache_version") != CACHE_VERSION:
            return None  # a legitimate version skew, not rot
        record = entry.get("record")
        if not isinstance(record, dict):
            self._drop_corrupt(path)
            return None
        with contextlib.suppress(OSError):
            os.utime(path)
        return dict(record)

    def peek(self, key: str) -> dict[str, object] | None:
        """Like :meth:`get`, but strictly read-only.

        No mtime refresh, no legacy migration, no corrupt-entry deletion —
        the classification (hit or miss) matches what :meth:`get` would
        return, which is what dry-run planning needs without perturbing the
        LRU/TTL state it is previewing.
        """
        path = self.path_for(key)
        if not path.exists():
            path = self._legacy_path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError:
            return None  # :meth:`get` would classify this a miss too (and drop it)
        if not isinstance(entry, dict) or entry.get("cache_version") != CACHE_VERSION:
            return None
        record = entry.get("record")
        return dict(record) if isinstance(record, dict) else None

    def put(self, key: str, job: Job, record_payload: Mapping[str, object]) -> Path:
        """Store one record payload under ``key`` (atomic write).

        A filesystem failure (ENOSPC, read-only mount, permissions) does
        **not** propagate: the cache degrades to recorded pass-through mode
        — the caller keeps its in-memory payload and the run completes,
        with the degradation counted in :attr:`write_errors` / latched in
        :attr:`degraded` so :class:`RunReport` and the CLI can surface it.
        Losing memoisation must never lose a result that already compiled.
        """
        entry = {
            "cache_version": CACHE_VERSION,
            "key": key,
            "job": {k: v for k, v in job_to_dict(job).items() if k != "tags"},
            "record": dict(record_payload),
        }
        path = self.path_for(key)
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}-{threading.get_ident()}")
        try:
            chaos = chaos_controller()
            if chaos is not None:
                chaos.on_fs_op("put", str(path))
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, indent=1, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            with self._lock:
                self.write_errors += 1
                self.degraded = True
            with contextlib.suppress(OSError):
                tmp.unlink()
            return path
        self._log_access("P", key)
        self._sweep_tmp(stale_only=True, dirs=(path.parent, self.cache_dir))
        if self.max_bytes:
            # keep a running total so the common (under-cap) put is O(1);
            # overwrites drift it upward, but every eviction pass recomputes
            # the exact total, so the drift only ever triggers an early scan
            with self._lock:
                if self._total_bytes is None:
                    self._total_bytes = sum(self._entry_sizes().values())
                else:
                    with contextlib.suppress(OSError):
                        self._total_bytes += path.stat().st_size
                over_cap = self._total_bytes > self.max_bytes
            if over_cap:
                self._evict_to_cap()
        return path

    def entries(self) -> list[Path]:
        """Every entry path — sharded and (legacy) flat — sorted by name."""
        if not self.cache_dir.is_dir():
            return []
        paths = list(self.cache_dir.glob("*.json"))
        paths += self.cache_dir.glob(f"{_SHARD_GLOB}/*.json")
        return sorted(paths, key=lambda p: p.name)

    def _tmp_files(self) -> list[Path]:
        if not self.cache_dir.is_dir():
            return []
        litter = list(self.cache_dir.glob(".*.json.tmp-*"))
        litter += self.cache_dir.glob(f"{_SHARD_GLOB}/.*.json.tmp-*")
        return sorted(litter)

    def _sweep_tmp(self, *, stale_only: bool, dirs: Sequence[Path] | None = None) -> int:
        """Remove temp litter from crashed writers; returns the count.

        ``stale_only`` spares files younger than an hour, so a concurrent
        writer mid-``put`` never loses its temp file.  ``dirs`` restricts the
        sweep (``put`` passes just the shard it wrote and the cache root).
        """
        cutoff = time.time() - _STALE_TMP_SECONDS
        removed = 0
        if dirs is not None:
            litter: list[Path] = []
            for directory in dict.fromkeys(dirs):
                litter += directory.glob(".*.json.tmp-*")
        else:
            litter = self._tmp_files()
        for tmp in litter:
            try:
                if stale_only and tmp.stat().st_mtime > cutoff:
                    continue
                tmp.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def _entry_sizes(self) -> dict[Path, int]:
        sizes: dict[Path, int] = {}
        for path in self.entries():
            with contextlib.suppress(OSError):
                sizes[path] = path.stat().st_size
        return sizes

    def _last_use(self, path: Path, stat: os.stat_result, recency: Mapping[str, float]) -> float:
        """When ``path``'s entry was last written or served.

        The newer of the filesystem mtime and the access log's recency stamp:
        a cache restored by tooling that resets mtimes (CI ``actions/cache``)
        still ranks by its true usage order, and a cache with no log at all
        degrades to the historic mtime behaviour.
        """
        return max(stat.st_mtime, recency.get(path.stem, 0.0))

    def _evict_to_cap(self) -> int:
        """Evict least-recently-used entries until under ``max_bytes``."""
        if not self.max_bytes:
            return 0
        recency = self._log_recency()
        sized = []
        total = 0
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            sized.append((self._last_use(path, stat, recency), stat.st_size, path))
            total += stat.st_size
        evicted = 0
        for _used, size, path in sorted(sized, key=lambda item: (item[0], item[2].name)):
            if total <= self.max_bytes:
                break
            with contextlib.suppress(OSError):
                path.unlink()
                total -= size
                evicted += 1
        with self._lock:
            self.evicted += evicted
            self._total_bytes = total
        return evicted

    def migrate(self) -> int:
        """Move every flat legacy entry into its shard; returns the count."""
        moved = 0
        if not self.cache_dir.is_dir():
            return moved
        for legacy in sorted(self.cache_dir.glob("*.json")):
            target = self.cache_dir / legacy.stem[:_SHARD_CHARS] / legacy.name
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(legacy, target)
            moved += 1
        return moved

    def sweep_older_than(
        self,
        max_age_seconds: float,
        *,
        dry_run: bool = False,
        now: float | None = None,
    ) -> dict[str, int]:
        """Age-based (TTL) garbage collection, shard-aware.

        Removes every entry — sharded and legacy flat — whose last use is
        strictly older than ``now - max_age_seconds``; entries at or newer
        than the cutoff are never touched.  Last use is the newer of the
        entry's mtime (a :meth:`get` refreshes it) and its access-log recency
        stamp, so freshly restored entries whose mtimes were reset by the
        restore tooling are not mis-swept.  ``dry_run`` counts what a sweep
        would remove without unlinking anything.
        Returns ``{"scanned", "removed", "freed_bytes"}``.
        """
        # NaN would make every mtime-vs-cutoff comparison False and delete
        # the whole cache, so it must not pass the range check
        if math.isnan(max_age_seconds) or max_age_seconds < 0:
            raise ValueError(f"max_age_seconds must be >= 0, got {max_age_seconds}")
        cutoff = (time.time() if now is None else now) - max_age_seconds
        recency = self._log_recency()
        scanned = removed = freed = 0
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            scanned += 1
            if self._last_use(path, stat, recency) >= cutoff:
                continue
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    continue
            removed += 1
            freed += stat.st_size
        if not dry_run and removed:
            self._sweep_tmp(stale_only=True)
            for shard in self.cache_dir.glob(_SHARD_GLOB):
                if shard.is_dir():
                    with contextlib.suppress(OSError):
                        shard.rmdir()
            self._total_bytes = None  # force a rescan on the next capped put
        return {"scanned": scanned, "removed": removed, "freed_bytes": freed}

    def eviction_ranking(self) -> list[dict[str, object]]:
        """Every entry in the exact order ranked eviction removes them.

        Least-*served* first: entries are sorted by access-log hit count
        ascending, ties broken by the oldest last use (the newer of mtime and
        logged recency, same rule as the LRU cap and the TTL sweep), final
        ties by name so the order is fully deterministic.  This is the order
        the eviction daemon (``repro clean-cache --watch --max-mb``) walks and
        the preview ``repro cache-stats --rank access`` prints — one code
        path, so the preview can never lie about what a sweep would do.
        """
        try:
            _, _, per_key, last_used = self._parse_access_log()
        except OSError:
            per_key, last_used = {}, {}
        ranked: list[dict[str, object]] = []
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            key = path.stem
            ranked.append(
                {
                    "key": key,
                    "path": path,
                    "hits": per_key.get(key, 0),
                    "last_use": max(stat.st_mtime, last_used.get(key, 0.0)),
                    "bytes": stat.st_size,
                }
            )
        ranked.sort(key=lambda e: (e["hits"], e["last_use"], e["path"].name))
        return ranked

    def evict_ranked(self, max_bytes: int) -> dict[str, int]:
        """Evict the head of :meth:`eviction_ranking` until under ``max_bytes``.

        Unlike the recency-only :meth:`_evict_to_cap` (which backs the
        per-put LRU cap), this is the farm daemon's access-ranked pass: a
        hot entry served hundreds of times outlives a fresher entry nothing
        ever asked for.  Returns ``{"scanned", "removed", "freed_bytes",
        "total_bytes"}`` with ``total_bytes`` the post-eviction size.
        """
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        ranking = self.eviction_ranking()
        total = sum(int(entry["bytes"]) for entry in ranking)
        removed = freed = 0
        for entry in ranking:
            if total <= max_bytes:
                break
            with contextlib.suppress(OSError):
                entry["path"].unlink()  # type: ignore[union-attr]
                total -= int(entry["bytes"])
                freed += int(entry["bytes"])
                removed += 1
        if removed:
            with self._lock:
                self.evicted += removed
                self._total_bytes = None  # force a rescan on the next capped put
            for shard in self.cache_dir.glob(_SHARD_GLOB):
                if shard.is_dir():
                    with contextlib.suppress(OSError):
                        shard.rmdir()
        return {
            "scanned": len(ranking),
            "removed": removed,
            "freed_bytes": freed,
            "total_bytes": total,
        }

    def __len__(self) -> int:
        return len(self.entries())

    def clear(self) -> int:
        """Delete every cache entry (and all temp litter); returns the number
        of entries removed."""
        removed = 0
        for path in self.entries():
            path.unlink()
            removed += 1
        self._sweep_tmp(stale_only=False)
        with contextlib.suppress(OSError):
            self.access_log_path.unlink()
        if self.cache_dir.is_dir():
            for pattern in (
                f".{_ACCESS_LOG}.tmp-*",
                f".{_ACCESS_LOG}.compacting-*",
                f".{_ACCESS_LOG}.lock",
            ):
                for litter in self.cache_dir.glob(pattern):
                    with contextlib.suppress(OSError):
                        litter.unlink()
        if self.cache_dir.is_dir():
            for shard in self.cache_dir.glob(_SHARD_GLOB):
                if shard.is_dir():
                    with contextlib.suppress(OSError):
                        shard.rmdir()
        self._total_bytes = None
        return removed

    def stats(self) -> dict[str, object]:
        """Size/health summary of the cache directory (reads every entry)."""
        total_bytes = 0
        corrupt = 0
        legacy = 0
        shards = set()
        oldest: float | None = None
        newest: float | None = None
        entries = self.entries()
        for path in entries:
            try:
                stat = path.stat()
            except OSError:
                continue
            total_bytes += stat.st_size
            oldest = stat.st_mtime if oldest is None else min(oldest, stat.st_mtime)
            newest = stat.st_mtime if newest is None else max(newest, stat.st_mtime)
            if path.parent == self.cache_dir:
                legacy += 1
            else:
                shards.add(path.parent.name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    entry = json.load(handle)
                if not isinstance(entry, dict) or not isinstance(entry.get("record"), dict):
                    corrupt += 1
            except (OSError, json.JSONDecodeError):
                corrupt += 1
        return {
            "cache_dir": str(self.cache_dir),
            "entries": len(entries),
            "total_bytes": total_bytes,
            "shards": len(shards),
            "legacy_entries": legacy,
            "tmp_files": len(self._tmp_files()),
            "corrupt_entries": corrupt,
            "max_bytes": self.max_bytes,
            "oldest_mtime": oldest,
            "newest_mtime": newest,
            "access": self.access_stats(),
        }


def _coerce_cache(cache: None | str | Path | ResultCache) -> ResultCache | None:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


# --------------------------------------------------------------------------
# planning


@dataclass
class ExecutionPlan:
    """What a run would do, computed without executing anything.

    The plan phase resolves every job's config key, consults the cache and
    deduplicates — exactly the bookkeeping :func:`run_jobs_report` performs
    before dispatching — so a dry run, a resume and a real run all share one
    code path and therefore always agree on the cached/pending split.
    """

    #: The original job sequence, order and duplicates preserved.
    jobs: list[Job]
    #: Config keys, parallel to ``jobs``.
    keys: list[str]
    #: First job seen per distinct key, in first-appearance order.
    unique: dict[str, Job]
    #: Cached record payloads, keyed by config key (the cache hits).
    payloads: dict[str, dict[str, object]]
    #: Unique jobs the run would actually execute.
    pending: dict[str, Job]

    @property
    def total(self) -> int:
        return len(self.jobs)

    @property
    def cache_hits(self) -> int:
        return len(self.payloads)

    @property
    def deduplicated(self) -> int:
        return len(self.jobs) - len(self.unique)


def plan_jobs(
    jobs: Sequence[Job],
    *,
    cache: None | str | Path | ResultCache = None,
    refresh: bool = False,
) -> ExecutionPlan:
    """The pure planning phase: validate kinds, hash, consult the cache, dedupe.

    Compiles nothing, and by default mutates nothing either: the cache is
    consulted through the strictly read-only :meth:`ResultCache.peek`, so
    previewing a plan never marks entries "recently used" (which would
    defeat a TTL sweep the operator is about to run).  A real run — which
    *wants* its hits' LRU recency refreshed, legacy entries migrated and
    corrupt entries dropped — passes ``refresh=True`` to consult
    :meth:`ResultCache.get` instead; the hit/miss classification is the same
    either way.
    """
    # eager validation MUST precede any cache consultation: a plan (and thus
    # a dry run or resume) against a misspelled kind or compiler fails loudly
    # instead of classifying bogus jobs as pending
    unknown_kinds = sorted({job.kind for job in jobs} - set(EXECUTORS))
    if unknown_kinds:
        kinds = ", ".join(repr(kind) for kind in unknown_kinds)
        raise ValueError(f"unknown job kind {kinds}; choose from {sorted(EXECUTORS)}")
    known_compilers = set(available_backends())
    unknown_compilers = sorted(
        {name for job in jobs for name in job.compilers} - known_compilers
    )
    if unknown_compilers:
        names = ", ".join(repr(name) for name in unknown_compilers)
        raise ValueError(f"unknown compiler {names}; choose from {available_backends()}")

    store = _coerce_cache(cache)
    keys = [config_key(job) for job in jobs]
    unique: dict[str, Job] = {}
    payloads: dict[str, dict[str, object]] = {}
    pending: dict[str, Job] = {}
    for job, key in zip(jobs, keys, strict=True):
        if key in unique:
            continue
        unique[key] = job
        if store is None:
            hit = None
        else:
            hit = store.get(key) if refresh else store.peek(key)
        if hit is not None:
            payloads[key] = hit
        else:
            pending[key] = job
    return ExecutionPlan(
        jobs=list(jobs), keys=keys, unique=unique, payloads=payloads, pending=pending
    )


def experiment_checkpoint_meta(
    name: str,
    scale: str,
    benchmarks: Sequence[str] | None,
    seed: int,
    cache: None | str | Path | ResultCache = None,
    compilers: Sequence[str] | None = None,
) -> dict[str, object]:
    """The ``checkpoint_meta`` header every experiment entry point writes.

    One shared shape (experiment name, scale, benchmarks, seed, cache dir,
    compiler list) so a checkpoint written by any driver — the CLI, a
    ``run_*`` helper, the benchmark harness — can be resumed by
    ``repro resume`` against the same cache without re-specifying flags, and
    re-emit artifacts with the same metadata an uninterrupted run would.
    ``compilers=None`` records the default pair (the jobs themselves carry
    the authoritative per-job list either way).
    """
    if isinstance(cache, ResultCache):
        cache_dir = str(cache.cache_dir)
    elif cache is not None:
        cache_dir = str(cache)
    else:
        cache_dir = None
    return {
        "experiment": name,
        "scale": scale,
        "benchmarks": list(benchmarks) if benchmarks is not None else None,
        "seed": seed,
        "cache_dir": cache_dir,
        "compilers": list(compilers) if compilers is not None else list(DEFAULT_COMPILERS),
    }


def plan_summary(
    plan: ExecutionPlan, *, failed_keys: Sequence[str] = ()
) -> dict[str, object]:
    """Stable counts for a plan: totals plus per-kind/per-benchmark breakdowns.

    Each unique job is classified ``cached`` (served from the cache),
    ``failed`` (its key appears in ``failed_keys`` — typically a previous
    run's checkpoint — and is not cached) or ``pending``.  This dict is the
    machine-readable contract behind ``repro run --dry-run --json``.
    """
    failed = set(failed_keys)
    counts = {"cached": 0, "pending": 0, "failed": 0}
    by_kind: dict[str, dict[str, int]] = {}
    by_benchmark: dict[str, dict[str, int]] = {}
    for key, job in plan.unique.items():
        if key in plan.payloads:
            status = "cached"
        elif key in failed:
            status = "failed"
        else:
            status = "pending"
        counts[status] += 1
        for table, label in ((by_kind, job.kind), (by_benchmark, job.benchmark)):
            bucket = table.setdefault(label, {"cached": 0, "pending": 0, "failed": 0})
            bucket[status] += 1
    return {
        "total": plan.total,
        "unique": len(plan.unique),
        "duplicates": plan.deduplicated,
        **counts,
        "by_kind": {kind: by_kind[kind] for kind in sorted(by_kind)},
        "by_benchmark": {name: by_benchmark[name] for name in sorted(by_benchmark)},
    }


# --------------------------------------------------------------------------
# execution


@dataclass
class RunReport:
    """What one :func:`run_jobs_report` call did."""

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    deduplicated: int = 0
    workers: int = 1
    seconds: float = 0.0
    #: Jobs that exhausted every attempt (one :class:`JobError` each).
    failed: int = 0
    errors: list[JobError] = field(default_factory=list)
    #: Corrupt cache entries discovered (and dropped) during this run.
    corrupt_entries: int = 0
    #: True when the dispatch loop was cut short by ``KeyboardInterrupt``.
    interrupted: bool = False
    #: Cache writes that failed at the filesystem during this run (the
    #: cache degraded to pass-through; results stayed in memory).
    cache_write_errors: int = 0
    #: Latched when any cache write degraded during this run.
    cache_degraded: bool = False
    #: Checkpoint compactions that failed at the filesystem.
    checkpoint_write_errors: int = 0
    #: Responses replayed from the transport dedup log (request retries
    #: that were answered without re-executing the op).
    transport_replays: int = 0

    def summary(self) -> str:
        extras = ""
        if self.failed:
            extras += f", {self.failed} failed"
        if self.corrupt_entries:
            extras += f", {self.corrupt_entries} corrupt cache entr"
            extras += "y dropped" if self.corrupt_entries == 1 else "ies dropped"
        if self.cache_degraded:
            extras += (
                f", cache degraded to pass-through"
                f" ({self.cache_write_errors} write error"
                f"{'s' if self.cache_write_errors != 1 else ''})"
            )
        if self.checkpoint_write_errors:
            extras += f", {self.checkpoint_write_errors} checkpoint write error"
            extras += "s" if self.checkpoint_write_errors != 1 else ""
        if self.transport_replays:
            extras += f", {self.transport_replays} retried request"
            extras += "s replayed" if self.transport_replays != 1 else " replayed"
        return (
            f"{self.total} jobs: {self.cache_hits} cached, {self.executed} executed"
            f"{extras}"
            f" ({self.workers} worker{'s' if self.workers != 1 else ''},"
            f" {self.seconds:.1f}s)"
        )


#: Version 2 made checkpoints self-contained: the full job list (tags
#: included) is serialised, so a resume re-hydrates jobs from the file alone
#: instead of re-expanding the experiment spec.  Version-1 checkpoints only
#: recorded keys and cannot be resumed.
CHECKPOINT_VERSION = 2

#: Minimum interval between routine (non-forced) checkpoint flushes.
_CHECKPOINT_FLUSH_SECONDS = 1.0


def _atomic_write_json(path: Path, document: Mapping[str, object]) -> None:
    chaos = chaos_controller()
    data = (json.dumps(document, indent=1, sort_keys=False) + "\n").encode("utf-8")
    if chaos is not None:
        chaos.on_fs_op("checkpoint", str(path))
        # a torn-tail clause simulates a non-atomic writer dying mid-write:
        # the truncated document still lands (tmp + rename), so readers see
        # a syntactically broken file exactly as a crashed plain write(2)
        # would have left it
        data = chaos.checkpoint_payload(str(path), data)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    with open(tmp, "wb") as handle:
        handle.write(data)
    os.replace(tmp, path)


def checkpoint_document(
    *,
    finished: bool,
    interrupted: bool,
    meta: Mapping[str, object] | None,
    total_jobs: int,
    cache_hits: int,
    cached_keys: Sequence[str],
    completed_keys: Sequence[str],
    failed: Sequence[JobError],
    pending_entries: Sequence[Mapping[str, object]],
    serialized_jobs: Sequence[Mapping[str, object]],
) -> dict[str, object]:
    """The checkpoint-schema-v2 document both checkpoint writers share.

    :func:`run_jobs_report`'s in-process flush and the farm coordinator's
    journal compaction build their files through this one constructor, so a
    farm checkpoint is indistinguishable from a batch one and ``repro
    resume`` works unchanged against either.
    """
    return {
        "checkpoint_version": CHECKPOINT_VERSION,
        "finished": finished,
        "interrupted": interrupted,
        "meta": dict(meta) if meta else {},
        "total_jobs": total_jobs,
        "cache_hits": cache_hits,
        "cached": list(cached_keys),
        "completed": list(completed_keys),
        "failed": [asdict(error) for error in failed],
        "pending": [dict(entry) for entry in pending_entries],
        "jobs": [dict(job) for job in serialized_jobs],
    }


def journal_path_for(checkpoint_path: str | Path) -> Path:
    """The delta-journal path beside a checkpoint file.

    ``fig12.checkpoint.json`` → ``fig12.checkpoint.journal.jsonl``: same
    directory, same stem, so operators (and the CI artifact upload) find the
    journal by looking next to the checkpoint it shadows.
    """
    path = Path(checkpoint_path)
    stem = path.name[: -len(".json")] if path.name.endswith(".json") else path.name
    return path.with_name(f"{stem}.journal.jsonl")


def append_journal(path: str | Path, delta: Mapping[str, object]) -> None:
    """Append one state-transition delta as a compact JSON line.

    One ``O_APPEND`` write per event — atomic for these short lines on
    POSIX, so a coordinator crash can tear at most the final line (which
    :func:`read_journal` skips).  The journal is the farm's write-ahead
    record: every lease/complete/fail/expire lands here *before* the
    throttled checkpoint compaction, so a crash between flushes loses
    bookkeeping only, never results (those are already in the cache).
    """
    line = (json.dumps(dict(delta), sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )
    target = Path(path)
    chaos = chaos_controller()
    if chaos is not None:
        chaos.on_fs_op("journal", str(target))
        # a torn-tail clause appends only a prefix of the line — the exact
        # on-disk state a crash mid-write(2) leaves behind
        line = chaos.journal_line(str(target), line)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(str(target), os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, line)
    finally:
        os.close(fd)


def read_journal(path: str | Path) -> list[dict[str, object]]:
    """Parse a delta journal, skipping a torn trailing line from a crash."""
    entries: list[dict[str, object]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                text = line.strip()
                if not text:
                    continue
                try:
                    entry = json.loads(text)
                except json.JSONDecodeError:
                    continue  # torn tail from a crashed appender
                if isinstance(entry, dict):
                    entries.append(entry)
    except FileNotFoundError:
        return []
    return entries


def quarantine_path_for(path: str | Path) -> Path:
    """Where a corrupt journal tail / checkpoint is preserved aside."""
    target = Path(path)
    return target.with_name(target.name + ".quarantine")


def repair_journal(path: str | Path) -> dict[str, object] | None:
    """Quarantine a torn/corrupt journal tail and truncate to the good prefix.

    A coordinator crash mid-append (or an injected ``torn-tail`` fault)
    leaves a trailing fragment that is not a complete JSON line.  This
    walks back from the end of the file past every trailing line that does
    not parse, appends those bytes to ``<journal>.quarantine`` (preserved
    as evidence, never silently discarded), and truncates the journal to
    the surviving prefix — the same prefix :func:`read_journal` would have
    parsed, now made durable so subsequent appenders do not merge their
    first line into the torn fragment.

    Returns ``None`` when the journal is healthy (or absent); otherwise a
    stats dict with the quarantined byte count and paths.
    """
    target = Path(path)
    try:
        data = target.read_bytes()
    except OSError:
        # absent (no journal was ever written) or unreadable — either way
        # there is nothing to repair here; resume proceeds on the checkpoint
        return None

    def parses(raw: bytes) -> bool:
        text = raw.strip()
        if not text:
            return True  # a blank line is harmless, not a torn tail
        try:
            return isinstance(json.loads(text.decode("utf-8")), dict)
        except (UnicodeDecodeError, ValueError):
            return False

    lines = data.split(b"\n")  # a healthy journal ends with b"" here
    index = len(lines) - 1
    while index >= 0 and not parses(lines[index]):
        index -= 1
    if index == len(lines) - 1:
        return None
    kept = lines[: index + 1]
    good = b"\n".join(kept) + b"\n" if kept else b""
    # re-terminate: kept may end with b"" (data had a trailing newline)
    if good.endswith(b"\n\n"):
        good = good[:-1]
    torn = data[len(good):]
    quarantine = quarantine_path_for(target)
    fd = os.open(str(quarantine), os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, torn if torn.endswith(b"\n") else torn + b"\n")
    finally:
        os.close(fd)
    os.truncate(str(target), len(good))
    return {
        "journal": str(target),
        "quarantine": str(quarantine),
        "quarantined_bytes": len(torn),
        "kept_events": sum(1 for line in kept if line.strip()),
    }


def quarantine_checkpoint(path: str | Path) -> Path:
    """Move a corrupt checkpoint aside to ``<path>.quarantine`` and return
    the quarantine path (the evidence is preserved, the slot is freed)."""
    target = Path(path)
    quarantine = quarantine_path_for(target)
    os.replace(target, quarantine)
    return quarantine


class CheckpointError(ValueError):
    """A checkpoint file is missing, malformed or not resumable."""


@dataclass
class Checkpoint:
    """A parsed, validated ``<name>.checkpoint.json`` file.

    ``jobs`` is the run's *full* original job list (order, duplicates and
    tags preserved), so re-running it through the engine against the same
    cache reproduces the uninterrupted run's records exactly: completed jobs
    are cache hits, only the pending/failed remainder executes.
    """

    path: Path
    version: int
    finished: bool
    interrupted: bool
    meta: dict[str, object]
    jobs: list[Job]
    #: Keys served from the cache when the checkpointed run planned itself.
    cached_keys: frozenset
    #: Keys the checkpointed run executed to completion (and cached).
    completed_keys: frozenset
    failed: list[JobError]

    @property
    def failed_keys(self) -> frozenset:
        return frozenset(error.key for error in self.failed)

    def remaining_jobs(self) -> list[Job]:
        """The unique jobs the original run did not finish (pending + failed)."""
        done = self.completed_keys | self.cached_keys
        remaining: dict[str, Job] = {}
        for job in self.jobs:
            key = config_key(job)
            if key not in done and key not in remaining:
                remaining[key] = job
        return list(remaining.values())


def load_checkpoint(path: str | Path, *, quarantine: bool = False) -> Checkpoint:
    """Parse and validate a checkpoint file written by :func:`run_jobs_report`.

    Raises :class:`CheckpointError` on a missing/corrupt file, an
    un-resumable version-1 checkpoint, or jobs that no longer round-trip
    through :func:`job_from_dict` (e.g. a checkpoint from an incompatible
    release).  With ``quarantine=True`` (the ``repro resume`` path) a
    syntactically corrupt file is additionally moved aside to
    ``<path>.quarantine`` before raising, so the evidence is preserved and
    a fresh run can re-create the checkpoint without fighting the rot.
    """
    path = Path(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except FileNotFoundError as exc:
        raise CheckpointError(f"checkpoint file not found: {path}") from exc
    except (OSError, json.JSONDecodeError) as exc:
        suffix = ""
        if quarantine and isinstance(exc, json.JSONDecodeError):
            with contextlib.suppress(OSError):
                suffix = f"; corrupt file preserved at {quarantine_checkpoint(path)}"
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}{suffix}") from exc
    if not isinstance(doc, dict):
        raise CheckpointError(f"checkpoint {path} is not a JSON object")
    version = doc.get("checkpoint_version")
    if version == 1:
        raise CheckpointError(
            f"checkpoint {path} has version 1, which does not serialise its jobs"
            " and cannot be resumed; re-run the experiment once (it writes a"
            f" version-{CHECKPOINT_VERSION} checkpoint) and resume from that"
        )
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has unsupported version {version!r}"
            f" (this release reads version {CHECKPOINT_VERSION})"
        )
    raw_jobs = doc.get("jobs")
    if not isinstance(raw_jobs, list):
        raise CheckpointError(f"checkpoint {path} has no serialised job list")
    jobs: list[Job] = []
    for index, raw in enumerate(raw_jobs):
        try:
            jobs.append(job_from_dict(raw))
        except (KeyError, TypeError, AttributeError) as exc:
            raise CheckpointError(
                f"checkpoint {path}: job #{index} does not round-trip ({exc!r});"
                " was it written by an incompatible release?"
            ) from exc
    error_fields = {f.name for f in fields(JobError)}
    failed: list[JobError] = []
    for raw in doc.get("failed") or ():
        if not isinstance(raw, dict) or not error_fields <= set(raw):
            raise CheckpointError(f"checkpoint {path} has a malformed failed-job entry")
        failed.append(JobError(**{name: raw[name] for name in error_fields}))
    meta = doc.get("meta")
    try:
        return Checkpoint(
            path=path,
            version=int(version),
            finished=bool(doc.get("finished")),
            interrupted=bool(doc.get("interrupted")),
            meta=dict(meta) if isinstance(meta, dict) else {},
            jobs=jobs,
            cached_keys=frozenset(str(key) for key in doc.get("cached") or ()),
            completed_keys=frozenset(str(key) for key in doc.get("completed") or ()),
            failed=failed,
        )
    except (TypeError, ValueError) as exc:
        # e.g. a non-iterable cached/completed list
        raise CheckpointError(f"checkpoint {path} has malformed fields: {exc}") from exc


def run_jobs_report(
    jobs: Sequence[Job],
    *,
    workers: int = 1,
    cache: None | str | Path | ResultCache = None,
    progress: Callable[[str], None] | None = None,
    policy: JobPolicy | None = None,
    checkpoint: None | str | Path = None,
    checkpoint_meta: Mapping[str, object] | None = None,
) -> tuple[list[AnyRecord], RunReport]:
    """Execute jobs (plan -> pool) and report what happened.

    Records come back in job order regardless of the completion order of the
    pool, so a parallel run is record-for-record identical to a serial one.
    ``workers <= 1`` stays in-process; ``workers > 1`` dispatches cache misses
    over a ``multiprocessing`` pool.  ``cache`` may be a directory path or a
    :class:`ResultCache`; ``None`` disables memoization (identical jobs are
    still computed only once per call).  The cached/pending split comes from
    :func:`plan_jobs` — the same phase ``repro run --dry-run`` prints.

    ``policy`` governs per-job timeouts, retries and error disposition (see
    :class:`JobPolicy`; the default re-raises failures).  Jobs that fail under
    ``on_error="skip"``/``"record"`` are dropped from the returned records and
    reported in :attr:`RunReport.errors`.  ``checkpoint`` names a JSON file
    kept up to date with exactly which jobs are cached, completed, failed and
    pending; it serialises the full job list (plus the caller's
    ``checkpoint_meta``, e.g. the experiment name), so after a crash or
    ``KeyboardInterrupt`` it can be re-hydrated by :func:`load_checkpoint`
    and resumed without re-expanding the experiment spec.
    """
    store = _coerce_cache(cache)
    policy = policy if policy is not None else JobPolicy()
    workers = max(1, int(workers))
    start = time.perf_counter()
    corrupt_base = store.corrupt_seen if store is not None else 0
    write_error_base = store.write_errors if store is not None else 0

    plan = plan_jobs(jobs, cache=store, refresh=True)
    keys = plan.keys
    payloads = plan.payloads
    pending = plan.pending
    report = RunReport(
        total=plan.total,
        workers=workers,
        cache_hits=plan.cache_hits,
        deduplicated=plan.deduplicated,
        executed=len(pending),
    )

    checkpoint_path = Path(checkpoint) if checkpoint is not None else None
    cached_keys = sorted(payloads)
    serialized_jobs = (
        [job_to_dict(job) for job in jobs] if checkpoint_path is not None else []
    )
    errors: dict[str, JobError] = {}
    last_flush = 0.0

    def flush_checkpoint(*, finished: bool, force: bool = True) -> None:
        # routine per-job flushes are throttled so huge sweeps don't rewrite
        # an O(jobs) file O(jobs) times; failures, interrupts and completion
        # always flush, which is what the resume guarantee rests on
        nonlocal last_flush
        if checkpoint_path is None:
            return
        now = time.monotonic()
        if not force and now - last_flush < _CHECKPOINT_FLUSH_SECONDS:
            return
        last_flush = now
        remaining = [
            {"key": key, "benchmark": job.benchmark, "kind": job.kind}
            for key, job in pending.items()
            if key not in payloads and key not in errors
        ]
        try:
            _atomic_write_json(
                checkpoint_path,
                checkpoint_document(
                    finished=finished,
                    interrupted=report.interrupted,
                    meta=checkpoint_meta,
                    total_jobs=report.total,
                    cache_hits=report.cache_hits,
                    cached_keys=cached_keys,
                    completed_keys=[key for key in pending if key in payloads],
                    failed=list(errors.values()),
                    pending_entries=remaining,
                    serialized_jobs=serialized_jobs,
                ),
            )
        except OSError:
            # a full/read-only disk must not abort the sweep — results are
            # still collected in memory; only resumability is degraded
            report.checkpoint_write_errors += 1

    policy_dict = policy.to_dict()
    items: list[WorkItem] = [
        (key, job_to_dict(job), policy_dict) for key, job in pending.items()
    ]
    done = 0
    flush_checkpoint(finished=not items)

    def collect(key: str, payload: dict[str, object]) -> None:
        nonlocal done
        done += 1
        job_error = payload.get("job_error")
        if isinstance(job_error, dict):
            # never cache a failure: a rerun should retry exactly these jobs
            error = JobError(**job_error)
            errors[key] = error
            report.errors.append(error)
            # throttled like success flushes — a mass-failure sweep would
            # otherwise rewrite the O(jobs) file once per failure; the raise
            # path forces because it abandons the run right after
            flush_checkpoint(finished=False, force=policy.on_error == "raise")
            if progress is not None:
                progress(
                    f"{done}/{len(items)} jobs executed"
                    f" ({error.benchmark} failed: {error.error_type})"
                )
            if policy.on_error == "raise":
                report.failed = len(errors)
                report.seconds = time.perf_counter() - start
                _raise_job_error(error)
            return
        # persist each result as it lands, so an interrupted or partially
        # failed sweep keeps everything that already compiled
        payloads[key] = payload
        if store is not None:
            store.put(key, pending[key], payload)
        flush_checkpoint(finished=False, force=False)
        if progress is not None:
            progress(f"{done}/{len(items)} jobs executed")

    # A launcher or batch scheduler stops a run with SIGTERM, not Ctrl-C;
    # without this handler the process dies between throttled flushes and
    # leaves a checkpoint that under-reports what already completed.  Flush,
    # then restore the default disposition and re-deliver the signal so the
    # exit status still says "killed by SIGTERM".  Only the main thread may
    # install signal handlers; embeddings that dispatch from other threads
    # simply keep the historic behaviour.
    sigterm_installed = False
    sigterm_previous: Any = None
    sigterm_owner = os.getpid()

    def _flush_on_sigterm(signum, frame):
        # forked pool workers inherit this handler; a process-group SIGTERM
        # must not let a child overwrite the checkpoint with its stale
        # fork-time copy of the run state, so only the owning process flushes
        if os.getpid() == sigterm_owner:
            report.interrupted = True
            flush_checkpoint(finished=False)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        os.kill(os.getpid(), signal.SIGTERM)

    if (
        checkpoint_path is not None
        and hasattr(signal, "SIGTERM")
        and threading.current_thread() is threading.main_thread()
    ):
        try:
            sigterm_previous = signal.signal(signal.SIGTERM, _flush_on_sigterm)
            sigterm_installed = True
        except (ValueError, OSError):  # pragma: no cover - exotic embeddings
            sigterm_installed = False

    try:
        if len(items) > 1 and workers > 1:
            with multiprocessing.get_context().Pool(processes=min(workers, len(items))) as pool:
                for key, payload in pool.imap_unordered(_execute_keyed, items, chunksize=1):
                    collect(key, payload)
        else:
            for item in items:
                collect(*_execute_keyed(item))
    except KeyboardInterrupt:
        report.interrupted = True
        flush_checkpoint(finished=False)
        raise
    finally:
        if sigterm_installed:
            with contextlib.suppress(ValueError, OSError):
                signal.signal(signal.SIGTERM, sigterm_previous)

    report.failed = len(errors)
    report.corrupt_entries = (store.corrupt_seen - corrupt_base) if store is not None else 0
    if store is not None:
        report.cache_write_errors = store.write_errors - write_error_base
        report.cache_degraded = report.cache_write_errors > 0
    flush_checkpoint(finished=True)

    records: list[AnyRecord] = []
    for job, key in zip(jobs, keys, strict=True):
        payload = payloads.get(key)
        if payload is None:  # failed under on_error="skip"/"record"
            continue
        record = record_from_payload(payload)
        for tag, value in job.tags:
            record.extra[tag] = value
        records.append(record)
    report.seconds = time.perf_counter() - start
    return records, report


def run_jobs(
    jobs: Sequence[Job],
    *,
    workers: int = 1,
    cache: None | str | Path | ResultCache = None,
    progress: Callable[[str], None] | None = None,
    policy: JobPolicy | None = None,
    checkpoint: None | str | Path = None,
    checkpoint_meta: Mapping[str, object] | None = None,
) -> list[AnyRecord]:
    """Like :func:`run_jobs_report`, returning only the records."""
    records, _ = run_jobs_report(
        jobs,
        workers=workers,
        cache=cache,
        progress=progress,
        policy=policy,
        checkpoint=checkpoint,
        checkpoint_meta=checkpoint_meta,
    )
    return records


# --------------------------------------------------------------------------
# artifacts


def error_row(error: JobError) -> dict[str, object]:
    """Flat artifact row for one failed job (``status="error"``)."""
    return {
        "status": "error",
        "benchmark": error.benchmark,
        "error_type": error.error_type,
        "error_message": error.message,
        "attempts": error.attempts,
        "seconds": round(error.seconds, 3),
        "config_key": error.key,
    }


def write_artifacts(
    name: str,
    records: Sequence[AnyRecord],
    out_dir: str | Path,
    *,
    text: str | None = None,
    metadata: Mapping[str, object] | None = None,
    errors: Sequence[JobError] | None = None,
) -> dict[str, Path]:
    """Write ``<out_dir>/<name>.json`` and ``.csv`` (and ``.txt`` if given).

    The JSON artifact holds one flat row per record (stored fields plus the
    derived paper metrics) under a small metadata header; the CSV holds the
    same rows with a stable column order (core fields first, then the union
    of extra keys, sorted).  ``errors`` (failed jobs' :class:`JobError`
    records) land in the JSON document's ``errors`` list and as
    ``status="error"`` rows at the bottom of the CSV, so a partially failed
    sweep is visible in the artifacts instead of silently shrunken.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    rows = [dict(record_row(record), status="ok") for record in records]
    error_rows = [error_row(error) for error in (errors or ())]

    json_path = out / f"{name}.json"
    document = {
        "experiment": name,
        "cache_version": CACHE_VERSION,
        **(dict(metadata) if metadata else {}),
        "records": rows,
        "errors": [asdict(error) for error in (errors or ())],
    }
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=False)
        handle.write("\n")

    core = [
        "benchmark",
        "architecture",
        "num_data_qubits",
        "num_physical_qubits",
        "compilers",
        "reference",
        "baseline_depth",
        "mech_depth",
        "depth_improvement",
        "baseline_eff_cnots",
        "mech_eff_cnots",
        "eff_cnots_improvement",
        "normalized_depth",
        "normalized_eff_cnots",
        "highway_qubit_fraction",
        "baseline_seconds",
        "mech_seconds",
        "status",
    ]
    all_rows = rows + error_rows
    present = {key for row in all_rows for key in row}
    # keep the stable core order but only emit columns some row actually has:
    # a two-backend sweep keeps the historic header verbatim, an N-way sweep
    # gets its per-backend columns without a block of empty legacy cells
    core_present = [column for column in core if column in present or column == "status"]
    extra_columns = sorted(present - set(core))
    columns = core_present + extra_columns
    csv_path = out / f"{name}.csv"
    with open(csv_path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, restval="")
        writer.writeheader()
        for row in all_rows:
            writer.writerow(row)

    paths = {"json": json_path, "csv": csv_path}
    if text is not None:
        txt_path = out / f"{name}.txt"
        txt_path.write_text(text + ("\n" if not text.endswith("\n") else ""), encoding="utf-8")
        paths["txt"] = txt_path
    return paths
