"""Registry of the paper's experiments, shared by the CLI and the harnesses.

Each :class:`ExperimentSpec` bundles an experiment's jobs builder (pure
configuration: scale preset -> engine jobs) with its text formatter, so a
driver — the ``python -m repro`` CLI, the benchmark suite, an example script —
can run any figure/table through the same three calls::

    spec = get_experiment("fig12")
    records, report = run_jobs_report(spec.build_jobs(scale="small"), ...)
    print(spec.format_records(records))
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable, Sequence

from .engine import (
    SCALE_TIERS,
    ExecutionPlan,
    Job,
    JobPolicy,
    ResultCache,
    RunReport,
    experiment_checkpoint_meta,
    plan_jobs,
    run_jobs_report,
)
from .fig12_scalability import format_fig12, jobs_for_fig12
from .fig13_sensitivity import format_fig13, jobs_for_fig13, sensitivity_results_from_records
from .fig14_sparsity import format_fig14, jobs_for_fig14
from .fig15_highway_density import format_fig15, jobs_for_fig15
from .fig16_structures import format_fig16, jobs_for_fig16
from .runner import AnyRecord, resolve_compilers
from .table2 import format_table2, jobs_for_table2

__all__ = [
    "ExperimentSpec",
    "EXPERIMENTS",
    "build_experiment_jobs",
    "experiment_meta",
    "get_experiment",
    "plan_experiment",
    "run_experiment",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible figure/table of the paper's evaluation."""

    name: str
    title: str
    #: Expands a scale preset into engine jobs.  Accepts at least the keyword
    #: arguments ``scale``, ``benchmarks``, ``seed`` and ``compilers``.
    build_jobs: Callable[..., list[Job]]
    #: Renders the experiment's records as the paper-style text table.
    format_records: Callable[[Sequence[AnyRecord]], str]
    scales: tuple[str, ...] = SCALE_TIERS


def _format_fig13_records(records: Sequence[AnyRecord]) -> str:
    return format_fig13(sensitivity_results_from_records(records))


EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.name: spec
    for spec in (
        ExperimentSpec(
            "table2",
            "Table 2: baseline vs MECH on square-chiplet arrays",
            jobs_for_table2,
            format_table2,
        ),
        ExperimentSpec(
            "fig12",
            "Fig. 12: improvement vs number of chiplets",
            jobs_for_fig12,
            format_fig12,
        ),
        ExperimentSpec(
            "fig13",
            "Fig. 13: sensitivity to measurement latency and fidelities",
            jobs_for_fig13,
            _format_fig13_records,
        ),
        ExperimentSpec(
            "fig14",
            "Fig. 14: sensitivity to cross-chip link sparsity",
            jobs_for_fig14,
            format_fig14,
        ),
        ExperimentSpec(
            "fig15",
            "Fig. 15: sensitivity to the highway qubit percentage",
            jobs_for_fig15,
            format_fig15,
        ),
        ExperimentSpec(
            "fig16",
            "Fig. 16: generality across coupling structures",
            jobs_for_fig16,
            format_fig16,
        ),
    )
}


def get_experiment(name: str) -> ExperimentSpec:
    """Look up an experiment by name with a helpful error."""
    try:
        return EXPERIMENTS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from exc


def experiment_meta(
    name: str,
    *,
    scale: str = "small",
    benchmarks: Sequence[str] | None = None,
    seed: int = 0,
    cache: None | str | Path | ResultCache = None,
    compilers: Sequence[str] | None = None,
) -> dict[str, object]:
    """The checkpoint/artifact metadata header for one experiment run.

    Stored verbatim in the checkpoint's ``meta`` field, this is what lets
    ``repro resume`` recover the experiment (and thus its formatter), reuse
    the original cache directory and compiler list, and write artifacts with
    the same metadata an uninterrupted run would.
    """
    get_experiment(name)  # fail early on unknown names
    return experiment_checkpoint_meta(
        name, scale, benchmarks, seed, cache, compilers=resolve_compilers(compilers)
    )


def build_experiment_jobs(
    name: str,
    *,
    scale: str = "small",
    benchmarks: Sequence[str] | None = None,
    seed: int = 0,
    compilers: Sequence[str] | None = None,
) -> list[Job]:
    """Expand one registered experiment's scale preset into engine jobs.

    ``compilers`` threads the backend list (reference first) into every job;
    ``None`` keeps the default baseline-vs-MECH pair.
    """
    spec = get_experiment(name)
    kwargs: dict[str, object] = {"scale": scale, "seed": seed}
    if benchmarks is not None:
        kwargs["benchmarks"] = list(benchmarks)
    if compilers is not None:
        kwargs["compilers"] = list(compilers)
    return spec.build_jobs(**kwargs)


def plan_experiment(
    name: str,
    *,
    scale: str = "small",
    benchmarks: Sequence[str] | None = None,
    seed: int = 0,
    cache: None | str | Path | ResultCache = None,
    refresh: bool = False,
    compilers: Sequence[str] | None = None,
) -> ExecutionPlan:
    """Expand one experiment and plan it against the cache without executing.

    This is the ``repro run --dry-run`` entry point: the plan's
    cached/pending split is exactly what :func:`run_experiment` with the same
    arguments would do, and (like :func:`plan_jobs`) a preview leaves the
    cache's LRU state untouched unless ``refresh=True``.
    """
    jobs = build_experiment_jobs(
        name, scale=scale, benchmarks=benchmarks, seed=seed, compilers=compilers
    )
    return plan_jobs(jobs, cache=cache, refresh=refresh)


def run_experiment(
    name: str,
    *,
    scale: str = "small",
    benchmarks: Sequence[str] | None = None,
    seed: int = 0,
    workers: int = 1,
    cache: None | str | Path | ResultCache = None,
    policy: JobPolicy | None = None,
    checkpoint: None | str | Path = None,
    progress: Callable[[str], None] | None = None,
    compilers: Sequence[str] | None = None,
) -> tuple[list[AnyRecord], RunReport]:
    """Build and execute one registered experiment end to end.

    The one-stop driver shared by the CLI and the harnesses: expands the
    scale preset into jobs (each carrying the requested compiler list) and
    runs them through the engine with the given fault-tolerance ``policy``
    and ``checkpoint`` file.  Returns the records (healthy jobs only —
    failures are in ``report.errors``) and the report.
    """
    jobs = build_experiment_jobs(
        name, scale=scale, benchmarks=benchmarks, seed=seed, compilers=compilers
    )
    return run_jobs_report(
        jobs,
        workers=workers,
        cache=cache,
        policy=policy,
        checkpoint=checkpoint,
        checkpoint_meta=experiment_meta(
            name, scale=scale, benchmarks=benchmarks, seed=seed, cache=cache,
            compilers=compilers,
        ),
        progress=progress,
    )
