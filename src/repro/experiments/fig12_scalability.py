"""Fig. 12 reproduction: improvement vs. number of chiplets.

The paper fixes the chiplet size at 7x7 and grows the chiplet array through
2x2, 2x3, 3x3 and 3x4 (4, 6, 9 and 12 chiplets), showing that both the depth
improvement and the effective-CNOT improvement of MECH over the baseline grow
with the number of chiplets.  ``jobs_for_fig12`` expands the sweep into
engine jobs; ``run_fig12`` executes them (optionally in parallel and against
an on-disk cache) and returns the records.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..hardware.noise import DEFAULT_NOISE, NoiseModel
from .engine import Job, experiment_checkpoint_meta, noise_to_items, run_jobs
from .runner import AnyRecord, resolve_compilers
from .settings import BENCHMARK_NAMES, FIG12_ARRAYS

__all__ = ["jobs_for_fig12", "run_fig12", "improvement_series", "format_fig12"]

#: Chiplet width per scale tier (the paper fixes 7x7 chiplets).
_SCALE_WIDTH = {"small": 4, "medium": 5, "paper": 7}
#: Array shapes per scale tier (the paper's 2x2 .. 3x4 sweep).
_SCALE_ARRAYS: dict[str, tuple[tuple[int, int], ...]] = {
    "small": ((1, 2), (2, 2), (2, 3)),
    "medium": ((2, 2), (2, 3), (3, 3)),
    "paper": FIG12_ARRAYS,
}


def jobs_for_fig12(
    *,
    scale: str = "small",
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    chiplet_width: int | None = None,
    array_shapes: Sequence[tuple[int, int]] | None = None,
    noise: NoiseModel = DEFAULT_NOISE,
    seed: int = 0,
    compilers: Sequence[str] | None = None,
) -> list[Job]:
    """One job per (array shape, benchmark) of the Fig. 12 sweep."""
    if scale not in _SCALE_WIDTH:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(_SCALE_WIDTH)}")
    width = chiplet_width if chiplet_width is not None else _SCALE_WIDTH[scale]
    shapes = tuple(array_shapes) if array_shapes is not None else _SCALE_ARRAYS[scale]
    noise_items = noise_to_items(noise)
    compiler_names = resolve_compilers(compilers)
    return [
        Job(
            benchmark=name,
            structure="square",
            chiplet_width=width,
            rows=rows,
            cols=cols,
            seed=seed,
            noise=noise_items,
            compilers=compiler_names,
        )
        for rows, cols in shapes
        for name in benchmarks
    ]


def run_fig12(
    *,
    scale: str = "small",
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    chiplet_width: int | None = None,
    array_shapes: Sequence[tuple[int, int]] | None = None,
    noise: NoiseModel = DEFAULT_NOISE,
    seed: int = 0,
    compilers: Sequence[str] | None = None,
    workers: int = 1,
    cache=None,
    policy=None,
    checkpoint=None,
) -> list[AnyRecord]:
    """Regenerate Fig. 12's data: one record per (array shape, benchmark).

    ``checkpoint`` names a resumable progress file (see ``repro resume``).
    """
    jobs = jobs_for_fig12(
        scale=scale,
        benchmarks=benchmarks,
        chiplet_width=chiplet_width,
        array_shapes=array_shapes,
        noise=noise,
        seed=seed,
        compilers=compilers,
    )
    return run_jobs(
        jobs,
        workers=workers,
        cache=cache,
        policy=policy,
        checkpoint=checkpoint,
        checkpoint_meta=experiment_checkpoint_meta(
            "fig12", scale, benchmarks, seed, cache, compilers=resolve_compilers(compilers)
        ),
    )


def improvement_series(
    records: Sequence[AnyRecord],
) -> dict[str, list[tuple[int, float, float]]]:
    """Per-benchmark series ``(num_chiplets, depth_improvement, eff_improvement)``.

    This is the data behind the two panels of Fig. 12.
    """
    series: dict[str, list[tuple[int, float, float]]] = {}
    for record in records:
        # architecture names look like "square-7x7-3x3"; the last field is the array
        shape = record.architecture.split("-")[2]
        rows, cols = (int(x) for x in shape.split("x"))
        series.setdefault(record.benchmark, []).append(
            (rows * cols, record.depth_improvement, record.eff_cnots_improvement)
        )
    for values in series.values():
        values.sort()
    return series


def format_fig12(records: Sequence[AnyRecord]) -> str:
    """Text rendering of the two improvement-vs-chiplet-count panels."""
    series = improvement_series(records)
    lines = ["Fig. 12: improvement vs number of chiplets (square chiplets)"]
    lines.append(f"{'benchmark':<10} {'#chiplets':>9} {'depth impr':>11} {'eff impr':>9}")
    lines.append("-" * 44)
    for name in sorted(series):
        for chiplets, depth_impr, eff_impr in series[name]:
            lines.append(f"{name:<10} {chiplets:>9d} {depth_impr:>10.1%} {eff_impr:>8.1%}")
    return "\n".join(lines)
