"""Table 2 reproduction: baseline vs MECH on 3x3 square-chiplet arrays.

The paper's main result table compiles QFT / QAOA / VQE / BV on 3x3 arrays of
square chiplets whose size grows from 6x6 to 9x9 and reports circuit depth,
effective CNOT count, the relative improvements and the highway-qubit
percentage.  ``run_table2`` regenerates those rows; the ``scale`` argument
selects the paper-scale chiplet sizes (6-9, hours of baseline runtime) or a
scaled-down sweep that preserves the "improvement grows with chiplet size"
trend.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..hardware.array import ChipletArray
from ..hardware.noise import DEFAULT_NOISE, NoiseModel
from .runner import ComparisonRecord, compare, format_records
from .settings import BENCHMARK_NAMES, TABLE2_CHIPLET_SIZES

__all__ = ["run_table2", "format_table2", "TABLE2_PAPER_REFERENCE"]

#: Chiplet sizes per scale tier (the paper uses 6x6 .. 9x9 chiplets).
_SCALE_SIZES: Dict[str, Tuple[int, ...]] = {
    "small": (4, 5),
    "medium": (5, 6, 7),
    "paper": TABLE2_CHIPLET_SIZES,
}

#: Paper-reported numbers (depth / eff_CNOTs for baseline and MECH), used by
#: EXPERIMENTS.md and by tests that check we reproduce the *direction* and
#: rough magnitude of every improvement.
TABLE2_PAPER_REFERENCE: Dict[str, Dict[str, float]] = {
    "QFT-261": {"base_depth": 19282, "mech_depth": 7504, "base_eff": 325236, "mech_eff": 216771},
    "QAOA-261": {"base_depth": 14837, "mech_depth": 6586, "base_eff": 201637, "mech_eff": 151120},
    "VQE-261": {"base_depth": 15725, "mech_depth": 6784, "base_eff": 261286, "mech_eff": 180044},
    "BV-261": {"base_depth": 418, "mech_depth": 31, "base_eff": 1179, "mech_eff": 960},
    "QFT-360": {"base_depth": 32086, "mech_depth": 11189, "base_eff": 582500, "mech_eff": 451553},
    "QAOA-360": {"base_depth": 22757, "mech_depth": 9735, "base_eff": 389773, "mech_eff": 300847},
    "VQE-360": {"base_depth": 26277, "mech_depth": 10181, "base_eff": 471148, "mech_eff": 385647},
    "BV-360": {"base_depth": 597, "mech_depth": 34, "base_eff": 1711, "mech_eff": 1415},
    "QFT-495": {"base_depth": 57143, "mech_depth": 18028, "base_eff": 1048824, "mech_eff": 827653},
    "QAOA-495": {"base_depth": 43478, "mech_depth": 14175, "base_eff": 716324, "mech_eff": 507897},
    "VQE-495": {"base_depth": 47193, "mech_depth": 16512, "base_eff": 854935, "mech_eff": 690826},
    "BV-495": {"base_depth": 823, "mech_depth": 37, "base_eff": 2297, "mech_eff": 1784},
    "QFT-630": {"base_depth": 90535, "mech_depth": 24138, "base_eff": 1673337, "mech_eff": 1511568},
    "QAOA-630": {"base_depth": 66342, "mech_depth": 19115, "base_eff": 1171597, "mech_eff": 914800},
    "VQE-630": {"base_depth": 75178, "mech_depth": 21687, "base_eff": 1370750, "mech_eff": 1296846},
    "BV-630": {"base_depth": 1063, "mech_depth": 40, "base_eff": 2772, "mech_eff": 2612},
}


def run_table2(
    *,
    scale: str = "small",
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    chiplet_sizes: Optional[Sequence[int]] = None,
    array_shape: Tuple[int, int] = (3, 3),
    noise: NoiseModel = DEFAULT_NOISE,
    seed: int = 0,
    qaoa_kwargs: Optional[Dict[str, object]] = None,
) -> List[ComparisonRecord]:
    """Regenerate Table 2: one record per (chiplet size, benchmark).

    ``chiplet_sizes`` overrides the sizes implied by ``scale``.  The chiplet
    array shape stays 3x3 (as in the paper) unless overridden.
    """
    if chiplet_sizes is None:
        try:
            chiplet_sizes = _SCALE_SIZES[scale]
        except KeyError as exc:
            raise ValueError(
                f"unknown scale {scale!r}; choose from {sorted(_SCALE_SIZES)}"
            ) from exc
    records: List[ComparisonRecord] = []
    rows, cols = array_shape
    for width in chiplet_sizes:
        array = ChipletArray("square", width, rows, cols)
        for name in benchmarks:
            kwargs = dict(qaoa_kwargs or {}) if name.upper() == "QAOA" else None
            records.append(
                compare(name, array, noise=noise, seed=seed, benchmark_kwargs=kwargs)
            )
    return records


def format_table2(records: Sequence[ComparisonRecord]) -> str:
    """Text rendering in the style of the paper's Table 2."""
    return format_records(records, title="Table 2: baseline vs MECH (square chiplets, 3x3 array)")


def main() -> None:  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=sorted(_SCALE_SIZES))
    parser.add_argument("--benchmarks", nargs="*", default=list(BENCHMARK_NAMES))
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    records = run_table2(scale=args.scale, benchmarks=args.benchmarks, seed=args.seed)
    print(format_table2(records))


if __name__ == "__main__":  # pragma: no cover
    main()
