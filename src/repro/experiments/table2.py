"""Table 2 reproduction: baseline vs MECH on square-chiplet arrays.

The paper's main result table compiles QFT / QAOA / VQE / BV on 3x3 arrays of
square chiplets whose size grows from 6x6 to 9x9 and reports circuit depth,
effective CNOT count, the relative improvements and the highway-qubit
percentage.  ``jobs_for_table2`` expands those rows into engine jobs; the
``scale`` presets select the paper-scale chiplet sizes (6-9 on a 3x3 array,
hours of baseline runtime) or a scaled-down sweep that preserves the
"improvement grows with chiplet size" trend at a fraction of the cost.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..hardware.noise import DEFAULT_NOISE, NoiseModel
from .engine import Job, experiment_checkpoint_meta, noise_to_items, run_jobs
from .runner import AnyRecord, format_records, resolve_compilers
from .settings import BENCHMARK_NAMES, TABLE2_CHIPLET_SIZES

__all__ = ["jobs_for_table2", "run_table2", "format_table2", "TABLE2_PAPER_REFERENCE"]

#: (chiplet sizes, array shape) per scale tier; the paper sweeps 6x6 .. 9x9
#: chiplets on a 3x3 array.  The smaller tiers shrink both so the baseline
#: router stays tractable while the size-scaling trend remains visible.
SCALE_PRESETS: dict[str, tuple[tuple[int, ...], tuple[int, int]]] = {
    "small": ((4, 5), (2, 2)),
    "medium": ((5, 6), (3, 3)),
    "paper": (TABLE2_CHIPLET_SIZES, (3, 3)),
}

#: Paper-reported numbers (depth / eff_CNOTs for baseline and MECH), used by
#: EXPERIMENTS.md and by tests that check we reproduce the *direction* and
#: rough magnitude of every improvement.
TABLE2_PAPER_REFERENCE: dict[str, dict[str, float]] = {
    "QFT-261": {"base_depth": 19282, "mech_depth": 7504, "base_eff": 325236, "mech_eff": 216771},
    "QAOA-261": {"base_depth": 14837, "mech_depth": 6586, "base_eff": 201637, "mech_eff": 151120},
    "VQE-261": {"base_depth": 15725, "mech_depth": 6784, "base_eff": 261286, "mech_eff": 180044},
    "BV-261": {"base_depth": 418, "mech_depth": 31, "base_eff": 1179, "mech_eff": 960},
    "QFT-360": {"base_depth": 32086, "mech_depth": 11189, "base_eff": 582500, "mech_eff": 451553},
    "QAOA-360": {"base_depth": 22757, "mech_depth": 9735, "base_eff": 389773, "mech_eff": 300847},
    "VQE-360": {"base_depth": 26277, "mech_depth": 10181, "base_eff": 471148, "mech_eff": 385647},
    "BV-360": {"base_depth": 597, "mech_depth": 34, "base_eff": 1711, "mech_eff": 1415},
    "QFT-495": {"base_depth": 57143, "mech_depth": 18028, "base_eff": 1048824, "mech_eff": 827653},
    "QAOA-495": {"base_depth": 43478, "mech_depth": 14175, "base_eff": 716324, "mech_eff": 507897},
    "VQE-495": {"base_depth": 47193, "mech_depth": 16512, "base_eff": 854935, "mech_eff": 690826},
    "BV-495": {"base_depth": 823, "mech_depth": 37, "base_eff": 2297, "mech_eff": 1784},
    "QFT-630": {"base_depth": 90535, "mech_depth": 24138, "base_eff": 1673337, "mech_eff": 1511568},
    "QAOA-630": {"base_depth": 66342, "mech_depth": 19115, "base_eff": 1171597, "mech_eff": 914800},
    "VQE-630": {"base_depth": 75178, "mech_depth": 21687, "base_eff": 1370750, "mech_eff": 1296846},
    "BV-630": {"base_depth": 1063, "mech_depth": 40, "base_eff": 2772, "mech_eff": 2612},
}


def jobs_for_table2(
    *,
    scale: str = "small",
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    chiplet_sizes: Sequence[int] | None = None,
    array_shape: tuple[int, int] | None = None,
    noise: NoiseModel = DEFAULT_NOISE,
    seed: int = 0,
    qaoa_kwargs: dict[str, object] | None = None,
    compilers: Sequence[str] | None = None,
) -> list[Job]:
    """One job per (chiplet size, benchmark) of the Table 2 sweep.

    ``chiplet_sizes`` and ``array_shape`` override the ``scale`` preset;
    ``compilers`` selects the registered backends to compare (reference
    first; default baseline vs MECH).
    """
    try:
        preset_sizes, preset_shape = SCALE_PRESETS[scale]
    except KeyError as exc:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(SCALE_PRESETS)}"
        ) from exc
    sizes = tuple(chiplet_sizes) if chiplet_sizes is not None else preset_sizes
    rows, cols = array_shape if array_shape is not None else preset_shape
    noise_items = noise_to_items(noise)
    compiler_names = resolve_compilers(compilers)
    jobs: list[Job] = []
    for width in sizes:
        for name in benchmarks:
            kwargs = dict(qaoa_kwargs or {}) if name.upper() == "QAOA" else {}
            jobs.append(
                Job(
                    benchmark=name,
                    structure="square",
                    chiplet_width=width,
                    rows=rows,
                    cols=cols,
                    seed=seed,
                    noise=noise_items,
                    benchmark_kwargs=tuple(sorted(kwargs.items())),
                    compilers=compiler_names,
                )
            )
    return jobs


def run_table2(
    *,
    scale: str = "small",
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    chiplet_sizes: Sequence[int] | None = None,
    array_shape: tuple[int, int] | None = None,
    noise: NoiseModel = DEFAULT_NOISE,
    seed: int = 0,
    qaoa_kwargs: dict[str, object] | None = None,
    compilers: Sequence[str] | None = None,
    workers: int = 1,
    cache=None,
    policy=None,
    checkpoint=None,
) -> list[AnyRecord]:
    """Regenerate Table 2: one record per (chiplet size, benchmark)."""
    jobs = jobs_for_table2(
        scale=scale,
        benchmarks=benchmarks,
        chiplet_sizes=chiplet_sizes,
        array_shape=array_shape,
        noise=noise,
        seed=seed,
        qaoa_kwargs=qaoa_kwargs,
        compilers=compilers,
    )
    return run_jobs(
        jobs,
        workers=workers,
        cache=cache,
        policy=policy,
        checkpoint=checkpoint,
        checkpoint_meta=experiment_checkpoint_meta(
            "table2", scale, benchmarks, seed, cache, compilers=resolve_compilers(compilers)
        ),
    )


def format_table2(records: Sequence[AnyRecord]) -> str:
    """Text rendering in the style of the paper's Table 2."""
    return format_records(records, title="Table 2: baseline vs MECH (square chiplets)")
