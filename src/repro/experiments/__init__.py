"""Reproduction harness for every table and figure of the paper's evaluation.

The experiments layer is built around the orchestration engine
(:mod:`repro.experiments.engine`): every figure/table cell is a hashable
:class:`~repro.experiments.engine.Job`, executed — optionally in parallel and
against an on-disk result cache — by :func:`~repro.experiments.engine.run_jobs`.
The ``python -m repro`` CLI drives the same registry exposed here.
"""

from .engine import (
    SCALE_TIERS,
    Checkpoint,
    CheckpointError,
    ExecutionPlan,
    Job,
    JobError,
    JobExecutionError,
    JobPolicy,
    JobTimeoutError,
    ResultCache,
    RunReport,
    config_key,
    load_checkpoint,
    plan_jobs,
    plan_summary,
    run_jobs,
    run_jobs_report,
    write_artifacts,
)
from .fig12_scalability import format_fig12, improvement_series, jobs_for_fig12, run_fig12
from .fig13_sensitivity import (
    SensitivityResult,
    format_fig13,
    jobs_for_fig13,
    run_fig13,
    sensitivity_results_from_records,
)
from .fig14_sparsity import format_fig14, jobs_for_fig14, normalized_by_sparsity, run_fig14
from .fig15_highway_density import (
    format_fig15,
    jobs_for_fig15,
    normalized_by_density,
    run_fig15,
)
from .fig16_structures import format_fig16, jobs_for_fig16, normalized_by_structure, run_fig16
from .registry import (
    EXPERIMENTS,
    ExperimentSpec,
    build_experiment_jobs,
    experiment_meta,
    get_experiment,
    plan_experiment,
    run_experiment,
)
from .runner import (
    ComparisonRecord,
    CompiledSet,
    MultiComparisonRecord,
    compare,
    compare_many,
    compile_many,
    format_multi_records,
    format_records,
    resolve_compilers,
)
from .settings import (
    BENCHMARK_NAMES,
    FIG12_ARRAYS,
    TABLE1_SETTINGS,
    TABLE2_CHIPLET_SIZES,
    ArchitectureSetting,
    scaled_setting,
)
from .table2 import TABLE2_PAPER_REFERENCE, format_table2, jobs_for_table2, run_table2

__all__ = [
    # engine
    "Checkpoint",
    "CheckpointError",
    "ExecutionPlan",
    "Job",
    "JobError",
    "JobExecutionError",
    "JobPolicy",
    "JobTimeoutError",
    "ResultCache",
    "RunReport",
    "SCALE_TIERS",
    "config_key",
    "load_checkpoint",
    "plan_jobs",
    "plan_summary",
    "run_jobs",
    "run_jobs_report",
    "write_artifacts",
    # registry
    "EXPERIMENTS",
    "ExperimentSpec",
    "build_experiment_jobs",
    "experiment_meta",
    "get_experiment",
    "plan_experiment",
    "run_experiment",
    # runner
    "ComparisonRecord",
    "CompiledSet",
    "MultiComparisonRecord",
    "compare",
    "compare_many",
    "compile_many",
    "format_multi_records",
    "format_records",
    "resolve_compilers",
    # settings
    "ArchitectureSetting",
    "TABLE1_SETTINGS",
    "TABLE2_CHIPLET_SIZES",
    "FIG12_ARRAYS",
    "BENCHMARK_NAMES",
    "scaled_setting",
    # table 2
    "jobs_for_table2",
    "run_table2",
    "format_table2",
    "TABLE2_PAPER_REFERENCE",
    # figures
    "jobs_for_fig12",
    "run_fig12",
    "format_fig12",
    "improvement_series",
    "jobs_for_fig13",
    "run_fig13",
    "format_fig13",
    "sensitivity_results_from_records",
    "SensitivityResult",
    "jobs_for_fig14",
    "run_fig14",
    "format_fig14",
    "normalized_by_sparsity",
    "jobs_for_fig15",
    "run_fig15",
    "format_fig15",
    "normalized_by_density",
    "jobs_for_fig16",
    "run_fig16",
    "format_fig16",
    "normalized_by_structure",
]
