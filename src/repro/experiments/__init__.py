"""Reproduction harness for every table and figure of the paper's evaluation."""

from .fig12_scalability import format_fig12, improvement_series, run_fig12
from .fig13_sensitivity import SensitivityResult, format_fig13, run_fig13
from .fig14_sparsity import format_fig14, normalized_by_sparsity, run_fig14
from .fig15_highway_density import format_fig15, normalized_by_density, run_fig15
from .fig16_structures import format_fig16, normalized_by_structure, run_fig16
from .runner import ComparisonRecord, compare, format_records
from .settings import (
    BENCHMARK_NAMES,
    FIG12_ARRAYS,
    TABLE1_SETTINGS,
    TABLE2_CHIPLET_SIZES,
    ArchitectureSetting,
    scaled_setting,
)
from .table2 import TABLE2_PAPER_REFERENCE, format_table2, run_table2

__all__ = [
    "ComparisonRecord",
    "compare",
    "format_records",
    "ArchitectureSetting",
    "TABLE1_SETTINGS",
    "TABLE2_CHIPLET_SIZES",
    "FIG12_ARRAYS",
    "BENCHMARK_NAMES",
    "scaled_setting",
    "run_table2",
    "format_table2",
    "TABLE2_PAPER_REFERENCE",
    "run_fig12",
    "format_fig12",
    "improvement_series",
    "run_fig13",
    "format_fig13",
    "SensitivityResult",
    "run_fig14",
    "format_fig14",
    "normalized_by_sparsity",
    "run_fig15",
    "format_fig15",
    "normalized_by_density",
    "run_fig16",
    "format_fig16",
    "normalized_by_structure",
]
