"""Shared experiment runner: compile one benchmark with both compilers and
collect the paper's metrics.

Every table/figure module builds on :func:`compare`: it constructs the
benchmark circuit sized to the highway configuration's data-qubit count (the
paper sizes its circuits "by the numbers of data qubits in our framework"),
compiles it with the MECH compiler and with the baseline, and returns a
:class:`ComparisonRecord` holding depths, effective CNOT counts, improvements
and compiler statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baseline import BaselineCompiler
from ..compiler import CompilationResult, MechCompiler
from ..hardware.array import ChipletArray
from ..hardware.noise import DEFAULT_NOISE, NoiseModel
from ..metrics import improvement, normalized_ratio
from ..programs import build_benchmark

__all__ = [
    "ComparisonRecord",
    "CompiledPair",
    "compare",
    "compile_pair",
    "format_failed_rows",
    "format_records",
]


@dataclass
class ComparisonRecord:
    """Baseline-vs-MECH metrics for one benchmark on one architecture."""

    benchmark: str
    architecture: str
    num_data_qubits: int
    num_physical_qubits: int
    baseline_depth: float
    mech_depth: float
    baseline_eff_cnots: float
    mech_eff_cnots: float
    highway_qubit_fraction: float
    baseline_seconds: float = 0.0
    mech_seconds: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def depth_improvement(self) -> float:
        return improvement(self.baseline_depth, self.mech_depth)

    @property
    def eff_cnots_improvement(self) -> float:
        return improvement(self.baseline_eff_cnots, self.mech_eff_cnots)

    @property
    def normalized_depth(self) -> float:
        return normalized_ratio(self.baseline_depth, self.mech_depth)

    @property
    def normalized_eff_cnots(self) -> float:
        return normalized_ratio(self.baseline_eff_cnots, self.mech_eff_cnots)

    def as_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "architecture": self.architecture,
            "num_data_qubits": self.num_data_qubits,
            "num_physical_qubits": self.num_physical_qubits,
            "baseline_depth": self.baseline_depth,
            "mech_depth": self.mech_depth,
            "depth_improvement": self.depth_improvement,
            "baseline_eff_cnots": self.baseline_eff_cnots,
            "mech_eff_cnots": self.mech_eff_cnots,
            "eff_cnots_improvement": self.eff_cnots_improvement,
            "highway_qubit_fraction": self.highway_qubit_fraction,
            **self.extra,
        }


@dataclass
class CompiledPair:
    """Both compilers' outputs for one benchmark on one array.

    This is the shared substrate of :func:`compare` and the engine's
    sensitivity executor: the latter re-scores ``mech_result`` /
    ``baseline_result`` under swept noise models without recompiling.
    """

    benchmark: str
    array: ChipletArray
    mech: MechCompiler
    circuit_width: int
    mech_result: CompilationResult
    baseline_result: CompilationResult
    mech_seconds: float
    baseline_seconds: float

    def record(self, noise: NoiseModel, extra: Optional[Dict[str, float]] = None) -> ComparisonRecord:
        """Assemble the comparison record under ``noise``."""
        mech_metrics = self.mech_result.metrics(noise)
        baseline_metrics = self.baseline_result.metrics(noise)
        return ComparisonRecord(
            benchmark=self.benchmark.upper(),
            architecture=self.array.topology.name,
            num_data_qubits=self.circuit_width,
            num_physical_qubits=self.array.num_qubits,
            baseline_depth=baseline_metrics.depth,
            mech_depth=mech_metrics.depth,
            baseline_eff_cnots=baseline_metrics.eff_cnots,
            mech_eff_cnots=mech_metrics.eff_cnots,
            highway_qubit_fraction=self.mech.highway_qubit_fraction,
            baseline_seconds=self.baseline_seconds,
            mech_seconds=self.mech_seconds,
            extra=dict(extra or {}),
        )


def compile_pair(
    benchmark: str,
    array: ChipletArray,
    *,
    noise: NoiseModel = DEFAULT_NOISE,
    highway_density: int = 1,
    num_data_qubits: Optional[int] = None,
    min_components: int = 2,
    baseline_trials: int = 1,
    seed: int = 0,
    benchmark_kwargs: Optional[Dict[str, object]] = None,
) -> CompiledPair:
    """Compile one benchmark with MECH and the baseline on the same array.

    Parameters
    ----------
    benchmark:
        Benchmark name: ``"QFT"``, ``"QAOA"``, ``"VQE"`` or ``"BV"``.
    array:
        The chiplet array.
    noise:
        Error/latency model passed to the compilers.
    highway_density:
        Highway lines per chiplet per direction (Fig. 15 sweeps this).
    num_data_qubits:
        Circuit width; defaults to the number of data qubits left by the
        highway layout (the paper's convention).
    min_components:
        Aggregation threshold for highway gates.
    baseline_trials:
        Routing trials for the baseline (best result kept).
    seed:
        Seed for randomised benchmark inputs (QAOA graph, BV secret, VQE
        parameters).
    benchmark_kwargs:
        Extra arguments forwarded to the benchmark circuit builder.
    """
    mech = MechCompiler(
        array,
        highway_density=highway_density,
        min_components=min_components,
        noise=noise,
    )
    width = num_data_qubits if num_data_qubits is not None else mech.num_data_qubits
    kwargs = dict(benchmark_kwargs or {})
    if benchmark.upper() in ("QAOA", "VQE", "BV"):
        kwargs.setdefault("seed", seed)
    circuit = build_benchmark(benchmark, width, **kwargs)

    start = time.perf_counter()
    mech_result = mech.compile(circuit)
    mech_seconds = time.perf_counter() - start

    baseline = BaselineCompiler(array.topology, noise=noise, trials=baseline_trials)
    start = time.perf_counter()
    baseline_result = baseline.compile(circuit)
    baseline_seconds = time.perf_counter() - start

    return CompiledPair(
        benchmark=benchmark,
        array=array,
        mech=mech,
        circuit_width=circuit.num_qubits,
        mech_result=mech_result,
        baseline_result=baseline_result,
        mech_seconds=mech_seconds,
        baseline_seconds=baseline_seconds,
    )


def compare(
    benchmark: str,
    array: ChipletArray,
    *,
    noise: NoiseModel = DEFAULT_NOISE,
    highway_density: int = 1,
    num_data_qubits: Optional[int] = None,
    min_components: int = 2,
    baseline_trials: int = 1,
    seed: int = 0,
    benchmark_kwargs: Optional[Dict[str, object]] = None,
) -> ComparisonRecord:
    """Compile with both compilers and record the paper's headline metrics.

    See :func:`compile_pair` for the parameters.
    """
    pair = compile_pair(
        benchmark,
        array,
        noise=noise,
        highway_density=highway_density,
        num_data_qubits=num_data_qubits,
        min_components=min_components,
        baseline_trials=baseline_trials,
        seed=seed,
        benchmark_kwargs=benchmark_kwargs,
    )
    return pair.record(
        noise,
        extra={
            "mech_shuttles": pair.mech_result.stats.get("shuttles", 0.0),
            "mech_swaps": pair.mech_result.stats.get("swaps_inserted", 0.0),
            "baseline_swaps": pair.baseline_result.stats.get("swaps_inserted", 0.0),
            "mech_highway_gates": pair.mech_result.stats.get("highway_gates", 0.0),
        },
    )


def format_records(
    records: Sequence[ComparisonRecord],
    *,
    title: str = "",
    errors: Optional[Sequence[object]] = None,
) -> str:
    """Render comparison records as a fixed-width text table (paper style).

    ``errors`` (engine ``JobError`` records, or anything with ``benchmark``,
    ``error_type``, ``message`` and ``attempts`` attributes) are appended as
    FAILED rows so a partially failed sweep still prints every cell.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    header = (
        f"{'program':<14} {'arch':<22} {'base depth':>11} {'mech depth':>11} "
        f"{'depth impr':>10} {'base eff':>11} {'mech eff':>11} {'eff impr':>9} {'hw %':>6}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for r in records:
        lines.append(
            f"{r.benchmark + '-' + str(r.num_data_qubits):<14} {r.architecture:<22} "
            f"{r.baseline_depth:>11.0f} {r.mech_depth:>11.0f} {r.depth_improvement:>9.1%} "
            f"{r.baseline_eff_cnots:>11.0f} {r.mech_eff_cnots:>11.0f} "
            f"{r.eff_cnots_improvement:>8.1%} {r.highway_qubit_fraction:>6.1%}"
        )
    lines.extend(format_failed_rows(errors or ()))
    return "\n".join(lines)


def format_failed_rows(errors: Sequence[object]) -> List[str]:
    """One text-table line per failed job (engine ``JobError`` records)."""
    rows = []
    for e in errors:
        attempts = getattr(e, "attempts", 1)
        rows.append(
            f"{getattr(e, 'benchmark', '?'):<14} FAILED after {attempts} "
            f"attempt{'s' if attempts != 1 else ''}: "
            f"{getattr(e, 'error_type', 'Error')}: {getattr(e, 'message', '')}"
        )
    return rows
