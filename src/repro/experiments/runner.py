"""Shared experiment runner: compile one benchmark with N registered compiler
backends and collect the paper's metrics.

Every table/figure module builds on :func:`compile_many`: it constructs the
benchmark circuit sized to the highway configuration's data-qubit count (the
paper sizes its circuits "by the numbers of data qubits in our framework"),
compiles it with every requested backend resolved through the
:mod:`repro.backends` registry, and returns a :class:`CompiledSet` from which
records are assembled.  The first listed compiler is the *reference*: every
improvement ratio and normalised metric is computed against it.

Two record shapes exist:

* :class:`ComparisonRecord` — the historic two-column baseline-vs-MECH record;
  still what the default ``("baseline", "mech")`` comparison produces, field
  for field identical to the pre-registry runner.
* :class:`MultiComparisonRecord` — per-backend depth/eff-CNOT/seconds columns
  for any other compiler list, with improvements against the reference.  Its
  compatibility properties (``depth_improvement``, ``normalized_depth``, ...)
  report the *primary* backend — ``"mech"`` when present, else the last
  non-reference compiler — so figure-series helpers work on either shape.

:func:`compile_pair` and :func:`compare` survive as thin two-backend wrappers
over the new API and emit a :class:`DeprecationWarning` pointing at
:func:`compile_many` / :func:`compare_many`.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from collections.abc import Sequence

from ..backends import DEFAULT_COMPILERS, CompilerBackend, get_backend
from ..circuits.circuit import Circuit
from ..compiler import CompilationResult, MechCompiler
from ..hardware.array import ChipletArray
from ..hardware.noise import DEFAULT_NOISE, NoiseModel
from ..highway.layout import HighwayLayout
from ..metrics import improvement, normalized_ratio
from ..programs import build_benchmark

__all__ = [
    "ComparisonRecord",
    "CompiledPair",
    "CompiledSet",
    "MultiComparisonRecord",
    "backend_stat_extras",
    "compare",
    "compare_many",
    "compile_many",
    "compile_pair",
    "format_failed_rows",
    "format_multi_records",
    "format_records",
    "normalize_compilers",
    "primary_compiler",
    "resolve_compilers",
]

#: Benchmarks whose circuit builders take a randomness seed.
_SEEDED_BENCHMARKS = ("QAOA", "VQE", "BV")


def primary_compiler(compilers: Sequence[str]) -> str:
    """The compiler whose improvement the compatibility properties report.

    ``"mech"`` when present (the paper's headline comparison), otherwise the
    last non-reference compiler of the list.
    """
    names = [str(name) for name in compilers]
    non_reference = [name for name in names[1:]] or names
    if "mech" in non_reference:
        return "mech"
    return non_reference[-1]


@dataclass
class ComparisonRecord:
    """Baseline-vs-MECH metrics for one benchmark on one architecture."""

    benchmark: str
    architecture: str
    num_data_qubits: int
    num_physical_qubits: int
    baseline_depth: float
    mech_depth: float
    baseline_eff_cnots: float
    mech_eff_cnots: float
    highway_qubit_fraction: float
    baseline_seconds: float = 0.0
    mech_seconds: float = 0.0
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def depth_improvement(self) -> float:
        return improvement(self.baseline_depth, self.mech_depth)

    @property
    def eff_cnots_improvement(self) -> float:
        return improvement(self.baseline_eff_cnots, self.mech_eff_cnots)

    @property
    def normalized_depth(self) -> float:
        return normalized_ratio(self.baseline_depth, self.mech_depth)

    @property
    def normalized_eff_cnots(self) -> float:
        return normalized_ratio(self.baseline_eff_cnots, self.mech_eff_cnots)

    def as_dict(self) -> dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "architecture": self.architecture,
            "num_data_qubits": self.num_data_qubits,
            "num_physical_qubits": self.num_physical_qubits,
            "baseline_depth": self.baseline_depth,
            "mech_depth": self.mech_depth,
            "depth_improvement": self.depth_improvement,
            "baseline_eff_cnots": self.baseline_eff_cnots,
            "mech_eff_cnots": self.mech_eff_cnots,
            "eff_cnots_improvement": self.eff_cnots_improvement,
            "highway_qubit_fraction": self.highway_qubit_fraction,
            **self.extra,
        }


@dataclass
class MultiComparisonRecord:
    """Per-backend metrics for one benchmark cell compiled by N backends.

    ``compilers`` preserves the comparison order; its first element is the
    *reference* backend every improvement is measured against.  ``depths``,
    ``eff_cnots`` and ``seconds`` are keyed by backend name.
    """

    benchmark: str
    architecture: str
    num_data_qubits: int
    num_physical_qubits: int
    compilers: tuple[str, ...]
    depths: dict[str, float]
    eff_cnots: dict[str, float]
    highway_qubit_fraction: float
    seconds: dict[str, float] = field(default_factory=dict)
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def reference(self) -> str:
        return self.compilers[0]

    @property
    def primary(self) -> str:
        return primary_compiler(self.compilers)

    # ---------------------------------------------------------------- #
    # per-backend metrics against the reference
    # ---------------------------------------------------------------- #
    def depth_improvement_for(self, name: str) -> float:
        return improvement(self.depths[self.reference], self.depths[name])

    def eff_cnots_improvement_for(self, name: str) -> float:
        return improvement(self.eff_cnots[self.reference], self.eff_cnots[name])

    def normalized_depth_for(self, name: str) -> float:
        return normalized_ratio(self.depths[self.reference], self.depths[name])

    def normalized_eff_cnots_for(self, name: str) -> float:
        return normalized_ratio(self.eff_cnots[self.reference], self.eff_cnots[name])

    # ---------------------------------------------------------------- #
    # ComparisonRecord-compatible properties (report the primary backend),
    # so figure-series helpers accept either record shape
    # ---------------------------------------------------------------- #
    @property
    def depth_improvement(self) -> float:
        return self.depth_improvement_for(self.primary)

    @property
    def eff_cnots_improvement(self) -> float:
        return self.eff_cnots_improvement_for(self.primary)

    @property
    def normalized_depth(self) -> float:
        return self.normalized_depth_for(self.primary)

    @property
    def normalized_eff_cnots(self) -> float:
        return self.normalized_eff_cnots_for(self.primary)

    def as_dict(self) -> dict[str, object]:
        """Flat per-backend columns (``<name>_depth``, ``<name>_eff_cnots``, ...)."""
        out: dict[str, object] = {
            "benchmark": self.benchmark,
            "architecture": self.architecture,
            "num_data_qubits": self.num_data_qubits,
            "num_physical_qubits": self.num_physical_qubits,
            "compilers": ",".join(self.compilers),
            "reference": self.reference,
        }
        for name in self.compilers:
            out[f"{name}_depth"] = self.depths[name]
            out[f"{name}_eff_cnots"] = self.eff_cnots[name]
        for name in self.compilers:
            if name == self.reference:
                continue
            out[f"{name}_depth_improvement"] = self.depth_improvement_for(name)
            out[f"{name}_eff_cnots_improvement"] = self.eff_cnots_improvement_for(name)
        out["highway_qubit_fraction"] = self.highway_qubit_fraction
        out.update(self.extra)
        return out


#: Either record shape, as returned by the engine.
AnyRecord = ComparisonRecord | MultiComparisonRecord


@dataclass
class CompiledSet:
    """Every requested backend's output for one benchmark on one array.

    The shared substrate of :func:`compare_many` and the engine's executors:
    the sensitivity executor re-scores the per-backend ``results`` under
    swept noise models without recompiling.
    """

    benchmark: str
    array: ChipletArray
    compilers: tuple[str, ...]
    circuit_width: int
    highway_qubit_fraction: float
    backends: dict[str, CompilerBackend]
    results: dict[str, CompilationResult]
    seconds: dict[str, float]
    #: The logical circuit every backend compiled, kept so the static
    #: verifier (:mod:`repro.analysis`) can replay the results against it.
    source_circuit: Circuit | None = None

    @property
    def reference(self) -> str:
        return self.compilers[0]

    def verify_all(self, noise: NoiseModel = DEFAULT_NOISE) -> dict[str, object]:
        """Statically verify every backend's result against the source circuit.

        Returns the per-backend :class:`repro.analysis.VerificationReport`
        map; raises :class:`repro.analysis.VerificationError` on the first
        backend whose compilation has violations (hardware legality, semantic
        preservation, highway-protocol invariants, metric consistency).
        """
        from ..analysis import assert_verified

        if self.source_circuit is None:
            raise ValueError(
                "this CompiledSet does not carry its source circuit; it cannot"
                " be verified (was it built by compile_many?)"
            )
        reports: dict[str, object] = {}
        for name in self.compilers:
            reports[name] = assert_verified(
                self.source_circuit,
                self.results[name],
                noise=noise,
                context=f"backend {name!r} on {self.benchmark.upper()}",
            )
        return reports

    @property
    def primary(self) -> str:
        return primary_compiler(self.compilers)

    def record(
        self, noise: NoiseModel, extra: dict[str, float] | None = None
    ) -> MultiComparisonRecord:
        """Assemble the N-way comparison record under ``noise``."""
        depths: dict[str, float] = {}
        eff: dict[str, float] = {}
        for name in self.compilers:
            metrics = self.results[name].metrics(noise)
            depths[name] = metrics.depth
            eff[name] = metrics.eff_cnots
        return MultiComparisonRecord(
            benchmark=self.benchmark.upper(),
            architecture=self.array.topology.name,
            num_data_qubits=self.circuit_width,
            num_physical_qubits=self.array.num_qubits,
            compilers=self.compilers,
            depths=depths,
            eff_cnots=eff,
            highway_qubit_fraction=self.highway_qubit_fraction,
            seconds=dict(self.seconds),
            extra=dict(extra or {}),
        )

    def comparison_record(
        self, noise: NoiseModel, extra: dict[str, float] | None = None
    ) -> ComparisonRecord:
        """The historic two-column record; only the default pair has one."""
        if self.compilers != DEFAULT_COMPILERS:
            raise ValueError(
                f"comparison_record needs the default {DEFAULT_COMPILERS} pair,"
                f" got {self.compilers}; use record() for N-way comparisons"
            )
        mech_metrics = self.results["mech"].metrics(noise)
        baseline_metrics = self.results["baseline"].metrics(noise)
        return ComparisonRecord(
            benchmark=self.benchmark.upper(),
            architecture=self.array.topology.name,
            num_data_qubits=self.circuit_width,
            num_physical_qubits=self.array.num_qubits,
            baseline_depth=baseline_metrics.depth,
            mech_depth=mech_metrics.depth,
            baseline_eff_cnots=baseline_metrics.eff_cnots,
            mech_eff_cnots=mech_metrics.eff_cnots,
            highway_qubit_fraction=self.highway_qubit_fraction,
            baseline_seconds=self.seconds["baseline"],
            mech_seconds=self.seconds["mech"],
            extra=dict(extra or {}),
        )


def backend_stat_extras(compiled: CompiledSet) -> dict[str, float]:
    """Per-backend compiler statistics as record extras.

    Every backend contributes ``<name>_swaps``; non-reference backends add
    ``<name>_shuttles`` and ``<name>_highway_gates``.  For the default
    ``("baseline", "mech")`` pair this yields exactly the four keys the
    historic :func:`compare` recorded (``baseline_swaps``, ``mech_swaps``,
    ``mech_shuttles``, ``mech_highway_gates``).
    """
    extra: dict[str, float] = {}
    for name in compiled.compilers:
        stats = compiled.results[name].stats
        if name != compiled.reference:
            extra[f"{name}_shuttles"] = stats.get("shuttles", 0.0)
        extra[f"{name}_swaps"] = stats.get("swaps_inserted", 0.0)
        if name != compiled.reference:
            extra[f"{name}_highway_gates"] = stats.get("highway_gates", 0.0)
    return extra


def normalize_compilers(compilers: Sequence[str]) -> tuple[str, ...]:
    """Lowercased, stripped compiler names with shape validation.

    At least two compilers (the first is the reference) and no duplicates;
    existence in the registry is checked at resolution time by
    :func:`~repro.backends.get_backend`.
    """
    names = tuple(str(name).strip().lower() for name in compilers)
    if len(names) < 2:
        raise ValueError(
            f"a comparison needs at least two compilers (the first is the"
            f" reference), got {list(names)}"
        )
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        raise ValueError(f"duplicate compiler(s) {duplicates} in {list(names)}")
    return names


def resolve_compilers(compilers: Sequence[str] | None) -> tuple[str, ...]:
    """``None`` -> the default pair; anything else normalised and validated.

    The one-liner every jobs builder uses to thread an optional compiler
    list: case-folding keeps ``--compilers MECH,baseline`` and
    ``mech,baseline`` on the same cache keys.
    """
    if compilers is None:
        return DEFAULT_COMPILERS
    return normalize_compilers(compilers)


def compile_many(
    benchmark: str,
    array: ChipletArray,
    *,
    compilers: Sequence[str] = DEFAULT_COMPILERS,
    noise: NoiseModel = DEFAULT_NOISE,
    highway_density: int = 1,
    num_data_qubits: int | None = None,
    min_components: int = 2,
    baseline_trials: int = 1,
    seed: int = 0,
    benchmark_kwargs: dict[str, object] | None = None,
    layout: HighwayLayout | None = None,
    router: object = None,
) -> CompiledSet:
    """Compile one benchmark with every listed backend on the same array.

    Parameters
    ----------
    benchmark:
        Benchmark name: ``"QFT"``, ``"QAOA"``, ``"VQE"`` or ``"BV"``.
    array:
        The chiplet array.
    compilers:
        Registered backend names, reference first (improvements are measured
        against it).  Unknown names raise the registry's ``ValueError``.
    noise:
        Error/latency model passed to every backend.
    highway_density:
        Highway lines per chiplet per direction (Fig. 15 sweeps this); also
        determines the default circuit width.
    num_data_qubits:
        Circuit width; defaults to the number of data qubits left by the
        highway layout (the paper's convention).
    min_components:
        Aggregation threshold for highway gates (MECH-family knob).
    baseline_trials:
        Routing-trial budget for SABRE-family backends.
    seed:
        Seed for randomised benchmark inputs (QAOA graph, BV secret, VQE
        parameters), also offered to every backend's ``configure``.
    benchmark_kwargs:
        Extra arguments forwarded to the benchmark circuit builder.
    layout:
        A pre-built highway layout for ``array`` at ``highway_density``
        (warm-state serving keeps one resident per device).  ``None`` — every
        batch caller — rebuilds it, the historic behaviour; the compiled
        output is identical either way because the layout is a pure function
        of the device configuration.
    router:
        A pre-warmed :class:`~repro.compiler.local_router.LocalRouter` for
        the same device, offered to every backend as a ``router`` knob
        (MECH-family backends reuse it, SABRE-family backends ignore it).
        Deterministic and append-only, so sharing it never changes results.
    """
    names = normalize_compilers(compilers)
    backends = {name: get_backend(name) for name in names}

    if layout is None:
        layout = HighwayLayout(array, density=highway_density)
    elif layout.array is not array or layout.density != highway_density:
        raise ValueError(
            "the supplied layout was built for a different array or highway"
            " density than this compilation requests"
        )
    width = num_data_qubits if num_data_qubits is not None else layout.num_data_qubits
    kwargs = dict(benchmark_kwargs or {})
    if benchmark.upper() in _SEEDED_BENCHMARKS:
        kwargs.setdefault("seed", seed)
    circuit = build_benchmark(benchmark, width, **kwargs)

    results: dict[str, CompilationResult] = {}
    seconds: dict[str, float] = {}
    for name in names:
        backend = backends[name].configure(
            array,
            noise=noise,
            seed=seed,
            highway_density=highway_density,
            min_components=min_components,
            baseline_trials=baseline_trials,
            # the capacity layout above is read-only during compilation, so
            # MECH-family backends reuse it instead of rebuilding their own
            layout=layout,
            router=router,
        )
        start = time.perf_counter()
        results[name] = backend.compile(circuit)
        seconds[name] = time.perf_counter() - start

    return CompiledSet(
        benchmark=benchmark,
        array=array,
        compilers=names,
        circuit_width=circuit.num_qubits,
        highway_qubit_fraction=layout.qubit_overhead(),
        backends=backends,
        results=results,
        seconds=seconds,
        source_circuit=circuit,
    )


def compare_many(
    benchmark: str,
    array: ChipletArray,
    *,
    compilers: Sequence[str] = DEFAULT_COMPILERS,
    noise: NoiseModel = DEFAULT_NOISE,
    highway_density: int = 1,
    num_data_qubits: int | None = None,
    min_components: int = 2,
    baseline_trials: int = 1,
    seed: int = 0,
    benchmark_kwargs: dict[str, object] | None = None,
) -> MultiComparisonRecord:
    """Compile with every listed backend and record the paper's metrics N-way.

    See :func:`compile_many` for the parameters.
    """
    compiled = compile_many(
        benchmark,
        array,
        compilers=compilers,
        noise=noise,
        highway_density=highway_density,
        num_data_qubits=num_data_qubits,
        min_components=min_components,
        baseline_trials=baseline_trials,
        seed=seed,
        benchmark_kwargs=benchmark_kwargs,
    )
    return compiled.record(noise, extra=backend_stat_extras(compiled))


# --------------------------------------------------------------------------
# deprecated two-backend wrappers


@dataclass
class CompiledPair:
    """Both compilers' outputs for one benchmark on one array (deprecated
    shape; :class:`CompiledSet` is the N-way replacement)."""

    benchmark: str
    array: ChipletArray
    mech: MechCompiler
    circuit_width: int
    mech_result: CompilationResult
    baseline_result: CompilationResult
    mech_seconds: float
    baseline_seconds: float

    def record(self, noise: NoiseModel, extra: dict[str, float] | None = None) -> ComparisonRecord:
        """Assemble the comparison record under ``noise``."""
        mech_metrics = self.mech_result.metrics(noise)
        baseline_metrics = self.baseline_result.metrics(noise)
        return ComparisonRecord(
            benchmark=self.benchmark.upper(),
            architecture=self.array.topology.name,
            num_data_qubits=self.circuit_width,
            num_physical_qubits=self.array.num_qubits,
            baseline_depth=baseline_metrics.depth,
            mech_depth=mech_metrics.depth,
            baseline_eff_cnots=baseline_metrics.eff_cnots,
            mech_eff_cnots=mech_metrics.eff_cnots,
            highway_qubit_fraction=self.mech.highway_qubit_fraction,
            baseline_seconds=self.baseline_seconds,
            mech_seconds=self.mech_seconds,
            extra=dict(extra or {}),
        )


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} (the N-way backend API) instead",
        DeprecationWarning,
        stacklevel=3,
    )


def compile_pair(
    benchmark: str,
    array: ChipletArray,
    *,
    noise: NoiseModel = DEFAULT_NOISE,
    highway_density: int = 1,
    num_data_qubits: int | None = None,
    min_components: int = 2,
    baseline_trials: int = 1,
    seed: int = 0,
    benchmark_kwargs: dict[str, object] | None = None,
) -> CompiledPair:
    """Deprecated: compile with MECH and the baseline only.

    Thin wrapper over :func:`compile_many` with the default
    ``("baseline", "mech")`` backend pair; produces metrics identical to the
    historic hard-coded implementation.
    """
    _deprecated("compile_pair", "compile_many")
    compiled = compile_many(
        benchmark,
        array,
        compilers=DEFAULT_COMPILERS,
        noise=noise,
        highway_density=highway_density,
        num_data_qubits=num_data_qubits,
        min_components=min_components,
        baseline_trials=baseline_trials,
        seed=seed,
        benchmark_kwargs=benchmark_kwargs,
    )
    mech_backend = compiled.backends["mech"]
    assert isinstance(mech_backend.compiler, MechCompiler)
    return CompiledPair(
        benchmark=benchmark,
        array=array,
        mech=mech_backend.compiler,
        circuit_width=compiled.circuit_width,
        mech_result=compiled.results["mech"],
        baseline_result=compiled.results["baseline"],
        mech_seconds=compiled.seconds["mech"],
        baseline_seconds=compiled.seconds["baseline"],
    )


def compare(
    benchmark: str,
    array: ChipletArray,
    *,
    noise: NoiseModel = DEFAULT_NOISE,
    highway_density: int = 1,
    num_data_qubits: int | None = None,
    min_components: int = 2,
    baseline_trials: int = 1,
    seed: int = 0,
    benchmark_kwargs: dict[str, object] | None = None,
) -> ComparisonRecord:
    """Deprecated: two-backend comparison; use :func:`compare_many`.

    Still returns the exact record the historic implementation produced —
    same metrics, same ``extra`` statistics keys.
    """
    _deprecated("compare", "compare_many")
    compiled = compile_many(
        benchmark,
        array,
        compilers=DEFAULT_COMPILERS,
        noise=noise,
        highway_density=highway_density,
        num_data_qubits=num_data_qubits,
        min_components=min_components,
        baseline_trials=baseline_trials,
        seed=seed,
        benchmark_kwargs=benchmark_kwargs,
    )
    return compiled.comparison_record(noise, extra=backend_stat_extras(compiled))


# --------------------------------------------------------------------------
# text rendering


def format_records(
    records: Sequence[AnyRecord],
    *,
    title: str = "",
    errors: Sequence[object] | None = None,
) -> str:
    """Render comparison records as a fixed-width text table (paper style).

    Two-backend records render in the historic baseline/MECH column layout;
    any :class:`MultiComparisonRecord` in the sequence switches the whole
    table to the long-format N-way layout (one line per record x backend).

    ``errors`` (engine ``JobError`` records, or anything with ``benchmark``,
    ``error_type``, ``message`` and ``attempts`` attributes) are appended as
    FAILED rows so a partially failed sweep still prints every cell.
    """
    if any(isinstance(record, MultiComparisonRecord) for record in records):
        return format_multi_records(records, title=title, errors=errors)
    lines: list[str] = []
    if title:
        lines.append(title)
    header = (
        f"{'program':<14} {'arch':<22} {'base depth':>11} {'mech depth':>11} "
        f"{'depth impr':>10} {'base eff':>11} {'mech eff':>11} {'eff impr':>9} {'hw %':>6}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for r in records:
        lines.append(
            f"{r.benchmark + '-' + str(r.num_data_qubits):<14} {r.architecture:<22} "
            f"{r.baseline_depth:>11.0f} {r.mech_depth:>11.0f} {r.depth_improvement:>9.1%} "
            f"{r.baseline_eff_cnots:>11.0f} {r.mech_eff_cnots:>11.0f} "
            f"{r.eff_cnots_improvement:>8.1%} {r.highway_qubit_fraction:>6.1%}"
        )
    lines.extend(format_failed_rows(errors or ()))
    return "\n".join(lines)


def format_multi_records(
    records: Sequence[AnyRecord],
    *,
    title: str = "",
    errors: Sequence[object] | None = None,
) -> str:
    """Long-format N-way table: one line per (record, backend).

    The reference backend is marked with ``*`` and leaves its improvement
    columns blank (it is its own yardstick).  Two-backend
    :class:`ComparisonRecord` rows mixed into the sequence render as their
    baseline/mech pair.
    """
    lines: list[str] = []
    if title:
        lines.append(title)
    header = (
        f"{'program':<14} {'arch':<22} {'compiler':<14} {'depth':>11} "
        f"{'eff CNOTs':>11} {'depth impr':>10} {'eff impr':>9} {'hw %':>6}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for r in records:
        program = f"{r.benchmark}-{r.num_data_qubits}"
        if isinstance(r, MultiComparisonRecord):
            rows = [
                (
                    name,
                    r.depths[name],
                    r.eff_cnots[name],
                    None if name == r.reference else r.depth_improvement_for(name),
                    None if name == r.reference else r.eff_cnots_improvement_for(name),
                )
                for name in r.compilers
            ]
            reference = r.reference
        else:
            rows = [
                ("baseline", r.baseline_depth, r.baseline_eff_cnots, None, None),
                ("mech", r.mech_depth, r.mech_eff_cnots, r.depth_improvement, r.eff_cnots_improvement),
            ]
            reference = "baseline"
        for index, (name, depth, eff, depth_impr, eff_impr) in enumerate(rows):
            label = f"{name}*" if name == reference else name
            prefix = (
                f"{program:<14} {r.architecture:<22}"
                if index == 0
                else f"{'':<14} {'':<22}"
            )
            depth_cell = f"{depth_impr:>10.1%}" if depth_impr is not None else f"{'—':>10}"
            eff_cell = f"{eff_impr:>9.1%}" if eff_impr is not None else f"{'—':>9}"
            lines.append(
                f"{prefix} {label:<14} {depth:>11.0f} {eff:>11.0f} "
                f"{depth_cell} {eff_cell} {r.highway_qubit_fraction:>6.1%}"
            )
    lines.extend(format_failed_rows(errors or ()))
    return "\n".join(lines)


def format_failed_rows(errors: Sequence[object]) -> list[str]:
    """One text-table line per failed job (engine ``JobError`` records)."""
    rows = []
    for e in errors:
        attempts = getattr(e, "attempts", 1)
        rows.append(
            f"{getattr(e, 'benchmark', '?'):<14} FAILED after {attempts} "
            f"attempt{'s' if attempts != 1 else ''}: "
            f"{getattr(e, 'error_type', 'Error')}: {getattr(e, 'message', '')}"
        )
    return rows
