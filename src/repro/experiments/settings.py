"""Architecture settings of the paper's evaluation (Table 1) plus scaled-down
variants used by the default benchmark harness.

Every experiment in the paper runs over a :class:`ArchitectureSetting`:
a coupling structure, a chiplet footprint, a chiplet-array shape, the
cross-chip link density and the highway density.  The full paper-scale
settings are encoded here verbatim; because compiling the largest instances
takes hours (the paper quotes "hundreds of CPU hours" for the full sweep),
each experiment also has a ``small`` tier that preserves the comparison's
structure at a fraction of the cost.  ``EXPERIMENTS.md`` reports which tier
produced the recorded numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..hardware.array import ChipletArray

__all__ = [
    "ArchitectureSetting",
    "TABLE1_SETTINGS",
    "TABLE2_CHIPLET_SIZES",
    "FIG12_ARRAYS",
    "BENCHMARK_NAMES",
    "scaled_setting",
]

#: The four benchmark programs of the evaluation.
BENCHMARK_NAMES: tuple[str, ...] = ("QFT", "QAOA", "VQE", "BV")


@dataclass(frozen=True)
class ArchitectureSetting:
    """One row of the paper's Table 1 (or a scaled-down variant of it)."""

    name: str
    structure: str
    chiplet_width: int
    rows: int
    cols: int
    cross_links_per_edge: int | None = None
    highway_density: int = 1

    def build_array(self) -> ChipletArray:
        """Instantiate the chiplet array for this setting."""
        return ChipletArray(
            self.structure,
            self.chiplet_width,
            self.rows,
            self.cols,
            cross_links_per_edge=self.cross_links_per_edge,
        )

    @property
    def num_chiplets(self) -> int:
        return self.rows * self.cols

    def with_(self, **changes) -> "ArchitectureSetting":
        """Return a copy with some fields replaced."""
        return replace(self, **changes)


#: Paper Table 1, keyed by the paper's program label.  The data-qubit counts in
#: the paper ("program-261" etc.) are determined by the highway layout; ours
#: differ slightly because the layout generator is not byte-identical, but the
#: total qubit counts match exactly.
TABLE1_SETTINGS: dict[str, ArchitectureSetting] = {
    "program-261": ArchitectureSetting("program-261", "square", 6, 3, 3),
    "program-360": ArchitectureSetting("program-360", "square", 7, 3, 3),
    "program-495": ArchitectureSetting("program-495", "square", 8, 3, 3),
    "program-630": ArchitectureSetting("program-630", "square", 9, 3, 3),
    "program-160": ArchitectureSetting("program-160", "square", 7, 2, 2),
    "program-240": ArchitectureSetting("program-240", "square", 7, 2, 3),
    "program-480": ArchitectureSetting("program-480", "square", 7, 3, 4),
    "program-420": ArchitectureSetting("program-420", "square", 9, 2, 3),
    "program-312": ArchitectureSetting("program-312", "hexagon", 8, 2, 3),
    "program-351": ArchitectureSetting("program-351", "heavy_square", 8, 3, 3),
    "program-336": ArchitectureSetting("program-336", "heavy_hexagon", 8, 3, 4),
}

#: Table 2 sweeps the chiplet size on a fixed 3x3 square array.
TABLE2_CHIPLET_SIZES: tuple[int, ...] = (6, 7, 8, 9)

#: Fig. 12 sweeps the array shape with 7x7 square chiplets.
FIG12_ARRAYS: tuple[tuple[int, int], ...] = ((2, 2), (2, 3), (3, 3), (3, 4))

#: Scaled-down tiers: the same experiment structure on smaller devices so the
#: default test/benchmark run finishes quickly.  ``chiplet_width`` shrinks and
#: the array shape is preserved where it matters for the comparison.
_SMALL_WIDTH = {"small": 4, "medium": 5, "paper": None}


def scaled_setting(setting: ArchitectureSetting, scale: str = "small") -> ArchitectureSetting:
    """Return the setting at the requested scale tier.

    ``"paper"`` keeps the setting unchanged; ``"medium"`` and ``"small"``
    shrink the chiplet footprint (and therefore the number of data qubits)
    while keeping the structure, array shape, link density and highway density
    identical, which preserves what the experiment is comparing.
    """
    if scale not in _SMALL_WIDTH:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(_SMALL_WIDTH)}")
    width = _SMALL_WIDTH[scale]
    if width is None:
        return setting
    # heavy structures need a couple more sites per chiplet to stay connected
    if setting.structure in ("heavy_square", "heavy_hexagon"):
        width = max(width, 5)
    new_links = setting.cross_links_per_edge
    if new_links is not None:
        new_links = min(new_links, width)
    return setting.with_(
        name=f"{setting.name}-{scale}",
        chiplet_width=width,
        cross_links_per_edge=new_links,
    )
