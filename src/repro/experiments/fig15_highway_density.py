"""Fig. 15 reproduction: sensitivity to the highway qubit percentage.

The paper triples the highway mesh on a 2x3 array of 9x9 square chiplets
(single ~14%, double ~25%, triple ~41% of all qubits) while keeping the
baseline's circuit size equal to the single-highway data-qubit count, and
reports MECH's depth and eff_CNOT count normalised by the baseline's.  More
highway qubits shorten local routing (normalised depth drops and then
saturates) but increase entanglement-generation overhead (normalised eff_CNOTs
eventually ticks back up).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..hardware.array import ChipletArray
from ..hardware.noise import DEFAULT_NOISE, NoiseModel
from ..compiler import MechCompiler
from .runner import ComparisonRecord, compare
from .settings import BENCHMARK_NAMES

__all__ = ["run_fig15", "normalized_by_density", "format_fig15"]

#: Device per scale tier (the paper uses a 2x3 array of 9x9 chiplets).
_SCALE_DEVICE: Dict[str, Tuple[str, int, int, int]] = {
    "small": ("square", 5, 1, 2),
    "medium": ("square", 7, 2, 2),
    "paper": ("square", 9, 2, 3),
}

#: Highway density multipliers swept by the figure.
DENSITIES: Tuple[int, ...] = (1, 2, 3)


def run_fig15(
    *,
    scale: str = "small",
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    densities: Sequence[int] = DENSITIES,
    noise: NoiseModel = DEFAULT_NOISE,
    seed: int = 0,
) -> List[ComparisonRecord]:
    """Regenerate Fig. 15: one record per (highway density, benchmark).

    Following the paper, the circuit width is fixed to the *single* highway's
    data-qubit count for every density, so denser highways are not penalised
    by a smaller program.
    """
    if scale not in _SCALE_DEVICE:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(_SCALE_DEVICE)}")
    structure, width, rows, cols = _SCALE_DEVICE[scale]
    array = ChipletArray(structure, width, rows, cols)
    capacities = [
        MechCompiler(array, highway_density=d).num_data_qubits for d in densities
    ]
    circuit_width = min(capacities)
    records: List[ComparisonRecord] = []
    for density in densities:
        for name in benchmarks:
            record = compare(
                name,
                array,
                noise=noise,
                seed=seed,
                highway_density=density,
                num_data_qubits=circuit_width,
            )
            record.extra["highway_density"] = float(density)
            records.append(record)
    return records


def normalized_by_density(
    records: Sequence[ComparisonRecord],
) -> Dict[str, List[Tuple[int, float, float, float]]]:
    """Per-benchmark series ``(density, highway %, normalised depth, normalised eff)``."""
    series: Dict[str, List[Tuple[int, float, float, float]]] = {}
    for record in records:
        density = int(record.extra.get("highway_density", 1))
        series.setdefault(record.benchmark, []).append(
            (
                density,
                record.highway_qubit_fraction,
                record.normalized_depth,
                record.normalized_eff_cnots,
            )
        )
    for values in series.values():
        values.sort()
    return series


def format_fig15(records: Sequence[ComparisonRecord]) -> str:
    """Text rendering of the two normalised-metric panels of Fig. 15."""
    series = normalized_by_density(records)
    lines = ["Fig. 15: normalised performance vs highway qubit percentage"]
    lines.append(
        f"{'benchmark':<10} {'density':>8} {'highway %':>10} "
        f"{'depth (MECH/base)':>18} {'eff (MECH/base)':>16}"
    )
    lines.append("-" * 68)
    for name in sorted(series):
        for density, fraction, depth_ratio, eff_ratio in series[name]:
            lines.append(
                f"{name:<10} {density:>8d} {fraction:>10.1%} "
                f"{depth_ratio:>18.3f} {eff_ratio:>16.3f}"
            )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=sorted(_SCALE_DEVICE))
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    print(format_fig15(run_fig15(scale=args.scale, seed=args.seed)))


if __name__ == "__main__":  # pragma: no cover
    main()
