"""Fig. 15 reproduction: sensitivity to the highway qubit percentage.

The paper triples the highway mesh on a 2x3 array of 9x9 square chiplets
(single ~14%, double ~25%, triple ~41% of all qubits) while keeping the
baseline's circuit size equal to the single-highway data-qubit count, and
reports MECH's depth and eff_CNOT count normalised by the baseline's.  More
highway qubits shorten local routing (normalised depth drops and then
saturates) but increase entanglement-generation overhead (normalised eff_CNOTs
eventually ticks back up).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..compiler import MechCompiler
from ..hardware.array import ChipletArray
from ..hardware.noise import DEFAULT_NOISE, NoiseModel
from .engine import Job, experiment_checkpoint_meta, noise_to_items, run_jobs
from .runner import AnyRecord, resolve_compilers
from .settings import BENCHMARK_NAMES

__all__ = ["jobs_for_fig15", "run_fig15", "normalized_by_density", "format_fig15"]

#: Device per scale tier (the paper uses a 2x3 array of 9x9 chiplets).
_SCALE_DEVICE: dict[str, tuple[str, int, int, int]] = {
    "small": ("square", 5, 1, 2),
    "medium": ("square", 7, 2, 2),
    "paper": ("square", 9, 2, 3),
}

#: Highway density multipliers swept by the figure.
DENSITIES: tuple[int, ...] = (1, 2, 3)


def jobs_for_fig15(
    *,
    scale: str = "small",
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    densities: Sequence[int] = DENSITIES,
    noise: NoiseModel = DEFAULT_NOISE,
    seed: int = 0,
    compilers: Sequence[str] | None = None,
) -> list[Job]:
    """One job per (highway density, benchmark) of the Fig. 15 sweep.

    Following the paper, the circuit width is fixed to the *smallest*
    highway's data-qubit count for every density, so denser highways are not
    penalised by a smaller program.
    """
    if scale not in _SCALE_DEVICE:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(_SCALE_DEVICE)}")
    structure, width, rows, cols = _SCALE_DEVICE[scale]
    array = ChipletArray(structure, width, rows, cols)
    capacities = [
        MechCompiler(array, highway_density=d).num_data_qubits for d in densities
    ]
    circuit_width = min(capacities)
    noise_items = noise_to_items(noise)
    compiler_names = resolve_compilers(compilers)
    return [
        Job(
            benchmark=name,
            structure=structure,
            chiplet_width=width,
            rows=rows,
            cols=cols,
            highway_density=density,
            num_data_qubits=circuit_width,
            seed=seed,
            noise=noise_items,
            tags=(("highway_density", float(density)),),
            compilers=compiler_names,
        )
        for density in densities
        for name in benchmarks
    ]


def run_fig15(
    *,
    scale: str = "small",
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    densities: Sequence[int] = DENSITIES,
    noise: NoiseModel = DEFAULT_NOISE,
    seed: int = 0,
    compilers: Sequence[str] | None = None,
    workers: int = 1,
    cache=None,
    policy=None,
    checkpoint=None,
) -> list[AnyRecord]:
    """Regenerate Fig. 15: one record per (highway density, benchmark)."""
    jobs = jobs_for_fig15(
        scale=scale,
        benchmarks=benchmarks,
        densities=densities,
        noise=noise,
        seed=seed,
        compilers=compilers,
    )
    return run_jobs(
        jobs,
        workers=workers,
        cache=cache,
        policy=policy,
        checkpoint=checkpoint,
        checkpoint_meta=experiment_checkpoint_meta(
            "fig15", scale, benchmarks, seed, cache, compilers=resolve_compilers(compilers)
        ),
    )


def normalized_by_density(
    records: Sequence[AnyRecord],
) -> dict[str, list[tuple[int, float, float, float]]]:
    """Per-benchmark series ``(density, highway %, normalised depth, normalised eff)``."""
    series: dict[str, list[tuple[int, float, float, float]]] = {}
    for record in records:
        density = int(record.extra.get("highway_density", 1))
        series.setdefault(record.benchmark, []).append(
            (
                density,
                record.highway_qubit_fraction,
                record.normalized_depth,
                record.normalized_eff_cnots,
            )
        )
    for values in series.values():
        values.sort()
    return series


def format_fig15(records: Sequence[AnyRecord]) -> str:
    """Text rendering of the two normalised-metric panels of Fig. 15."""
    series = normalized_by_density(records)
    lines = ["Fig. 15: normalised performance vs highway qubit percentage"]
    lines.append(
        f"{'benchmark':<10} {'density':>8} {'highway %':>10} "
        f"{'depth (MECH/base)':>18} {'eff (MECH/base)':>16}"
    )
    lines.append("-" * 68)
    for name in sorted(series):
        for density, fraction, depth_ratio, eff_ratio in series[name]:
            lines.append(
                f"{name:<10} {density:>8d} {fraction:>10.1%} "
                f"{depth_ratio:>18.3f} {eff_ratio:>16.3f}"
            )
    return "\n".join(lines)
